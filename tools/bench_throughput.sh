#!/bin/sh
# Measure end-to-end simulator throughput over the full workload
# suite with the optimized build (the `bench-release` CMake preset:
# Release, -O3, LVPSIM_ASSERTIONS=OFF) and write the result as
# BENCH_throughput.json so the repo keeps a perf trajectory to
# regress against (see docs/performance.md).
#
# Usage: tools/bench_throughput.sh [output.json]
#   LVPSIM_BENCH_REPEAT=<n>  simulation passes per workload, median
#                            kept (default 3)
#   LVPSIM_BENCH_JOBS=<n>    worker threads (default 1 — single-
#                            threaded numbers are the comparable ones)
#   LVPSIM_INSTRS / LVPSIM_SUITE scale the run as everywhere else.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-$src_dir/BENCH_throughput.json}
repeat=${LVPSIM_BENCH_REPEAT:-3}
jobs=${LVPSIM_BENCH_JOBS:-1}
build_jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure (bench-release preset) =="
cmake -S "$src_dir" --preset bench-release >/dev/null

echo "== build micro_throughput =="
cmake --build "$src_dir/build-release" -j "$build_jobs" \
    --target micro_throughput

echo "== measure (repeat=$repeat jobs=$jobs) =="
"$src_dir/build-release/bench/micro_throughput" \
    --repeat "$repeat" --jobs "$jobs" --json "$out"
