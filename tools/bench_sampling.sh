#!/bin/sh
# Measure SimPoint-style sampled simulation (docs/sampling.md)
# against full detailed simulation with the optimized build (the
# `bench-release` CMake preset: Release, -O3, LVPSIM_ASSERTIONS=OFF)
# and write the result as BENCH_sampling.json so the repo keeps a
# committed record of the sampling speedup. The binary verifies warm
# reproducibility and its own error bounds before reporting anything.
#
# Usage: tools/bench_sampling.sh [output.json]
#   LVPSIM_BENCH_JOBS=<n>  worker threads (default 1 — single-
#                          threaded numbers are the comparable ones)
#   LVPSIM_INSTRS / LVPSIM_SUITE scale the run as everywhere else
#   (defaults here: 2000000 instructions, full suite — the scale the
#   sampled_vs_full gate replays).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-$src_dir/BENCH_sampling.json}
jobs=${LVPSIM_BENCH_JOBS:-1}
build_jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure (bench-release preset) =="
cmake -S "$src_dir" --preset bench-release >/dev/null

echo "== build sampling_throughput =="
cmake --build "$src_dir/build-release" -j "$build_jobs" \
    --target sampling_throughput

echo "== measure (jobs=$jobs) =="
LVPSIM_INSTRS=${LVPSIM_INSTRS:-2000000} \
LVPSIM_SUITE=${LVPSIM_SUITE:-full} \
    "$src_dir/build-release/bench/sampling_throughput" \
    --jobs "$jobs" --json "$out"
