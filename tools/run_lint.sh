#!/bin/sh
# Full static-analysis pass: lvplint (always), then clang-tidy
# (opportunistically — only when the binary and a compile database
# exist, so it never becomes a hard dependency).
#
#   tools/run_lint.sh [build-dir]      default build dir: ./build
#
# lvplint findings are the gate and fail this script; clang-tidy
# output is advisory unless CLANG_TIDY_STRICT=1.
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

echo "== lvplint =="
python3 tools/lint/lvplint.py --root .

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
    echo "== clang-tidy: not installed, skipping =="
    exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "== clang-tidy: no $build/compile_commands.json, skipping =="
    echo "   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    exit 0
fi

echo "== clang-tidy (config: .clang-tidy) =="
# No pipe into `while`: that would run the loop in a subshell and
# silently discard $status, making CLANG_TIDY_STRICT=1 always exit 0.
status=0
for f in $(git ls-files 'src/*.cc'); do
    "$CLANG_TIDY" -p "$build" --quiet "$f" || status=1
done
if [ "$status" -ne 0 ]; then
    echo "clang-tidy: findings above$(
        [ "${CLANG_TIDY_STRICT:-0}" = "1" ] || \
            echo ' (advisory; set CLANG_TIDY_STRICT=1 to gate)')" >&2
fi
if [ "${CLANG_TIDY_STRICT:-0}" = "1" ]; then
    exit "$status"
fi
exit 0
