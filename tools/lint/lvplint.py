#!/usr/bin/env python3
"""lvplint — project-specific static analysis for lvpsim.

The simulator's value rests on properties the C++ compiler cannot
check: bit-identical results across runs and ``--jobs N`` (the
determinism gate), zero steady-state allocations in the cycle loop
(the throughput work in docs/performance.md), and a stats schema that
stays in sync between ``pipe::SimStats`` and
``docs/results_schema.md``.  lvplint turns those invariants into a
static gate that runs in milliseconds, with no network access and no
libclang dependency — plain lexical analysis over the tree.

Checks (see docs/static_analysis.md for the rationale of each):

  determinism     banned nondeterminism sources in src/: C rand(),
                  std::random_device, wall-clock reads, iteration
                  hazards from std::unordered_map/set declarations,
                  pointer-keyed containers.
  hotpath-alloc   node-based containers (std::deque/list/map/
                  unordered_*) in src/pipeline/ and src/core/; the
                  hot path must use ring_buffer.hh / flat_map.hh.
  stats-schema    every counter registered in
                  src/pipeline/sim_stats.cc documented in
                  docs/results_schema.md, and vice versa; likewise
                  every per-workload JSON field written by
                  src/sim/results_json.cc against the schema doc's
                  "## Workload row" table (trace_format,
                  trace_instructions, ...).
  config-sync     the Table III constants in
                  src/pipeline/core_config.hh match every statement
                  of them in DESIGN.md.
  header-hygiene  #pragma once, no `using namespace` at namespace
                  scope in headers, include-order sanity.
  state-snapshot  every data member of a checkpointable class (one
                  declaring both saveState and restoreState) is
                  mentioned in both bodies, and every member of a
                  nested Snapshot struct that has a
                  serializeSnapshot/deserializeSnapshot overload
                  pair is mentioned in both overload bodies, or
                  carries a justified suppression — forgetting a
                  member silently breaks checkpoint/restore
                  bit-identity or drifts the on-disk store format.
  lock-discipline raw std:: mutex/lock types outside common/sync.hh
                  (they are invisible to Clang thread-safety
                  analysis), and members of mutex-holding classes
                  that are neither GUARDED_BY a declared mutex nor
                  atomic/const.
  layering        quote-include edges between src/ modules against
                  the dependency DAG pinned in
                  tools/lint/layering.manifest.
  stale-suppression  ``lvplint: allow`` comments whose check no
                  longer fires on the suppressed line — dead
                  suppressions misdocument the code and mask future
                  regressions.

The last three run on a cross-TU *project model* (class ProjectModel):
the resolved quote-include graph plus a per-class member index that
understands the annotation macros of common/thread_annotations.hh.
Still plain lexical analysis — no libclang, no compile step.

Findings print as ``file:line: [check-id] message`` and the tool
exits nonzero; ``--json`` emits the machine-readable equivalent.

Suppressions: append ``// lvplint: allow(check-id) -- justification``
to the offending line (or put it on the line directly above).  The
justification is mandatory; a suppression without one is itself a
finding (check-id ``suppression``), so every exception in the tree
documents why it is sound.

Adding a check: subclass Check, set ``check_id``/``description``,
implement ``run(tree)`` yielding Finding tuples, and decorate with
``@register``.  The fixture suite under tests/lint_fixtures/ expects
one seeded-violation fixture per check — add one for yours.
"""

import argparse
import json
import os
import re
import sys
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

SCAN_DIRS = ("src", "bench", "tests")
CXX_EXTENSIONS = (".cc", ".hh")

# ---------------------------------------------------------------------------
# Source model


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 = whole file
    check: str
    message: str


class Suppression(NamedTuple):
    line: int
    target: int  # line the suppression covers (== line, or the first
    #              code line after a comment-only suppression)
    checks: Tuple[str, ...]
    justification: str


SUPPRESS_RE = re.compile(
    r"//\s*lvplint:\s*allow\(([^)]*)\)(?:\s*--\s*(.*\S))?\s*$"
)


class SourceFile:
    """One scanned file: raw text, comment/string-stripped text (line
    structure preserved), and its lvplint suppressions."""

    def __init__(self, path: str, relpath: str):
        self.relpath = relpath
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.splitlines()
        self.suppressions: List[Suppression] = []
        for i, line in enumerate(self.lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            checks = tuple(
                c.strip() for c in m.group(1).split(",") if c.strip()
            )
            # A suppression on a comment-only line covers the first
            # code line below it (continuation comment lines in the
            # justification are skipped); one written at the end of a
            # code line covers that line.
            target = i
            while (
                target <= len(self.code_lines)
                and not self.code_lines[target - 1].strip()
            ):
                target += 1
            self.suppressions.append(
                Suppression(i, target, checks, (m.group(2) or "").strip())
            )

    def is_header(self) -> bool:
        return self.relpath.endswith(".hh")

    def suppressed(self, check_id: str, line: int) -> bool:
        for s in self.suppressions:
            if check_id in s.checks and line in (s.line, s.target):
                return True
        return False


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, keeping
    newlines so line numbers survive.  Good enough for C++ that does
    not hide quotes in macros."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal: R"delim( ... )delim"
                if text[i - 1 : i] == "R" and (
                    i < 2 or not text[i - 2].isalnum()
                ):
                    m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw"
                        out.append('"')
                        i += 1
                        continue
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                out.append(raw_delim)
                i += len(raw_delim)
                state = "code"
                continue
            out.append(c if c == "\n" else " ")
            i += 1
    return "".join(out)


class Tree:
    """The scanned tree plus lazy file access for checks that read
    files outside the scan set (DESIGN.md, docs/)."""

    def __init__(self, root: str, files: List[SourceFile]):
        self.root = root
        self.files = files

    def read(self, relpath: str) -> Optional[str]:
        path = os.path.join(self.root, relpath)
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()


# ---------------------------------------------------------------------------
# Check framework

CHECKS: List["Check"] = []


def register(cls):
    CHECKS.append(cls())
    return cls


class Check:
    check_id = "?"
    description = "?"

    def run(self, tree: Tree) -> Iterator[Finding]:
        raise NotImplementedError


def grep_findings(
    sf: SourceFile,
    patterns: Iterable[Tuple[re.Pattern, str]],
    check_id: str,
) -> Iterator[Finding]:
    for lineno, line in enumerate(sf.code_lines, start=1):
        for pat, why in patterns:
            if pat.search(line):
                yield Finding(sf.relpath, lineno, check_id, why)


# ---------------------------------------------------------------------------
# Check 1: determinism


@register
class DeterminismCheck(Check):
    """Simulation results must be a pure function of (workload, seed,
    config).  Ban ambient-entropy and wall-clock sources, plus the
    iteration-order hazard of unordered containers, in src/.  Only
    the seeded xoshiro RNG in common/random.hh is legal."""

    check_id = "determinism"
    description = (
        "no rand()/random_device/wall-clock/unordered-iteration "
        "hazards in src/ (seeded common/random.hh RNG only)"
    )

    ALLOWLIST = ("src/common/random.hh",)

    PATTERNS = [
        (
            re.compile(r"(?<![\w:])s?rand\s*\("),
            "C rand()/srand() is ambient state; use the seeded RNG "
            "in common/random.hh",
        ),
        (
            re.compile(r"std\s*::\s*random_device"),
            "std::random_device draws ambient entropy; use the "
            "seeded RNG in common/random.hh",
        ),
        (
            re.compile(
                r"std\s*::\s*chrono\s*::\s*"
                r"(system_clock|steady_clock|high_resolution_clock)"
            ),
            "wall-clock reads make results run-dependent; only "
            "timing fields excluded from determinism diffs may use "
            "them (suppress with justification)",
        ),
        (
            re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\b"),
            "wall-clock reads make results run-dependent",
        ),
        (
            re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
            "time() is a wall-clock read",
        ),
        (
            re.compile(r"std\s*::\s*unordered_(map|set|multimap|multiset)\s*<"),
            "std::unordered_* iteration order is unspecified and can "
            "leak into output; use FlatMap/sorted containers, or "
            "suppress with proof the container is never iterated",
        ),
        (
            re.compile(
                r"std\s*::\s*(map|set|multimap|multiset)\s*<"
                r"[^<>]*\*\s*[,>]"
            ),
            "pointer-keyed container: iteration order depends on "
            "allocation addresses",
        ),
        (
            re.compile(
                r"std\s*::\s*(mt19937(_64)?|default_random_engine|"
                r"minstd_rand0?|ranlux(24|48)(_base)?|knuth_b)\b"
                r"\s*\w+\s*(;|\{\s*\}|\(\s*\))"
            ),
            "default-constructed standard RNG engine hides its seed "
            "from the (workload, seed, config) contract; thread the "
            "run seed through common/random.hh instead",
        ),
        (
            re.compile(r"std\s*::\s*(transform_)?reduce\s*\("),
            "std::reduce/std::transform_reduce may reassociate the "
            "accumulation, so floating-point results depend on the "
            "implementation's partitioning; use std::accumulate or "
            "a fixed-order loop, or suppress with proof the "
            "operands are integral",
        ),
    ]

    def run(self, tree: Tree) -> Iterator[Finding]:
        for sf in tree.files:
            if not sf.relpath.startswith("src/"):
                continue
            if sf.relpath in self.ALLOWLIST:
                continue
            yield from grep_findings(sf, self.PATTERNS, self.check_id)


# ---------------------------------------------------------------------------
# Check 2: hot-path allocation


@register
class HotPathAllocCheck(Check):
    """The cycle loop is allocation-free in steady state (see
    docs/performance.md and tests/test_alloc_free.cc).  Node-based
    standard containers allocate per insert; the pipeline and
    predictor state must use ring_buffer.hh / flat_map.hh."""

    check_id = "hotpath-alloc"
    description = (
        "no node-based std:: containers (deque/list/map/unordered_*) "
        "in src/pipeline/ and src/core/; use ring_buffer.hh / "
        "flat_map.hh"
    )

    HOT_DIRS = ("src/pipeline/", "src/core/")

    PATTERNS = [
        (
            re.compile(r"std\s*::\s*deque\s*<"),
            "std::deque allocates per block; use "
            "common/ring_buffer.hh",
        ),
        (
            re.compile(r"std\s*::\s*list\s*<"),
            "std::list allocates per node; use a vector or "
            "common/ring_buffer.hh",
        ),
        (
            re.compile(r"std\s*::\s*(map|multimap|multiset)\s*<"),
            "node-based ordered container allocates per insert; use "
            "common/flat_map.hh or a sorted vector",
        ),
        (
            re.compile(r"std\s*::\s*unordered_(map|set|multimap|multiset)\s*<"),
            "node-based std::unordered_* allocates per insert; use "
            "common/flat_map.hh",
        ),
    ]

    def run(self, tree: Tree) -> Iterator[Finding]:
        for sf in tree.files:
            if not sf.relpath.startswith(self.HOT_DIRS):
                continue
            yield from grep_findings(sf, self.PATTERNS, self.check_id)


# ---------------------------------------------------------------------------
# Check 3: stats-schema sync


@register
class StatsSchemaCheck(Check):
    """docs/results_schema.md documents every counter that
    pipe::forEachCounter enumerates (visitScalars registrations plus
    the componentCounterName-prefixed arrays), and documents nothing
    that does not exist.  Also cross-checks the per-workload JSON row:
    every field the writer emits (``o.set("...")`` in
    ``toJson(const WorkloadResult &)``) must appear in the schema
    doc's "## Workload row" table, and vice versa.  Keeps the JSON
    results contract honest."""

    check_id = "stats-schema"
    description = (
        "counter registrations in src/pipeline/sim_stats.cc and the "
        "per-workload JSON fields of src/sim/results_json.cc match "
        "docs/results_schema.md in both directions"
    )

    STATS_CC = "src/pipeline/sim_stats.cc"
    RESULTS_CC = "src/sim/results_json.cc"
    SCHEMA_MD = "docs/results_schema.md"
    # Recomputable from the raw counters; documented but never
    # registered (see the schema doc's "derived" paragraph).
    DERIVED = ("ipc", "coverage", "accuracy")

    REG_RE = re.compile(r'\bfn\(\s*"([a-z0-9_]+)"')
    PREFIX_RE = re.compile(r'componentCounterName\(\s*"([a-z0-9_]+_)"')
    KEY_RE = re.compile(r'^\s*"([a-z0-9_]+)"\s*:', re.M)
    ROW_SET_RE = re.compile(r'o\.set\(\s*"([a-z0-9_]+)"')
    ROW_FIELD_RE = re.compile(r"^\|\s*`([a-z0-9_]+)`\s*\|", re.M)

    def run(self, tree: Tree) -> Iterator[Finding]:
        yield from self.counters_check(tree)
        yield from self.workload_row_check(tree)

    def counters_check(self, tree: Tree) -> Iterator[Finding]:
        cc = tree.read(self.STATS_CC)
        md = tree.read(self.SCHEMA_MD)
        if cc is None or md is None:
            # Cross-file checks are inert in trees that lack their
            # subjects (the seeded fixtures under tests/lint_fixtures
            # rely on this; the real repo always has both files).
            return
        cc_code = strip_comments_and_strings(cc)  # only for line lookup
        registered = self.REG_RE.findall(cc)
        prefixes = set(self.PREFIX_RE.findall(cc))

        block = self.stats_object_block(md)
        if block is None:
            yield Finding(
                self.SCHEMA_MD, 0, self.check_id,
                'no ```json block under a "## Stats object" heading; '
                "cannot cross-check counters",
            )
            return
        block_text, block_line = block
        doc_keys = self.KEY_RE.findall(block_text)

        doc_plain = []
        doc_prefixed: Dict[str, List[int]] = {}
        for k in doc_keys:
            m = re.fullmatch(r"([a-z0-9_]+_)(\d+)", k)
            if m and m.group(1) in prefixes:
                doc_prefixed.setdefault(m.group(1), []).append(
                    int(m.group(2))
                )
            else:
                doc_plain.append(k)

        for name in registered:
            if name not in doc_plain:
                yield Finding(
                    self.STATS_CC,
                    self.line_of(cc_code, 'fn( "{0}"'.format(name))
                    or self.line_of(cc, '"%s"' % name),
                    self.check_id,
                    "counter '%s' is registered but missing from the "
                    "%s stats object" % (name, self.SCHEMA_MD),
                )
        for name in doc_plain:
            if name in self.DERIVED:
                continue
            if name not in registered:
                yield Finding(
                    self.SCHEMA_MD, block_line, self.check_id,
                    "documented counter '%s' has no registration in "
                    "%s" % (name, self.STATS_CC),
                )
        for prefix in prefixes:
            idxs = sorted(doc_prefixed.get(prefix, []))
            if not idxs:
                yield Finding(
                    self.SCHEMA_MD, block_line, self.check_id,
                    "component counter family '%sN' is registered but "
                    "not documented" % prefix,
                )
            elif idxs != list(range(len(idxs))):
                yield Finding(
                    self.SCHEMA_MD, block_line, self.check_id,
                    "documented '%sN' indices %s are not contiguous "
                    "from 0" % (prefix, idxs),
                )
        for prefix in doc_prefixed:
            if prefix not in prefixes:
                yield Finding(
                    self.SCHEMA_MD, block_line, self.check_id,
                    "documented counter family '%sN' has no "
                    "componentCounterName registration" % prefix,
                )

    def workload_row_check(self, tree: Tree) -> Iterator[Finding]:
        cc = tree.read(self.RESULTS_CC)
        md = tree.read(self.SCHEMA_MD)
        if cc is None or md is None:
            # Inert without its subjects, like the counter check (the
            # lint fixtures carry neither file).
            return
        body = self.workload_row_writer_body(cc)
        if body is None:
            yield Finding(
                self.RESULTS_CC, 0, self.check_id,
                "cannot locate toJson(const WorkloadResult &); the "
                "workload-row schema cross-check needs it",
            )
            return
        body_text, body_line = body
        written = self.ROW_SET_RE.findall(body_text)

        table = self.workload_row_table(md)
        if table is None:
            yield Finding(
                self.SCHEMA_MD, 0, self.check_id,
                'no field table under a "## Workload row" heading; '
                "cannot cross-check the per-workload JSON fields",
            )
            return
        table_text, table_line = table
        documented = self.ROW_FIELD_RE.findall(table_text)

        for name in written:
            if name not in documented:
                yield Finding(
                    self.RESULTS_CC,
                    body_line + self.offset_of(body_text,
                                               '"%s"' % name),
                    self.check_id,
                    "workload-row field '%s' is written but missing "
                    "from the %s \"Workload row\" table"
                    % (name, self.SCHEMA_MD),
                )
        for name in documented:
            if name not in written:
                yield Finding(
                    self.SCHEMA_MD, table_line, self.check_id,
                    "documented workload-row field '%s' is never "
                    "written by %s" % (name, self.RESULTS_CC),
                )

    @staticmethod
    def workload_row_writer_body(cc: str) -> Optional[Tuple[str, int]]:
        """Body of toJson(const WorkloadResult &) with its 1-based
        start line, delimited by the first unindented '}'."""
        lines = cc.splitlines()
        start = None
        for i, line in enumerate(lines):
            if "toJson(const WorkloadResult" in line:
                start = i
                break
        if start is None:
            return None
        for j in range(start + 1, len(lines)):
            if lines[j].startswith("}"):
                return "\n".join(lines[start:j + 1]), start + 1
        return None

    @staticmethod
    def workload_row_table(md: str) -> Optional[Tuple[str, int]]:
        """The '## Workload row' section with its 1-based start
        line (field names are the backticked first table column)."""
        lines = md.splitlines()
        in_section = False
        start = None
        for i, line in enumerate(lines):
            if line.startswith("## "):
                if in_section:
                    return "\n".join(lines[start:i]), start + 1
                in_section = line.strip().lower().startswith(
                    "## workload row"
                )
                if in_section:
                    start = i
                continue
        if in_section and start is not None:
            return "\n".join(lines[start:]), start + 1
        return None

    @staticmethod
    def offset_of(text: str, needle: str) -> int:
        for i, line in enumerate(text.splitlines()):
            if needle in line:
                return i
        return 0

    @staticmethod
    def stats_object_block(md: str) -> Optional[Tuple[str, int]]:
        lines = md.splitlines()
        in_section = False
        start = None
        for i, line in enumerate(lines):
            if line.startswith("## "):
                in_section = line.strip().lower().startswith(
                    "## stats object"
                )
                continue
            if not in_section:
                continue
            if start is None and line.strip().startswith("```json"):
                start = i + 1
                continue
            if start is not None and line.strip().startswith("```"):
                return "\n".join(lines[start:i]), start + 1
        return None

    @staticmethod
    def line_of(text: str, needle: str) -> Optional[int]:
        compact = needle.replace(" ", "")
        for i, line in enumerate(text.splitlines(), start=1):
            if compact in line.replace(" ", ""):
                return i
        return None


# ---------------------------------------------------------------------------
# Check 4: config-paper sync


@register
class ConfigSyncCheck(Check):
    """The paper's Table III core parameters live in
    src/pipeline/core_config.hh and are restated in DESIGN.md prose.
    Every restatement must match the header's defaults, and the
    headline parameters must actually be stated somewhere."""

    check_id = "config-sync"
    description = (
        "Table III constants in src/pipeline/core_config.hh match "
        "every statement of them in DESIGN.md"
    )

    CONFIG_HH = "src/pipeline/core_config.hh"
    DESIGN_MD = "DESIGN.md"

    FIELDS = (
        "fetchWidth",
        "issueWidth",
        "lsLanes",
        "retireWidth",
        "robSize",
        "iqSize",
        "ldqSize",
        "stqSize",
        "fetchToExecute",
    )

    # (field, regex with one capture group, required-in-DESIGN.md)
    PROSE = [
        ("robSize", re.compile(r"\bROB\s+(\d+)\b"), True),
        ("iqSize", re.compile(r"\bIQ\s+(\d+)\b"), True),
        ("ldqSize", re.compile(r"\bLDQ\s+(\d+)\b"), True),
        ("stqSize", re.compile(r"\bSTQ\s+(\d+)\b"), True),
        ("fetchWidth", re.compile(r"\b(\d+)-wide\s+fetch"), True),
        ("issueWidth", re.compile(r"\b(\d+)-wide\s+issue"), True),
        ("lsLanes", re.compile(r"\b(\d+)\s+LS\s+lanes"), True),
        (
            "fetchToExecute",
            re.compile(r"\b(\d+)-cycle\s+fetch-to-execute"),
            True,
        ),
        (
            "fetchToExecute",
            re.compile(r"\b(\d+)-cycle\s+front\s+end"),
            False,
        ),
    ]

    FIELD_RE = re.compile(
        r"^\s*(?:unsigned|Cycle|std::uint\d+_t|int)\s+(\w+)\s*=\s*(\d+)\s*;",
        re.M,
    )

    def run(self, tree: Tree) -> Iterator[Finding]:
        hh = tree.read(self.CONFIG_HH)
        md = tree.read(self.DESIGN_MD)
        if hh is None or md is None:
            # Inert without both subjects (see StatsSchemaCheck.run).
            return
        values: Dict[str, int] = {}
        for m in self.FIELD_RE.finditer(strip_comments_and_strings(hh)):
            values[m.group(1)] = int(m.group(2))
        for field in self.FIELDS:
            if field not in values:
                yield Finding(
                    self.CONFIG_HH, 0, self.check_id,
                    "Table III field '%s' not found (integer "
                    "member with literal default expected)" % field,
                )

        md_lines = md.splitlines()
        for field, pat, required in self.PROSE:
            if field not in values:
                continue
            seen = False
            for lineno, line in enumerate(md_lines, start=1):
                for m in pat.finditer(line):
                    seen = True
                    stated = int(m.group(1))
                    if stated != values[field]:
                        yield Finding(
                            self.DESIGN_MD, lineno, self.check_id,
                            "%s states %s = %d but %s has %s = %d"
                            % (
                                self.DESIGN_MD, m.group(0), stated,
                                self.CONFIG_HH, field, values[field],
                            ),
                        )
            if required and not seen:
                yield Finding(
                    self.DESIGN_MD, 0, self.check_id,
                    "Table III parameter %s (= %d) is never stated "
                    "(pattern %r not found)"
                    % (field, values[field], pat.pattern),
                )

        yield from self.check_spec_grammar(tree)

    # ------------------------------------------------------------------
    # Second sync pair: the synth: kernel-spec grammar vocabulary
    # (kSpecGrammarFields in src/trace/kernel_spec.cc) against the
    # field table in docs/kernel_dsl.md. Set equality both ways: a
    # key added to the parser must be documented, and a documented
    # key must exist in the parser.

    SPEC_CC = "src/trace/kernel_spec.cc"
    SPEC_MD = "docs/kernel_dsl.md"

    SPEC_ARRAY_RE = re.compile(
        r"kSpecGrammarFields\[\]\s*=\s*\{(.*?)\};", re.S
    )
    SPEC_NAME_RE = re.compile(r'"(\w+)"')
    # Table rows: the leading backticked token of a | `key` | ... row.
    SPEC_ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|")

    def check_spec_grammar(self, tree: Tree) -> Iterator[Finding]:
        cc = tree.read(self.SPEC_CC)
        md = tree.read(self.SPEC_MD)
        if cc is None or md is None:
            # Inert without both subjects, like the Table III pair.
            return
        m = self.SPEC_ARRAY_RE.search(cc)
        if m is None:
            yield Finding(
                self.SPEC_CC, 0, self.check_id,
                "kSpecGrammarFields[] initializer not found",
            )
            return
        in_code = {n.group(1) for n in
                   self.SPEC_NAME_RE.finditer(m.group(1))}
        in_doc: Dict[str, int] = {}
        for lineno, line in enumerate(md.splitlines(), start=1):
            row = self.SPEC_ROW_RE.match(line)
            if row:
                in_doc.setdefault(row.group(1), lineno)
        for name in sorted(in_code - set(in_doc)):
            yield Finding(
                self.SPEC_MD, 0, self.check_id,
                "grammar key '%s' (kSpecGrammarFields, %s) has no "
                "`%s` table row in %s"
                % (name, self.SPEC_CC, name, self.SPEC_MD),
            )
        for name in sorted(set(in_doc) - in_code):
            yield Finding(
                self.SPEC_MD, in_doc[name], self.check_id,
                "documented grammar key '%s' is not in "
                "kSpecGrammarFields (%s)" % (name, self.SPEC_CC),
            )


# ---------------------------------------------------------------------------
# Check 5: header hygiene


@register
class HeaderHygieneCheck(Check):
    """Headers: #pragma once (no classic guards), no `using
    namespace` at namespace scope, and include-order sanity — in a
    contiguous run of #include lines, <angle> includes precede
    "quote" includes and each group is alphabetically sorted."""

    check_id = "header-hygiene"
    description = (
        "#pragma once, no using-namespace at namespace scope in "
        "headers, include-order sanity"
    )

    INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')
    USING_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

    def run(self, tree: Tree) -> Iterator[Finding]:
        for sf in tree.files:
            if not sf.is_header():
                continue
            if "#pragma once" not in sf.code:
                yield Finding(
                    sf.relpath, 1, self.check_id,
                    "header does not use #pragma once",
                )
            yield from self.check_using(sf)
            yield from self.check_include_order(sf)

    NS_TAIL_RE = re.compile(r"(^|\s)(inline\s+)?namespace(\s+[\w:]+)?\s*$")
    NS_LINE_RE = re.compile(r"^(inline\s+)?namespace(\s+[\w:]+)?$")

    def check_using(self, sf: SourceFile) -> Iterator[Finding]:
        # Stack of open braces: True = opened by a namespace, False =
        # anything else (class, function, enum, ...).  `using
        # namespace` is only a finding when every enclosing brace is
        # a namespace (file scope counts: empty stack).
        stack: List[bool] = []
        pending_ns = False
        for lineno, line in enumerate(sf.code_lines, start=1):
            if self.USING_RE.match(line) and all(stack):
                yield Finding(
                    sf.relpath, lineno, self.check_id,
                    "`using namespace` at namespace scope in a "
                    "header leaks into every includer",
                )
            for i, ch in enumerate(line):
                if ch == "{":
                    stack.append(
                        pending_ns
                        or bool(self.NS_TAIL_RE.search(line[:i]))
                    )
                    pending_ns = False
                elif ch == "}":
                    if stack:
                        stack.pop()
            stripped = line.strip()
            if stripped:
                pending_ns = bool(self.NS_LINE_RE.match(stripped))

    def check_include_order(self, sf: SourceFile) -> Iterator[Finding]:
        # A "block" is a contiguous run of #include lines; any other
        # line (blank included) ends it, so the conventional layout —
        # own header / blank / <system> block / blank / "project"
        # block — is three independently checked blocks.
        run: List[Tuple[int, str, str]] = []  # (line, kind, path)
        for lineno, raw in enumerate(sf.lines, start=1):
            # Parse the raw line (the stripper blanks "quoted" paths)
            # but only count it when the stripped line is still a
            # preprocessor directive, so commented-out includes are
            # ignored.
            code = sf.code_lines[lineno - 1]
            m = self.INCLUDE_RE.match(raw)
            if m and code.lstrip().startswith("#"):
                kind = "angle" if m.group(1) == "<" else "quote"
                run.append((lineno, kind, m.group(2)))
                continue
            yield from self.check_run(sf, run)
            run = []
        yield from self.check_run(sf, run)

    def check_run(
        self, sf: SourceFile, run: List[Tuple[int, str, str]]
    ) -> Iterator[Finding]:
        if len(run) < 2:
            return
        seen_quote = False
        prev: Dict[str, Tuple[int, str]] = {}
        for lineno, kind, path in run:
            if kind == "quote":
                seen_quote = True
            elif seen_quote:
                yield Finding(
                    sf.relpath, lineno, self.check_id,
                    "<%s> after a \"quoted\" include in the same "
                    "block; put system headers first or split the "
                    "blocks" % path,
                )
            if kind in prev and path.lower() < prev[kind][1].lower():
                yield Finding(
                    sf.relpath, lineno, self.check_id,
                    "include %r breaks alphabetical order (after "
                    "%r); sort the block" % (path, prev[kind][1]),
                )
            prev[kind] = (lineno, path)


# ---------------------------------------------------------------------------
# Check 6: state-snapshot completeness


def find_matching_brace(text: str, open_idx: int) -> Optional[int]:
    """Index of the '}' closing the '{' at open_idx, or None."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return None


CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")


def iter_class_bodies(code: str) -> Iterator[Tuple[str, int, int]]:
    """(name, body_start, body_end) for every class/struct definition
    in stripped code, nested ones included."""
    for m in CLASS_RE.finditer(code):
        i = m.end()
        while i < len(code) and code[i].isspace():
            i += 1
        if code.startswith("final", i):
            i += len("final")
        # Only a base clause or an immediate body counts as a
        # definition; anything else (forward declaration,
        # `template <class T>`, elaborated type) is skipped.
        if i >= len(code) or code[i] not in ":{":
            continue
        while i < len(code) and code[i] not in "{;":
            i += 1
        if i >= len(code) or code[i] == ";":
            continue
        close = find_matching_brace(code, i)
        if close is None:
            continue
        yield m.group(2), i + 1, close


@register
class StateSnapshotCheck(Check):
    """Checkpoint/restore (pipe::Core::saveState and friends) is only
    bit-identical if every piece of mutable state reaches the
    Snapshot.  A new data member that is forgotten in saveState /
    restoreState compiles silently and corrupts restored runs in ways
    only the differential tests can catch, long after the edit.  This
    check makes the invariant static: in any class that declares both
    saveState and restoreState, every data member must be mentioned
    by name in both bodies — or carry a justified
    ``// lvplint: allow(state-snapshot)`` explaining why it is not
    checkpointed state (construction-time config, external wiring,
    scratch buffers)."""

    check_id = "state-snapshot"
    description = (
        "every data member of a class declaring saveState/"
        "restoreState appears in both bodies, and every member of a "
        "nested Snapshot struct with a serializeSnapshot/"
        "deserializeSnapshot overload pair appears in both overload "
        "bodies (or is suppressed with justification)"
    )

    # A definition (not declaration: the brace is required) of either
    # half of a snapshot-serializer overload pair. The parameter list
    # names which snapshot type the overload covers.
    SERIALIZER_RE = re.compile(
        r"\b(serializeSnapshot|deserializeSnapshot)\s*"
        r"\(([^)]*)\)\s*\{"
    )
    SNAP_PARAM_RE = re.compile(r"([A-Za-z_]\w*)\s*::\s*Snapshot\s*&")

    MEMBER_SKIP = {
        "using", "typedef", "friend", "static", "template", "enum",
        "class", "struct", "union", "operator", "virtual", "explicit",
        "extern", "namespace", "public", "private", "protected",
    }

    def run(self, tree: Tree) -> Iterator[Finding]:
        ser, deser = self.serializer_bodies(tree)
        for sf in tree.files:
            if not (
                sf.relpath.startswith("src/") and sf.is_header()
            ):
                continue
            bodies = list(self.class_bodies(sf.code))
            for name, start, end in bodies:
                yield from self.check_class(
                    tree, sf, name, sf.code[start:end], start
                )
                if name != "Snapshot":
                    continue
                # The disk-format side of the same invariant: a
                # nested Snapshot that has an explicit serializer
                # pair (src/pipeline/snapshot_io.*) must push every
                # member through both halves, or restored state
                # silently diverges from saved state. Snapshots
                # without serializers are not on disk and stay out
                # of scope.
                owner = self.enclosing_class(bodies, start, end)
                if owner is None:
                    continue
                if owner not in ser or owner not in deser:
                    continue
                yield from self.check_snapshot_serializers(
                    sf, owner, sf.code[start:end], start,
                    ser[owner], deser[owner]
                )

    def class_bodies(
        self, code: str
    ) -> Iterator[Tuple[str, int, int]]:
        return iter_class_bodies(code)

    def check_class(
        self,
        tree: Tree,
        sf: SourceFile,
        cls: str,
        body: str,
        body_off: int,
    ) -> Iterator[Finding]:
        members, has_save, has_restore = self.scan_members(
            body, body_off
        )
        if not (has_save and has_restore):
            return
        save_body = self.function_body(tree, cls, body, "saveState")
        restore_body = self.function_body(
            tree, cls, body, "restoreState"
        )
        if save_body is None or restore_body is None:
            # Declared but not defined anywhere in the scan set:
            # nothing to cross-check (and nothing to anchor a line
            # number to), so stay inert rather than guess.
            return
        for name, off in members:
            pat = re.compile(r"\b%s\b" % re.escape(name))
            missing = []
            if not pat.search(save_body):
                missing.append("saveState")
            if not pat.search(restore_body):
                missing.append("restoreState")
            if missing:
                line = sf.code.count("\n", 0, off) + 1
                yield Finding(
                    sf.relpath, line, self.check_id,
                    "data member '%s' of checkpointable class '%s' "
                    "is not mentioned in %s; checkpoint it in both "
                    "or justify with a suppression"
                    % (name, cls, " or ".join(missing)),
                )

    @staticmethod
    def enclosing_class(
        bodies: List[Tuple[str, int, int]], start: int, end: int
    ) -> Optional[str]:
        """Name of the innermost class strictly containing
        [start, end), skipping other Snapshot structs."""
        owner: Optional[str] = None
        best = -1
        for name, s, e in bodies:
            if s < start and end <= e and name != "Snapshot":
                if s > best:
                    best, owner = s, name
        return owner

    def serializer_bodies(
        self, tree: Tree
    ) -> Tuple[Dict[str, str], Dict[str, str]]:
        """Concatenated definition bodies of serializeSnapshot /
        deserializeSnapshot overloads across the scan set, keyed by
        the snapshot-owning class name (the token before
        ``::Snapshot`` in the parameter list)."""
        ser: Dict[str, str] = {}
        deser: Dict[str, str] = {}
        for sf in tree.files:
            for m in self.SERIALIZER_RE.finditer(sf.code):
                types = self.SNAP_PARAM_RE.findall(m.group(2))
                if not types:
                    continue
                close = find_matching_brace(sf.code, m.end() - 1)
                if close is None:
                    continue
                body = sf.code[m.end():close]
                target = (
                    ser if m.group(1) == "serializeSnapshot"
                    else deser
                )
                cls = types[-1]
                target[cls] = target.get(cls, "") + "\n" + body
        return ser, deser

    def check_snapshot_serializers(
        self,
        sf: SourceFile,
        cls: str,
        body: str,
        body_off: int,
        ser_body: str,
        deser_body: str,
    ) -> Iterator[Finding]:
        members, _, _ = self.scan_members(body, body_off)
        for name, off in members:
            pat = re.compile(r"\b%s\b" % re.escape(name))
            missing = []
            if not pat.search(ser_body):
                missing.append("serializeSnapshot")
            if not pat.search(deser_body):
                missing.append("deserializeSnapshot")
            if missing:
                line = sf.code.count("\n", 0, off) + 1
                yield Finding(
                    sf.relpath, line, self.check_id,
                    "member '%s' of '%s::Snapshot' is not mentioned "
                    "in %s; a member that skips either half of the "
                    "serializer pair silently drifts the on-disk "
                    "checkpoint format — encode it in both or "
                    "justify with a suppression"
                    % (name, cls, " or ".join(missing)),
                )

    def scan_members(
        self, body: str, body_off: int
    ) -> Tuple[List[Tuple[str, int]], bool, bool]:
        """Depth-1 member declarations as (name, code offset), plus
        whether saveState / restoreState are declared or defined."""
        members: List[Tuple[str, int]] = []
        has_save = has_restore = False

        def note_functions(stmt: str) -> None:
            nonlocal has_save, has_restore
            if re.search(r"\bsaveState\s*\(", stmt):
                has_save = True
            if re.search(r"\brestoreState\s*\(", stmt):
                has_restore = True

        def flush(stmt: str, start: Optional[int]) -> None:
            note_functions(stmt)
            # Any parenthesis marks a function declaration (possibly
            # a trailing fragment of one whose brace-initialized
            # default argument reset the statement) or a call-style
            # initializer; neither is a plain data member.
            if "(" in stmt or ")" in stmt or "[[" in stmt:
                return
            s = re.sub(r"\b(public|private|protected)\s*:", " ", stmt)
            s = re.sub(r"=.*$", "", s, flags=re.S)
            tokens = re.findall(r"[A-Za-z_]\w*", s)
            if len(tokens) < 2 or tokens[0] in self.MEMBER_SKIP:
                return
            if start is not None:
                members.append((tokens[-1], start))

        depth = 1
        stmt = ""
        start: Optional[int] = None
        i = 0
        while i < len(body):
            c = body[i]
            if c == "{":
                if depth == 1:
                    # Function definition opening, or a brace
                    # initializer / nested type body; either way the
                    # statement so far may declare the snapshot pair.
                    note_functions(stmt)
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 1:
                    # Keep the statement only when it continues into
                    # a ';' (brace-initialized member, `struct X {}
                    # y;`); a function body ends the statement.
                    j = i + 1
                    while j < len(body) and body[j].isspace():
                        j += 1
                    if j >= len(body) or body[j] != ";":
                        stmt, start = "", None
            elif depth == 1:
                if c == ";":
                    flush(stmt, start)
                    stmt, start = "", None
                else:
                    if start is None and not c.isspace():
                        start = body_off + i
                    stmt += c
            i += 1
        return members, has_save, has_restore

    def function_body(
        self, tree: Tree, cls: str, class_body: str, fn: str
    ) -> Optional[str]:
        """The body text of `fn`, defined inline in the class or
        out-of-line as `cls::fn` anywhere in the scan set."""
        m = re.search(
            r"\b%s\s*\([^)]*\)\s*(?:const)?\s*\{" % fn, class_body
        )
        if m:
            close = find_matching_brace(class_body, m.end() - 1)
            if close is not None:
                return class_body[m.end():close]
        qualified = re.compile(r"\b%s\s*::\s*%s\s*\(" % (cls, fn))
        for other in tree.files:
            for qm in qualified.finditer(other.code):
                open_idx = other.code.find("{", qm.end())
                if open_idx < 0:
                    continue
                close = find_matching_brace(other.code, open_idx)
                if close is not None:
                    return other.code[open_idx + 1:close]
        return None


# ---------------------------------------------------------------------------
# Cross-TU project model (lock-discipline, layering)


class IncludeRef(NamedTuple):
    line: int  # 1-based line of the #include in the including file
    spec: str  # the path as written between the quotes
    resolved: Optional[str]  # repo-relative target, None if external


class MemberInfo(NamedTuple):
    name: str
    line: int  # 1-based in the declaring file
    decl: str  # statement text, annotation macros included
    guards: Tuple[str, ...]  # (PT_)GUARDED_BY arguments, in order
    kind: str  # mutex | cv | atomic | once | plain


class ClassIndex(NamedTuple):
    name: str
    path: str  # repo-relative declaring file
    line: int  # 1-based line of the class keyword
    members: Tuple[MemberInfo, ...]


QUOTE_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
GUARD_ARG_RE = re.compile(
    r"\b(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z_]\w*)\s*\)"
)
ANNOTATION_RE = re.compile(
    r"\b(?:PT_)?GUARDED_BY\s*\([^()]*\)"
    r"|\bACQUIRED_(?:BEFORE|AFTER)\s*\([^()]*\)"
)
MUTEX_TYPE_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(?:recursive_mutex|shared_mutex|timed_mutex|mutex"
    r"|SharedMutex|Mutex)\b"
)


class ProjectModel:
    """Cross-TU facts the per-file checks cannot see: the resolved
    quote-include graph over the scan set, and a per-class index of
    depth-1 data members classified by synchronization role.  Built
    lazily, once per Tree (``project_model(tree)``); still lexical —
    quote includes are resolved against src/ (the single include
    root, see CMakeLists.txt) and then against the including file's
    directory."""

    MEMBER_SKIP = StateSnapshotCheck.MEMBER_SKIP

    def __init__(self, tree: Tree):
        known = {sf.relpath for sf in tree.files}
        self.includes: Dict[str, List[IncludeRef]] = {}
        self.classes: List[ClassIndex] = []
        for sf in tree.files:
            refs = []
            # Parse raw lines: the stripper blanks "quoted" paths.
            # Commented-out includes are excluded by requiring the
            # stripped line to still be a preprocessor directive.
            for lineno, raw in enumerate(sf.lines, start=1):
                m = QUOTE_INCLUDE_RE.match(raw)
                if not m:
                    continue
                code = sf.code_lines[lineno - 1]
                if not code.lstrip().startswith("#"):
                    continue
                spec = m.group(1)
                refs.append(IncludeRef(
                    lineno, spec,
                    self.resolve(tree, sf.relpath, spec, known),
                ))
            self.includes[sf.relpath] = refs
            for name, start, end in iter_class_bodies(sf.code):
                members = self.scan_members(
                    sf.code, sf.code[start:end], start
                )
                self.classes.append(ClassIndex(
                    name, sf.relpath,
                    sf.code.count("\n", 0, start) + 1,
                    tuple(members),
                ))

    @staticmethod
    def resolve(
        tree: Tree, includer: str, spec: str, known: set
    ) -> Optional[str]:
        src_rooted = "src/" + spec
        rel_to_dir = os.path.normpath(
            os.path.join(os.path.dirname(includer), spec)
        ).replace(os.sep, "/")
        for cand in (src_rooted, rel_to_dir, spec):
            if cand in known or os.path.isfile(
                os.path.join(tree.root, cand)
            ):
                return cand
        return None

    def scan_members(
        self, code: str, body: str, body_off: int
    ) -> List[MemberInfo]:
        """Depth-1 data members of one class body.  Unlike the
        state-snapshot scanner this understands the thread-safety
        annotation macros, whose parentheses would otherwise make an
        annotated member look like a function declaration."""
        members: List[MemberInfo] = []

        def flush(stmt: str, start: Optional[int]) -> None:
            if start is None:
                return
            guards = tuple(GUARD_ARG_RE.findall(stmt))
            s = ANNOTATION_RE.sub(" ", stmt)
            s = re.sub(r"\b(public|private|protected)\s*:", " ", s)
            s = re.sub(r"=.*$", "", s, flags=re.S)
            if "(" in s or ")" in s or "[[" in s:
                return
            tokens = re.findall(r"[A-Za-z_]\w*", s)
            if len(tokens) < 2 or tokens[0] in self.MEMBER_SKIP:
                return
            if "condition_variable" in stmt:
                kind = "cv"
            elif "once_flag" in stmt:
                kind = "once"
            elif re.search(r"\batomic\b", stmt):
                kind = "atomic"
            elif MUTEX_TYPE_RE.search(s):
                kind = "mutex"
            else:
                kind = "plain"
            members.append(MemberInfo(
                tokens[-1], code.count("\n", 0, start) + 1,
                stmt.strip(), guards, kind,
            ))

        depth = 1
        stmt = ""
        start: Optional[int] = None
        i = 0
        while i < len(body):
            c = body[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 1:
                    j = i + 1
                    while j < len(body) and body[j].isspace():
                        j += 1
                    if j >= len(body) or body[j] != ";":
                        stmt, start = "", None
            elif depth == 1:
                if c == ";":
                    flush(stmt, start)
                    stmt, start = "", None
                else:
                    if start is None and not c.isspace():
                        start = body_off + i
                    stmt += c
            i += 1
        return members


def project_model(tree: Tree) -> ProjectModel:
    model = getattr(tree, "_project_model", None)
    if model is None:
        model = ProjectModel(tree)
        tree._project_model = model
    return model


def module_of(relpath: str) -> Optional[str]:
    """src/<module>/... -> module name; None outside src/."""
    parts = relpath.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


@register
class LockDisciplineCheck(Check):
    """The thread-safety contracts (docs/static_analysis.md) only
    bite if (a) every lock in model code is one of the annotated
    wrappers from common/sync.hh — raw std:: mutexes carry no
    capability attributes, so Clang's analysis silently ignores them
    — and (b) shared state actually declares its guard.  Half (b) is
    structural: in any class holding a Mutex/SharedMutex member,
    every plain data member must be GUARDED_BY one of the class's
    declared mutexes, or be inherently safe (atomic, const,
    condition variable, once_flag), or carry a justified
    suppression explaining the protocol that makes it safe."""

    check_id = "lock-discipline"
    description = (
        "annotated sync wrappers only in src/, and every member of "
        "a mutex-holding class guarded, atomic/const, or justified"
    )

    RAW_STD_RE = re.compile(
        r"\bstd\s*::\s*(recursive_mutex|shared_mutex|timed_mutex"
        r"|mutex|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    )

    # The wrappers themselves are built from the raw primitives.
    EXEMPT_FILES = ("src/common/sync.hh",)

    def run(self, tree: Tree) -> Iterator[Finding]:
        for sf in tree.files:
            if not sf.relpath.startswith("src/"):
                continue
            if sf.relpath in self.EXEMPT_FILES:
                continue
            for lineno, line in enumerate(sf.code_lines, start=1):
                m = self.RAW_STD_RE.search(line)
                if m:
                    yield Finding(
                        sf.relpath, lineno, self.check_id,
                        "raw std::%s is invisible to thread-safety "
                        "analysis; use the annotated wrappers in "
                        "common/sync.hh (Mutex/SharedMutex, "
                        "MutexLock/UniqueLock, ReaderLock/WriterLock)"
                        % m.group(1),
                    )
        for ci in project_model(tree).classes:
            if not ci.path.startswith("src/"):
                continue
            yield from self.check_class(ci)

    def check_class(self, ci: ClassIndex) -> Iterator[Finding]:
        mutexes = {m.name for m in ci.members if m.kind == "mutex"}
        if not mutexes:
            return
        for m in ci.members:
            for g in m.guards:
                if g not in mutexes:
                    yield Finding(
                        ci.path, m.line, self.check_id,
                        "GUARDED_BY(%s) on '%s' does not name a "
                        "mutex member of '%s' (declared: %s)"
                        % (g, m.name, ci.name,
                           ", ".join(sorted(mutexes))),
                    )
            if m.kind != "plain" or m.guards:
                continue
            if re.search(r"\bconst\b", m.decl):
                continue
            yield Finding(
                ci.path, m.line, self.check_id,
                "member '%s' of mutex-holding class '%s' is neither "
                "GUARDED_BY a declared mutex nor atomic/const; "
                "annotate it (common/thread_annotations.hh) or "
                "justify a suppression" % (m.name, ci.name),
            )


@register
class LayeringCheck(Check):
    """The module DAG (common -> trace -> branch/memory/core ->
    pipeline -> sim -> qa) is what keeps the predictor layer
    reusable outside the pipeline and the qa harness able to wrap
    everything.  It is pinned in tools/lint/layering.manifest; this
    check walks the resolved quote-include graph and flags any src/
    edge the manifest does not allow, plus drift in the manifest
    itself (unknown modules, undeclared modules, cycles).  A tree
    without a manifest (the lint fixtures) has no layering contract
    and is left alone."""

    check_id = "layering"
    description = (
        "src/ module include edges respect the DAG pinned in "
        "tools/lint/layering.manifest"
    )

    MANIFEST = "tools/lint/layering.manifest"

    def run(self, tree: Tree) -> Iterator[Finding]:
        text = tree.read(self.MANIFEST)
        if text is None:
            return
        allowed: Dict[str, set] = {}
        deferred: List[Tuple[int, str, str]] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" not in line:
                yield Finding(
                    self.MANIFEST, lineno, self.check_id,
                    "manifest line is not 'module: dep dep ...'",
                )
                continue
            mod, deps = line.split(":", 1)
            mod = mod.strip()
            allowed[mod] = set()
            for dep in deps.split():
                allowed[mod].add(dep)
                deferred.append((lineno, mod, dep))
        for lineno, mod, dep in deferred:
            if dep not in allowed:
                yield Finding(
                    self.MANIFEST, lineno, self.check_id,
                    "dependency '%s' of module '%s' is not itself "
                    "declared in the manifest" % (dep, mod),
                )
        cycle = self.find_cycle(allowed)
        if cycle:
            yield Finding(
                self.MANIFEST, 0, self.check_id,
                "manifest allows a dependency cycle: %s"
                % " -> ".join(cycle),
            )
            return
        model = project_model(tree)
        undeclared: set = set()
        for sf in tree.files:
            mod = module_of(sf.relpath)
            if mod is None:
                continue
            if mod not in allowed:
                if mod not in undeclared:
                    undeclared.add(mod)
                    yield Finding(
                        self.MANIFEST, 0, self.check_id,
                        "module 'src/%s' (e.g. %s) is not declared "
                        "in the layering manifest"
                        % (mod, sf.relpath),
                    )
                continue
            for ref in model.includes[sf.relpath]:
                if ref.resolved is None:
                    continue
                dep = module_of(ref.resolved)
                if dep is None or dep == mod or dep in allowed[mod]:
                    continue
                yield Finding(
                    sf.relpath, ref.line, self.check_id,
                    "module '%s' must not include \"%s\" (module "
                    "'%s'); allowed dependencies: %s — see "
                    "tools/lint/layering.manifest"
                    % (mod, ref.spec, dep,
                       ", ".join(sorted(allowed[mod])) or "none"),
                )

    @staticmethod
    def find_cycle(allowed: Dict[str, set]) -> Optional[List[str]]:
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def dfs(mod: str, path: List[str]) -> Optional[List[str]]:
            state[mod] = 1
            path.append(mod)
            for dep in sorted(allowed.get(mod, ())):
                if dep not in allowed:
                    continue
                if state.get(dep) == 1:
                    return path[path.index(dep):] + [dep]
                if state.get(dep) is None:
                    found = dfs(dep, path)
                    if found:
                        return found
            path.pop()
            state[mod] = 2
            return None

        for mod in sorted(allowed):
            if state.get(mod) is None:
                found = dfs(mod, [])
                if found:
                    return found
        return None


@register
class StaleSuppressionCheck(Check):
    """A ``// lvplint: allow(...)`` whose check no longer fires on
    its line is worse than dead weight: the justification keeps
    describing a hazard that is gone, and if the hazard ever comes
    back in a different form the stale blanket hides it.  This check
    re-derives every *raw* (pre-suppression) finding and flags each
    well-formed suppression that covers none of them.  Malformed
    suppressions (no justification, unknown check-id) are already
    findings of class ``suppression`` and are skipped here."""

    check_id = "stale-suppression"
    description = (
        "every lvplint suppression still matches a finding on its "
        "target line"
    )

    def run(self, tree: Tree) -> Iterator[Finding]:
        # Driven by run_checks(), which hands in the raw findings of
        # every other check; standalone run() has nothing to compare
        # against.
        return iter(())

    def run_with_raw(
        self, tree: Tree, raw: List[Finding]
    ) -> Iterator[Finding]:
        hits: Dict[Tuple[str, str], set] = {}
        for f in raw:
            hits.setdefault((f.path, f.check), set()).add(f.line)
        known = {c.check_id for c in CHECKS}
        for sf in tree.files:
            for s in sf.suppressions:
                if not s.justification:
                    continue
                if any(c not in known for c in s.checks):
                    continue
                for c in s.checks:
                    lines = hits.get((sf.relpath, c), set())
                    if {s.line, s.target} & lines:
                        continue
                    yield Finding(
                        sf.relpath, s.line, self.check_id,
                        "suppression for '%s' matches no finding on "
                        "line %d; the check would not fire here — "
                        "delete the stale allow()" % (c, s.target),
                    )


# ---------------------------------------------------------------------------
# Driver


def collect_files(root: str) -> List[SourceFile]:
    files: List[SourceFile] = []
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            rel_dir = os.path.relpath(dirpath, root)
            if "lint_fixtures" in rel_dir.split(os.sep):
                # Fixtures *below this root* contain seeded
                # violations by design; they are linted one at a
                # time via --root (which may itself be a fixture).
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                files.append(SourceFile(path, rel))
    return files


def apply_suppressions(
    tree: Tree, findings: List[Finding]
) -> List[Finding]:
    by_path = {sf.relpath: sf for sf in tree.files}
    kept = []
    for f in findings:
        sf = by_path.get(f.path)
        if sf is not None and sf.suppressed(f.check, f.line):
            continue
        kept.append(f)
    # Malformed suppressions are findings themselves: a justification
    # is mandatory, and the check-id must exist.
    known = {c.check_id for c in CHECKS}
    for sf in tree.files:
        for s in sf.suppressions:
            if not s.justification:
                kept.append(
                    Finding(
                        sf.relpath, s.line, "suppression",
                        "suppression without justification; write "
                        "`// lvplint: allow(%s) -- <why this is "
                        "sound>`" % ", ".join(s.checks),
                    )
                )
            for c in s.checks:
                if c not in known:
                    kept.append(
                        Finding(
                            sf.relpath, s.line, "suppression",
                            "unknown check-id %r in suppression "
                            "(known: %s)" % (c, ", ".join(sorted(known))),
                        )
                    )
    return sorted(kept)


def run_checks(root: str, only: Optional[List[str]]) -> List[Finding]:
    tree = Tree(root, collect_files(root))
    # Two phases: every ordinary check runs unconditionally (their
    # raw, pre-suppression findings are what stale-suppression
    # compares the tree's allow() comments against), then --check
    # filters what is reported.  The whole pass is milliseconds, so
    # always running phase 1 costs nothing and keeps staleness exact.
    stale = next(
        c for c in CHECKS if isinstance(c, StaleSuppressionCheck)
    )
    raw: List[Finding] = []
    for check in CHECKS:
        if check is stale:
            continue
        raw.extend(check.run(tree))
    findings = [f for f in raw if not only or f.check in only]
    if not only or stale.check_id in only:
        findings.extend(stale.run_with_raw(tree, raw))
    return apply_suppressions(tree, findings)


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="lvplint", description=__doc__.splitlines()[0]
    )
    ap.add_argument(
        "--root",
        default=os.path.normpath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "..", "..")
        ),
        help="tree to lint (default: the repo containing this script)",
    )
    ap.add_argument(
        "--check",
        action="append",
        metavar="ID",
        help="run only this check (repeatable)",
    )
    ap.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON on stdout",
    )
    ap.add_argument(
        "--list-checks", action="store_true",
        help="list check ids and exit",
    )
    ap.add_argument(
        "--expect",
        metavar="ID",
        help="fixture mode: succeed iff there is at least one finding "
        "and every finding has this check-id",
    )
    ap.add_argument(
        "--expect-clean",
        action="store_true",
        help="fixture mode: succeed iff there are no findings",
    )
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print("%-16s %s" % (c.check_id, c.description))
        return 0

    # "suppression" is the framework's own finding class (malformed
    # `lvplint: allow` comments), valid for --expect but not --check.
    known = {c.check_id for c in CHECKS} | {"suppression"}
    for cid in (args.check or []) + ([args.expect] if args.expect else []):
        if cid not in known:
            print("lvplint: unknown check id %r" % cid, file=sys.stderr)
            return 2

    findings = run_checks(args.root, args.check)

    if args.json:
        doc = {
            "schema_version": 1,
            "tool": "lvplint",
            "root": args.root,
            "checks": sorted(
                c.check_id
                for c in CHECKS
                if not args.check or c.check_id in args.check
            ),
            "findings": [
                {
                    "file": f.path,
                    "line": f.line,
                    "check": f.check,
                    "message": f.message,
                }
                for f in findings
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=False))
    else:
        for f in findings:
            print("%s:%d: [%s] %s" % (f.path, f.line, f.check, f.message))
        if findings:
            print(
                "lvplint: %d finding%s"
                % (len(findings), "" if len(findings) == 1 else "s"),
                file=sys.stderr,
            )

    if args.expect_clean:
        if findings:
            print(
                "lvplint: expected a clean tree, got %d finding(s)"
                % len(findings),
                file=sys.stderr,
            )
            return 1
        return 0
    if args.expect:
        bad = [f for f in findings if f.check != args.expect]
        if not findings:
            print(
                "lvplint: expected at least one [%s] finding, got none"
                % args.expect,
                file=sys.stderr,
            )
            return 1
        if bad:
            print(
                "lvplint: expected only [%s] findings, also got: %s"
                % (args.expect, ", ".join(sorted({f.check for f in bad}))),
                file=sys.stderr,
            )
            return 1
        return 0

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
