#!/usr/bin/env python3
"""Unit tests for lvplint's cross-TU project model (include-graph
resolution, class member/mutex indexing) and the pieces of the v2
checks that are easiest to get subtly wrong (guard classification,
manifest cycle detection).

The fixture tree lives in tests/lint_fixtures/project_model/ and is
consumed only here — the ``--expect`` ctests pin the end-to-end
behavior of each check, this file pins the model they share.

Run directly (``python3 tools/lint/test_lvplint.py``) or via the
``lvplint_project_model`` ctest (label ``lint``).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lvplint  # noqa: E402  (path set up above)

REPO = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)
FIXTURE = os.path.join(REPO, "tests", "lint_fixtures", "project_model")


def build():
    tree = lvplint.Tree(FIXTURE, lvplint.collect_files(FIXTURE))
    return tree, lvplint.project_model(tree)


class IncludeGraphTest(unittest.TestCase):
    def test_src_rooted_include_resolves(self):
        _, model = build()
        refs = {
            r.spec: r.resolved
            for r in model.includes["src/sim/cache.hh"]
        }
        self.assertEqual(refs["common/base.hh"], "src/common/base.hh")

    def test_directory_relative_include_resolves(self):
        _, model = build()
        refs = {
            r.spec: r.resolved
            for r in model.includes["src/sim/cache.hh"]
        }
        self.assertEqual(
            refs["cache_support.hh"], "src/sim/cache_support.hh"
        )

    def test_external_include_stays_unresolved(self):
        _, model = build()
        refs = {
            r.spec: r.resolved
            for r in model.includes["src/sim/cache.hh"]
        }
        self.assertIsNone(refs["vendor/not_in_tree.hh"])

    def test_model_is_cached_per_tree(self):
        tree, model = build()
        self.assertIs(lvplint.project_model(tree), model)


class MemberIndexTest(unittest.TestCase):
    def cache_class(self):
        _, model = build()
        for ci in model.classes:
            if ci.name == "Cache":
                return ci
        self.fail("class 'Cache' not indexed")

    def test_member_kinds(self):
        ci = self.cache_class()
        kinds = {m.name: m.kind for m in ci.members}
        self.assertEqual(
            kinds,
            {
                "mx": "mutex",
                "ready": "cv",
                "table": "plain",
                "hits": "atomic",
                "init": "once",
                "capacity": "plain",
                "scratch": "plain",
            },
        )

    def test_guard_extraction_survives_annotation_parens(self):
        # GUARDED_BY(mx) puts parentheses in the declaration; the
        # state-snapshot scanner would drop it as a function, the
        # project-model scanner must keep it and record the guard.
        ci = self.cache_class()
        guards = {m.name: m.guards for m in ci.members}
        self.assertEqual(guards["table"], ("mx",))
        self.assertEqual(guards["scratch"], ())

    def test_methods_are_not_members(self):
        ci = self.cache_class()
        self.assertNotIn(
            "lookup", [m.name for m in ci.members]
        )

    def test_lock_discipline_flags_exactly_the_unguarded_member(self):
        ci = self.cache_class()
        check = lvplint.LockDisciplineCheck()
        findings = list(check.check_class(ci))
        self.assertEqual(len(findings), 1)
        self.assertIn("'scratch'", findings[0].message)
        # const members are immutable after construction: exempt.
        self.assertNotIn("'capacity'", findings[0].message)


class ModuleOfTest(unittest.TestCase):
    def test_src_paths_map_to_their_module(self):
        self.assertEqual(lvplint.module_of("src/sim/cache.hh"), "sim")
        self.assertEqual(
            lvplint.module_of("src/common/base.hh"), "common"
        )

    def test_non_src_paths_have_no_module(self):
        self.assertIsNone(lvplint.module_of("tests/test_qa.cc"))
        self.assertIsNone(lvplint.module_of("src/CMakeLists.txt"))


class ManifestCycleTest(unittest.TestCase):
    def test_cycle_detected(self):
        cyc = lvplint.LayeringCheck.find_cycle(
            {"a": {"b"}, "b": {"c"}, "c": {"a"}}
        )
        self.assertIsNotNone(cyc)
        self.assertEqual(cyc[0], cyc[-1])

    def test_dag_is_clean(self):
        self.assertIsNone(
            lvplint.LayeringCheck.find_cycle(
                {"a": set(), "b": {"a"}, "c": {"a", "b"}}
            )
        )


class LiveManifestTest(unittest.TestCase):
    def test_repo_manifest_is_an_acyclic_superset_of_live_edges(self):
        # The repo's own manifest must parse, be a DAG, and admit the
        # tree as it stands — run_checks on the repo root is the
        # end-to-end gate, but this pins the manifest file itself.
        findings = [
            f
            for f in lvplint.run_checks(REPO, ["layering"])
            if f.check == "layering"
        ]
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
