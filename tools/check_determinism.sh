#!/bin/sh
# Regression gate for the parallel suite runner: a suite run at
# --jobs 4 must produce byte-identical per-workload results to
# --jobs 1. Only the timing fields (wall_seconds / base_seconds /
# vp_seconds / checkpoint_seconds), the recorded jobs count, the
# progress-hook tally (progress_instructions — sampled on a
# wall-clock cadence, so run-dependent by design), and the per-trace
# metadata (trace_format / trace_instructions — stable run-to-run,
# but stripped so this gate also diffs cleanly against JSON written
# before those fields existed), and the checkpoint-store traffic
# counters (store_hits / store_misses / store_seconds — the second
# run hits entries the first published) may differ — those lines are
# stripped
# before the diff (the schema pretty-prints one field per line
# precisely so this filter stays a one-liner; see
# docs/results_schema.md).
#
# Usage: check_determinism.sh <path-to-lvpsim_cli> [workdir]
# Wired into ctest as `suite_determinism` (tools/CMakeLists.txt).
set -eu

CLI=${1:?usage: check_determinism.sh <lvpsim_cli> [workdir]}
DIR=${2:-$(mktemp -d)}
mkdir -p "$DIR"
INSTRS=${LVPSIM_CHECK_INSTRS:-10000}

export LVPSIM_SUITE=${LVPSIM_SUITE:-smoke}

"$CLI" --suite --predictor composite --instrs "$INSTRS" \
       --jobs 1 --json "$DIR/jobs1.json" > /dev/null
"$CLI" --suite --predictor composite --instrs "$INSTRS" \
       --jobs 4 --json "$DIR/jobs4.json" > /dev/null

strip_timing() {
    grep -vE '"(wall_seconds|base_seconds|vp_seconds|checkpoint_seconds|jobs|trace_format|trace_instructions|progress_instructions|store_hits|store_misses|store_seconds)"' "$1"
}

strip_timing "$DIR/jobs1.json" > "$DIR/jobs1.stripped"
strip_timing "$DIR/jobs4.json" > "$DIR/jobs4.stripped"

if diff -u "$DIR/jobs1.stripped" "$DIR/jobs4.stripped"; then
    echo "OK: --jobs 1 and --jobs 4 results are identical" \
         "($LVPSIM_SUITE suite, $INSTRS instructions)"
else
    echo "FAIL: parallel suite run diverged from serial run" >&2
    exit 1
fi
