/**
 * @file
 * lvpsim command-line driver: run any workload against any predictor
 * configuration without writing code.
 *
 *   lvpsim_cli --list
 *   lvpsim_cli --workload pointer_chase --predictor composite \
 *              --entries 1024 --am pc --smart --fusion
 *   lvpsim_cli --workload stream_sum --predictor sap --entries 512
 *   lvpsim_cli --workload hash_probe --classify
 *   lvpsim_cli --suite --jobs 8 --json results.json
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <fstream>

#include "core/composite.hh"
#include "core/eves.hh"
#include "core/oracle.hh"
#include "sim/checkpoint_store.hh"
#include "sim/cvp1.hh"
#include "sim/experiment.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/results_json.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/kernel_spec.hh"
#include "trace/trace_io.hh"
#include "trace/trace_spec.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

struct CliOptions
{
    std::string workload = "memset_loop";
    std::string predictor = "composite";
    std::size_t entries = 1024;
    std::size_t instrs = 0;
    std::size_t warmup = 0;
    std::size_t sampleK = 0;
    std::size_t intervalLen = 0;
    std::uint64_t progress = 0;
    std::string am = "none";
    bool smart = false;
    bool fusion = false;
    bool classify = false;
    bool list = false;
    bool verbose = false;
    std::uint64_t seed = 1;
    std::string saveTrace;
    std::string saveCvp;
    std::string loadTrace;
    std::string traceFile;
    std::string traceFormat = "auto";
    bool championship = false;
    bool suite = false;
    std::size_t jobs = 1;
    std::string jsonPath;
    std::string storeDir; ///< --store; "" = env / default resolution
    bool storeSet = false;
    std::uint64_t storeMaxBytes = 0;
};

void
usage()
{
    std::cout <<
        "lvpsim_cli - load value prediction simulator driver\n\n"
        "  --list                 list available workloads\n"
        "  --workload <name>      workload to run\n"
        "  --predictor <p>        none|composite|lvp|sap|cvp|cap|\n"
        "                         eves8k|eves32k|evesinf\n"
        "  --entries <n>          total predictor entries\n"
        "  --instrs <n>           instructions (default "
        "LVPSIM_INSTRS or 150000)\n"
        "  --warmup <n>           warmup instructions before "
        "measurement (VP disabled;\n"
        "                         default LVPSIM_WARMUP or 0)\n"
        "  --sample <k>           sampled simulation "
        "(docs/sampling.md): simulate only\n"
        "                         k representative intervals and "
        "extrapolate\n"
        "  --interval-len <n>     sampling interval length in "
        "instructions\n"
        "                         (default 100000)\n"
        "  --progress <n>         print a progress line every n "
        "committed\n"
        "                         instructions (stderr; default "
        "off)\n"
        "  --am none|m|pc|pcinf   accuracy monitor (composite only)\n"
        "  --smart                enable smart training\n"
        "  --fusion               enable table fusion\n"
        "  --classify             print the oracle load-pattern "
        "breakdown and exit\n"
        "  --suite                run the whole workload suite "
        "(LVPSIM_SUITE) with the\n"
        "                         configured predictor vs the no-VP "
        "baseline\n"
        "  --jobs <n|auto>        worker threads for --suite "
        "(default 1; auto = cores)\n"
        "  --json <file>          write results in the schema of "
        "docs/results_schema.md\n"
        "  --store <dir|off>      persistent checkpoint store "
        "(docs/performance.md;\n"
        "                         default LVPSIM_STORE, else "
        "~/.cache/lvpsim)\n"
        "  --store-max-bytes <n>  LRU size budget for --store "
        "(default\n"
        "                         LVPSIM_STORE_MAX_BYTES or "
        "unlimited)\n"
        "  --seed <n>             trace seed\n"
        "  --save-trace <file>    write the workload trace (.lvpt)\n"
        "  --save-cvp <file>      export the trace in CVP-1 format\n"
        "                         (.gz suffix = gzip-compressed)\n"
        "  --load-trace <file>    run a saved trace instead of a\n"
        "                         generated workload\n"
        "  --trace <file>         run a trace file (see "
        "--trace-format)\n"
        "  --trace-format <f>     auto|lvpt|cvp (default auto: "
        "sniff the\n"
        "                         LVPT magic, else CVP-1)\n"
        "  --championship         score the predictor through the "
        "CVP-1\n"
        "                         championship API instead of the "
        "pipeline\n"
        "                         (adds predictor 'tagged-lvp')\n"
        "  --verbose              dump full run statistics\n\n"
        "  --workload also accepts trace specs: NAME (synthetic "
        "kernel),\n"
        "  lvpt:PATH, cvp:PATH (see docs/traces.md), and kernel "
        "specs like\n"
        "  'synth:[iters=100]stride(wset=400),const(v=0x42)' "
        "(see docs/kernel_dsl.md)\n";
}

bool
parse(int argc, char **argv, CliOptions &o)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--list")
            o.list = true;
        else if (a == "--workload")
            o.workload = next("--workload");
        else if (a == "--predictor")
            o.predictor = next("--predictor");
        else if (a == "--entries")
            o.entries = std::size_t(atoll(next("--entries")));
        else if (a == "--instrs")
            o.instrs = std::size_t(atoll(next("--instrs")));
        else if (a == "--warmup")
            o.warmup = std::size_t(atoll(next("--warmup")));
        else if (a == "--sample")
            o.sampleK = std::size_t(atoll(next("--sample")));
        else if (a == "--interval-len")
            o.intervalLen =
                std::size_t(atoll(next("--interval-len")));
        else if (a == "--progress")
            o.progress = std::uint64_t(atoll(next("--progress")));
        else if (a == "--am")
            o.am = next("--am");
        else if (a == "--smart")
            o.smart = true;
        else if (a == "--fusion")
            o.fusion = true;
        else if (a == "--classify")
            o.classify = true;
        else if (a == "--suite")
            o.suite = true;
        else if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, o.jobs)) {
                std::cerr << "bad --jobs value '" << v
                          << "' (want a count or 'auto')\n";
                std::exit(2);
            }
        } else if (a == "--json")
            o.jsonPath = next("--json");
        else if (a == "--store") {
            o.storeDir = next("--store");
            o.storeSet = true;
        } else if (a == "--store-max-bytes")
            o.storeMaxBytes =
                std::uint64_t(atoll(next("--store-max-bytes")));
        else if (a == "--seed")
            o.seed = std::uint64_t(atoll(next("--seed")));
        else if (a == "--save-trace")
            o.saveTrace = next("--save-trace");
        else if (a == "--save-cvp")
            o.saveCvp = next("--save-cvp");
        else if (a == "--load-trace")
            o.loadTrace = next("--load-trace");
        else if (a == "--trace")
            o.traceFile = next("--trace");
        else if (a == "--trace-format")
            o.traceFormat = next("--trace-format");
        else if (a == "--championship")
            o.championship = true;
        else if (a == "--verbose")
            o.verbose = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << a << "'\n";
            return false;
        }
    }
    return true;
}

std::unique_ptr<pipe::LoadValuePredictor>
makePredictor(const CliOptions &o, std::size_t instrs)
{
    if (o.predictor == "none")
        return std::make_unique<pipe::NullPredictor>();
    if (o.predictor == "lvp")
        return vp::makeSinglePredictor(pipe::ComponentId::LVP,
                                       o.entries);
    if (o.predictor == "sap")
        return vp::makeSinglePredictor(pipe::ComponentId::SAP,
                                       o.entries);
    if (o.predictor == "cvp")
        return vp::makeSinglePredictor(pipe::ComponentId::CVP,
                                       o.entries);
    if (o.predictor == "cap")
        return vp::makeSinglePredictor(pipe::ComponentId::CAP,
                                       o.entries);
    if (o.predictor == "eves8k")
        return std::make_unique<vp::EvesPredictor>(
            vp::EvesConfig::small8k());
    if (o.predictor == "eves32k")
        return std::make_unique<vp::EvesPredictor>(
            vp::EvesConfig::large32k());
    if (o.predictor == "evesinf")
        return std::make_unique<vp::EvesPredictor>(
            vp::EvesConfig::infinite());
    if (o.predictor == "composite") {
        vp::CompositeConfig cfg =
            vp::CompositeConfig::homogeneous(o.entries);
        if (o.am == "m")
            cfg.am = vp::AmKind::MAm;
        else if (o.am == "pc")
            cfg.am = vp::AmKind::PcAm;
        else if (o.am == "pcinf")
            cfg.am = vp::AmKind::PcAmInfinite;
        cfg.smartTraining = o.smart;
        cfg.tableFusion = o.fusion;
        cfg.epochInstrs = std::max<std::size_t>(2000, instrs / 40);
        return std::make_unique<vp::CompositePredictor>(cfg);
    }
    std::cerr << "unknown predictor '" << o.predictor << "'\n";
    std::exit(2);
}

/** Sniff a trace file's format: the LVPT magic means a recorded
 *  binary, anything else (including gzip) is treated as CVP-1. */
std::string
sniffTraceFormat(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    char m[4] = {0, 0, 0, 0};
    is.read(m, 4);
    if (is.gcount() == 4 && std::memcmp(m, "LVPT", 4) == 0)
        return "lvpt";
    return "cvp";
}

/** Write a results document; false (after complaining) on error. */
bool
emitJson(const CliOptions &o, const sim::RunConfig &rc,
         const std::vector<sim::SuiteResult> &suites,
         const std::string &suite_name)
{
    sim::ReportMeta meta;
    meta.jobs = o.jobs;
    meta.maxInstrs = rc.maxInstrs;
    meta.warmupInstrs = rc.warmupInstrs;
    meta.traceSeed = rc.traceSeed;
    meta.sampleK = rc.sampleK;
    meta.intervalLen = rc.sampleK ? rc.sampleIntervalLen : 0;
    meta.progressInstrs = o.progress;
    meta.suite = suite_name;
    const auto &store = sim::CheckpointStore::instance();
    meta.storeHits = store.hits();
    meta.storeMisses = store.misses();
    meta.storeSeconds = store.seconds();
    std::string err;
    if (!sim::writeResultsFile(o.jsonPath, suites, meta, &err)) {
        std::cerr << err << "\n";
        return false;
    }
    std::cout << "results: " << o.jsonPath << "\n";
    return true;
}

/** --suite: the full workload suite, baseline vs configured
 *  predictor, optionally fanned out over --jobs workers. */
int
runSuite(const CliOptions &o, const sim::RunConfig &rc)
{
    const auto workloads = sim::suiteFromEnv();
    sim::SuiteRunner runner(workloads, rc, o.jobs);
    const auto res = runner.run(
        o.predictor, [&] { return makePredictor(o, rc.maxInstrs); });

    sim::TextTable t(
        {"workload", "base_ipc", "vp_ipc", "speedup", "coverage",
         "accuracy"});
    for (const auto &r : res.rows)
        t.addRow({r.workload, sim::fmtF(r.base.ipc()),
                  sim::fmtF(r.withVp.ipc()),
                  sim::fmtPct(r.speedup()),
                  sim::fmtPct(r.coverage()),
                  sim::fmtPct(r.accuracy())});
    t.print(std::cout);
    std::cout << "suite:      " << workloads.size()
              << " workloads x " << rc.maxInstrs
              << " instructions, jobs " << o.jobs;
    if (rc.warmupInstrs)
        std::cout << ", warmup " << rc.warmupInstrs;
    if (rc.sampleK)
        std::cout << ", sampled " << rc.sampleK << "x"
                  << rc.sampleIntervalLen;
    std::cout << "\n"
              << "predictor:  " << o.predictor << " ("
              << res.storageKB() << " KB)\n"
              << "geomean speedup: "
              << sim::fmtPct(res.geomeanSpeedup())
              << "   mean coverage: "
              << sim::fmtPct(res.meanCoverage())
              << "   mean accuracy: "
              << sim::fmtPct(res.meanAccuracy()) << "\n"
              << "wall clock: " << sim::fmtF(res.wallSeconds)
              << "s\n";
    if (!o.jsonPath.empty() &&
        !emitJson(o, rc, {res},
                  std::getenv("LVPSIM_SUITE") ? std::getenv("LVPSIM_SUITE")
                                              : "full"))
        return 2;
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliOptions o;
    if (!parse(argc, argv, o)) {
        usage();
        return 2;
    }

    if (o.list) {
        for (const auto &info :
             trace::WorkloadRegistry::instance().all())
            std::cout << "  " << info.name << "  -  "
                      << info.description << "\n";
        return 0;
    }
    sim::RunConfig rc;
    rc.maxInstrs = o.instrs ? o.instrs : sim::instrsFromEnv(150000);
    rc.warmupInstrs = o.warmup ? o.warmup : sim::warmupFromEnv();
    rc.traceSeed = o.seed;
    rc.sampleK = o.sampleK;
    if (o.intervalLen)
        rc.sampleIntervalLen = o.intervalLen;
    if (rc.sampleK && rc.warmupInstrs) {
        std::cerr << "--sample replaces --warmup with functional "
                     "fast-forward; use one or the other\n";
        return 2;
    }
    sim::setProgressReportEvery(o.progress);

    // Point the process-wide checkpoint store (docs/performance.md):
    // --store wins, then $LVPSIM_STORE, then ~/.cache/lvpsim; "off"
    // disables. An unusable directory silently disables.
    {
        std::uint64_t budget = o.storeMaxBytes;
        if (budget == 0)
            if (const char *e = std::getenv("LVPSIM_STORE_MAX_BYTES"))
                budget = std::uint64_t(atoll(e));
        sim::CheckpointStore::instance().configure(
            sim::CheckpointStore::resolveDir(
                o.storeSet ? o.storeDir : ""),
            budget);
    }

    if (o.suite)
        return runSuite(o, rc);

    // Resolve the workload spec (see docs/traces.md): --trace FILE
    // (format sniffed or forced) takes precedence; --load-trace is
    // the historical spelling of --trace --trace-format lvpt;
    // otherwise --workload is itself a spec (bare kernel name,
    // lvpt:PATH or cvp:PATH).
    std::string spec = o.workload;
    if (!o.traceFile.empty()) {
        std::string fmt = o.traceFormat;
        if (fmt == "auto")
            fmt = sniffTraceFormat(o.traceFile);
        if (fmt != "lvpt" && fmt != "cvp") {
            std::cerr << "bad --trace-format '" << o.traceFormat
                      << "' (want auto, lvpt or cvp)\n";
            return 2;
        }
        spec = fmt + ":" + o.traceFile;
    } else if (!o.loadTrace.empty()) {
        spec = "lvpt:" + o.loadTrace;
    }

    const trace::TraceSpec parsed = trace::parseTraceSpec(spec);
    if (parsed.kind == trace::TraceKind::Synthetic) {
        if (!trace::WorkloadRegistry::instance().contains(
                parsed.name)) {
            if (trace::looksLikeKernelSpec(parsed.name)) {
                // A kernel-spec workload (docs/kernel_dsl.md):
                // validate up front for a friendly error.
                std::string err;
                trace::parseKernelSpec(parsed.name, &err);
                if (!err.empty()) {
                    std::cerr << "bad kernel spec '" << parsed.name
                              << "': " << err << "\n";
                    return 2;
                }
            } else {
                std::cerr << "unknown workload '" << parsed.name
                          << "' (use --list, or a kernel spec; "
                             "see docs/kernel_dsl.md)\n";
                return 2;
            }
        }
    } else {
        // Probe the file up front for a friendly error (TraceCache
        // would fatal() instead). A one-record bound keeps the
        // probe cheap for large CVP traces.
        std::string err;
        if (!trace::openTraceSource(parsed, 1, rc.traceSeed, &err)) {
            std::cerr << "cannot load trace '" << parsed.name
                      << "': " << err << "\n";
            return 2;
        }
    }

    // The trace covers the warmup region plus the measured region
    // (runTrace simulates the warmup inline); file-backed traces are
    // truncated to that budget.
    const auto ops = sim::TraceCache::instance().get(
        spec, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
    const std::string source = spec;

    if (!o.saveTrace.empty()) {
        if (!trace::saveTraceFile(o.saveTrace, *ops)) {
            std::cerr << "cannot write " << o.saveTrace << "\n";
            return 2;
        }
        std::cout << "wrote " << ops->size() << " ops to "
                  << o.saveTrace << "\n";
    }
    if (!o.saveCvp.empty()) {
        const bool gz = o.saveCvp.size() > 3 &&
                        o.saveCvp.compare(o.saveCvp.size() - 3, 3,
                                          ".gz") == 0;
        std::string err;
        if (!trace::saveCvpTraceFile(o.saveCvp, *ops, gz, &err)) {
            std::cerr << "cannot write " << o.saveCvp << ": " << err
                      << "\n";
            return 2;
        }
        std::cout << "wrote " << ops->size() << " ops to "
                  << o.saveCvp << " (CVP-1"
                  << (gz ? ", gzip" : "") << ")\n";
    }

    if (o.classify) {
        const auto b = vp::classifyLoadPatterns(*ops);
        std::cout << source << ": pattern1 " << 100.0 * b.frac1()
                  << "%  pattern2 " << 100.0 * b.frac2()
                  << "%  pattern3 " << 100.0 * b.frac3() << "%  ("
                  << b.total() << " loads)\n";
        return 0;
    }

    if (o.championship) {
        // Score through the cvp.h-style callback contract instead of
        // the cycle-level pipeline.
        std::unique_ptr<pipe::LoadValuePredictor> inner;
        std::unique_ptr<cvp1::Predictor> champ;
        if (o.predictor == "tagged-lvp") {
            champ = std::make_unique<cvp1::TaggedLvpChampion>();
        } else {
            inner = makePredictor(o, rc.maxInstrs);
            champ = std::make_unique<cvp1::PipelineVpAdapter>(*inner);
        }
        const auto cs = cvp1::runChampionship(*ops, *champ);
        std::cout << "workload:    " << source << "\n"
                  << "predictor:   " << champ->name()
                  << " (championship API, "
                  << double(champ->storageBits()) / 8192.0
                  << " KB)\n"
                  << "instructions: " << cs.instructions << "\n"
                  << "eligible loads: " << cs.eligibleLoads << "\n"
                  << "predicted:   " << cs.predicted << "  (correct "
                  << cs.correct << ", incorrect " << cs.incorrect
                  << ")\n"
                  << "coverage:    " << 100.0 * cs.coverage()
                  << "%\n"
                  << "accuracy:    " << 100.0 * cs.accuracy()
                  << "%\n";
        return 0;
    }

    // Sampled single runs go through the sampled driver; full runs
    // keep the historical inline path.
    pipe::NullPredictor none;
    auto pred = makePredictor(o, rc.maxInstrs);
    pipe::SimStats base, s;
    sim::SampledRunResult sampledVp;
    if (rc.sampleK) {
        base = sim::runSampledWorkload(source, &none, rc).stats;
        sampledVp = sim::runSampledWorkload(source, pred.get(), rc);
        s = sampledVp.stats;
    } else {
        base = sim::runTrace(*ops, &none, rc);
        s = sim::runTrace(*ops, pred.get(), rc);
    }

    std::cout << "workload:   " << source << "  ("
              << rc.maxInstrs << " instructions)\n";
    if (rc.sampleK)
        std::cout << "sampled:    " << sampledVp.sampleK
                  << " intervals x " << sampledVp.intervalLen
                  << " instructions, error bound "
                  << 100.0 * sampledVp.sampleError << "%\n";
    std::cout << "predictor:  " << pred->name() << " ("
              << double(pred->storageBits()) / 8192.0 << " KB)\n"
              << "baseline:   " << base.ipc() << " IPC\n"
              << "predicted:  " << s.ipc() << " IPC\n"
              << "speedup:    "
              << 100.0 * (s.ipc() / base.ipc() - 1.0) << "%\n"
              << "coverage:   " << 100.0 * s.coverage() << "%\n"
              << "accuracy:   " << 100.0 * s.accuracy() << "%\n";
    if (o.verbose) {
        std::cout << "\n";
        s.dump(std::cout);
        pred->dumpStats(std::cout);
    }
    if (!o.jsonPath.empty()) {
        sim::SuiteResult res;
        res.label = pred->name();
        res.storageBits = pred->storageBits();
        sim::WorkloadResult row;
        row.workload = source;
        const auto tinfo = sim::TraceCache::instance().info(
            source, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
        row.traceFormat = tinfo.format;
        row.traceInstructions = tinfo.trace->size();
        row.base = base;
        row.withVp = s;
        if (rc.sampleK) {
            row.sampled = true;
            row.sampleError = sampledVp.sampleError;
            row.sampleK = sampledVp.sampleK;
            row.intervalLength = sampledVp.intervalLen;
            row.checkpointSeconds = sampledVp.checkpointSeconds;
        }
        row.storageBits = pred->storageBits();
        res.rows.push_back(std::move(row));
        if (!emitJson(o, rc, {res}, "single"))
            return 2;
    }
    return 0;
}
