/**
 * @file
 * Coverage-frontier sweep: composite predictor vs analytic ground
 * truth over a grid of kernel specs.
 *
 * For every spec in a fixed ≥64-point grid spanning the DSL's pattern
 * space (kind x working-set size x fill x mix x glue x phase
 * schedule), the tool:
 *
 *   1. generates the trace and its analytic TruthProfile
 *      (trace::computeTruthProfile),
 *   2. replays the ideal per-PC family oracles over the same ops
 *      (qa::measureIdealFamilies),
 *   3. runs the composite predictor through the cycle-level pipeline
 *      (sim::runTrace) and, separately, through the championship
 *      cvp.h harness (cvp1::runChampionship),
 *
 * and reports, per spec, the gap between the five-family oracle
 * union and the composite's realized pipeline coverage. Rows whose
 * gap exceeds the --gap threshold are flagged as breakdowns — specs
 * the predictor *could* capture (some ideal family does) but does
 * not. Two such breakdowns (a finite-context loop and a browser-like
 * phase mix) are pinned as regression tests in
 * tests/test_kernel_spec.cc.
 *
 * The championship column is deliberately secondary: the cvp.h
 * callback API has no memory access, so SAP-style predictions
 * (predictable address, value fetched from memory) can never be
 * realized there — stride workloads with distinct values score zero
 * by construction. The pipeline column is the predictor's real
 * capability; the spread between the two columns measures exactly
 * that API limitation.
 *
 * Output is deterministic JSON (sim::JsonValue preserves insertion
 * order); the schema is documented in docs/kernel_dsl.md.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/composite.hh"
#include "qa/spec_oracles.hh"
#include "sim/cvp1.hh"
#include "sim/json.hh"
#include "sim/simulator.hh"
#include "trace/kernel_spec.hh"
#include "trace/spec_truth.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

/**
 * The sweep grid: canonical-ish spec texts covering every pattern
 * kind, several working-set decades, both fill modes, all three mix
 * strategies, the glue variants, weights, and multi-phase schedules.
 */
std::vector<std::string>
buildGrid()
{
    std::vector<std::string> g;
    const auto n = [](std::uint64_t v) { return std::to_string(v); };

    // Working-set sweeps per kind, seq and rng fills.
    for (std::uint64_t w : {64u, 512u, 4096u, 32768u})
        for (const char *fill : {"", ",fill=rng"})
            g.push_back("[iters=" + n(w) + "]stride(wset=" + n(w) +
                        fill + ")");
    for (std::uint64_t p : {2u, 8u, 64u, 1024u})
        for (const char *fill : {"", ",fill=rng"})
            g.push_back("[iters=256]ctx(period=" + n(p) + fill + ")");
    for (std::uint64_t k : {2u, 16u, 256u, 4096u})
        for (const char *fill : {"", ",fill=rng"})
            g.push_back("[iters=256]pick(k=" + n(k) + fill + ")");
    for (std::uint64_t w : {48u, 256u, 1024u, 4096u})
        for (const char *ord : {"", ",order=shuffle"})
            g.push_back("[iters=" + n(w) + "]chase(wset=" + n(w) +
                        ord + ")");
    g.push_back("[iters=256]const()");
    g.push_back("[iters=256]const(),const(v=0x42,glue=xor)");

    // Mix strategies over two-stream phases.
    for (const char *mix : {"", ",mix=rr", ",mix=rand"})
        for (std::uint64_t w : {256u, 4096u}) {
            g.push_back("[iters=" + n(w) + mix + "]stride(wset=" +
                        n(w) + "),pick(k=64)");
            g.push_back("[iters=256" + std::string(mix) +
                        "]ctx(period=32),const(v=0x7777)");
        }

    // Glue variants (dependent-op flavor between loads).
    for (const char *glue : {"xor", "fadd", "none"}) {
        g.push_back("[iters=512]stride(wset=512,glue=" +
                    std::string(glue) + ")");
        g.push_back("[iters=256]ctx(period=16,glue=" +
                    std::string(glue) + ")");
        g.push_back("[iters=256]pick(k=32,glue=" + std::string(glue) +
                    ")");
    }

    // 32-bit loads and weighted (unrolled) streams.
    g.push_back("[iters=512]stride(wset=512,esz=4)");
    g.push_back("[iters=256]ctx(period=64,esz=4)");
    g.push_back("[iters=256]pick(k=256,esz=4)");
    g.push_back("[iters=256]const()*4");
    g.push_back("[iters=128]stride(wset=512,step=16)*4");
    g.push_back("[iters=256]pick(k=16)*8");

    // Phase schedules: regime changes the predictor must relearn.
    g.push_back("[iters=512]stride(wset=512);"
                "[iters=256]pick(k=256,fill=rng)");
    g.push_back("[iters=256]const();[iters=256]ctx(period=64)");
    g.push_back("[iters=96]chase(wset=48);[iters=512]stride(wset=512)");
    g.push_back("[iters=256]pick(k=2);[]pick(k=4096,fill=rng)");
    g.push_back("[iters=256]ctx(period=4);[iters=256]ctx(period=1024)");
    g.push_back("[iters=512]stride(wset=512,fill=rng);"
                "[]chase(wset=256,order=shuffle)");

    // Browser/JS-engine-like phase mixes: property lookups over a
    // large hash-shaped table (pick, rng fill) interleaved with
    // DOM-style pointer walks (chase), punctuated by GC-sweep
    // strides and inline-cache-hit bursts (const / short ctx).
    g.push_back("[iters=256,mix=rr]pick(k=512,fill=rng),"
                "chase(wset=256);[iters=512]stride(wset=4096)");
    g.push_back("[iters=96,mix=rand]ctx(period=8),"
                "pick(k=1024,fill=rng);"
                "[iters=128]chase(wset=128,order=shuffle);"
                "[iters=256]const(v=0x1)");
    g.push_back("[iters=128]stride(wset=1024,esz=4),const()*2;"
                "[iters=128,mix=rr]pick(k=64),ctx(period=32)");
    return g;
}

sim::JsonValue
familyJson(double hits, std::uint64_t loads)
{
    return sim::JsonValue(trace::truthFrac(hits, loads));
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--instrs N] [--seed N] [--gap F] [--limit N]\n"
        "          [--json FILE]\n"
        "Sweep the kernel-spec grid and report the oracle-union vs\n"
        "composite coverage gap per spec (docs/kernel_dsl.md).\n",
        argv0);
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t instrs = 30000;
    std::uint64_t seed = 1;
    double gapThreshold = 0.25;
    std::size_t limit = 0; // 0 = whole grid
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs an argument\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--instrs") {
            instrs = std::strtoull(need("--instrs"), nullptr, 0);
        } else if (a == "--seed") {
            seed = std::strtoull(need("--seed"), nullptr, 0);
        } else if (a == "--gap") {
            gapThreshold = std::strtod(need("--gap"), nullptr);
        } else if (a == "--limit") {
            limit = std::strtoull(need("--limit"), nullptr, 0);
        } else if (a == "--json") {
            jsonPath = need("--json");
        } else {
            return usage(argv[0]);
        }
    }

    std::vector<std::string> grid = buildGrid();
    lvp_assert(grid.size() >= 64,
               "frontier grid must span at least 64 specs");
    if (limit && grid.size() > limit)
        grid.resize(limit);

    sim::JsonValue doc = sim::JsonValue::object();
    doc.set("schema", "lvpsim-coverage-frontier-v1");
    doc.set("instrs", std::uint64_t(instrs));
    doc.set("seed", seed);
    doc.set("gap_threshold", gapThreshold);

    sim::JsonValue rows = sim::JsonValue::array();
    std::size_t breakdowns = 0;
    double maxGap = -1.0;
    std::string maxGapSpec;

    for (const std::string &text : grid) {
        std::string err;
        const trace::KernelSpec spec =
            trace::parseKernelSpec(text, &err);
        lvp_assert(err.empty(), "grid spec rejected");
        const std::string canon = trace::printKernelSpec(spec);

        const auto ops = trace::generateWorkload(canon, instrs, seed);
        const auto truth =
            trace::computeTruthProfile(spec, instrs, seed);
        const auto fam = qa::measureIdealFamilies(ops);

        auto cfg = vp::CompositeConfig::bestOf(1024);
        cfg.epochInstrs = 5000;

        // Primary: the cycle-level pipeline, where SAP can fetch the
        // value at its predicted address.
        sim::RunConfig rc;
        rc.maxInstrs = instrs;
        rc.traceSeed = seed;
        vp::CompositePredictor pipePred(cfg);
        const auto ps = sim::runTrace(ops, &pipePred, rc);

        // Secondary: the same design through the cvp.h callbacks.
        vp::CompositePredictor champPred(cfg);
        cvp1::PipelineVpAdapter adapter(champPred);
        const auto cs = cvp1::runChampionship(ops, adapter);

        const double gap = fam.unionFrac() - ps.coverage();
        const bool breakdown =
            gap >= gapThreshold && fam.loads >= 100;

        sim::JsonValue row = sim::JsonValue::object();
        row.set("spec", canon);
        row.set("ops", std::uint64_t(ops.size()));
        row.set("loads", fam.loads);

        sim::JsonValue t = sim::JsonValue::object();
        t.set("lvp", familyJson(truth.total.lvp.hits,
                                truth.total.loads));
        t.set("sap", familyJson(truth.total.sap.hits,
                                truth.total.loads));
        t.set("ctx", familyJson(truth.total.ctx.hits,
                                truth.total.loads));
        t.set("cap", familyJson(truth.total.cap.hits,
                                truth.total.loads));
        t.set("best", familyJson(truth.total.bestHits(),
                                 truth.total.loads));
        row.set("truth", std::move(t));

        sim::JsonValue m = sim::JsonValue::object();
        m.set("lvp", familyJson(double(fam.lvp), fam.loads));
        m.set("sap", familyJson(double(fam.sap), fam.loads));
        m.set("ctx1", familyJson(double(fam.ctx1), fam.loads));
        m.set("ctx8", familyJson(double(fam.ctx8), fam.loads));
        m.set("cap1", familyJson(double(fam.cap1), fam.loads));
        m.set("union", fam.unionFrac());
        row.set("measured", std::move(m));

        sim::JsonValue c = sim::JsonValue::object();
        c.set("coverage", ps.coverage());
        c.set("accuracy", ps.accuracy());
        c.set("correct", ps.predictionsCorrect);
        c.set("wrong", ps.predictionsWrong);
        c.set("eligible", ps.eligibleLoads);
        row.set("composite", std::move(c));

        sim::JsonValue ch = sim::JsonValue::object();
        ch.set("coverage", cs.coverage());
        ch.set("accuracy", cs.accuracy());
        ch.set("predicted", cs.predicted);
        ch.set("correct", cs.correct);
        row.set("championship", std::move(ch));

        row.set("gap", gap);
        row.set("breakdown", breakdown);
        rows.push(std::move(row));

        if (breakdown)
            ++breakdowns;
        if (gap > maxGap) {
            maxGap = gap;
            maxGapSpec = canon;
        }
    }
    doc.set("rows", std::move(rows));

    sim::JsonValue summary = sim::JsonValue::object();
    summary.set("specs", std::uint64_t(grid.size()));
    summary.set("breakdowns", std::uint64_t(breakdowns));
    summary.set("max_gap", maxGap);
    summary.set("max_gap_spec", maxGapSpec);
    doc.set("summary", std::move(summary));

    if (jsonPath.empty()) {
        doc.dump(std::cout);
        std::cout << "\n";
    } else {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        doc.dump(os);
        os << "\n";
        std::fprintf(stderr,
                     "%zu specs, %zu breakdowns, max gap %.3f (%s)\n",
                     grid.size(), breakdowns, maxGap,
                     maxGapSpec.c_str());
    }
    return 0;
}
