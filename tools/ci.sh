#!/bin/sh
# The pre-PR gate, in one command (documented in README.md):
#
#   configure -> build -> ctest (smoke + lint labels) -> spec fuzz
#   -> store reuse -> perf gates -> thread-safety tree -> lvplint
#   -> doc links -> strict doxygen
#
#   tools/ci.sh [build-dir]            default build dir: ./build
#
# Each gate is timed; the run ends with a wall-clock table so slow
# gates are visible at a glance.  The smoke label covers the fast
# correctness suites; the lint label covers lvplint (repo +
# fixtures), the formatting check and the thread-safety tree.  The
# final explicit lvplint run is belt-and-braces so the gate still
# bites when ctest filtering is misconfigured, and prints findings in
# the terminal where they are easiest to read.
#
# Extended gates (run before large or concurrency-touching PRs):
#   tools/run_sanitizers.sh       ASan+UBSan and TSan trees
#   ctest --test-dir build        the full 700+ test suite
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

timings=""

# gate NAME CMD...: run CMD under a banner and record its wall-clock.
gate() {
    _name="$1"
    shift
    echo "== $_name =="
    _t0=$(date +%s)
    "$@"
    _dt=$(( $(date +%s) - _t0 ))
    timings="${timings}${_name}\t${_dt}\n"
}

configure() {
    # compile_commands.json is exported by default (CMakeLists.txt);
    # clang-tidy and lvplint's project model read it from $build.
    cmake -B "$build" -S .
}

build_tree() { cmake --build "$build" -j"$(nproc)"; }

smoke_lint() {
    ctest --test-dir "$build" -L 'smoke|lint' --output-on-failure \
          -j"$(nproc)"
}

spec_fuzz() {
    ctest --test-dir "$build" -R 'SpecTruthFuzz|SpecShrink' \
          --output-on-failure -j"$(nproc)"
}

store_gate() {
    # Cross-process checkpoint-store reuse (docs/performance.md):
    # two fresh CLI processes run the same smoke sweep against one
    # empty store directory; the second must be served from the
    # entries the first published (store_hits > 0 in its JSON).
    _dir="$build/ci_store_gate"
    rm -rf "$_dir"
    mkdir -p "$_dir"
    for _run in first second; do
        LVPSIM_SUITE=smoke \
            "$build/tools/lvpsim_cli" --suite --instrs 8000 \
            --warmup 4000 --jobs 2 --store "$_dir/store" \
            --json "$_dir/$_run.json" >/dev/null
    done
    if grep -q '"store_hits": 0' "$_dir/second.json"; then
        echo "store gate: second fresh process had zero store hits" >&2
        grep '"store_' "$_dir/second.json" >&2
        return 1
    fi
    grep '"store_' "$_dir/second.json" | sed 's/^ *//;s/,$//'
}

perf_gates() {
    # The perf label runs the bench bit-rot smokes at toy scale plus
    # the three Release-only gates: perf_regression (floors vs every
    # committed BENCH_*.json), sampled_vs_full (sampling speedup +
    # error bounds vs full simulation, docs/sampling.md), and
    # store_speedup (fresh-process warm-store speedup,
    # docs/performance.md).
    cmake -S . --preset bench-release >/dev/null
    cmake --build build-release -j"$(nproc)"
    ctest --test-dir build-release -L perf --output-on-failure
}

thread_safety() {
    # Clang-only -Werror=thread-safety tree; skips (not fails) on
    # containers without clang++, same policy as the ctest gate.
    if sh tools/check_thread_safety.sh "$build-tsa"; then
        :
    else
        _st=$?
        if [ "$_st" -eq 77 ]; then
            echo "thread-safety: clang++ not found; skipped"
        else
            return "$_st"
        fi
    fi
}

lvplint() { python3 tools/lint/lvplint.py --root .; }

doc_links() { python3 tools/check_doc_links.py --root .; }

docs_strict() { cmake --build "$build" --target docs; }

gate "configure" configure
gate "build" build_tree
gate "ctest: smoke + lint" smoke_lint
gate "ctest: spec fuzz" spec_fuzz
gate "store reuse" store_gate
gate "ctest: perf gates" perf_gates
gate "thread-safety tree" thread_safety
gate "lvplint" lvplint
gate "docs links" doc_links
gate "docs (strict doxygen)" docs_strict

echo "== gate timings =="
printf "%b" "$timings" | while IFS="$(printf '\t')" read -r name dt; do
    printf '  %-28s %4ss\n' "$name" "$dt"
done

echo "ci.sh: all gates green"
