#!/bin/sh
# The pre-PR gate, in one command (documented in README.md):
#
#   configure -> build -> ctest (smoke + lint labels) -> lvplint
#
#   tools/ci.sh [build-dir]            default build dir: ./build
#
# The smoke label covers the fast correctness suites; the lint label
# covers lvplint (repo + fixtures) and the formatting check.  The
# final explicit lvplint run is belt-and-braces so the gate still
# bites when ctest filtering is misconfigured, and prints findings in
# the terminal where they are easiest to read.
#
# Extended gates (run before large or concurrency-touching PRs):
#   tools/run_sanitizers.sh       ASan+UBSan and TSan trees
#   ctest --test-dir build        the full 700+ test suite
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

echo "== configure =="
cmake -B "$build" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$build" -j"$(nproc)"

echo "== ctest: smoke + lint =="
ctest --test-dir "$build" -L 'smoke|lint' --output-on-failure \
      -j"$(nproc)"

echo "== ctest: spec fuzz (kernel-spec DSL vs ground truth) =="
ctest --test-dir "$build" -R 'SpecTruthFuzz|SpecShrink' \
      --output-on-failure -j"$(nproc)"

echo "== ctest: perf gates (bench-release tree) =="
# The perf label runs the bench bit-rot smokes at toy scale plus the
# two Release-only gates: perf_regression (throughput floor vs the
# committed BENCH_throughput.json) and sampled_vs_full (sampling
# speedup + error bounds vs full simulation, docs/sampling.md).
cmake -S . --preset bench-release >/dev/null
cmake --build build-release -j"$(nproc)"
ctest --test-dir build-release -L perf --output-on-failure

echo "== lvplint =="
python3 tools/lint/lvplint.py --root .

echo "== docs links =="
python3 tools/check_doc_links.py --root .

echo "== docs (strict doxygen; skips when not installed) =="
cmake --build "$build" --target docs

echo "ci.sh: all gates green"
