#!/bin/sh
# Formatting gate over the C++ tree (.clang-format at the repo root).
#
#   tools/check_format.sh --check   fail if any file needs reformatting
#   tools/check_format.sh --fix     reformat in place
#
# clang-format is an *opportunistic* dependency: where it is not
# installed the --check mode exits 77, which the `lint_format` ctest
# maps to SKIP (SKIP_RETURN_CODE), so the lint label stays green on
# minimal containers.  Run the real check on a machine that has it
# before committing formatting-sensitive changes.
set -eu

cd "$(dirname "$0")/.."

mode="${1:---check}"
case "$mode" in
    --check|--fix) ;;
    *)
        echo "usage: $0 [--check|--fix]" >&2
        exit 2
        ;;
esac

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
    echo "check_format: $CLANG_FORMAT not found; skipping (exit 77)" >&2
    exit 77
fi

# Tracked sources only; fixtures keep their seeded shapes.
files=$(git ls-files 'src/*.cc' 'src/*.hh' 'bench/*.cc' 'bench/*.hh' \
        'tests/*.cc' 'tools/*.cc' | grep -v '^tests/lint_fixtures/')

if [ "$mode" = "--fix" ]; then
    # shellcheck disable=SC2086
    "$CLANG_FORMAT" -i $files
    echo "check_format: reformatted $(echo "$files" | wc -l) files"
    exit 0
fi

# shellcheck disable=SC2086
if "$CLANG_FORMAT" --dry-run --Werror $files; then
    echo "check_format: clean"
else
    echo "check_format: run tools/check_format.sh --fix" >&2
    exit 1
fi
