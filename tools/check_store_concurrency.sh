#!/bin/sh
# Concurrency gate for the persistent checkpoint store: two suite
# processes launched at the same instant against one fresh store
# directory must (a) both finish with byte-identical results (timing
# and store-counter lines stripped, same filter as
# check_determinism.sh), and (b) leave no stale `*.building` claim
# files behind — every claim is released on publish or on local-build
# fallback. A third, fresh process then runs against the now-warm
# store and must report store_misses == 0: everything the pair built
# is servable from disk.
#
# Usage: check_store_concurrency.sh <path-to-lvpsim_cli> [workdir]
#   LVPSIM_CHECK_INSTRS=<n>   measured instructions (default 8000)
#   LVPSIM_CHECK_WARMUP=<n>   warmup instructions (default 4000;
#                             nonzero so "ckpt:" entries are raced
#                             too, not just baselines and plans)
# Wired into ctest as `store_concurrency` (tools/CMakeLists.txt).
set -eu

CLI=${1:?usage: check_store_concurrency.sh <lvpsim_cli> [workdir]}
DIR=${2:-$(mktemp -d)}
rm -rf "$DIR"
mkdir -p "$DIR"
STORE="$DIR/store"
INSTRS=${LVPSIM_CHECK_INSTRS:-8000}
WARMUP=${LVPSIM_CHECK_WARMUP:-4000}

export LVPSIM_SUITE=${LVPSIM_SUITE:-smoke}

run_suite() {
    "$CLI" --suite --predictor composite --instrs "$INSTRS" \
           --warmup "$WARMUP" --jobs 2 --store "$STORE" \
           --json "$1" > /dev/null
}

# Race two fresh processes on the empty store. The O_EXCL claim
# protocol decides per key who builds; the loser either waits for the
# winner's publish or (on claim timeout) builds locally, so both must
# succeed regardless of interleaving.
run_suite "$DIR/a.json" &
pid_a=$!
run_suite "$DIR/b.json" &
pid_b=$!
wait "$pid_a"
wait "$pid_b"

strip_timing() {
    grep -vE '"(wall_seconds|base_seconds|vp_seconds|checkpoint_seconds|jobs|trace_format|trace_instructions|progress_instructions|store_hits|store_misses|store_seconds)"' "$1"
}

strip_timing "$DIR/a.json" > "$DIR/a.stripped"
strip_timing "$DIR/b.json" > "$DIR/b.stripped"
if ! diff -u "$DIR/a.stripped" "$DIR/b.stripped"; then
    echo "FAIL: concurrent store-sharing runs diverged" >&2
    exit 1
fi

leftover=$(find "$STORE" -name '*.building' 2>/dev/null | wc -l)
if [ "$leftover" -ne 0 ]; then
    echo "FAIL: $leftover stale claim file(s) left in $STORE:" >&2
    find "$STORE" -name '*.building' >&2
    exit 1
fi

entries=$(find "$STORE" -name '*.lvpc' 2>/dev/null | wc -l)
if [ "$entries" -eq 0 ]; then
    echo "FAIL: no store entries were published" >&2
    exit 1
fi

# Warm check: a third process must be served entirely from disk.
run_suite "$DIR/c.json"
strip_timing "$DIR/c.json" > "$DIR/c.stripped"
if ! diff -u "$DIR/a.stripped" "$DIR/c.stripped"; then
    echo "FAIL: warm-store run diverged from the cold runs" >&2
    exit 1
fi
if ! grep -q '"store_misses": 0' "$DIR/c.json"; then
    echo "FAIL: warm-store run still missed:" >&2
    grep '"store_' "$DIR/c.json" >&2
    exit 1
fi
if grep -q '"store_hits": 0' "$DIR/c.json"; then
    echo "FAIL: warm-store run reported zero hits" >&2
    exit 1
fi

echo "OK: 2 concurrent cold runs + 1 warm run agree" \
     "($entries entries, no stale claims," \
     "$LVPSIM_SUITE suite, $INSTRS+$WARMUP instructions)"
