#!/bin/sh
# Thread-safety analysis gate (docs/static_analysis.md): configures a
# dedicated tree with Clang and -DLVPSIM_THREAD_SAFETY=ON
# (-Werror=thread-safety) and builds it, so any violation of the
# locking contracts declared via src/common/thread_annotations.hh —
# a GUARDED_BY member touched without its mutex, an EXCLUDES method
# re-entered with the lock held — fails the build.
#
#   tools/check_thread_safety.sh [build-dir]   default: build-tsa
#
# Clang is an *opportunistic* dependency, same policy as clang-format
# in check_format.sh: where no clang++ is installed this exits 77,
# which the `lint_thread_safety` ctest maps to SKIP, so the lint
# label stays green on minimal containers.  Run the real check on a
# machine with Clang before merging locking changes.
set -eu

cd "$(dirname "$0")/.."
build="${1:-build-tsa}"

CLANGXX="${CLANGXX:-clang++}"
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
    echo "check_thread_safety: $CLANGXX not found; skipping (exit 77)" >&2
    exit 77
fi

cmake -B "$build" -S . \
      -DCMAKE_CXX_COMPILER="$CLANGXX" \
      -DLVPSIM_THREAD_SAFETY=ON
cmake --build "$build" -j"$(nproc)"
echo "check_thread_safety: clean"
