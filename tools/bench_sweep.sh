#!/bin/sh
# Measure the configuration-sweep engine (warmup checkpointing +
# baseline memoization) against the naive inline-warmup loop with the
# optimized build (the `bench-release` CMake preset: Release, -O3,
# LVPSIM_ASSERTIONS=OFF) and write the result as BENCH_sweep.json so
# the repo keeps a committed record of the sweep speedup (see
# docs/performance.md). The binary verifies counter-exact result
# equality between the two engines before reporting anything.
#
# Usage: tools/bench_sweep.sh [output.json]
#   LVPSIM_BENCH_JOBS=<n>  worker threads (default 1 — single-
#                          threaded numbers are the comparable ones)
#   LVPSIM_INSTRS / LVPSIM_WARMUP / LVPSIM_SUITE scale the run as
#   everywhere else (defaults: 20000 instructions, warmup 2x that,
#   full suite).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-$src_dir/BENCH_sweep.json}
jobs=${LVPSIM_BENCH_JOBS:-1}
build_jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure (bench-release preset) =="
cmake -S "$src_dir" --preset bench-release >/dev/null

echo "== build sweep_throughput =="
cmake --build "$src_dir/build-release" -j "$build_jobs" \
    --target sweep_throughput

echo "== measure (jobs=$jobs) =="
"$src_dir/build-release/bench/sweep_throughput" \
    --jobs "$jobs" --json "$out"
