#!/bin/sh
# Sampled-simulation gate: run the sampling_throughput benchmark at
# real scale (2M instructions per workload, full suite) and require
# the sampled suite to beat full detailed simulation by a minimum
# speedup while staying inside its own reported error bounds. The
# binary itself refuses to report a speedup (exit 3/4) when the warm
# rerun is not bit-identical or a sampled row misses the full
# reference by more than its sample_error, so this script only has
# to enforce the speedup floor.
#
# Usage: check_sampling_gate.sh <sampling_throughput> <baseline.json> \
#            <build-type>
#   LVPSIM_SAMPLING_MIN_SPEEDUP=<x>  fail when cold speedup < x
#                                    (default 5.0)
#   LVPSIM_SAMPLING_INSTRS=<n>       instructions per workload
#                                    (default 2000000)
#
# Exits 77 (ctest SKIP_RETURN_CODE) on non-Release trees — the
# speedup ratio is only meaningful at -O3 without assertions — and
# when python3 is unavailable. The committed BENCH_sampling.json is
# reported for context but the gate judges the fresh measurement:
# a speedup is a ratio of two runs on the same machine, so it does
# not suffer the cross-machine variance that makes absolute kIPS
# baselines unusable as hard floors.
set -eu

bin=${1:?usage: check_sampling_gate.sh <sampling_throughput> <baseline.json> <build-type>}
ref=${2:-}
build_type=${3:-}
min=${LVPSIM_SAMPLING_MIN_SPEEDUP:-5.0}
instrs=${LVPSIM_SAMPLING_INSTRS:-2000000}

if [ "$build_type" != "Release" ]; then
    echo "SKIP: build type '$build_type' is not Release;" \
         "sampling speedups are only meaningful at -O3" \
         "without assertions"
    exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "SKIP: python3 not available"
    exit 77
fi

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "== measure (full suite, $instrs instructions/workload) =="
LVPSIM_INSTRS=$instrs LVPSIM_SUITE=${LVPSIM_SUITE:-full} \
    "$bin" --json "$dir/now.json"

python3 - "$dir/now.json" "$ref" "$min" <<'EOF'
import json
import os
import sys

now_path, ref_path, min_speedup = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]))
now = json.load(open(now_path))

if ref_path and os.path.exists(ref_path):
    ref = json.load(open(ref_path))
    print(f"  committed baseline: {ref['speedup']:.2f}x cold, "
          f"{ref['warm_speedup']:.2f}x warm "
          f"(max ipc err {100 * ref['max_rel_ipc_error']:.2f}%)")

print(f"  this machine:       {now['speedup']:.2f}x cold, "
      f"{now['warm_speedup']:.2f}x warm "
      f"(max ipc err {100 * now['max_rel_ipc_error']:.2f}%, "
      f"mean bound {100 * now['mean_sample_error']:.2f}%)")

if not (now["within_bounds"] and now["identical"]):
    # Unreachable in practice: the binary exits nonzero first.
    print("FAIL: benchmark self-checks did not pass")
    sys.exit(1)
if now["speedup"] < min_speedup:
    print(f"FAIL: cold sampling speedup {now['speedup']:.2f}x is "
          f"below the {min_speedup:.1f}x floor")
    sys.exit(1)
print(f"OK: sampled suite is {now['speedup']:.2f}x faster than "
      f"full simulation (floor {min_speedup:.1f}x), within bounds")
EOF
