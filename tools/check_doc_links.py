#!/usr/bin/env python3
"""Relative-link checker for the repo's Markdown documentation.

Scans every tracked ``*.md`` file for inline Markdown links and
verifies that

* relative file targets exist (``docs/traces.md``, ``src/...``), and
* anchor targets (``#some-heading``, ``other.md#section``) match a
  heading in the target file, using GitHub's slugification rules
  (lowercase, punctuation stripped, spaces to hyphens, duplicate
  slugs suffixed ``-1``, ``-2``, ...).

External links (``http://``, ``https://``, ``mailto:``) are out of
scope — this gate is about keeping *internal* cross-references from
rotting as files are renamed and sections reworded.

Usage::

    python3 tools/check_doc_links.py [--root DIR]

Exits 0 when every link resolves, 1 otherwise (one line per broken
link).  Wired into ctest as the lint-labeled ``docs_links`` test and
into tools/ci.sh.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# Inline links: [text](target) — tolerates one level of nested
# brackets in the text, and an optional "title" after the target.
LINK_RE = re.compile(r"\[(?:[^\]\[]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

# Directories never scanned for Markdown (generated or third-party).
SKIP_DIRS = {".git", "build", "docs-api", "__pycache__", ".claude"}


def github_slug(heading: str) -> str:
    """Slugify a heading the way GitHub's anchor generator does."""
    # Inline code/emphasis markers contribute their text only.
    text = re.sub(r"[`*_]", "", heading)
    # Links in headings anchor on their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_files(root: str) -> list[str]:
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return out


def non_code_lines(path: str) -> list[tuple[int, str]]:
    """Lines of a Markdown file with fenced code blocks blanked."""
    lines = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if not in_fence:
                lines.append((lineno, line.rstrip("\n")))
    return lines


def anchors_of(path: str, cache: dict) -> set:
    """The set of valid anchor slugs in a Markdown file."""
    if path in cache:
        return cache[path]
    slugs: set = set()
    counts: dict = {}
    for _, line in non_code_lines(path):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = slugs
    return slugs


def strip_inline_code(line: str) -> str:
    """Blank out `inline code` spans so links inside them are ignored."""
    return re.sub(r"`[^`]*`", "``", line)


def check_file(md: str, root: str, anchor_cache: dict) -> list[str]:
    errors = []
    rel_md = os.path.relpath(md, root)
    for lineno, raw in non_code_lines(md):
        for m in LINK_RE.finditer(strip_inline_code(raw)):
            target = m.group(1)
            if EXTERNAL_RE.match(target) or target.startswith("//"):
                continue  # http:, https:, mailto:, protocol-relative
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part))
                if not os.path.exists(dest):
                    errors.append(f"{rel_md}:{lineno}: broken link "
                                  f"'{target}' (no such file)")
                    continue
            else:
                dest = md  # same-file anchor
            if anchor:
                if not dest.endswith(".md") or os.path.isdir(dest):
                    continue  # anchors into non-Markdown: not checked
                if github_slug(anchor) not in anchors_of(
                        dest, anchor_cache):
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'{target}' (no such heading in "
                                  f"{os.path.relpath(dest, root)})")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    anchor_cache: dict = {}
    errors = []
    files = markdown_files(root)
    for md in files:
        errors.extend(check_file(md, root, anchor_cache))

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_doc_links: {len(errors)} broken link(s) across "
              f"{len(files)} Markdown file(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(files)} Markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
