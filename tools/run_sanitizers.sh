#!/bin/sh
# Build and run the sanitizer configurations:
#
#   build-asan   AddressSanitizer + UndefinedBehaviorSanitizer
#   build-tsan   ThreadSanitizer
#
# Each tree builds with LVPSIM_ASSERTIONS=ON (so the qa invariant
# checks run under the sanitizer too) and then runs the labeled ctest
# subsets:
#
#   -L smoke   fast unit/harness tests, including the --jobs 4
#              parallel suite run and the CheckpointCache /
#              BaselineCache concurrent-build tests in
#              test_checkpoint.cc (the TSan targets of interest)
#   -L fuzz    seeded property tests (fixed seeds, deterministic),
#              including the checkpoint/restore fuzz in
#              test_checkpoint_fuzz.cc
#
# The TSan tree additionally runs the differential, sampling, and
# store labels at ctest -j4 — four concurrent simulations hammering
# the TraceCache / CheckpointCache / PlanCache slot discipline plus
# the CheckpointStore claim/publish protocol (test_checkpoint_store
# and the two-process store_concurrency gate), which is exactly the
# interleaving the annotated locking contracts (common/sync.hh,
# docs/static_analysis.md) claim to make safe.
#
# Usage: tools/run_sanitizers.sh [source-dir]
#   LVPSIM_SAN_JOBS=<n>   build/test parallelism (default: nproc)
#   LVPSIM_SAN_ONLY=asan|tsan   run just one configuration
set -eu

src_dir=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
jobs=${LVPSIM_SAN_JOBS:-$(nproc 2>/dev/null || echo 4)}
only=${LVPSIM_SAN_ONLY:-}

# Only the targets the smoke/fuzz labels actually run: building the
# whole tree (benches, examples, every test binary) under a
# sanitizer takes many times longer for no extra coverage.
targets="test_containers test_common test_trace test_harness \
test_qa test_kernel_spec test_fuzz test_store lvpsim_cli"
tsan_targets="test_differential test_sampling test_store"

run_config() {
    name=$1
    sanitizers=$2
    build_dir="$src_dir/build-$name"

    echo "== [$name] configure ($sanitizers) =="
    cmake -B "$build_dir" -S "$src_dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLVPSIM_ASSERTIONS=ON \
        -DLVPSIM_SANITIZE="$sanitizers" >/dev/null

    echo "== [$name] build =="
    # shellcheck disable=SC2086  # word-splitting is intended
    cmake --build "$build_dir" -j "$jobs" --target $targets

    echo "== [$name] ctest -L smoke =="
    (cd "$build_dir" && ctest -L smoke --output-on-failure -j "$jobs")

    echo "== [$name] ctest -L fuzz =="
    (cd "$build_dir" && ctest -L fuzz --output-on-failure -j "$jobs")

    if [ "$name" = tsan ]; then
        echo "== [$name] build (differential + sampling + store) =="
        # shellcheck disable=SC2086  # word-splitting is intended
        cmake --build "$build_dir" -j "$jobs" --target $tsan_targets

        echo "== [$name] ctest -L 'differential|sampling|store' -j4 =="
        (cd "$build_dir" &&
             ctest -L 'differential|sampling|store' \
                 --output-on-failure -j 4)
    fi
}

case $only in
    asan) run_config asan address,undefined ;;
    tsan) run_config tsan thread ;;
    "")
        run_config asan address,undefined
        run_config tsan thread
        ;;
    *)
        echo "unknown LVPSIM_SAN_ONLY='$only' (want asan or tsan)" >&2
        exit 2
        ;;
esac

echo "== all sanitizer runs clean =="
