#!/bin/sh
# Persistent-store gate: the headline cross-process property — a
# fresh process running the 12-config sweep against a store a
# previous process populated must beat the cold (store-empty)
# process by a minimum speedup, with byte-identical results. Two
# separate store_throughput processes share one fresh --store
# directory; each emits an FNV-1a checksum over every result
# counter, and the binary itself refuses to report (exit 3) when the
# warm phase touches anything but the disk store, so this script
# only has to compare checksums and enforce the speedup floor.
#
# Usage: check_store_gate.sh <store_throughput> <workdir> \
#            <build-type>
#   LVPSIM_STORE_MIN_SPEEDUP=<x>  fail when speedup < x (default 2.0)
#   LVPSIM_STORE_INSTRS=<n>       measured instructions per cell
#                                 (default 20000; warmup is 16x)
#
# Exits 77 (ctest SKIP_RETURN_CODE) on non-Release trees — the
# speedup ratio is only meaningful at -O3 without assertions — and
# when python3 is unavailable. Like the sampling gate, this judges a
# fresh same-machine ratio, not a cross-machine absolute number.
set -eu

bin=${1:?usage: check_store_gate.sh <store_throughput> <workdir> <build-type>}
workdir=${2:?missing workdir}
build_type=${3:-}
min=${LVPSIM_STORE_MIN_SPEEDUP:-2.0}
instrs=${LVPSIM_STORE_INSTRS:-20000}

if [ "$build_type" != "Release" ]; then
    echo "SKIP: build type '$build_type' is not Release;" \
         "store speedups are only meaningful at -O3" \
         "without assertions"
    exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "SKIP: python3 not available"
    exit 77
fi

rm -rf "$workdir"
mkdir -p "$workdir"
export LVPSIM_SUITE=${LVPSIM_SUITE:-full}
export LVPSIM_INSTRS=$instrs

echo "== cold process (empty store) =="
"$bin" --store "$workdir/store" --phase cold \
       --json "$workdir/cold.json"
echo "== warm process (fresh process, populated store) =="
"$bin" --store "$workdir/store" --phase warm \
       --json "$workdir/warm.json"

python3 - "$workdir/cold.json" "$workdir/warm.json" "$min" <<'EOF'
import json
import sys

cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
min_speedup = float(sys.argv[3])

if cold["results_checksum"] != warm["results_checksum"]:
    print("FAIL: warm-process results diverged from the cold "
          "process (checksum %s vs %s)"
          % (warm["results_checksum"], cold["results_checksum"]))
    sys.exit(1)

cold_s = cold["cold"]["wall_seconds"]
warm_s = warm["warm"]["wall_seconds"]
speedup = cold_s / warm_s if warm_s > 0 else 0.0
print(f"  cold process {cold_s:.3f} s, warm process {warm_s:.3f} s "
      f"-> {speedup:.2f}x (floor {min_speedup:.1f}x, "
      f"{warm['warm']['store_hits']} store hits)")
if speedup < min_speedup:
    print(f"FAIL: fresh-process warm-store speedup {speedup:.2f}x "
          f"is below the {min_speedup:.1f}x floor")
    sys.exit(1)
print(f"OK: a warm store makes a fresh process {speedup:.2f}x "
      "faster, counter-exact")
EOF
