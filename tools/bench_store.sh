#!/bin/sh
# Measure the persistent checkpoint store (docs/performance.md) with
# the optimized build (the `bench-release` CMake preset: Release,
# -O3, LVPSIM_ASSERTIONS=OFF) and write the result as
# BENCH_store.json so the repo keeps a committed record of the
# cross-process speedup. Two measurements are combined:
#
#   in-process   store_throughput --phase all: inline reference vs
#                cold store vs warm-memory vs warm-disk, counter-
#                exact across all four phases (the binary aborts
#                otherwise).
#   two-process  --phase cold then --phase warm as separate
#                processes sharing one fresh store directory — the
#                real "fresh CI job against a warm cache" number the
#                store_speedup ctest gate replays. Checksums over
#                every result counter must match across processes.
#
# Usage: tools/bench_store.sh [output.json]
#   LVPSIM_BENCH_JOBS=<n>  worker threads (default 1 — single-
#                          threaded numbers are the comparable ones)
#   LVPSIM_INSTRS / LVPSIM_SUITE scale the run as everywhere else
#   (defaults here: 20000 measured instructions behind 16x warmup,
#   full suite — the 12 x 28 sweep the gate replays).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-$src_dir/BENCH_store.json}
jobs=${LVPSIM_BENCH_JOBS:-1}
build_jobs=$(nproc 2>/dev/null || echo 4)
export LVPSIM_INSTRS=${LVPSIM_INSTRS:-20000}
export LVPSIM_SUITE=${LVPSIM_SUITE:-full}

echo "== configure (bench-release preset) =="
cmake -S "$src_dir" --preset bench-release >/dev/null

echo "== build store_throughput =="
cmake --build "$src_dir/build-release" -j "$build_jobs" \
    --target store_throughput

bin=$src_dir/build-release/bench/store_throughput
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== in-process phases (jobs=$jobs) =="
"$bin" --jobs "$jobs" --store "$work/store_all" \
    --json "$work/all.json"

echo "== two-process cold/warm (jobs=$jobs) =="
"$bin" --jobs "$jobs" --store "$work/store_xp" --phase cold \
    --json "$work/cold.json"
"$bin" --jobs "$jobs" --store "$work/store_xp" --phase warm \
    --json "$work/warm.json"

python3 - "$work/all.json" "$work/cold.json" "$work/warm.json" \
    "$out" <<'EOF'
import json
import sys

alldoc = json.load(open(sys.argv[1]))
cold = json.load(open(sys.argv[2]))
warm = json.load(open(sys.argv[3]))

if cold["results_checksum"] != warm["results_checksum"]:
    print("FAIL: cold and warm processes disagree on results")
    sys.exit(1)

cold_s = cold["cold"]["wall_seconds"]
warm_s = warm["warm"]["wall_seconds"]
alldoc["cross_process"] = {
    "cold": cold["cold"],
    "warm": warm["warm"],
    "results_checksum": warm["results_checksum"],
}
# The headline number: how much faster a *fresh process* runs the
# sweep when a previous process already populated the store.
alldoc["speedup"] = cold_s / warm_s if warm_s > 0 else 0.0
with open(sys.argv[4], "w") as f:
    json.dump(alldoc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"cross-process speedup: {alldoc['speedup']:.2f}x "
      f"(in-process warm-disk {alldoc['warm_disk']['wall_seconds']:.3f} s, "
      f"warm-memory {alldoc['warm_memory']['wall_seconds']:.3f} s)")
print(f"results: {sys.argv[4]}")
EOF
