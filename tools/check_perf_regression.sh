#!/bin/sh
# Performance-regression gate over EVERY committed BENCH_*.json
# baseline: re-measure a short slice of each benchmark that has a
# committed baseline in the repo root and fail only on a collapse
# (several times worse than the committed Release numbers). CI
# machines vary widely, so the tolerances are deliberately generous;
# gradual drift is tracked by re-running the tools/bench_*.sh
# scripts instead.
#
#   baseline               measured slice        floor
#   BENCH_throughput.json  micro_throughput      per-workload kips >=
#                                                ref / TOL_THROUGHPUT
#   BENCH_sweep.json       sweep_throughput      speedup >=
#                                                ref / TOL_SWEEP
#   BENCH_sampling.json    sampling_throughput   speedup >=
#                                                ref / TOL_SAMPLING
#   BENCH_store.json       store_throughput      speedup >=
#                                                ref / TOL_STORE
#
# Speedup baselines are same-machine ratios, so they transfer across
# machines far better than absolute kIPS — but the short slices run
# at a smaller scale than the committed measurement, which shrinks
# the ratio; the tolerance absorbs both effects.
#
# Usage: check_perf_regression.sh <bench-bin-dir> <repo-root> \
#            <build-type>
#   LVPSIM_PERF_TOL_THROUGHPUT=<x>  (default $LVPSIM_PERF_TOL or 5.0)
#   LVPSIM_PERF_TOL_SWEEP=<x>       (default 3.0)
#   LVPSIM_PERF_TOL_SAMPLING=<x>    (default 4.0)
#   LVPSIM_PERF_TOL_STORE=<x>       (default 3.0)
#
# Exits 77 (ctest SKIP_RETURN_CODE) on non-Release trees — debug or
# assertion-laden builds are legitimately slower — and when python3
# is unavailable. A baseline that is not committed, or whose bench
# binary is not built, is skipped with a note, not a failure.
set -eu

bindir=${1:?usage: check_perf_regression.sh <bench-bin-dir> <repo-root> <build-type>}
root=${2:?missing repo root}
build_type=${3:-}

tol_throughput=${LVPSIM_PERF_TOL_THROUGHPUT:-${LVPSIM_PERF_TOL:-5.0}}
tol_sweep=${LVPSIM_PERF_TOL_SWEEP:-3.0}
tol_sampling=${LVPSIM_PERF_TOL_SAMPLING:-4.0}
tol_store=${LVPSIM_PERF_TOL_STORE:-3.0}

if [ "$build_type" != "Release" ]; then
    echo "SKIP: build type '$build_type' is not Release;" \
         "performance numbers are only meaningful at -O3" \
         "without assertions"
    exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "SKIP: python3 not available"
    exit 77
fi

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
failures=0
gated=0

# ---- throughput: per-workload kips floors --------------------------
if [ -f "$root/BENCH_throughput.json" ] && \
   [ -x "$bindir/micro_throughput" ]; then
    gated=$((gated + 1))
    echo "== throughput (smoke slice, tol ${tol_throughput}x) =="
    LVPSIM_SUITE=smoke LVPSIM_INSTRS=40000 \
        "$bindir/micro_throughput" --repeat 3 \
        --json "$dir/throughput.json" > /dev/null
    python3 - "$dir/throughput.json" "$root/BENCH_throughput.json" \
        "$tol_throughput" <<'EOF' || failures=$((failures + 1))
import json
import sys

now_path, ref_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
now = json.load(open(now_path))
ref = json.load(open(ref_path))

def kips_by_workload(doc):
    return {r["workload"]: r["kips"] for r in doc["workloads"]
            if r.get("kips")}

now_k, ref_k = kips_by_workload(now), kips_by_workload(ref)
shared = sorted(set(now_k) & set(ref_k))
if not shared:
    # The committed baseline covers the full suite; a smoke slice
    # always intersects it, so an empty intersection means the
    # baseline file is from another world. Don't guess.
    print("FAIL: no common workloads between run and baseline")
    sys.exit(1)

failed = []
for w in shared:
    floor = ref_k[w] / tol
    status = "ok" if now_k[w] >= floor else "REGRESSED"
    print(f"  {w:24s} {now_k[w]:10.1f} kips "
          f"(baseline {ref_k[w]:10.1f}, floor {floor:10.1f}) {status}")
    if now_k[w] < floor:
        failed.append(w)

if failed:
    print(f"FAIL: {len(failed)}/{len(shared)} workloads more than "
          f"{tol}x slower than the committed baseline: "
          + ", ".join(failed))
    sys.exit(1)
print(f"OK: {len(shared)} workloads within {tol}x of the committed "
      "baseline")
EOF
else
    echo "note: throughput baseline or binary absent, not gated"
fi

# check_ratio <fresh.json> <ref.json> <tol> <what>: both files carry
# a top-level "speedup"; the fresh one must stay above ref/tol.
check_ratio() {
    python3 - "$1" "$2" "$3" "$4" <<'EOF'
import json
import sys

now = json.load(open(sys.argv[1]))
ref = json.load(open(sys.argv[2]))
tol = float(sys.argv[3])
what = sys.argv[4]
floor = ref["speedup"] / tol
print(f"  {what}: {now['speedup']:.2f}x measured "
      f"(committed {ref['speedup']:.2f}x, floor {floor:.2f}x)")
if now["speedup"] < floor:
    print(f"FAIL: {what} speedup collapsed more than {tol}x below "
          "the committed baseline")
    sys.exit(1)
print(f"OK: {what} speedup within {tol}x of the committed baseline")
EOF
}

# ---- sweep: checkpointed-sweep speedup ratio -----------------------
if [ -f "$root/BENCH_sweep.json" ] && \
   [ -x "$bindir/sweep_throughput" ]; then
    gated=$((gated + 1))
    echo "== sweep (smoke slice, tol ${tol_sweep}x) =="
    LVPSIM_SUITE=smoke LVPSIM_INSTRS=20000 \
        "$bindir/sweep_throughput" --json "$dir/sweep.json" \
        > /dev/null
    check_ratio "$dir/sweep.json" "$root/BENCH_sweep.json" \
        "$tol_sweep" sweep || failures=$((failures + 1))
else
    echo "note: sweep baseline or binary absent, not gated"
fi

# ---- sampling: sampled-vs-full speedup ratio -----------------------
if [ -f "$root/BENCH_sampling.json" ] && \
   [ -x "$bindir/sampling_throughput" ]; then
    gated=$((gated + 1))
    echo "== sampling (smoke slice, tol ${tol_sampling}x) =="
    LVPSIM_SUITE=smoke LVPSIM_INSTRS=500000 \
        "$bindir/sampling_throughput" --json "$dir/sampling.json" \
        > /dev/null
    check_ratio "$dir/sampling.json" "$root/BENCH_sampling.json" \
        "$tol_sampling" sampling || failures=$((failures + 1))
else
    echo "note: sampling baseline or binary absent, not gated"
fi

# ---- store: cold-vs-warm-disk speedup ratio ------------------------
if [ -f "$root/BENCH_store.json" ] && \
   [ -x "$bindir/store_throughput" ]; then
    gated=$((gated + 1))
    echo "== store (smoke slice, tol ${tol_store}x) =="
    rm -rf "$dir/store"
    LVPSIM_SUITE=smoke LVPSIM_INSTRS=10000 \
        "$bindir/store_throughput" --store "$dir/store" \
        --json "$dir/store.json" > /dev/null
    check_ratio "$dir/store.json" "$root/BENCH_store.json" \
        "$tol_store" store || failures=$((failures + 1))
else
    echo "note: store baseline or binary absent, not gated"
fi

if [ "$gated" -eq 0 ]; then
    echo "SKIP: no committed BENCH_*.json baseline had a built" \
         "benchmark binary"
    exit 77
fi
if [ "$failures" -ne 0 ]; then
    echo "FAIL: $failures of $gated gated baselines regressed"
    exit 1
fi
echo "OK: all $gated gated baselines within tolerance"
