#!/bin/sh
# Throughput-regression gate: run a short micro_throughput slice and
# compare per-workload kIPS against the committed baseline
# (BENCH_throughput.json). The tolerance is deliberately generous —
# CI machines vary widely, so only a collapse (several times slower
# than the committed Release numbers) fails; gradual drift is tracked
# by re-running tools/bench_throughput.sh instead.
#
# Usage: check_perf_regression.sh <micro_throughput> <baseline.json> \
#            <build-type>
#   LVPSIM_PERF_TOL=<x>  fail when kips < baseline/x (default 5.0)
#
# Exits 77 (ctest SKIP_RETURN_CODE) on non-Release trees — debug or
# assertion-laden builds are legitimately slower — and when python3
# or the committed baseline is unavailable.
set -eu

bin=${1:?usage: check_perf_regression.sh <micro_throughput> <baseline.json> <build-type>}
ref=${2:?missing baseline.json}
build_type=${3:-}
tol=${LVPSIM_PERF_TOL:-5.0}

if [ "$build_type" != "Release" ]; then
    echo "SKIP: build type '$build_type' is not Release;" \
         "throughput numbers are only meaningful at -O3" \
         "without assertions"
    exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "SKIP: python3 not available"
    exit 77
fi
if [ ! -f "$ref" ]; then
    echo "SKIP: no committed baseline at $ref"
    exit 77
fi

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "== measure (smoke suite, short slice) =="
LVPSIM_SUITE=smoke LVPSIM_INSTRS=40000 \
    "$bin" --repeat 3 --json "$dir/now.json"

python3 - "$dir/now.json" "$ref" "$tol" <<'EOF'
import json
import sys

now_path, ref_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
now = json.load(open(now_path))
ref = json.load(open(ref_path))

def kips_by_workload(doc):
    return {r["workload"]: r["kips"] for r in doc["workloads"]
            if r.get("kips")}

now_k, ref_k = kips_by_workload(now), kips_by_workload(ref)
shared = sorted(set(now_k) & set(ref_k))
if not shared:
    # The committed baseline covers the full suite; a smoke slice
    # always intersects it, so an empty intersection means the
    # baseline file is from another world. Don't guess.
    print("SKIP: no common workloads between run and baseline")
    sys.exit(77)

failed = []
for w in shared:
    floor = ref_k[w] / tol
    status = "ok" if now_k[w] >= floor else "REGRESSED"
    print(f"  {w:24s} {now_k[w]:10.1f} kips "
          f"(baseline {ref_k[w]:10.1f}, floor {floor:10.1f}) {status}")
    if now_k[w] < floor:
        failed.append(w)

if failed:
    print(f"FAIL: {len(failed)}/{len(shared)} workloads more than "
          f"{tol}x slower than the committed baseline: "
          + ", ".join(failed))
    sys.exit(1)
print(f"OK: {len(shared)} workloads within {tol}x of the committed "
      "baseline")
EOF
