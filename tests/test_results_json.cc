/**
 * @file
 * The structured results layer: the minimal JSON document model
 * (parse/dump), SimStats serialization via forEachCounter, and the
 * SuiteResult file round-trip against docs/results_schema.md.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/composite.hh"
#include "sim/experiment.hh"
#include "sim/json.hh"
#include "sim/results_json.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using sim::JsonValue;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(sim::parseJson("null").isNull());
    EXPECT_TRUE(sim::parseJson("true").asBool());
    EXPECT_FALSE(sim::parseJson("false").asBool());
    EXPECT_EQ(sim::parseJson("12345").asU64(), 12345u);
    EXPECT_DOUBLE_EQ(sim::parseJson("-2.5").asDouble(), -2.5);
    EXPECT_DOUBLE_EQ(sim::parseJson("1e3").asDouble(), 1000.0);
    EXPECT_EQ(sim::parseJson("\"hi\\nthere\"").asString(),
              "hi\nthere");
}

TEST(Json, ParsesNestedDocument)
{
    const char *doc = R"({
        "a": [1, 2, {"b": "c"}],
        "d": {"e": true, "f": null},
        "g": -0.125
    })";
    std::string err;
    JsonValue v = sim::parseJson(doc, &err);
    ASSERT_TRUE(v.isObject()) << err;
    const JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    EXPECT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[2].find("b")->asString(), "c");
    EXPECT_TRUE(v.find("d")->find("e")->asBool());
    EXPECT_TRUE(v.find("d")->find("f")->isNull());
    EXPECT_DOUBLE_EQ(v.find("g")->asDouble(), -0.125);
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2",
          "\"unterminated", "{\"a\":1,}"}) {
        std::string err;
        JsonValue v = sim::parseJson(bad, &err);
        EXPECT_TRUE(v.isNull()) << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << "no error for: " << bad;
    }
}

TEST(Json, DumpParseRoundTripPreservesKindAndOrder)
{
    JsonValue o = JsonValue::object();
    o.set("int", JsonValue(std::uint64_t(18446744073709551615ull)));
    o.set("dbl", JsonValue(0.1234567890123456789));
    o.set("whole_dbl", JsonValue(5.0));
    o.set("str", JsonValue("a \"quoted\" line\n"));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(std::uint64_t(1)));
    arr.push(JsonValue(true));
    o.set("arr", std::move(arr));

    JsonValue back = sim::parseJson(o.dump(2));
    ASSERT_TRUE(back.isObject());
    // Insertion order survives.
    EXPECT_EQ(back.members()[0].first, "int");
    EXPECT_EQ(back.members()[3].first, "str");
    // uint64 stays exact; doubles round-trip via max_digits10, and a
    // whole-valued double re-parses as a double (the ".0" marker).
    EXPECT_EQ(back.find("int")->asU64(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(back.find("dbl")->asDouble(),
                     0.1234567890123456789);
    EXPECT_EQ(back.find("whole_dbl")->kind(),
              JsonValue::Kind::Double);
    EXPECT_EQ(back.find("str")->asString(), "a \"quoted\" line\n");
    // And the re-dump is byte-identical (deterministic formatting).
    EXPECT_EQ(back.dump(2), o.dump(2));
}

namespace
{

pipe::SimStats
fabricatedStats(std::uint64_t salt)
{
    // Give every counter a distinct value so a swapped or dropped
    // field cannot cancel out.
    pipe::SimStats s;
    std::uint64_t v = salt;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t) {
            EXPECT_TRUE(pipe::setCounter(s, name, ++v)) << name;
        });
    return s;
}

} // anonymous namespace

TEST(ResultsJson, SimStatsRoundTripIsLossFree)
{
    const pipe::SimStats s = fabricatedStats(1000);
    pipe::SimStats back;
    ASSERT_TRUE(sim::simStatsFromJson(sim::toJson(s), back));
    EXPECT_TRUE(pipe::statsEqual(s, back));
}

TEST(ResultsJson, SetCounterRejectsUnknownNames)
{
    pipe::SimStats s;
    EXPECT_FALSE(pipe::setCounter(s, "no_such_counter", 1));
    EXPECT_FALSE(pipe::setCounter(s, "ipc", 1)); // derived, not raw
    EXPECT_TRUE(pipe::setCounter(s, "cycles", 42));
    EXPECT_EQ(s.cycles, 42u);
}

TEST(ResultsJson, SuiteResultFileRoundTrip)
{
    sim::SuiteResult suite;
    suite.label = "composite";
    suite.storageBits = 78336;
    suite.wallSeconds = 1.5;
    for (int i = 0; i < 3; ++i) {
        sim::WorkloadResult r;
        r.workload = "wl_" + std::to_string(i);
        r.base = fabricatedStats(100 * i);
        r.withVp = fabricatedStats(100 * i + 50);
        r.storageBits = 78336;
        r.baseSeconds = 0.25;
        r.vpSeconds = 0.5;
        suite.rows.push_back(std::move(r));
    }

    sim::ReportMeta meta;
    meta.jobs = 4;
    meta.maxInstrs = 150000;
    meta.traceSeed = 1;
    meta.suite = "unit";

    const std::string path =
        testing::TempDir() + "lvpsim_results_roundtrip.json";
    std::string err;
    ASSERT_TRUE(sim::writeResultsFile(path, {suite}, meta, &err))
        << err;

    std::vector<sim::SuiteResult> back;
    sim::ReportMeta backMeta;
    ASSERT_TRUE(sim::readResultsFile(path, back, &backMeta, &err))
        << err;
    std::remove(path.c_str());

    EXPECT_EQ(backMeta.jobs, 4u);
    EXPECT_EQ(backMeta.maxInstrs, 150000u);
    EXPECT_EQ(backMeta.traceSeed, 1u);
    EXPECT_EQ(backMeta.suite, "unit");

    ASSERT_EQ(back.size(), 1u);
    const auto &b = back[0];
    EXPECT_EQ(b.label, suite.label);
    EXPECT_EQ(b.storageBits, suite.storageBits);
    EXPECT_DOUBLE_EQ(b.wallSeconds, suite.wallSeconds);
    ASSERT_EQ(b.rows.size(), suite.rows.size());
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
        EXPECT_EQ(b.rows[i].workload, suite.rows[i].workload);
        EXPECT_TRUE(
            pipe::statsEqual(b.rows[i].base, suite.rows[i].base));
        EXPECT_TRUE(pipe::statsEqual(b.rows[i].withVp,
                                     suite.rows[i].withVp));
        EXPECT_EQ(b.rows[i].storageBits, suite.rows[i].storageBits);
        EXPECT_DOUBLE_EQ(b.rows[i].baseSeconds,
                         suite.rows[i].baseSeconds);
        EXPECT_DOUBLE_EQ(b.rows[i].vpSeconds,
                         suite.rows[i].vpSeconds);
    }
    // Derived metrics recompute identically from restored counters.
    EXPECT_DOUBLE_EQ(b.geomeanSpeedup(), suite.geomeanSpeedup());
    EXPECT_DOUBLE_EQ(b.meanCoverage(), suite.meanCoverage());
}

TEST(ResultsJson, DocumentMatchesDocumentedSchema)
{
    // Every field documented in docs/results_schema.md must be
    // present in a real emitted document (and nothing required may
    // go missing without the doc being updated).
    sim::SuiteRunner runner({"memset_loop"},
                            sim::RunConfig{.maxInstrs = 5000}, 2);
    const auto res = runner.run("composite", [] {
        return std::make_unique<vp::CompositePredictor>(
            vp::CompositeConfig::homogeneous(256));
    });
    sim::ReportMeta meta;
    meta.jobs = 2;
    meta.maxInstrs = 5000;
    meta.traceSeed = 1;
    meta.suite = "schema-test";
    JsonValue doc = sim::resultsToJson({res}, meta);

    EXPECT_EQ(doc.find("schema_version")->asU64(), 1u);
    EXPECT_EQ(doc.find("tool")->asString(), "lvpsim");
    const JsonValue *m = doc.find("meta");
    ASSERT_TRUE(m);
    for (const char *k : {"jobs", "instructions", "trace_seed"})
        EXPECT_TRUE(m->find(k) && m->find(k)->isNumber()) << k;
    EXPECT_TRUE(m->find("suite")->isString());

    const JsonValue *suites = doc.find("suites");
    ASSERT_TRUE(suites && suites->isArray());
    const JsonValue &s = suites->items()[0];
    for (const char *k :
         {"label", "storage_bits", "storage_kb", "geomean_speedup",
          "mean_coverage", "mean_accuracy", "workloads",
          "wall_seconds"})
        EXPECT_TRUE(s.find(k)) << k;

    const JsonValue &row = s.find("workloads")->items()[0];
    for (const char *k :
         {"workload", "storage_bits", "speedup", "coverage",
          "accuracy", "base", "with_vp", "base_seconds",
          "vp_seconds"})
        EXPECT_TRUE(row.find(k)) << k;

    // Stats objects carry every raw counter under its documented
    // name, plus the three derived conveniences.
    const JsonValue *base = row.find("base");
    pipe::SimStats probe;
    pipe::forEachCounter(
        probe, [&](std::string_view name, std::uint64_t) {
            EXPECT_TRUE(base->find(name)) << name;
        });
    for (const char *k : {"ipc", "coverage", "accuracy"})
        EXPECT_TRUE(base->find(k)) << k;
}

TEST(ResultsJson, EmptySuiteSerializesToValidJson)
{
    // Regression: an empty suite's aggregates (geomean over zero
    // rows) used to abort inside geoMean; they must instead emit
    // explicit nulls and the document must stay parseable.
    sim::SuiteResult empty;
    empty.label = "empty";
    JsonValue doc = sim::resultsToJson({empty}, sim::ReportMeta{});
    std::ostringstream os;
    doc.dump(os, 2);

    std::string err;
    JsonValue back = sim::parseJson(os.str(), &err);
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_TRUE(back.isObject());

    const JsonValue &s = back.find("suites")->items()[0];
    EXPECT_TRUE(s.find("geomean_speedup")->isNull());
    EXPECT_TRUE(s.find("mean_coverage")->isNull());
    EXPECT_TRUE(s.find("mean_accuracy")->isNull());

    std::vector<sim::SuiteResult> suites;
    EXPECT_TRUE(sim::resultsFromJson(back, suites, nullptr));
    ASSERT_EQ(suites.size(), 1u);
    EXPECT_TRUE(suites[0].rows.empty());
}

TEST(ResultsJson, DegenerateRowEmitsNullNotNanOrInf)
{
    // A zero-cycle row makes speedup 0/0 (NaN); JSON cannot encode
    // that, so the writer must clamp the derived metrics to null.
    sim::SuiteResult s;
    s.label = "degenerate";
    s.rows.emplace_back();
    s.rows.back().workload = "w";

    JsonValue doc = sim::toJson(s);
    EXPECT_TRUE(doc.find("geomean_speedup")->isNull());
    const JsonValue &row = doc.find("workloads")->items()[0];
    EXPECT_TRUE(row.find("speedup")->isNull());

    std::ostringstream os;
    doc.dump(os, 2);
    const std::string text = os.str();
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    std::string err;
    sim::parseJson(text, &err);
    EXPECT_TRUE(err.empty()) << err;
}
