/**
 * @file
 * Binary snapshot serialization (pipeline/snapshot_io.hh): a
 * post-warmup Core::Snapshot must survive an encode/decode round trip
 * byte-exactly, a restored core must resume identically to one that
 * never left memory, and every truncated payload must decode to a
 * clean failure (never a crash or a silently short snapshot).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.hh"
#include "core/lvp_interface.hh"
#include "pipeline/core.hh"
#include "pipeline/snapshot_io.hh"
#include "sim/simulator.hh"

using namespace lvpsim;

namespace
{

constexpr std::size_t kWarmup = 6000;
constexpr std::size_t kMeasure = 3000;

sim::RunConfig
warmRc()
{
    sim::RunConfig rc;
    rc.maxInstrs = kMeasure;
    rc.warmupInstrs = kWarmup;
    return rc;
}

/** Warm a fresh core on `workload` and capture its snapshot. */
pipe::Core::Snapshot
warmSnapshot(const std::string &workload)
{
    const auto rc = warmRc();
    auto ops = sim::TraceCache::instance().get(
        workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
    pipe::Core core(rc.core, *ops, nullptr);
    core.warmup(rc.warmupInstrs);
    pipe::Core::Snapshot s;
    core.saveState(s);
    return s;
}

std::vector<std::uint8_t>
encode(const pipe::Core::Snapshot &s)
{
    BinWriter w;
    pipe::serializeSnapshot(w, s);
    return w.take();
}

} // anonymous namespace

TEST(SnapshotIo, RoundTripReencodesToIdenticalBytes)
{
    // Byte-stable round trip over real post-warmup state (populated
    // caches, branch histories, in-flight-free pipeline): decode then
    // re-encode must reproduce the exact input bytes, proving no
    // field is dropped, reordered, or widened on either side.
    for (const char *w : {"stream_sum", "pointer_chase"}) {
        const auto bytes = encode(warmSnapshot(w));
        ASSERT_FALSE(bytes.empty());

        BinReader r(bytes);
        pipe::Core::Snapshot decoded;
        pipe::deserializeSnapshot(r, decoded);
        ASSERT_TRUE(r.ok()) << w;
        ASSERT_TRUE(r.atEnd()) << w;

        EXPECT_EQ(encode(decoded), bytes)
            << w << ": re-encode diverged from the original bytes";
    }
}

TEST(SnapshotIo, RestoredCoreResumesBitIdentically)
{
    const auto rc = warmRc();
    const char *workload = "hash_probe";
    auto ops = sim::TraceCache::instance().get(
        workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);

    // Reference: warm up and measure in one life.
    pipe::NullPredictor refVp;
    pipe::Core ref(rc.core, *ops, &refVp);
    ref.warmup(rc.warmupInstrs);
    const auto refStats = ref.run();

    // Under test: the warmup state crosses a serialize/deserialize
    // boundary before the measured region runs.
    pipe::Core warm(rc.core, *ops, nullptr);
    warm.warmup(rc.warmupInstrs);
    pipe::Core::Snapshot snap;
    warm.saveState(snap);

    const auto bytes = encode(snap);
    BinReader r(bytes);
    pipe::Core::Snapshot decoded;
    pipe::deserializeSnapshot(r, decoded);
    ASSERT_TRUE(r.ok() && r.atEnd());

    pipe::NullPredictor vp;
    pipe::Core restored(rc.core, *ops, &vp);
    restored.restoreState(decoded);
    EXPECT_TRUE(pipe::statsEqual(restored.run(), refStats));
}

TEST(SnapshotIo, EveryTruncationFailsCleanly)
{
    const auto bytes = encode(warmSnapshot("stream_sum"));
    ASSERT_GT(bytes.size(), 64u);

    auto decodeAt = [&](std::size_t len) {
        BinReader r(bytes.data(), len);
        pipe::Core::Snapshot s;
        pipe::deserializeSnapshot(r, s);
        return r.ok() && r.atEnd();
    };

    // A CheckpointStore load accepts a payload only when decode
    // succeeds AND consumes every byte, so "clean failure" here means
    // !(ok && atEnd). Cover every prefix near both ends and a stride
    // through the middle — the interesting failure modes are length
    // prefixes promising more elements than remain.
    for (std::size_t len = 0; len < 64; ++len)
        EXPECT_FALSE(decodeAt(len)) << "prefix " << len;
    for (std::size_t len = bytes.size() - 64; len < bytes.size();
         ++len)
        EXPECT_FALSE(decodeAt(len)) << "prefix " << len;
    for (std::size_t len = 64; len < bytes.size() - 64; len += 97)
        EXPECT_FALSE(decodeAt(len)) << "prefix " << len;

    EXPECT_TRUE(decodeAt(bytes.size()));
}

TEST(SnapshotIo, TrailingGarbageIsRejectedByAtEnd)
{
    auto bytes = encode(warmSnapshot("stream_sum"));
    bytes.push_back(0);
    BinReader r(bytes);
    pipe::Core::Snapshot s;
    pipe::deserializeSnapshot(r, s);
    EXPECT_FALSE(r.ok() && r.atEnd());
}
