/**
 * @file
 * Golden-file tests for the `synth:` kernel-spec grammar plus
 * canonical-identity and ground-truth sanity checks (`ctest -L
 * smoke`).
 *
 * The golden fixtures (tests/data/kernel_spec_golden.txt) pin the
 * canonical printed form of representative specs and require
 * parse->print->parse to be a fixed point; the error fixtures
 * (kernel_spec_errors.txt) pin the parser/validator messages for
 * malformed specs, mirroring the CVP truncation-point fixtures.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/composite.hh"
#include "qa/spec_oracles.hh"
#include "sim/simulator.hh"
#include "trace/kernel_spec.hh"
#include "trace/spec_truth.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

/** Non-comment `left|right` lines of a fixture file. */
std::vector<std::pair<std::string, std::string>>
readFixture(const std::string &name)
{
    const std::string path =
        std::string(LVPSIM_TEST_DATA_DIR) + "/" + name;
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::vector<std::pair<std::string, std::string>> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto bar = line.find('|');
        EXPECT_NE(bar, std::string::npos) << "bad fixture: " << line;
        if (bar == std::string::npos)
            continue;
        out.push_back(
            {line.substr(0, bar), line.substr(bar + 1)});
    }
    EXPECT_FALSE(out.empty()) << path;
    return out;
}

} // anonymous namespace

TEST(KernelSpecGrammar, GoldenCanonicalForms)
{
    for (const auto &[input, want] :
         readFixture("kernel_spec_golden.txt")) {
        std::string err;
        const trace::KernelSpec spec =
            trace::parseKernelSpec(input, &err);
        ASSERT_TRUE(err.empty()) << input << ": " << err;
        const std::string printed = trace::printKernelSpec(spec);
        EXPECT_EQ(printed, want) << "input: " << input;

        // Fixed point: the canonical form reparses to itself.
        const trace::KernelSpec again =
            trace::parseKernelSpec(printed, &err);
        ASSERT_TRUE(err.empty()) << printed << ": " << err;
        EXPECT_EQ(trace::printKernelSpec(again), printed);
    }
}

TEST(KernelSpecGrammar, ErrorFixtures)
{
    for (const auto &[input, want] :
         readFixture("kernel_spec_errors.txt")) {
        std::string err;
        const trace::KernelSpec spec =
            trace::parseKernelSpec(input, &err);
        EXPECT_FALSE(err.empty())
            << "accepted malformed spec: " << input;
        EXPECT_NE(err.find(want), std::string::npos)
            << "input: " << input << "\n  error: " << err
            << "\n  expected substring: " << want;
        EXPECT_TRUE(spec.phases.empty());
    }
}

TEST(KernelSpecGrammar, CanonicalSyntheticName)
{
    // Equivalent spellings share one canonical identity.
    const std::string a = trace::canonicalSyntheticName(
        "[iters=100]stride(wset=400,step=8),const(v=66)");
    const std::string b = trace::canonicalSyntheticName(
        "[iters=100,mix=seq]stride(wset=400),const(v=0x42)");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, "[iters=100]stride(wset=400),const(v=0x42)");

    // Registered kernel names and junk pass through unchanged.
    EXPECT_EQ(trace::canonicalSyntheticName("pointer_chase"),
              "pointer_chase");
    EXPECT_EQ(trace::canonicalSyntheticName("nosuch"), "nosuch");

    EXPECT_TRUE(trace::looksLikeKernelSpec("[iters=4]const()"));
    EXPECT_FALSE(trace::looksLikeKernelSpec("pointer_chase"));
}

TEST(KernelSpecTruth, ConstProfileIsExact)
{
    // Two constant-load sites: per site, ideal LVP misses only the
    // first execution, SAP and order-1 context miss the first two.
    std::string err;
    const auto spec =
        trace::parseKernelSpec("[iters=100]const()*2", &err);
    ASSERT_TRUE(err.empty()) << err;
    const auto t = trace::computeTruthProfile(spec, 10000, 1);

    ASSERT_GT(t.total.loads, 1000u);
    EXPECT_DOUBLE_EQ(t.total.lvp.hits, double(t.total.loads - 2));
    EXPECT_DOUBLE_EQ(t.total.sap.hits, double(t.total.loads - 4));
    EXPECT_DOUBLE_EQ(t.total.ctx.hits, double(t.total.loads - 4));
    EXPECT_DOUBLE_EQ(t.total.cap.hits, double(t.total.loads - 4));
    EXPECT_LE(t.opsModeled, 10000u);
}

TEST(KernelSpecTruth, StrideProfileSeparatesFamilies)
{
    std::string err;
    const auto spec = trace::parseKernelSpec(
        "[iters=500,base=0x20000000]stride(wset=1000)", &err);
    ASSERT_TRUE(err.empty()) << err;
    const auto t = trace::computeTruthProfile(spec, 10000, 1);

    ASSERT_GT(t.total.loads, 1000u);
    // Distinct slot values: last-value prediction never hits; the
    // address walk is a perfect stride except the two warmup
    // accesses of each phase entry (the pointer resets per entry).
    EXPECT_DOUBLE_EQ(t.total.lvp.hits, 0.0);
    EXPECT_GT(t.total.sap.hits, 0.9 * double(t.total.loads));
    EXPECT_GT(t.total.bestHits(), t.total.lvp.hits);
}

TEST(KernelSpecTruth, PhasedSpecReportsPerPhaseProfiles)
{
    std::string err;
    const auto spec = trace::parseKernelSpec(
        "[iters=64]const();[iters=64]pick(k=64)", &err);
    ASSERT_TRUE(err.empty()) << err;
    const auto t = trace::computeTruthProfile(spec, 20000, 7);

    ASSERT_EQ(t.phases.size(), 2u);
    EXPECT_GT(t.phases[0].loads, 0u);
    EXPECT_GT(t.phases[1].loads, 0u);
    // Phase 1 is near-perfectly last-value predictable; phase 2's
    // uniform random picks give every family ~1/k expectations.
    EXPECT_GT(trace::truthFrac(t.phases[0].lvp.hits, t.phases[0].loads),
              0.95);
    EXPECT_LT(trace::truthFrac(t.phases[1].lvp.hits, t.phases[1].loads),
              0.1);
    const double sum = t.phases[0].lvp.hits + t.phases[1].lvp.hits;
    EXPECT_DOUBLE_EQ(t.total.lvp.hits, sum);
}

/**
 * Breakdown spec found and pinned by tools/coverage_frontier: a
 * finite-context stream is ~99% capturable by an ideal order-1
 * *value*-context model, but the composite's context component
 * hashes branch-path history — constant inside the loop — so the
 * realized coverage collapses to a few percent. The frontier gap
 * (oracle union minus pipeline coverage) must stay large until a
 * value-history context predictor closes it; if this test starts
 * failing on the upper bound, the predictor improved and the bound
 * (plus docs/kernel_dsl.md's worked example) should be re-pinned.
 */
TEST(KernelSpecFrontier, PinnedBreakdownCtxPeriod16)
{
    const std::string text = "[iters=256]ctx(period=16)";
    std::string err;
    const auto spec = trace::parseKernelSpec(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    const std::size_t instrs = 20000;
    const auto ops = trace::generateWorkload(text, instrs, 1);
    const auto truth = trace::computeTruthProfile(spec, instrs, 1);
    const auto fam = qa::measureIdealFamilies(ops);

    // Ground truth and the measured oracle agree: order-1 value
    // context captures the stream almost perfectly ...
    ASSERT_GT(fam.loads, 1000u);
    EXPECT_GT(trace::truthFrac(truth.total.ctx.hits,
                               truth.total.loads),
              0.95);
    EXPECT_GT(double(fam.ctx1) / double(fam.loads), 0.95);
    EXPECT_GT(fam.unionFrac(), 0.95);

    // ... while the real composite realizes almost none of it.
    auto cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = 5000;
    vp::CompositePredictor pred(cfg);
    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.traceSeed = 1;
    const auto ps = sim::runTrace(ops, &pred, rc);
    EXPECT_LT(ps.coverage(), 0.5);

    const double gap = fam.unionFrac() - ps.coverage();
    EXPECT_GT(gap, 0.45);
}

/**
 * Second pinned frontier breakdown, from the browser/JS-like
 * phase-mix corner of the grid: randomly interleaved inline-cache
 * hits (short ctx) and property lookups over a large rng-filled
 * table (pick), then a shuffled DOM-style pointer walk (chase),
 * then a constant burst. The ideal family union captures most of
 * the stream (the ctx and const parts are near-perfect, the chase
 * addresses stride-predictable), but the composite realizes well
 * under half: the rapid phase changes churn its confidence counters
 * and the value-context part is invisible to its branch-path
 * hashing. Re-pin the bounds (and the frontier docs) if the
 * predictor learns to close this gap.
 */
TEST(KernelSpecFrontier, PinnedBreakdownBrowserPhaseMix)
{
    const std::string text =
        "[iters=96,mix=rand]ctx(period=8),pick(k=1024,fill=rng);"
        "[iters=128]chase(wset=128,order=shuffle);"
        "[iters=256]const(v=0x1)";
    std::string err;
    const auto spec = trace::parseKernelSpec(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    const std::size_t instrs = 20000;
    const auto ops = trace::generateWorkload(text, instrs, 1);
    const auto fam = qa::measureIdealFamilies(ops);

    ASSERT_GT(fam.loads, 1000u);
    EXPECT_GT(fam.unionFrac(), 0.7);

    auto cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = 5000;
    vp::CompositePredictor pred(cfg);
    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.traceSeed = 1;
    const auto ps = sim::runTrace(ops, &pred, rc);
    EXPECT_LT(ps.coverage(), 0.5);

    const double gap = fam.unionFrac() - ps.coverage();
    EXPECT_GT(gap, 0.3);
}
