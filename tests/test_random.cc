#include <gtest/gtest.h>

#include "common/random.hh"

using namespace lvpsim;

TEST(Random, DeterministicForSeed)
{
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Random, BelowStaysInRange)
{
    Xoshiro256 r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Xoshiro256 r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, BernoulliEdgeCases)
{
    Xoshiro256 r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(0.0));
    }
}

TEST(Random, BernoulliRateRoughlyCorrect)
{
    Xoshiro256 r(11);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.25) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Random, UniformInUnitInterval)
{
    Xoshiro256 r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, BelowIsRoughlyUniform)
{
    Xoshiro256 r(17);
    int counts[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(8)];
    for (int c : counts)
        EXPECT_NEAR(double(c) / n, 0.125, 0.01);
}

TEST(Random, SplitMix64Deterministic)
{
    SplitMix64 a(42), b(42);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
}
