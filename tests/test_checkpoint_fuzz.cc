/**
 * @file
 * Property-based fuzz of core checkpoint/restore: for seeded random
 * traces and core configurations, a core that is warmed up, saved,
 * and allowed to continue must produce counter-identical statistics
 * to a fresh core restored from the same snapshot — with every
 * LVPSIM_CHECK pipeline invariant holding along the restored run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/composite.hh"
#include "pipeline/core.hh"
#include "qa/generators.hh"
#include "qa/property.hh"

using namespace lvpsim;

namespace
{

std::vector<std::pair<std::string, std::uint64_t>>
flat(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

const std::vector<pipe::ComponentId> kComponents = {
    pipe::ComponentId::LVP, pipe::ComponentId::SAP,
    pipe::ComponentId::CVP, pipe::ComponentId::CAP};

} // anonymous namespace

TEST(CheckpointFuzz, RestoredCoreMatchesContinuedCore)
{
    const auto res = qa::forAllSeeds(
        25, 0xc4ec9, [](qa::Gen &g) -> bool {
            qa::TraceGenConfig tcfg;
            tcfg.minOps = 512;
            tcfg.maxOps = 3000;
            const auto code = qa::genTrace(g, tcfg);
            const auto ccfg = qa::genCoreConfig(g);
            const auto warm = g.range(32, code.size() / 2);
            const auto comp = g.pick(kComponents);

            // One core warms up, is photographed, and continues.
            auto vp1 = vp::makeSinglePredictor(comp, 256);
            pipe::Core continued(ccfg, code, vp1.get());
            continued.warmup(warm);
            pipe::Core::Snapshot snap;
            continued.saveState(snap);
            const auto s1 = continued.run();

            // A fresh core (fresh predictor — the VP is untouched
            // during warmup by construction) restores and runs.
            auto vp2 = vp::makeSinglePredictor(comp, 256);
            pipe::Core restored(ccfg, code, vp2.get());
            restored.restoreState(snap);
            const auto s2 = restored.run();

            if (flat(s1) != flat(s2))
                throw std::runtime_error(
                    "restored-core stats diverged from the "
                    "continued core");
            return true;
        });
    EXPECT_TRUE(res.ok) << res.describe();
    EXPECT_EQ(res.casesRun, 25u);
}

TEST(CheckpointFuzz, SnapshotIsReusableAcrossPredictors)
{
    // One snapshot, many measurement runs — the sweep-engine usage
    // pattern. Restoring must not consume or mutate the snapshot.
    const auto res = qa::forAllSeeds(
        8, 0x5eed5, [](qa::Gen &g) -> bool {
            qa::TraceGenConfig tcfg;
            tcfg.minOps = 512;
            tcfg.maxOps = 2048;
            const auto code = qa::genTrace(g, tcfg);
            const auto ccfg = qa::genCoreConfig(g);
            const auto warm = g.range(32, code.size() / 2);

            pipe::Core warmer(ccfg, code, nullptr);
            warmer.warmup(warm);
            pipe::Core::Snapshot snap;
            warmer.saveState(snap);

            std::vector<std::vector<
                std::pair<std::string, std::uint64_t>>> first;
            for (int round = 0; round < 2; ++round) {
                for (std::size_t c = 0; c < kComponents.size();
                     ++c) {
                    auto vp =
                        vp::makeSinglePredictor(kComponents[c], 128);
                    pipe::Core core(ccfg, code, vp.get());
                    core.restoreState(snap);
                    const auto stats = flat(core.run());
                    if (round == 0)
                        first.push_back(stats);
                    else if (first[c] != stats)
                        throw std::runtime_error(
                            "second restore from the same snapshot "
                            "diverged");
                }
            }
            return true;
        });
    EXPECT_TRUE(res.ok) << res.describe();
}
