#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "pipeline/core.hh"
#include "trace/asm_emitter.hh"

using namespace lvpsim;
using namespace lvpsim::pipe;
using namespace lvpsim::trace;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4;

/** A test predictor that replies from a PC-indexed script and checks
 *  the probe/train/abandon protocol. */
class FakePredictor : public LoadValuePredictor
{
  public:
    enum class Mode { None, Value, Address };

    Mode mode = Mode::None;
    std::unordered_map<Addr, Value> valueByPc;
    std::unordered_map<Addr, Addr> addrByPc;

    std::uint64_t probes = 0;
    std::uint64_t trains = 0;
    std::uint64_t abandons = 0;
    std::uint64_t retired = 0;
    std::unordered_set<std::uint64_t> outstanding;
    bool doubleResolve = false;

    Prediction
    predict(const LoadProbe &p) override
    {
        ++probes;
        EXPECT_TRUE(outstanding.insert(p.token).second);
        Prediction pred;
        if (mode == Mode::Value && valueByPc.count(p.pc)) {
            pred.kind = Prediction::Kind::Value;
            pred.value = valueByPc[p.pc];
            pred.component = ComponentId::LVP;
        } else if (mode == Mode::Address && addrByPc.count(p.pc)) {
            pred.kind = Prediction::Kind::Address;
            pred.addr = addrByPc[p.pc];
            pred.component = ComponentId::SAP;
        }
        return pred;
    }

    void
    train(const LoadOutcome &o) override
    {
        ++trains;
        if (outstanding.erase(o.token) != 1)
            doubleResolve = true;
    }

    void
    abandon(std::uint64_t token) override
    {
        ++abandons;
        if (outstanding.erase(token) != 1)
            doubleResolve = true;
    }

    void onRetire(std::uint64_t n) override { retired += n; }

    std::uint64_t storageBits() const override { return 0; }
    const char *name() const override { return "fake"; }
};

/** Serial chase through a self-pointing cell: load value == address,
 *  every instance identical; the load-to-load dependence is the
 *  critical path. */
std::vector<MicroOp>
selfChaseTrace(std::size_t n)
{
    std::vector<MicroOp> out;
    Asm a(out, n, 1);
    constexpr Addr cell = 0x10000;
    a.mem().write(cell, cell, 8);
    a.imm("p0", r1, cell);
    while (!a.done())
        a.load("chase", r1, r1, 0, 8);
    return out;
}

Addr
firstLoadPc(const std::vector<MicroOp> &ops)
{
    for (const auto &op : ops)
        if (op.isLoad())
            return op.pc;
    return 0;
}

SimStats
runOn(const std::vector<MicroOp> &ops, LoadValuePredictor *vp)
{
    CoreConfig cfg;
    Core core(cfg, ops, vp);
    return core.run();
}

} // anonymous namespace

TEST(Core, CommitsEveryInstruction)
{
    const auto ops = selfChaseTrace(5000);
    const auto s = runOn(ops, nullptr);
    EXPECT_EQ(s.instructions, ops.size());
}

TEST(Core, SerialAluChainIsOneIpc)
{
    std::vector<MicroOp> out;
    Asm a(out, 8000, 1);
    a.imm("z", r1, 0);
    while (!a.done())
        a.addi("inc", r1, r1, 1);
    const auto s = runOn(out, nullptr);
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(Core, IndependentOpsHitFetchWidth)
{
    std::vector<MicroOp> out;
    Asm a(out, 8000, 1);
    while (!a.done())
        a.imm("c", r1, 42);
    const auto s = runOn(out, nullptr);
    // Table III: fetch-through-rename is 4 wide.
    EXPECT_NEAR(s.ipc(), 4.0, 0.1);
}

TEST(Core, LoadStoreLanesLimitThroughput)
{
    // Independent loads from one warm cell: bounded by the 2 LS
    // lanes, not by the 4-wide front end.
    std::vector<MicroOp> out;
    Asm a(out, 30000, 1);
    a.mem().write(0x20000, 7, 8);
    a.imm("b", r1, 0x20000);
    while (!a.done())
        a.load("ld", r2, r1, 0, 8);
    const auto s = runOn(out, nullptr);
    // The single cold miss (~270 cycles) amortizes over 30K loads.
    EXPECT_NEAR(s.ipc(), 2.0, 0.1);
}

TEST(Core, SerialLoadChainPaysLoadToUse)
{
    const auto ops = selfChaseTrace(6000);
    const auto s = runOn(ops, nullptr);
    // AGU (1) + L1D (2) per chained load.
    EXPECT_NEAR(s.ipc(), 1.0 / 3.0, 0.05);
}

TEST(Core, CorrectValuePredictionBreaksTheChain)
{
    const auto ops = selfChaseTrace(6000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Value;
    vp.valueByPc[firstLoadPc(ops)] = 0x10000; // the correct value
    const auto s = runOn(ops, &vp);
    // Loads become address-independent: LS lanes allow ~2 IPC.
    EXPECT_GT(s.ipc(), 1.5);
    EXPECT_EQ(s.predictionsWrong, 0u);
    EXPECT_GT(s.predictionsUsed, 5000u);
    EXPECT_EQ(s.vpFlushes, 0u);
}

TEST(Core, WrongValuePredictionFlushes)
{
    const auto ops = selfChaseTrace(3000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Value;
    vp.valueByPc[firstLoadPc(ops)] = 0xdead; // always wrong
    const auto s = runOn(ops, &vp);
    // Each wrong used prediction flushes; squashed loads re-fetch
    // with an empty stashed prediction (history-checkpoint model), so
    // the flush count is bounded by fresh fetches, not refetches.
    EXPECT_GT(s.vpFlushes, 100u);
    EXPECT_GT(s.squashedOps, 0u);
    EXPECT_EQ(s.predictionsCorrect, 0u);
    // Flush-based recovery is expensive (the paper's premise).
    const auto base = runOn(ops, nullptr);
    EXPECT_LT(s.ipc(), base.ipc());
    // All instructions still commit with correct architectural state.
    EXPECT_EQ(s.instructions, ops.size());
}

TEST(Core, ProbeTokenProtocolHolds)
{
    // Even under heavy flushing, every probe resolves exactly once.
    const auto ops = selfChaseTrace(3000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Value;
    vp.valueByPc[firstLoadPc(ops)] = 0xdead;
    runOn(ops, &vp);
    EXPECT_TRUE(vp.outstanding.empty());
    EXPECT_FALSE(vp.doubleResolve);
    EXPECT_EQ(vp.probes, vp.trains + vp.abandons);
}

TEST(Core, OnRetireSeesEveryInstruction)
{
    const auto ops = selfChaseTrace(2000);
    FakePredictor vp;
    const auto s = runOn(ops, &vp);
    EXPECT_EQ(vp.retired, s.instructions);
}

TEST(Core, CorrectAddressPredictionUsesPaq)
{
    const auto ops = selfChaseTrace(6000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Address;
    vp.addrByPc[firstLoadPc(ops)] = 0x10000;
    const auto s = runOn(ops, &vp);
    EXPECT_GT(s.paqProbes, 1000u);
    EXPECT_GT(s.predictionsUsed, 1000u);
    EXPECT_EQ(s.predictionsWrong, 0u);
    const auto base = runOn(ops, nullptr);
    EXPECT_GT(s.ipc(), base.ipc());
}

TEST(Core, ColdAddressPredictionsAreDropped)
{
    const auto ops = selfChaseTrace(3000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Address;
    // Predict an address in a block that is never demand-fetched:
    // every PAQ probe misses the D-cache and the prediction is
    // dropped (paper: miss prefetch, step 5, is disabled).
    vp.addrByPc[firstLoadPc(ops)] = 0x11000;
    const auto s = runOn(ops, &vp);
    EXPECT_GT(s.paqMisses, 0u);
    EXPECT_EQ(s.predictionsUsed, 0u);
    EXPECT_EQ(s.vpFlushes, 0u);
    EXPECT_EQ(s.instructions, ops.size());
}

TEST(Core, WrongAddressInWarmBlockFlushes)
{
    const auto ops = selfChaseTrace(3000);
    FakePredictor vp;
    vp.mode = FakePredictor::Mode::Address;
    // 0x10008 shares the 64B block with the real cell, so probes hit
    // the D-cache and deliver a wrong value: validation must flush.
    vp.addrByPc[firstLoadPc(ops)] = 0x10008;
    const auto s = runOn(ops, &vp);
    EXPECT_GT(s.vpFlushes, 100u);
    EXPECT_EQ(s.instructions, ops.size());
}

TEST(Core, ExclusiveLoadsAreNeverProbed)
{
    std::vector<MicroOp> out;
    Asm a(out, 2000, 1);
    a.imm("b", r1, 0x30000);
    while (!a.done())
        a.loadExclusive("ldx", r2, r1, 0, 8);
    FakePredictor vp;
    const auto s = runOn(out, &vp);
    EXPECT_EQ(vp.probes, 0u);
    EXPECT_EQ(s.eligibleLoads, 0u);
    EXPECT_GT(s.loads, 0u);
}

TEST(Core, BranchMispredictsHurt)
{
    // Random 50/50 branches vs always-taken branches.
    auto make = [](bool random) {
        std::vector<MicroOp> out;
        Asm a(out, 12000, random ? 5 : 6);
        a.imm("x", r1, 1);
        while (!a.done()) {
            a.addi("w", r1, r1, 1);
            const bool taken =
                random ? a.rng().bernoulli(0.5) : true;
            a.branch("br", taken, "w", r1);
        }
        return out;
    };
    const auto hard = runOn(make(true), nullptr);
    const auto easy = runOn(make(false), nullptr);
    EXPECT_GT(hard.branchMispredicts, easy.branchMispredicts * 10);
    EXPECT_LT(hard.ipc(), easy.ipc());
}

TEST(Core, RobBlocksOnLongMiss)
{
    // A cold-missing load followed by a long independent ALU stream:
    // the ROB (224) fills and commit stalls behind the miss.
    std::vector<MicroOp> out;
    Asm a(out, 1000, 1);
    a.imm("b", r1, 0x7000000);
    a.load("miss", r2, r1, 0, 8);
    while (!a.done())
        a.imm("c", r3, 9);
    const auto s = runOn(out, nullptr);
    // 1000 instructions at width 4 would be ~250 cycles; the 270-cycle
    // miss plus ROB pressure must show up.
    EXPECT_GT(s.cycles, 300u);
}

TEST(Core, MemoryOrderViolationRecovers)
{
    // A store whose data is delayed by a dependence chain, then a
    // load of the same address: the load speculates past it the first
    // time, gets flushed, and the memdep predictor learns.
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.imm("b", r1, 0x40000);
    a.imm("v", r2, 1);
    while (!a.done()) {
        // Delay chain feeding the store data.
        for (int i = 0; i < 6; ++i)
            a.mul("slow", r2, r2, r2);
        a.addi("v2", r2, r2, 1);
        a.store("st", r2, r1, 0, 8);
        a.load("ld", r3, r1, 0, 8);
        a.add("use", r4, r3, r3);
    }
    const auto s = runOn(out, nullptr);
    EXPECT_GT(s.memOrderFlushes, 0u);
    EXPECT_EQ(s.instructions, out.size());
    // The wait-table must stop the bleeding: far fewer flushes than
    // loop iterations.
    EXPECT_LT(s.memOrderFlushes, out.size() / 10 / 2);
}

TEST(Core, DeterministicAcrossRuns)
{
    const auto ops = selfChaseTrace(4000);
    CoreConfig cfg;
    Core c1(cfg, ops, nullptr), c2(cfg, ops, nullptr);
    const auto s1 = c1.run(), s2 = c2.run();
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.instructions, s2.instructions);
    EXPECT_EQ(s1.branchMispredicts, s2.branchMispredicts);
}

TEST(Core, MaxInstrsStopsEarly)
{
    const auto ops = selfChaseTrace(5000);
    CoreConfig cfg;
    Core core(cfg, ops, nullptr);
    const auto s = core.run(1000);
    EXPECT_GE(s.instructions, 1000u);
    EXPECT_LT(s.instructions, 1200u);
}

TEST(Core, BarriersDrainBeforeIssuing)
{
    std::vector<MicroOp> out;
    Asm a(out, 4000, 1);
    a.imm("b", r1, 0x50000);
    while (!a.done()) {
        a.load("ld", r2, r1, 0, 8);
        a.barrier("dmb");
        a.imm("c", r3, 1);
    }
    const auto s = runOn(out, nullptr);
    EXPECT_EQ(s.instructions, out.size());
    // Barriers serialize: IPC must be well below the LS-lane bound.
    EXPECT_LT(s.ipc(), 1.5);
}
