/**
 * @file
 * Tests for the sim-layer odds and ends: env-var run scaling, table
 * printing, and SimStats derived metrics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "pipeline/sim_stats.hh"
#include "sim/options.hh"
#include "sim/tableio.hh"

using namespace lvpsim;
using namespace lvpsim::sim;

TEST(Options, InstrsDefaultWhenUnset)
{
    unsetenv("LVPSIM_INSTRS");
    EXPECT_EQ(instrsFromEnv(12345), 12345u);
}

TEST(Options, InstrsFromEnvironment)
{
    setenv("LVPSIM_INSTRS", "777", 1);
    EXPECT_EQ(instrsFromEnv(1), 777u);
    unsetenv("LVPSIM_INSTRS");
}

TEST(Options, InstrsIgnoresGarbage)
{
    setenv("LVPSIM_INSTRS", "not-a-number", 1);
    EXPECT_EQ(instrsFromEnv(42), 42u);
    setenv("LVPSIM_INSTRS", "-5", 1);
    EXPECT_EQ(instrsFromEnv(42), 42u);
    unsetenv("LVPSIM_INSTRS");
}

TEST(Options, SuiteSelection)
{
    setenv("LVPSIM_SUITE", "smoke", 1);
    const auto smoke = suiteFromEnv();
    unsetenv("LVPSIM_SUITE");
    const auto full = suiteFromEnv();
    EXPECT_LT(smoke.size(), full.size());
    EXPECT_EQ(smoke.size(), 8u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer_name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("longer_name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Header and two rows plus the rule line.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, CsvOutputIsGreppable)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os, "mytag");
    EXPECT_NE(os.str().find("CSV,mytag,x,y"), std::string::npos);
    EXPECT_NE(os.str().find("CSV,mytag,1,2"), std::string::npos);
}

TEST(Formatting, Helpers)
{
    EXPECT_EQ(fmtPct(0.5, 0), "50%");
    EXPECT_EQ(fmtPct(0.1234), "12.34%");
    EXPECT_EQ(fmtF(1.5, 1), "1.5");
    EXPECT_EQ(fmtKB(9.6, 1), "9.6KB");
}

TEST(SimStats, DerivedMetrics)
{
    pipe::SimStats s;
    s.cycles = 100;
    s.instructions = 250;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
    s.eligibleLoads = 200;
    s.predictionsUsed = 50;
    s.predictionsCorrect = 49;
    EXPECT_DOUBLE_EQ(s.coverage(), 0.25);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.98);
}

TEST(SimStats, EdgeCasesDoNotDivideByZero)
{
    pipe::SimStats s;
    EXPECT_EQ(s.ipc(), 0.0);
    EXPECT_EQ(s.coverage(), 0.0);
    EXPECT_EQ(s.accuracy(), 1.0); // no used predictions = no errors
}

TEST(SimStats, DumpMentionsKeyFields)
{
    pipe::SimStats s;
    s.cycles = 10;
    s.instructions = 20;
    s.usedByComponent[0] = 5;
    std::ostringstream os;
    s.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cycles"), std::string::npos);
    EXPECT_NE(out.find("coverage"), std::string::npos);
    EXPECT_NE(out.find("LVP"), std::string::npos);
}
