/**
 * @file
 * Cross-cutting property tests: parameterized sweeps over predictor
 * budgets, optimization combinations and workloads, checking the
 * invariants the paper's design rests on.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/composite.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using namespace lvpsim::sim;

namespace
{

RunConfig
quick(std::size_t instrs = 50000)
{
    RunConfig rc;
    rc.maxInstrs = instrs;
    return rc;
}

vp::CompositeConfig
withEpochs(vp::CompositeConfig cfg, std::size_t instrs)
{
    cfg.epochInstrs = std::max<std::size_t>(1000, instrs / 40);
    return cfg;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Sweep: composite budget x optimization set.
// ---------------------------------------------------------------------

struct ComboParam
{
    std::size_t total;
    bool am;
    bool smart;
    bool fusion;
};

class CompositeCombo : public ::testing::TestWithParam<ComboParam>
{
  protected:
    vp::CompositeConfig
    config() const
    {
        const auto p = GetParam();
        auto cfg = vp::CompositeConfig::homogeneous(p.total);
        if (p.am)
            cfg.am = vp::AmKind::PcAm;
        cfg.smartTraining = p.smart;
        cfg.tableFusion = p.fusion;
        return withEpochs(cfg, 50000);
    }
};

TEST_P(CompositeCombo, RunsCleanAndStaysAccurate)
{
    const auto rc = quick();
    for (const char *w : {"memset_loop", "pointer_chase",
                          "interp_dispatch"}) {
        vp::CompositePredictor p(config());
        const auto s = runWorkload(w, &p, rc);
        EXPECT_EQ(s.instructions, rc.maxInstrs) << w;
        if (s.predictionsUsed > 200) {
            EXPECT_GT(s.accuracy(), 0.95) << w;
        }
        // Probe/train/abandon bookkeeping must balance: no leaked
        // per-token snapshots once the pipeline has drained.
        EXPECT_EQ(p.pendingSnapshots(), 0u) << w;
    }
}

TEST_P(CompositeCombo, DeterministicAcrossIdenticalRuns)
{
    const auto rc = quick(30000);
    auto once = [&] {
        vp::CompositePredictor p(config());
        return runWorkload("interp_dispatch", &p, rc);
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.predictionsUsed, b.predictionsUsed);
    EXPECT_EQ(a.predictionsWrong, b.predictionsWrong);
}

TEST_P(CompositeCombo, StorageAccountingPositiveAndBounded)
{
    vp::CompositePredictor p(config());
    const auto bits = p.storageBits();
    const auto p_total = GetParam().total;
    // Between 60 and 90 bits per entry, plus a small AM.
    EXPECT_GT(bits, std::uint64_t(p_total) * 60);
    EXPECT_LT(bits, std::uint64_t(p_total) * 90 + 10000);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndOpts, CompositeCombo,
    ::testing::Values(
        ComboParam{256, false, false, false},
        ComboParam{256, true, true, true},
        ComboParam{1024, false, false, false},
        ComboParam{1024, true, false, false},
        ComboParam{1024, false, true, false},
        ComboParam{1024, false, false, true},
        ComboParam{1024, true, true, true},
        ComboParam{4096, true, true, true}),
    [](const ::testing::TestParamInfo<ComboParam> &info) {
        const auto &p = info.param;
        return "n" + std::to_string(p.total) +
               (p.am ? "_am" : "") + (p.smart ? "_smart" : "") +
               (p.fusion ? "_fusion" : "");
    });

// ---------------------------------------------------------------------
// Sweep: every workload stays sane under the full composite.
// ---------------------------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, CompositeDoesNotTankIt)
{
    const auto rc = quick(40000);
    pipe::NullPredictor none;
    const auto base = runWorkload(GetParam(), &none, rc);
    vp::CompositePredictor p(
        withEpochs(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
    const auto s = runWorkload(GetParam(), &p, rc);
    // The paper's tuned design never loses meaningfully on any
    // workload (Figure 12 shows no negative bars).
    EXPECT_GT(s.ipc() / base.ipc(), 0.95) << GetParam();
}

TEST_P(WorkloadSweep, UsedPredictionsAreAccurate)
{
    const auto rc = quick(40000);
    vp::CompositePredictor p(
        withEpochs(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
    const auto s = runWorkload(GetParam(), &p, rc);
    if (s.predictionsUsed > 500) {
        EXPECT_GT(s.accuracy(), 0.90) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweep,
    ::testing::ValuesIn(trace::allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// Monotonicity-style properties.
// ---------------------------------------------------------------------

TEST(Properties, LongerRunsTakeMoreCycles)
{
    pipe::NullPredictor none;
    RunConfig rc1 = quick(20000), rc2 = quick(40000);
    const auto s1 = runWorkload("stream_sum", &none, rc1);
    const auto s2 = runWorkload("stream_sum", &none, rc2);
    EXPECT_GT(s2.cycles, s1.cycles);
}

TEST(Properties, BiggerCompositeNeverMuchWorse)
{
    // Coverage should broadly grow with budget on a diverse kernel.
    const auto rc = quick(60000);
    double prev = -1.0;
    for (std::size_t total : {256, 1024, 4096}) {
        vp::CompositePredictor p(
            vp::CompositeConfig::homogeneous(total));
        const auto s = runWorkload("interp_dispatch", &p, rc);
        EXPECT_GT(s.coverage(), prev * 0.7)
            << "collapse at " << total;
        prev = s.coverage();
    }
}

TEST(Properties, SeedChangesTraceButNotValidity)
{
    // Different trace seeds give different traces that still satisfy
    // all structural invariants end to end.
    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
        RunConfig rc = quick(20000);
        rc.traceSeed = seed;
        pipe::NullPredictor none;
        const auto s = runWorkload("hash_probe", &none, rc);
        EXPECT_EQ(s.instructions, rc.maxInstrs);
        EXPECT_GT(s.ipc(), 0.05);
    }
}
