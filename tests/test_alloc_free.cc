/**
 * @file
 * Proof of the PR's allocation-free steady state: after a warm-up
 * run (caches filled, scratch buffers at capacity, hash maps at
 * their reserved sizes), continuing the simulation for tens of
 * thousands of instructions performs ZERO heap allocations.
 *
 * The proof instruments the global operator new/delete in this test
 * binary only. Because of that, this binary must NOT carry the
 * smoke/fuzz labels: tools/run_sanitizers.sh rebuilds those subsets
 * under ASan, whose interceptors clash with a user-replaced
 * operator new.
 */

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/composite.hh"
#include "pipeline/core.hh"
#include "trace/workloads.hh"

namespace
{

std::uint64_t g_allocCount = 0;

void *
countedAlloc(std::size_t n)
{
    ++g_allocCount;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // anonymous namespace

// Replaceable global allocation functions (count every heap
// allocation made by the process, gtest included; tests diff the
// counter around the region of interest).
void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace lvpsim;
using trace::MicroOp;

/**
 * Warm @p core up to @p warm_instrs committed instructions, then
 * continue to @p total_instrs and return the number of heap
 * allocations the continuation performed.
 */
std::uint64_t
allocsInSteadyState(pipe::Core &core, std::uint64_t warm_instrs,
                    std::uint64_t total_instrs)
{
    core.run(warm_instrs);
    const std::uint64_t before = g_allocCount;
    const auto stats = core.run(total_instrs);
    EXPECT_GT(stats.instructions, 0u) << "continuation ran dry";
    return g_allocCount - before;
}

} // anonymous namespace

TEST(AllocFree, SteadyStateCycleLoopNoPredictor)
{
    // interp_dispatch is the branchiest smoke workload: constant
    // mispredict squashes exercise the refetch stash and the
    // ring-buffer pop paths, not just the happy path.
    const auto ops =
        trace::generateWorkload("interp_dispatch", 40000, 1);
    pipe::CoreConfig cfg;
    pipe::Core core(cfg, ops, nullptr);
    EXPECT_EQ(allocsInSteadyState(core, 8000, 40000), 0u);
}

TEST(AllocFree, SteadyStateCycleLoopCompositePredictor)
{
    // Full composite predictor: per-token snapshots, value stores,
    // and the in-core prediction maps all run off their reserves.
    const auto ops = trace::generateWorkload("hash_probe", 40000, 1);
    vp::CompositePredictor vp(
        vp::CompositeConfig::homogeneous(4096));
    pipe::CoreConfig cfg;
    pipe::Core core(cfg, ops, &vp);
    EXPECT_EQ(allocsInSteadyState(core, 8000, 40000), 0u);
}

TEST(AllocFree, SteadyStateAcrossSquashHeavyPointerChase)
{
    // pointer_chase with the composite stresses long-latency loads
    // plus value mispredict flushes (vp_flushes > 0 in the smoke
    // suite results), i.e. the squash/stash path under prediction.
    const auto ops =
        trace::generateWorkload("pointer_chase", 40000, 1);
    vp::CompositePredictor vp(
        vp::CompositeConfig::homogeneous(4096));
    pipe::CoreConfig cfg;
    pipe::Core core(cfg, ops, &vp);
    EXPECT_EQ(allocsInSteadyState(core, 8000, 40000), 0u);
}
