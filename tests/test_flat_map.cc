/**
 * @file
 * Unit tests for common/flat_map.hh: insert/find/erase semantics,
 * reserve() pre-sizing, growth, iteration, and -- via a degenerate
 * hash functor that forces probe clusters -- the backward-shift
 * deletion paths (erase inside a probe chain, chains wrapping the
 * table end).
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_map.hh"

using lvpsim::FlatMap;

TEST(FlatMap, EmptyMapBehaves)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), 0u); // no allocation until first use
    EXPECT_EQ(m.find(42), m.end());
    EXPECT_FALSE(m.contains(42));
    EXPECT_EQ(m.erase(42), 0u);
    EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindEraseRoundTrip)
{
    FlatMap<std::uint64_t, int> m;
    m[7] = 70;
    m[9] = 90;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), m.end());
    EXPECT_EQ(m.find(7)->second, 70);
    EXPECT_EQ(m.find(9)->second, 90);
    m[7] = 71; // overwrite through operator[]
    EXPECT_EQ(m.find(7)->second, 71);
    EXPECT_EQ(m.erase(7), 1u);
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EmplaceOnlyInsertsWhenAbsent)
{
    FlatMap<std::uint64_t, int> m;
    auto r1 = m.emplace(5, 50);
    EXPECT_TRUE(r1.second);
    EXPECT_EQ(r1.first->second, 50);
    auto r2 = m.emplace(5, 99); // present: value untouched
    EXPECT_FALSE(r2.second);
    EXPECT_EQ(r2.first->second, 50);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseByIterator)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 8; ++k)
        m[k] = int(k);
    auto it = m.find(3);
    ASSERT_NE(it, m.end());
    m.erase(it);
    EXPECT_EQ(m.size(), 7u);
    EXPECT_FALSE(m.contains(3));
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(m.contains(k), k != 3) << k;
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(100);
    const std::size_t cap = m.capacity();
    EXPECT_GE(cap * 3, 100u * 4); // load factor <= 3/4 at 100 live
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k * 977] = int(k);
    EXPECT_EQ(m.capacity(), cap); // no growth below the reserve
    EXPECT_EQ(m.size(), 100u);
}

TEST(FlatMap, GrowsWhenUnderReserved)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k] = int(2 * k);
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_TRUE(m.contains(k)) << k;
        EXPECT_EQ(m.find(k)->second, int(2 * k));
    }
    // Load factor bound held through every doubling.
    EXPECT_GE(m.capacity() * 3, m.size() * 4);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, int> m;
    std::set<std::uint64_t> want;
    for (std::uint64_t k = 10; k < 40; k += 3) {
        m[k] = int(k);
        want.insert(k);
    }
    std::set<std::uint64_t> got;
    for (const auto &kv : m) {
        EXPECT_EQ(kv.second, int(kv.first));
        EXPECT_TRUE(got.insert(kv.first).second) << "dup key";
    }
    EXPECT_EQ(got, want);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, int> m(64);
    const std::size_t cap = m.capacity();
    for (std::uint64_t k = 0; k < 50; ++k)
        m[k] = 1;
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.begin(), m.end());
    m[3] = 4;
    EXPECT_EQ(m.find(3)->second, 4);
}

namespace
{

/** Degenerate hash: collapses groups of 4 keys onto one home slot,
 *  forcing long probe chains deterministically. */
struct ClusterHash
{
    std::uint64_t operator()(std::uint64_t k) const { return k / 4; }
};

using ClusterMap = FlatMap<std::uint64_t, int, ClusterHash>;

} // anonymous namespace

TEST(FlatMap, EraseInsideProbeChainKeepsLaterMembersReachable)
{
    // Keys 0..3 share home slot 0, 4..7 share home slot 1: one long
    // displaced chain. Erasing an early member must backward-shift
    // the rest, not orphan them behind a hole.
    ClusterMap m(16);
    for (std::uint64_t k = 0; k < 8; ++k)
        m[k] = int(100 + k);
    ASSERT_EQ(m.size(), 8u);
    m.erase(std::uint64_t(1));
    for (std::uint64_t k = 0; k < 8; ++k) {
        if (k == 1) {
            EXPECT_FALSE(m.contains(k));
            continue;
        }
        ASSERT_TRUE(m.contains(k)) << k;
        EXPECT_EQ(m.find(k)->second, int(100 + k)) << k;
    }
    // Erase from the middle and the tail of the shifted chain too.
    m.erase(std::uint64_t(5));
    m.erase(std::uint64_t(7));
    for (std::uint64_t k : {0u, 2u, 3u, 4u, 6u})
        EXPECT_TRUE(m.contains(k)) << k;
    EXPECT_EQ(m.size(), 5u);
}

TEST(FlatMap, EraseDuringWrappedProbeChain)
{
    // Home the cluster at the last slot so its probe chain wraps
    // around the table end; backward shift must honor the wrap.
    ClusterMap m(16); // 32 physical slots after reserve(16)
    const std::uint64_t last_home = m.capacity() - 1;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 4; ++i)
        keys.push_back(last_home * 4 + i); // all home at last slot
    for (std::uint64_t k : keys)
        m[k] = int(k);
    m.erase(keys[0]); // hole at the end; survivors live past the wrap
    for (std::size_t i = 1; i < keys.size(); ++i) {
        ASSERT_TRUE(m.contains(keys[i])) << i;
        EXPECT_EQ(m.find(keys[i])->second, int(keys[i]));
    }
    EXPECT_EQ(m.size(), 3u);
}

TEST(FlatMap, RepeatedInsertEraseAtFixedSizeIsStable)
{
    // The hot-path pattern: per-token snapshots inserted and erased
    // at a bounded live count. Size and content must stay exact and
    // the table must not degrade (no tombstone rot by construction).
    FlatMap<std::uint64_t, std::uint64_t> m(64);
    const std::size_t cap = m.capacity();
    std::uint64_t next = 1;
    for (std::uint64_t k = next; k <= 48; ++k)
        m[k] = k * 3;
    for (int round = 0; round < 2000; ++round) {
        ASSERT_EQ(m.erase(next), 1u);
        ++next;
        const std::uint64_t fresh = next + 47;
        m[fresh] = fresh * 3;
        ASSERT_EQ(m.size(), 48u);
    }
    EXPECT_EQ(m.capacity(), cap);
    for (std::uint64_t k = next; k < next + 48; ++k) {
        ASSERT_TRUE(m.contains(k)) << k;
        EXPECT_EQ(m.find(k)->second, k * 3);
    }
}
