/**
 * @file
 * Property: trace file I/O is a lossless, canonical round trip. For
 * fuzzed traces across 100 seeds, write -> read -> write must be
 * byte-identical (so the on-disk encoding is a function of the trace
 * alone), and the re-read ops must equal the originals field by
 * field.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "qa/generators.hh"
#include "qa/property.hh"
#include "trace/cvp_trace.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"

using namespace lvpsim;
using trace::MicroOp;

namespace
{

bool
sameOps(const std::vector<MicroOp> &a, const std::vector<MicroOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const MicroOp &x = a[i], &y = b[i];
        if (x.pc != y.pc || x.cls != y.cls || x.dst != y.dst ||
            x.src != y.src || x.effAddr != y.effAddr ||
            x.memSize != y.memSize || x.memValue != y.memValue ||
            x.exclusiveMem != y.exclusiveMem || x.taken != y.taken ||
            x.target != y.target)
            return false;
    }
    return true;
}

} // anonymous namespace

TEST(TraceRoundTripFuzz, WriteReadWriteIsByteIdentical)
{
    const auto r = qa::forAllSeeds(100, 0xf00d, [](qa::Gen &g) {
        const auto ops = qa::genTrace(g);

        std::ostringstream first;
        if (!trace::writeTrace(first, ops))
            throw std::runtime_error("first write failed");

        std::istringstream in(first.str());
        std::vector<MicroOp> back;
        std::string err;
        if (!trace::readTrace(in, back, &err))
            throw std::runtime_error("read failed: " + err);
        if (!sameOps(ops, back))
            throw std::runtime_error("ops changed across round trip");

        std::ostringstream second;
        if (!trace::writeTrace(second, back))
            throw std::runtime_error("second write failed");
        return first.str() == second.str();
    });
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_EQ(r.casesRun, 100u);
}

TEST(TraceRoundTripFuzz, RecordReplayThroughTraceSource)
{
    // The recorder/RecordedSource pair: any fuzzed trace written via
    // recordTrace() replays bit-identically (and with an unchanged
    // content hash) through the TraceSource interface.
    const auto r = qa::forAllSeeds(40, 0x5eed, [](qa::Gen &g) {
        const auto ops = qa::genTrace(g);
        const std::string path = testing::TempDir() +
                                 "fuzz_roundtrip_" +
                                 std::to_string(g.seed()) + ".lvpt";

        std::ostringstream os;
        if (!trace::writeTrace(os, ops))
            throw std::runtime_error("write failed");
        {
            std::ofstream f(path, std::ios::binary);
            f << os.str();
        }
        std::string err;
        auto src = trace::RecordedSource::open(path, &err);
        std::remove(path.c_str());
        if (!src)
            throw std::runtime_error("open failed: " + err);
        if (src->instructionCount() != ops.size())
            return false;
        if (!sameOps(ops, src->instructions()))
            return false;
        return trace::hashTrace(src->instructions()) ==
               trace::hashTrace(ops);
    });
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_EQ(r.casesRun, 40u);
}

TEST(CvpRoundTripFuzz, ReadBackEqualsProjection)
{
    // CVP-1 export/import: for fuzzed traces, write -> read equals
    // cvpProjection() field by field, and the projection is a fixed
    // point (round-tripping it again is byte-identical).
    const auto r = qa::forAllSeeds(60, 0xc0de, [](qa::Gen &g) {
        const auto ops = qa::genTrace(g);

        std::ostringstream first;
        if (!trace::writeCvpTrace(first, ops))
            throw std::runtime_error("first write failed");

        std::istringstream in(first.str());
        std::vector<MicroOp> back;
        std::string err;
        if (!trace::readCvpTrace(in, back, &err))
            throw std::runtime_error("read failed: " + err);
        if (back.size() != ops.size())
            return false;
        std::vector<MicroOp> projected;
        projected.reserve(ops.size());
        for (const MicroOp &op : ops)
            projected.push_back(trace::cvpProjection(op));
        if (!sameOps(projected, back))
            return false;

        std::ostringstream second;
        if (!trace::writeCvpTrace(second, back))
            throw std::runtime_error("second write failed");
        std::istringstream in2(second.str());
        std::vector<MicroOp> again;
        if (!trace::readCvpTrace(in2, again, &err))
            throw std::runtime_error("re-read failed: " + err);
        if (!sameOps(back, again))
            return false;
        std::ostringstream third;
        if (!trace::writeCvpTrace(third, again))
            throw std::runtime_error("third write failed");
        return second.str() == third.str();
    });
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_EQ(r.casesRun, 60u);
}

TEST(TraceRoundTripFuzz, EmptyTraceRoundTrips)
{
    std::ostringstream os;
    ASSERT_TRUE(trace::writeTrace(os, {}));
    std::istringstream is(os.str());
    std::vector<MicroOp> back{MicroOp{}}; // must be replaced
    std::string err;
    ASSERT_TRUE(trace::readTrace(is, back, &err)) << err;
    EXPECT_TRUE(back.empty());
}
