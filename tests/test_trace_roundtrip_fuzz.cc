/**
 * @file
 * Property: trace file I/O is a lossless, canonical round trip. For
 * fuzzed traces across 100 seeds, write -> read -> write must be
 * byte-identical (so the on-disk encoding is a function of the trace
 * alone), and the re-read ops must equal the originals field by
 * field.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "qa/generators.hh"
#include "qa/property.hh"
#include "trace/trace_io.hh"

using namespace lvpsim;
using trace::MicroOp;

namespace
{

bool
sameOps(const std::vector<MicroOp> &a, const std::vector<MicroOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const MicroOp &x = a[i], &y = b[i];
        if (x.pc != y.pc || x.cls != y.cls || x.dst != y.dst ||
            x.src != y.src || x.effAddr != y.effAddr ||
            x.memSize != y.memSize || x.memValue != y.memValue ||
            x.exclusiveMem != y.exclusiveMem || x.taken != y.taken ||
            x.target != y.target)
            return false;
    }
    return true;
}

} // anonymous namespace

TEST(TraceRoundTripFuzz, WriteReadWriteIsByteIdentical)
{
    const auto r = qa::forAllSeeds(100, 0xf00d, [](qa::Gen &g) {
        const auto ops = qa::genTrace(g);

        std::ostringstream first;
        if (!trace::writeTrace(first, ops))
            throw std::runtime_error("first write failed");

        std::istringstream in(first.str());
        std::vector<MicroOp> back;
        std::string err;
        if (!trace::readTrace(in, back, &err))
            throw std::runtime_error("read failed: " + err);
        if (!sameOps(ops, back))
            throw std::runtime_error("ops changed across round trip");

        std::ostringstream second;
        if (!trace::writeTrace(second, back))
            throw std::runtime_error("second write failed");
        return first.str() == second.str();
    });
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_EQ(r.casesRun, 100u);
}

TEST(TraceRoundTripFuzz, EmptyTraceRoundTrips)
{
    std::ostringstream os;
    ASSERT_TRUE(trace::writeTrace(os, {}));
    std::istringstream is(os.str());
    std::vector<MicroOp> back{MicroOp{}}; // must be replaced
    std::string err;
    ASSERT_TRUE(trace::readTrace(is, back, &err)) << err;
    EXPECT_TRUE(back.empty());
}
