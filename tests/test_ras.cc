#include <gtest/gtest.h>

#include "branch/ras.hh"

using namespace lvpsim;
using namespace lvpsim::branch;

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(16);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(16);
    EXPECT_EQ(ras.pop(), 0u);
    ras.push(0x100);
    ras.pop();
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, DepthTracksEntries)
{
    ReturnAddressStack ras(16);
    EXPECT_EQ(ras.depth(), 0u);
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(ras.depth(), 2u);
    ras.pop();
    EXPECT_EQ(ras.depth(), 1u);
}

TEST(Ras, OverflowWrapsAndLosesOldest)
{
    // Table III: 16 entries. Deep recursion overwrites the oldest.
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a);
    EXPECT_EQ(ras.depth(), 4u);
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 0u); // 1 and 2 were lost to wrap-around
}

TEST(Ras, BalancedCallsAlwaysMatch)
{
    ReturnAddressStack ras(16);
    for (int rep = 0; rep < 4; ++rep) {
        for (Addr d = 0; d < 8; ++d)
            ras.push(0x1000 + d);
        for (Addr d = 8; d-- > 0;)
            EXPECT_EQ(ras.pop(), 0x1000 + d);
    }
}
