#include <gtest/gtest.h>

#include "memory/cache.hh"

using namespace lvpsim;
using namespace lvpsim::mem;

namespace
{

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 64B blocks = 512B.
    return CacheConfig{"tiny", 512, 2, 64, 2};
}

} // anonymous namespace

TEST(Cache, ColdMiss)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, HitAfterFill)
{
    Cache c(tinyCache());
    c.fill(0x1000, false, nullptr);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x1004)); // same block
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, DifferentBlockMisses)
{
    Cache c(tinyCache());
    c.fill(0x1000, false, nullptr);
    EXPECT_FALSE(c.probe(0x1040)); // next block, same set? 0x1040>>6=65
}

TEST(Cache, LruEviction)
{
    Cache c(tinyCache());
    // Three blocks mapping to the same set (stride = sets*block =
    // 4*64 = 256).
    c.fill(0x0000, false, nullptr);
    c.fill(0x0100, false, nullptr);
    c.probe(0x0000); // touch to make 0x100 the LRU
    c.fill(0x0200, false, nullptr);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0100));
    EXPECT_TRUE(c.contains(0x0200));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(tinyCache());
    bool wb = false;
    c.fill(0x0000, true, &wb); // dirty fill
    EXPECT_FALSE(wb);
    c.fill(0x0100, false, &wb);
    EXPECT_FALSE(wb);
    Addr evicted = c.fill(0x0200, false, &wb); // evicts dirty 0x0000
    EXPECT_TRUE(wb);
    EXPECT_EQ(evicted, 0x0000u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(tinyCache());
    bool wb = true;
    c.fill(0x0000, false, &wb);
    c.fill(0x0100, false, &wb);
    c.fill(0x0200, false, &wb);
    EXPECT_FALSE(wb);
}

TEST(Cache, SetDirtyMarksForLaterWriteback)
{
    Cache c(tinyCache());
    bool wb = false;
    c.fill(0x0000, false, &wb);
    c.setDirty(0x0000);
    c.fill(0x0100, false, &wb);
    c.fill(0x0200, false, &wb);
    EXPECT_TRUE(wb);
}

TEST(Cache, ContainsDoesNotTouchLru)
{
    Cache c(tinyCache());
    c.fill(0x0000, false, nullptr);
    c.fill(0x0100, false, nullptr);
    // contains() must not refresh 0x0000's recency.
    EXPECT_TRUE(c.contains(0x0000));
    c.fill(0x0200, false, nullptr); // LRU is still 0x0000
    EXPECT_FALSE(c.contains(0x0000));
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache c(tinyCache());
    c.fill(0x1000, false, nullptr);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(Cache, FillIdempotentWhenPresent)
{
    Cache c(tinyCache());
    c.fill(0x1000, false, nullptr);
    bool wb = true;
    c.fill(0x1000, true, &wb); // re-fill marks dirty, no eviction
    EXPECT_FALSE(wb);
    c.fill(0x1100, false, nullptr);
    c.fill(0x1200, false, &wb); // dirty 0x1000 was LRU? touch order:
    // 0x1000 (refill), 0x1100, so LRU is 0x1000 -> dirty writeback.
    EXPECT_TRUE(wb);
}

TEST(Cache, GeometryMatchesTableIII)
{
    // The paper's L1D: 64KB, 4-way, 64B blocks, 2-cycle.
    CacheConfig l1{"l1d", 64 * 1024, 4, 64, 2};
    Cache c(l1);
    EXPECT_EQ(c.latency(), 2u);
    // 256 sets: fill 4 ways of one set, 5th fill evicts.
    const Addr stride = 256 * 64;
    for (int i = 0; i < 4; ++i)
        c.fill(i * stride, false, nullptr);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(c.contains(i * stride));
    c.fill(4 * stride, false, nullptr);
    EXPECT_FALSE(c.contains(0));
}
