#include <gtest/gtest.h>

#include "core/sap.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::LoadOutcome;
using pipe::LoadProbe;

namespace
{

std::uint64_t nextToken = 1;

LoadProbe
probeOf(Addr pc, unsigned inflight = 0)
{
    LoadProbe p;
    p.pc = pc;
    p.token = nextToken++;
    p.inflightSamePc = inflight;
    return p;
}

LoadOutcome
outcomeOf(Addr pc, Addr ea, unsigned size = 8)
{
    LoadOutcome o;
    o.pc = pc;
    o.token = nextToken++;
    o.effAddr = ea;
    o.size = size;
    o.value = ea * 3; // arbitrary
    return o;
}

/** Train a strided address stream. */
void
trainStride(Sap &s, Addr pc, Addr base, std::int64_t stride, int n)
{
    for (int i = 0; i < n; ++i)
        s.train(outcomeOf(pc, Addr(std::int64_t(base) + i * stride)));
}

} // anonymous namespace

TEST(Sap, NoPredictionWhenCold)
{
    Sap s(256);
    EXPECT_FALSE(s.lookup(probeOf(0x100)).confident);
}

TEST(Sap, LearnsPositiveStride)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 64, 100);
    const auto cp = s.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
    EXPECT_TRUE(cp.pred.isAddress());
    // Last trained address was 0x10000 + 99*64; next is +64.
    EXPECT_EQ(cp.pred.addr, 0x10000ull + 100 * 64);
}

TEST(Sap, LearnsZeroStride)
{
    // "possibly with stride = 0" - constant-address loads.
    Sap s(256, 1);
    trainStride(s, 0x100, 0x20000, 0, 100);
    const auto cp = s.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
    EXPECT_EQ(cp.pred.addr, 0x20000ull);
}

TEST(Sap, LearnsNegativeStride)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x30000, -8, 100);
    const auto cp = s.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
    EXPECT_EQ(cp.pred.addr, Addr(0x30000 - 100 * 8) & mask(49));
}

TEST(Sap, InflightOccurrencesStepTheStride)
{
    // EVES-style in-flight compensation: with k occurrences already
    // in flight the prediction advances k+1 strides past the last
    // retired address.
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 64, 100);
    const Addr last = 0x10000 + 99 * 64;
    EXPECT_EQ(s.lookup(probeOf(0x100, 0)).pred.addr, last + 64);
    EXPECT_EQ(s.lookup(probeOf(0x100, 1)).pred.addr, last + 2 * 64);
    EXPECT_EQ(s.lookup(probeOf(0x100, 5)).pred.addr, last + 6 * 64);
}

TEST(Sap, BrokenStrideResetsConfidence)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 64, 100);
    ASSERT_TRUE(s.lookup(probeOf(0x100)).confident);
    s.train(outcomeOf(0x100, 0x99999)); // stride break
    EXPECT_FALSE(s.lookup(probeOf(0x100)).confident);
}

TEST(Sap, NeedsRoughlyNineObservations)
{
    // Effective confidence 9 (Table IV): far fewer must not predict.
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 8, 3);
    EXPECT_FALSE(s.lookup(probeOf(0x100)).confident);
    // Well beyond 9 must predict (probabilistic but ~certain by 60).
    trainStride(s, 0x200, 0x20000, 8, 60);
    EXPECT_TRUE(s.lookup(probeOf(0x200)).confident);
}

TEST(Sap, OversizedStrideIsRejected)
{
    // The stride field is 10 signed bits: |stride| > 511 cannot be
    // represented and must never become confident.
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 4096, 200);
    EXPECT_FALSE(s.lookup(probeOf(0x100)).confident);
}

TEST(Sap, MaxRepresentableStrideWorks)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 511, 100);
    EXPECT_TRUE(s.lookup(probeOf(0x100)).confident);
    trainStride(s, 0x200, 0x80000, -512, 100);
    EXPECT_TRUE(s.lookup(probeOf(0x200)).confident);
}

TEST(Sap, InvalidateEntryDropsIt)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 64, 100);
    ASSERT_TRUE(s.lookup(probeOf(0x100)).confident);
    s.invalidateEntry(0x100);
    EXPECT_FALSE(s.lookup(probeOf(0x100)).confident);
}

TEST(Sap, StorageMatchesPaper77BitsPerEntry)
{
    Sap s(1024);
    EXPECT_EQ(s.storageBits(), 1024ull * 77);
    EXPECT_EQ(s.entryBits(), 77u);
}

TEST(Sap, SizeFieldTracksLoadWidth)
{
    Sap s(256, 1);
    for (int i = 0; i < 100; ++i)
        s.train(outcomeOf(0x100, 0x10000 + i * 4, 4));
    const auto cp = s.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
}

TEST(Sap, WouldBeCorrectComparesAddresses)
{
    Sap s(256, 1);
    trainStride(s, 0x100, 0x10000, 64, 100);
    const auto cp = s.lookup(probeOf(0x100));
    EXPECT_TRUE(
        s.wouldBeCorrect(cp, outcomeOf(0x100, 0x10000 + 100 * 64)));
    EXPECT_FALSE(
        s.wouldBeCorrect(cp, outcomeOf(0x100, 0x10000 + 37)));
}
