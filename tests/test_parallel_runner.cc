/**
 * @file
 * The parallel execution layer: ParallelExecutor semantics,
 * TraceCache once-per-key generation under contention, and the
 * SuiteRunner determinism contract — a 4-job suite run must produce
 * bit-identical rows, in the same order, as the serial run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "core/composite.hh"
#include "sim/experiment.hh"
#include "sim/parallel_executor.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

sim::RunConfig
smallRc()
{
    sim::RunConfig rc;
    rc.maxInstrs = 8000;
    return rc;
}

sim::PredictorFactory
smallComposite()
{
    auto cfg = vp::CompositeConfig::homogeneous(512);
    cfg.am = vp::AmKind::PcAm;
    return [cfg] {
        return std::make_unique<vp::CompositePredictor>(cfg);
    };
}

} // anonymous namespace

TEST(ParallelExecutor, RunsEveryTaskExactlyOnce)
{
    sim::ParallelExecutor pool(4);
    EXPECT_EQ(pool.jobs(), 4u);

    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, BoundedQueueDoesNotDeadlock)
{
    // Far more tasks than the queue capacity (2 x jobs): submit()
    // must backpressure, not deadlock or drop.
    sim::ParallelExecutor pool(2);
    std::atomic<int> sum{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&sum] { sum.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(sum.load(), 1000);
}

TEST(ParallelExecutor, WaitRethrowsTaskException)
{
    sim::ParallelExecutor pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([i] {
            if (i == 3)
                throw std::runtime_error("boom");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ParallelExecutor, SingleFailureMessageIsUnchanged)
{
    sim::ParallelExecutor pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "wait() should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(ParallelExecutor, WaitReportsSuppressedFailureCount)
{
    // Only the first exception survives; wait() must not let the
    // other failures vanish without a trace.
    sim::ParallelExecutor pool(4);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "wait() should have thrown";
    } catch (const std::exception &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("boom"), std::string::npos) << msg;
        EXPECT_NE(msg.find("+7 more task failure"),
                  std::string::npos)
            << msg;
    }

    // The error state resets: the next batch waits cleanly.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelExecutor, AffinityRoutingRunsEveryTaskOnce)
{
    // Affinity is a placement hint, never a correctness knob: with
    // every task pinned to the same home deque, all of them still
    // run exactly once.
    sim::ParallelExecutor pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
        [](std::size_t) { return std::size_t(0); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, StealingSpreadsSameAffinityBacklog)
{
    // Eight slow tasks all homed on worker 0 of a 4-worker pool:
    // idle workers must steal from worker 0's deque instead of
    // letting the backlog serialize. Distinct executing-thread ids
    // are the observable.
    sim::ParallelExecutor pool(4);
    Mutex mx;
    std::vector<std::thread::id> ranOn;
    for (int i = 0; i < 8; ++i)
        pool.submit(
            [&] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(30));
                MutexLock lk(mx);
                ranOn.push_back(std::this_thread::get_id());
            },
            0);
    pool.wait();

    ASSERT_EQ(ranOn.size(), 8u);
    std::sort(ranOn.begin(), ranOn.end());
    const auto distinct =
        std::unique(ranOn.begin(), ranOn.end()) - ranOn.begin();
    EXPECT_GE(distinct, 2)
        << "same-affinity backlog never got stolen";
}

TEST(ParallelExecutor, AffinityBackpressureDoesNotDeadlock)
{
    // A same-affinity flood larger than the pool capacity: submit()
    // must backpressure while the owner and thieves drain the deque.
    sim::ParallelExecutor pool(2);
    std::atomic<int> sum{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&sum] { sum.fetch_add(1); }, 7);
    pool.wait();
    EXPECT_EQ(sum.load(), 500);
}

TEST(ParallelExecutor, HardwareJobsIsPositive)
{
    EXPECT_GE(sim::ParallelExecutor::hardwareJobs(), 1u);
}

TEST(ParallelExecutor, ParseJobsAcceptsCountsAutoAndZero)
{
    std::size_t jobs = 99;
    ASSERT_TRUE(sim::ParallelExecutor::parseJobs("3", jobs));
    EXPECT_EQ(jobs, 3u);
    ASSERT_TRUE(sim::ParallelExecutor::parseJobs("auto", jobs));
    EXPECT_EQ(jobs, sim::ParallelExecutor::hardwareJobs());
    ASSERT_TRUE(sim::ParallelExecutor::parseJobs("0", jobs));
    EXPECT_EQ(jobs, sim::ParallelExecutor::hardwareJobs());
}

TEST(ParallelExecutor, ParseJobsRejectsGarbage)
{
    std::size_t jobs = 7;
    EXPECT_FALSE(sim::ParallelExecutor::parseJobs("banana", jobs));
    EXPECT_FALSE(sim::ParallelExecutor::parseJobs("4x", jobs));
    EXPECT_FALSE(sim::ParallelExecutor::parseJobs("-2", jobs));
    EXPECT_FALSE(sim::ParallelExecutor::parseJobs("", jobs));
    EXPECT_EQ(jobs, 7u) << "failed parse must not clobber the value";
}

TEST(TraceCache, ConcurrentGetGeneratesOnce)
{
    sim::TraceCache cache;
    constexpr int kThreads = 8;

    std::vector<sim::TraceCache::TracePtr> got(kThreads);
    {
        // All workers request the same key at once; the per-key
        // once_flag must admit exactly one generator.
        sim::ParallelExecutor pool(kThreads);
        pool.parallelFor(kThreads, [&](std::size_t i) {
            got[i] = cache.get("memset_loop", 4000, 7);
        });
    }
    EXPECT_EQ(cache.generations(), 1u);
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[i].get(), got[0].get())
            << "all callers must share one trace";

    // A second wave is pure cache hits.
    sim::ParallelExecutor pool(kThreads);
    pool.parallelFor(kThreads, [&](std::size_t i) {
        got[i] = cache.get("memset_loop", 4000, 7);
    });
    EXPECT_EQ(cache.generations(), 1u);
}

TEST(TraceCache, DistinctKeysGenerateIndependently)
{
    sim::TraceCache cache;
    auto a = cache.get("memset_loop", 4000, 1);
    auto b = cache.get("memset_loop", 4000, 2); // different seed
    auto c = cache.get("memset_loop", 2000, 1); // different length
    EXPECT_EQ(cache.generations(), 3u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
}

TEST(SuiteRunner, ParallelRowsBitIdenticalToSerial)
{
    const auto workloads = trace::smokeWorkloadNames();
    const auto rc = smallRc();

    sim::SuiteRunner serial(workloads, rc, 1);
    sim::SuiteRunner parallel(workloads, rc, 4);
    const auto s = serial.run("composite", smallComposite());
    const auto p = parallel.run("composite", smallComposite());

    ASSERT_EQ(s.rows.size(), workloads.size());
    ASSERT_EQ(p.rows.size(), s.rows.size());
    for (std::size_t i = 0; i < s.rows.size(); ++i) {
        // Same order...
        EXPECT_EQ(p.rows[i].workload, workloads[i]);
        // ...and bit-identical stats, baseline and with-VP.
        EXPECT_TRUE(pipe::statsEqual(p.rows[i].base, s.rows[i].base))
            << workloads[i] << " baseline diverged";
        EXPECT_TRUE(
            pipe::statsEqual(p.rows[i].withVp, s.rows[i].withVp))
            << workloads[i] << " with-VP run diverged";
        EXPECT_EQ(p.rows[i].storageBits, s.rows[i].storageBits);
    }
    EXPECT_EQ(p.storageBits, s.storageBits);
    EXPECT_DOUBLE_EQ(p.geomeanSpeedup(), s.geomeanSpeedup());
}

TEST(SuiteRunner, ParallelRunIsRepeatable)
{
    const auto workloads = trace::smokeWorkloadNames();
    sim::SuiteRunner runner(workloads, smallRc(), 4);
    const auto a = runner.run("composite", smallComposite());
    const auto b = runner.run("composite", smallComposite());
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i)
        EXPECT_TRUE(
            pipe::statsEqual(a.rows[i].withVp, b.rows[i].withVp));
}

TEST(SuiteRunner, ObserverSeesEveryRun)
{
    sim::SuiteRunner runner({"memset_loop"}, smallRc(), 2);
    int seen = 0;
    runner.setObserver([&](const sim::SuiteResult &r) {
        ++seen;
        EXPECT_EQ(r.rows.size(), 1u);
    });
    runner.run("a", smallComposite());
    runner.run("b", smallComposite());
    EXPECT_EQ(seen, 2);
}

TEST(SuiteRunner, JobsZeroMeansHardware)
{
    sim::SuiteRunner runner({"memset_loop"}, smallRc(), 0);
    EXPECT_EQ(runner.jobs(), sim::ParallelExecutor::hardwareJobs());
}

TEST(SuiteRunner, TimingFieldsArePopulated)
{
    sim::SuiteRunner runner({"memset_loop"}, smallRc(), 2);
    const auto res = runner.run("composite", smallComposite());
    EXPECT_GT(res.wallSeconds, 0.0);
    ASSERT_EQ(res.rows.size(), 1u);
    EXPECT_GT(res.rows[0].vpSeconds, 0.0);
}
