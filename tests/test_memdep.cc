#include <gtest/gtest.h>

#include "memory/memdep.hh"

using namespace lvpsim;
using namespace lvpsim::mem;

TEST(MemDep, SpeculatesByDefault)
{
    MemDepPredictor p;
    EXPECT_FALSE(p.shouldWait(0x1000));
}

TEST(MemDep, WaitsAfterViolation)
{
    MemDepPredictor p;
    p.recordViolation(0x1000);
    EXPECT_TRUE(p.shouldWait(0x1000));
    // 0x1004 maps to a different wait-table entry than 0x1000
    // (0x2000 would alias: (0x2000>>2) % 1024 == (0x1000>>2) % 1024).
    EXPECT_FALSE(p.shouldWait(0x1004));
}

TEST(MemDep, PeriodicClearForgets)
{
    MemDepPredictor p(64, 100);
    p.recordViolation(0x1000);
    EXPECT_TRUE(p.shouldWait(0x1000));
    for (int i = 0; i < 200; ++i)
        (void)p.shouldWait(0x3000);
    EXPECT_FALSE(p.shouldWait(0x1000));
}

TEST(MemDep, CountsViolations)
{
    MemDepPredictor p;
    p.recordViolation(0x1000);
    p.recordViolation(0x1000);
    EXPECT_EQ(p.violations(), 2u);
}

TEST(MemDep, AliasedPcsShareEntry)
{
    MemDepPredictor p(16, 1u << 30);
    p.recordViolation(0x1000);
    // 16 entries: pc>>2 % 16; 0x1000>>2=0x400 -> 0; 0x1040>>2=0x410
    // -> 0 as well.
    EXPECT_TRUE(p.shouldWait(0x1040));
}
