/**
 * @file
 * Sample-plan construction (sim/sample_plan.hh): deterministic
 * seeded k-means, weight conservation, representative ordering, and
 * degenerate-input behavior.
 */

#include <gtest/gtest.h>

#include "sim/sample_plan.hh"
#include "trace/interval_profile.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using sim::SamplePlan;
using sim::buildSamplePlan;

namespace
{

trace::IntervalProfile
phasedProfile(std::size_t per_phase, std::uint64_t interval_len)
{
    // Three phases with different code and memory behavior, so
    // clustering has real structure to find.
    auto t = trace::generateWorkload("stream_sum", per_phase, 1);
    for (const char *k : {"pointer_chase", "hash_probe"}) {
        const auto more =
            trace::generateWorkload(k, per_phase, 1);
        t.insert(t.end(), more.begin(), more.end());
    }
    return trace::profileTrace(t, interval_len);
}

bool
samePlan(const SamplePlan &a, const SamplePlan &b)
{
    if (a.intervalLen != b.intervalLen ||
        a.totalInstructions != b.totalInstructions ||
        a.reps.size() != b.reps.size() ||
        a.assignment != b.assignment)
        return false;
    for (std::size_t i = 0; i < a.reps.size(); ++i) {
        if (a.reps[i].interval != b.reps[i].interval ||
            a.reps[i].weightInstructions !=
                b.reps[i].weightInstructions ||
            a.reps[i].clusterSize != b.reps[i].clusterSize)
            return false;
    }
    return true;
}

} // namespace

TEST(SamplePlan, SeedStableAndDeterministic)
{
    const auto profile = phasedProfile(10000, 3000);
    const auto a = buildSamplePlan(profile, 4, 42);
    const auto b = buildSamplePlan(profile, 4, 42);
    EXPECT_TRUE(samePlan(a, b));
}

TEST(SamplePlan, WeightsConserveInstructionsAndIntervals)
{
    const auto profile = phasedProfile(10000, 3000);
    const auto plan = buildSamplePlan(profile, 5, 7);

    std::uint64_t weight = 0, members = 0;
    for (const auto &rep : plan.reps) {
        weight += rep.weightInstructions;
        members += rep.clusterSize;
    }
    EXPECT_EQ(weight, profile.totalInstructions);
    EXPECT_EQ(members, profile.intervals.size());
}

TEST(SamplePlan, RepsSortedUniqueAndAssignmentConsistent)
{
    const auto profile = phasedProfile(10000, 3000);
    const auto plan = buildSamplePlan(profile, 5, 7);

    ASSERT_FALSE(plan.reps.empty());
    for (std::size_t r = 1; r < plan.reps.size(); ++r)
        EXPECT_LT(plan.reps[r - 1].interval, plan.reps[r].interval);

    ASSERT_EQ(plan.assignment.size(), profile.intervals.size());
    std::vector<std::uint32_t> counted(plan.reps.size(), 0);
    for (std::uint32_t pos : plan.assignment) {
        ASSERT_LT(pos, plan.reps.size());
        ++counted[pos];
    }
    for (std::size_t r = 0; r < plan.reps.size(); ++r) {
        // A representative belongs to its own cluster.
        EXPECT_EQ(plan.assignment[plan.reps[r].interval], r);
        EXPECT_EQ(counted[r], plan.reps[r].clusterSize);
    }
}

TEST(SamplePlan, HomogeneousProfileStratifiesByTime)
{
    // Identical signatures everywhere: k-means++ stops adding
    // centroids once total D^2 hits zero and clustering collapses
    // to one cluster — but the k-budget must then subdivide it into
    // time strata, not speak for the whole trace through a single
    // interval. Behavior the signature cannot see (startup
    // transients, predictor training) varies over time even when
    // the code mix does not.
    trace::IntervalProfile profile;
    profile.intervalLen = 1000;
    for (int i = 0; i < 20; ++i) {
        trace::IntervalSignature sig;
        sig.v.fill(512);
        sig.instructions = 1000;
        profile.intervals.push_back(sig);
        profile.totalInstructions += 1000;
    }
    const auto plan = buildSamplePlan(profile, 8, 3);
    ASSERT_EQ(plan.reps.size(), 8u);

    std::uint64_t weight = 0;
    std::uint32_t covered = 0;
    for (const auto &rep : plan.reps) {
        weight += rep.weightInstructions;
        covered += rep.clusterSize;
    }
    EXPECT_EQ(weight, 20000u);
    EXPECT_EQ(covered, 20u);
    // The representatives spread through the trace: the last one
    // must come from the final quarter, not huddle near the start.
    EXPECT_GE(plan.reps.back().interval, 15u);
    // Strata are time-contiguous: assignment is non-decreasing.
    for (std::size_t i = 1; i < plan.assignment.size(); ++i)
        EXPECT_GE(plan.assignment[i], plan.assignment[i - 1]);
}

TEST(SamplePlan, KClampsToIntervalCount)
{
    const auto t = trace::generateWorkload("stream_sum", 9000, 1);
    const auto profile = trace::profileTrace(t, 3000);
    ASSERT_LE(profile.intervals.size(), 4u);
    const auto plan = buildSamplePlan(profile, 64, 1);
    EXPECT_LE(plan.reps.size(), profile.intervals.size());
}

TEST(SamplePlan, EmptyProfileYieldsEmptyPlan)
{
    trace::IntervalProfile empty;
    empty.intervalLen = 1000;
    const auto plan = buildSamplePlan(empty, 4, 1);
    EXPECT_TRUE(plan.reps.empty());
    EXPECT_TRUE(plan.assignment.empty());
}
