/**
 * @file
 * The qa library itself: generator determinism and validity, the
 * property runner's seed discipline, and shrinking minimality. These
 * must be trustworthy before any property test built on them means
 * anything.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/check.hh"
#include "qa/generators.hh"
#include "qa/property.hh"
#include "qa/shrink.hh"

using namespace lvpsim;
using trace::MicroOp;
using trace::OpClass;

namespace
{

bool
sameTrace(const std::vector<MicroOp> &a, const std::vector<MicroOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const MicroOp &x = a[i], &y = b[i];
        if (x.pc != y.pc || x.cls != y.cls || x.dst != y.dst ||
            x.src != y.src || x.effAddr != y.effAddr ||
            x.memSize != y.memSize || x.memValue != y.memValue ||
            x.exclusiveMem != y.exclusiveMem || x.taken != y.taken ||
            x.target != y.target)
            return false;
    }
    return true;
}

} // anonymous namespace

TEST(QaGen, SameSeedSameTrace)
{
    qa::Gen a(42), b(42);
    EXPECT_TRUE(sameTrace(qa::genTrace(a), qa::genTrace(b)));
}

TEST(QaGen, DifferentSeedsDiffer)
{
    qa::Gen a(1), b(2);
    EXPECT_FALSE(sameTrace(qa::genTrace(a), qa::genTrace(b)));
}

TEST(QaGen, TracesAreValidByConstruction)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        qa::Gen g(qa::caseSeed(0xabc, seed));
        const auto t = qa::genTrace(g);
        ASSERT_GE(t.size(), 64u);
        ASSERT_LE(t.size(), 4096u);
        for (const MicroOp &op : t) {
            if (op.dst != invalidReg)
                EXPECT_LT(op.dst, numArchRegs);
            for (RegId s : op.src)
                if (s != invalidReg)
                    EXPECT_LT(s, numArchRegs);
            if (op.isLoad() || op.isStore()) {
                EXPECT_TRUE(op.memSize == 1 || op.memSize == 2 ||
                            op.memSize == 4 || op.memSize == 8);
                // Aligned to the access width.
                EXPECT_EQ(op.effAddr & (op.memSize - 1), 0u);
            } else {
                EXPECT_FALSE(op.exclusiveMem);
            }
            if (op.isBranch() && op.taken)
                EXPECT_NE(op.target, 0u);
            // Stores and control ops never write a register.
            if (op.isStore() || op.isBranch())
                EXPECT_EQ(op.dst, invalidReg);
        }
    }
}

TEST(QaGen, TracesExerciseTheInterestingClasses)
{
    // Across a handful of seeds the generator must produce
    // predictable loads, stores, and taken branches - otherwise
    // differential fuzzing would silently test almost nothing.
    std::uint64_t loads = 0, stores = 0, takenBranches = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        qa::Gen g(qa::caseSeed(0xdef, seed));
        for (const MicroOp &op : qa::genTrace(g)) {
            loads += op.isPredictableLoad();
            stores += op.isStore();
            takenBranches += op.isBranch() && op.taken;
        }
    }
    EXPECT_GT(loads, 100u);
    EXPECT_GT(stores, 50u);
    EXPECT_GT(takenBranches, 50u);
}

TEST(QaGen, CoreConfigsAreBoundedAndRunnable)
{
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        qa::Gen g(qa::caseSeed(0x123, seed));
        const pipe::CoreConfig c = qa::genCoreConfig(g);
        EXPECT_GE(c.fetchWidth, 1u);
        EXPECT_GE(c.issueWidth, c.lsLanes + 1);
        EXPECT_GE(c.retireWidth, 1u);
        EXPECT_LE(c.robSize, 224u);
        EXPECT_GE(c.robSize, 16u);
        EXPECT_LE(c.iqSize, 97u);
        EXPECT_LE(c.ldqSize, 72u);
        EXPECT_LE(c.stqSize, 56u);
        EXPECT_GE(c.paqSize, 1u);
    }
}

TEST(QaGen, AddressStreamHasRequestedLength)
{
    qa::Gen g(7);
    EXPECT_EQ(qa::genAddressStream(g, 1000).size(), 1000u);
}

TEST(QaProperty, CaseSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(qa::caseSeed(99, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(QaProperty, PassingPropertyRunsAllCases)
{
    const auto r =
        qa::forAllSeeds(25, 7, [](qa::Gen &) { return true; });
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.casesRun, 25u);
}

TEST(QaProperty, FailingSeedIsReportedAndReproducible)
{
    // Fail whenever the first draw is even: the reported seed must
    // re-trigger the same failure on its own.
    auto body = [](qa::Gen &g) { return g.u64() % 2 != 0; };
    const auto r = qa::forAllSeeds(100, 11, body);
    ASSERT_FALSE(r.ok);
    qa::Gen again(r.failingSeed);
    EXPECT_FALSE(body(again));
}

TEST(QaProperty, ThrowingPropertyCountsAsFailureWithMessage)
{
    const auto r = qa::forAllSeeds(3, 5, [](qa::Gen &) -> bool {
        throw std::runtime_error("kaboom");
    });
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.message, "kaboom");
    EXPECT_NE(r.describe().find("kaboom"), std::string::npos);
}

TEST(QaShrink, ShrinksToMinimalCounterexample)
{
    // 1000 ops, three of which are "poison". The property "fewer
    // than three poison ops" must shrink to exactly those three.
    std::vector<MicroOp> big(1000);
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i].pc = 0x1000 + i * 4;
    for (std::size_t i : {17u, 400u, 993u})
        big[i].pc = 0xdead;

    auto holds = [](const std::vector<MicroOp> &t) {
        std::size_t poison = 0;
        for (const MicroOp &op : t)
            poison += op.pc == 0xdead;
        return poison < 3;
    };
    ASSERT_FALSE(holds(big));

    qa::ShrinkStats stats;
    const auto minimal = qa::shrinkTrace(big, holds, &stats);
    ASSERT_EQ(minimal.size(), 3u);
    for (const MicroOp &op : minimal)
        EXPECT_EQ(op.pc, 0xdeadu);
    EXPECT_FALSE(holds(minimal));
    EXPECT_EQ(stats.originalOps, 1000u);
    EXPECT_EQ(stats.finalOps, 3u);

    // Deterministic: shrinking again yields the same result.
    const auto again = qa::shrinkTrace(big, holds);
    EXPECT_TRUE(sameTrace(minimal, again));
}

TEST(QaShrink, CheckTracePropertyShrinksGeneratedFailure)
{
    // "Traces are shorter than 200 ops" fails for most seeds (the
    // generator draws 64..4096); the shrunk counterexample must sit
    // exactly at the boundary.
    const auto r = qa::checkTraceProperty(
        20, 31,
        [](const std::vector<MicroOp> &t) { return t.size() < 200; });
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.minimal.size(), 200u);
    EXPECT_NE(r.describe().find("shrunk"), std::string::npos);
}

TEST(QaCheck, MacroCompilesInBothModes)
{
    // LVPSIM_CHECK must be usable as a statement whether or not the
    // checks are compiled in; when enabled, a true condition is
    // silent.
    LVPSIM_CHECK(1 + 1 == 2, "arithmetic holds");
    SUCCEED();
}
