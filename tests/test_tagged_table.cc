#include <gtest/gtest.h>

#include "common/tagged_table.hh"

using namespace lvpsim;

namespace
{

struct Payload
{
    int v = 0;
};

} // anonymous namespace

TEST(TaggedTable, MissOnEmpty)
{
    TaggedTable<Payload> t(16, 1);
    EXPECT_EQ(t.lookup(3, 42), nullptr);
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TaggedTable, AllocateThenLookup)
{
    TaggedTable<Payload> t(16, 1);
    bool hit = true;
    auto &w = t.allocate(3, 42, &hit);
    EXPECT_FALSE(hit);
    w.payload.v = 7;
    auto *found = t.lookup(3, 42);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->payload.v, 7);
}

TEST(TaggedTable, TagMismatchMisses)
{
    TaggedTable<Payload> t(16, 1);
    t.allocate(3, 42);
    EXPECT_EQ(t.lookup(3, 43), nullptr);
}

TEST(TaggedTable, ReallocateSameKeyIsHit)
{
    TaggedTable<Payload> t(16, 1);
    t.allocate(3, 42).payload.v = 9;
    bool hit = false;
    auto &w = t.allocate(3, 42, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(w.payload.v, 9); // payload preserved on hit
}

TEST(TaggedTable, DirectMappedConflictEvicts)
{
    TaggedTable<Payload> t(16, 1);
    t.allocate(3, 42).payload.v = 1;
    bool hit = true;
    auto &w = t.allocate(3, 99, &hit); // same set, different tag
    EXPECT_FALSE(hit);
    EXPECT_EQ(w.payload.v, 0); // payload reset on replacement
    EXPECT_EQ(t.lookup(3, 42), nullptr);
    EXPECT_NE(t.lookup(3, 99), nullptr);
}

TEST(TaggedTable, IndexWrapsModuloSets)
{
    TaggedTable<Payload> t(16, 1);
    t.allocate(3, 42).payload.v = 5;
    // Index 19 maps to the same set as 3 (19 % 16).
    auto *found = t.lookup(19, 42);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->payload.v, 5);
}

TEST(TaggedTable, NonPowerOfTwoSets)
{
    TaggedTable<Payload> t(3, 1);
    t.allocate(0, 1).payload.v = 10;
    t.allocate(1, 2).payload.v = 11;
    t.allocate(2, 3).payload.v = 12;
    EXPECT_EQ(t.lookup(3, 1)->payload.v, 10); // 3 % 3 == 0
    EXPECT_EQ(t.validCount(), 3u);
}

TEST(TaggedTable, TwoWayKeepsBoth)
{
    TaggedTable<Payload> t(4, 2);
    t.allocate(1, 10).payload.v = 1;
    t.allocate(1, 20).payload.v = 2;
    EXPECT_NE(t.lookup(1, 10), nullptr);
    EXPECT_NE(t.lookup(1, 20), nullptr);
}

TEST(TaggedTable, LruEvictionAmongWays)
{
    TaggedTable<Payload> t(4, 2);
    t.allocate(1, 10);
    t.allocate(1, 20);
    t.lookup(1, 10); // make tag 10 most recently used
    t.allocate(1, 30); // evicts LRU = tag 20
    EXPECT_NE(t.lookup(1, 10), nullptr);
    EXPECT_EQ(t.lookup(1, 20), nullptr);
    EXPECT_NE(t.lookup(1, 30), nullptr);
}

TEST(TaggedTable, SetWaysGrowPreservesWayZero)
{
    TaggedTable<Payload> t(4, 1);
    t.allocate(1, 10).payload.v = 3;
    t.setWays(4); // fusion: receive three donor tables
    EXPECT_EQ(t.numWays(), 4u);
    auto *found = t.lookup(1, 10);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->payload.v, 3);
}

TEST(TaggedTable, SetWaysShrinkKeepsWayZero)
{
    TaggedTable<Payload> t(4, 1);
    t.allocate(1, 10).payload.v = 3; // resides in way 0
    t.setWays(2);
    t.allocate(1, 20).payload.v = 4; // goes to the empty way
    t.setWays(1); // unfuse: receiver keeps its own table
    auto *found = t.lookup(1, 10);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->payload.v, 3);
    EXPECT_EQ(t.lookup(1, 20), nullptr);
}

TEST(TaggedTable, FlushWaysClearsRange)
{
    TaggedTable<Payload> t(4, 2);
    t.allocate(1, 10);
    t.allocate(1, 20);
    t.flushWays(1, 2);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(TaggedTable, FlushAllEmpties)
{
    TaggedTable<Payload> t(8, 1);
    for (int i = 0; i < 8; ++i)
        t.allocate(i, 100 + i);
    EXPECT_EQ(t.validCount(), 8u);
    t.flushAll();
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TaggedTable, InvalidateSpecificEntry)
{
    TaggedTable<Payload> t(8, 1);
    t.allocate(2, 5);
    t.invalidate(2, 6); // wrong tag: no-op
    EXPECT_NE(t.lookup(2, 5), nullptr);
    t.invalidate(2, 5);
    EXPECT_EQ(t.lookup(2, 5), nullptr);
}

TEST(TaggedTable, WayAtGivesResidentEntry)
{
    TaggedTable<Payload> t(8, 1);
    t.allocate(2, 5).payload.v = 8;
    auto &w = t.wayAt(2);
    EXPECT_TRUE(w.valid);
    EXPECT_EQ(w.tag, 5ull);
    EXPECT_EQ(w.payload.v, 8);
}

TEST(TaggedTable, EmptyTableReportsEmpty)
{
    TaggedTable<Payload> t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numEntries(), 0u);
}
