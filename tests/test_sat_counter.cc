#include <gtest/gtest.h>

#include "common/sat_counter.hh"
#include "core/vp_params.hh"

using namespace lvpsim;
using namespace lvpsim::vp;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, ResetAndSet)
{
    SatCounter c(3);
    c.set(5);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(FpcVector, EffectiveConfidenceMatchesPaperLvp)
{
    // Table IV: LVP threshold 7 corresponds to an effective
    // confidence of 64 consecutive observations.
    EXPECT_DOUBLE_EQ(lvpFpc().effectiveConfidence(lvpConfThreshold),
                     64.0);
}

TEST(FpcVector, EffectiveConfidenceMatchesPaperSap)
{
    // SAP: 9 consecutive observations.
    EXPECT_DOUBLE_EQ(sapFpc().effectiveConfidence(sapConfThreshold),
                     9.0);
}

TEST(FpcVector, EffectiveConfidenceMatchesPaperCvp)
{
    // CVP: ~16 consecutive observations (the power-of-two FPC vector
    // gives exactly 15).
    EXPECT_NEAR(cvpFpc().effectiveConfidence(cvpConfThreshold), 16.0,
                1.0);
}

TEST(FpcVector, EffectiveConfidenceMatchesPaperCap)
{
    // CAP: 4 consecutive observations.
    EXPECT_DOUBLE_EQ(capFpc().effectiveConfidence(capConfThreshold),
                     4.0);
}

TEST(FpcVector, MaxLevelMatchesCounterWidth)
{
    // A 3-bit counter holds 0..7: seven upward transitions.
    EXPECT_EQ(lvpFpc().maxLevel(), 7u);
    EXPECT_EQ(sapFpc().maxLevel(), 3u);
    EXPECT_EQ(cvpFpc().maxLevel(), 4u);
    EXPECT_EQ(capFpc().maxLevel(), 3u);
}

TEST(FpcCounter, DeterministicFirstSteps)
{
    // LVP's first two transitions have probability 1.0.
    Xoshiro256 rng(1);
    FpcCounter c;
    c.increment(lvpFpc(), rng);
    EXPECT_EQ(c.value(), 1u);
    c.increment(lvpFpc(), rng);
    EXPECT_EQ(c.value(), 2u);
}

TEST(FpcCounter, NeverExceedsMax)
{
    Xoshiro256 rng(2);
    FpcCounter c;
    for (int i = 0; i < 10000; ++i)
        c.increment(sapFpc(), rng);
    EXPECT_EQ(c.value(), 3u);
}

TEST(FpcCounter, ResetClears)
{
    Xoshiro256 rng(3);
    FpcCounter c;
    for (int i = 0; i < 100; ++i)
        c.increment(capFpc(), rng);
    EXPECT_GT(c.value(), 0u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.atLeast(1));
}

TEST(FpcCounter, ForceIncrementIsDeterministic)
{
    FpcCounter c;
    for (int i = 0; i < 10; ++i)
        c.forceIncrement(lvpFpc());
    EXPECT_EQ(c.value(), 7u);
}

/**
 * Statistical check of the FPC principle (Riley & Zilles [28]): the
 * mean number of observations to reach the threshold should match the
 * effective confidence computed from the vector.
 */
TEST(FpcCounter, StatisticalEffectiveConfidenceSap)
{
    Xoshiro256 rng(4);
    const int trials = 2000;
    std::uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
        FpcCounter c;
        int steps = 0;
        while (!c.atLeast(sapConfThreshold)) {
            c.increment(sapFpc(), rng);
            ++steps;
        }
        total += steps;
    }
    const double mean = double(total) / trials;
    EXPECT_NEAR(mean, 9.0, 0.5);
}

TEST(FpcCounter, StatisticalEffectiveConfidenceLvp)
{
    Xoshiro256 rng(5);
    const int trials = 500;
    std::uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
        FpcCounter c;
        int steps = 0;
        while (!c.atLeast(lvpConfThreshold)) {
            c.increment(lvpFpc(), rng);
            ++steps;
        }
        total += steps;
    }
    const double mean = double(total) / trials;
    EXPECT_NEAR(mean, 64.0, 5.0);
}

TEST(FpcVector, RejectsOutOfRangeLevel)
{
    EXPECT_DEATH((void)lvpFpc().prob(7), "level");
}
