/**
 * @file
 * Focused pipeline tests for the Predicted Address Queue (paper
 * Figure 1): bubble-driven probing, capacity drops under load-dense
 * code, and end-to-end replay of saved trace files.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "pipeline/core.hh"
#include "trace/asm_emitter.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using namespace lvpsim::pipe;
using namespace lvpsim::trace;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3;

class AddrPredictor : public LoadValuePredictor
{
  public:
    std::unordered_map<Addr, Addr> addrByPc;

    Prediction
    predict(const LoadProbe &p) override
    {
        Prediction pred;
        auto it = addrByPc.find(p.pc);
        if (it != addrByPc.end()) {
            pred.kind = Prediction::Kind::Address;
            pred.addr = it->second;
            pred.component = ComponentId::CAP;
        }
        return pred;
    }

    void train(const LoadOutcome &) override {}
    std::uint64_t storageBits() const override { return 0; }
    const char *name() const override { return "addr-fake"; }
};

Addr
loadPcOf(const std::vector<MicroOp> &ops)
{
    for (const auto &op : ops)
        if (op.isLoad())
            return op.pc;
    return 0;
}

SimStats
runOn(const std::vector<MicroOp> &ops, LoadValuePredictor *vp)
{
    CoreConfig cfg;
    Core core(cfg, ops, vp);
    return core.run();
}

} // anonymous namespace

TEST(Paq, LoadDenseCodeStarvesTheQueue)
{
    // Back-to-back loads saturate both LS lanes: PAQ probes find no
    // bubbles and the queue overflows, dropping predictions.
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.mem().write(0x10000, 7, 8);
    a.imm("b", r1, 0x10000);
    while (!a.done())
        a.load("ld", r2, r1, 0, 8);
    AddrPredictor vp;
    vp.addrByPc[loadPcOf(out)] = 0x10000;
    const auto s = runOn(out, &vp);
    EXPECT_GT(s.paqDropsFull, 0u);
    // Whatever was delivered was correct; no flushes.
    EXPECT_EQ(s.vpFlushes, 0u);
    EXPECT_EQ(s.instructions, out.size());
}

TEST(Paq, SparseLoadsGetFullCoverage)
{
    // One load per 8 ALU ops: plenty of LS bubbles for the PAQ.
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.mem().write(0x20000, 7, 8);
    a.imm("b", r1, 0x20000);
    while (!a.done()) {
        a.load("ld", r2, r1, 0, 8);
        for (int i = 0; i < 8; ++i)
            a.addi("w", r3, r3, 1);
    }
    AddrPredictor vp;
    vp.addrByPc[loadPcOf(out)] = 0x20000;
    const auto s = runOn(out, &vp);
    EXPECT_EQ(s.paqDropsFull, 0u);
    // Nearly every load's prediction is delivered and used.
    EXPECT_GT(double(s.predictionsUsed) / double(s.eligibleLoads),
              0.8);
}

TEST(Paq, ConflictingStoreDropsProbe)
{
    // Each iteration stores to the cell (with slow data) and then
    // loads it: the PAQ probe sees an unresolved older store and
    // must drop the prediction instead of delivering stale data.
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.imm("b", r1, 0x30000);
    a.imm("v", r2, 1);
    while (!a.done()) {
        for (int i = 0; i < 4; ++i)
            a.mul("slow", r2, r2, r2);
        a.addi("vv", r2, r2, 1);
        a.store("st", r2, r1, 0, 8);
        a.load("ld", r3, r1, 0, 8);
        for (int i = 0; i < 4; ++i)
            a.addi("w", r3, r3, 1);
    }
    AddrPredictor vp;
    vp.addrByPc[loadPcOf(out)] = 0x30000;
    const auto s = runOn(out, &vp);
    EXPECT_GT(s.paqConflictDrops, 0u);
    EXPECT_EQ(s.predictionsWrong, 0u);
}

TEST(Paq, SavedTraceReplaysIdentically)
{
    // Round-trip a trace through the file format and verify the
    // pipeline produces bit-identical statistics.
    const auto ops = generateWorkload("interp_dispatch", 20000, 3);
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(ss, ops));
    std::vector<MicroOp> replay;
    ASSERT_TRUE(readTrace(ss, replay));

    NullPredictor none;
    const auto a = runOn(ops, &none);
    const auto b = runOn(replay, &none);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}
