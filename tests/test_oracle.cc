#include <gtest/gtest.h>

#include "core/oracle.hh"
#include "trace/asm_emitter.hh"

using namespace lvpsim;
using namespace lvpsim::trace;
using namespace lvpsim::vp;

namespace
{

constexpr RegId r1 = 1, r2 = 2;

} // anonymous namespace

TEST(Oracle, ConstantLoadsArePattern1)
{
    std::vector<MicroOp> out;
    Asm a(out, 2000, 1);
    a.mem().write(0x1000, 42, 8);
    a.imm("b", r1, 0x1000);
    while (!a.done())
        a.load("ld", r2, r1, 0, 8);
    const auto b = classifyLoadPatterns(out);
    // Only the very first dynamic instance (no history) is Pattern-3.
    EXPECT_EQ(b.pattern3, 1u);
    EXPECT_EQ(b.pattern2, 0u);
    EXPECT_GT(b.frac1(), 0.99);
}

TEST(Oracle, StridedChangingValuesArePattern2)
{
    std::vector<MicroOp> out;
    Asm a(out, 3000, 1);
    for (Addr addr = 0x2000; addr < 0x8000; addr += 8)
        a.mem().write(addr, addr * 3, 8);
    a.imm("b", r1, 0x2000);
    while (!a.done()) {
        a.load("ld", r2, r1, 0, 8);
        a.addi("i", r1, r1, 8);
    }
    const auto b = classifyLoadPatterns(out);
    // First two instances establish value/stride history.
    EXPECT_LE(b.pattern3, 2u);
    EXPECT_EQ(b.pattern1, 0u);
    EXPECT_GT(b.frac2(), 0.99);
}

TEST(Oracle, Pattern1TakesPriorityOverPattern2)
{
    // Strided addresses AND constant values: classified Pattern-1
    // (ordered, exclusive; value before address).
    std::vector<MicroOp> out;
    Asm a(out, 2000, 1);
    a.imm("b", r1, 0x2000); // all memory reads return 0 (untouched)
    while (!a.done()) {
        a.load("ld", r2, r1, 0, 8);
        a.addi("i", r1, r1, 8);
    }
    const auto b = classifyLoadPatterns(out);
    EXPECT_GT(b.frac1(), 0.99);
    EXPECT_EQ(b.pattern2, 0u);
}

TEST(Oracle, RandomLoadsArePattern3)
{
    std::vector<MicroOp> out;
    Asm a(out, 3000, 1);
    while (!a.done()) {
        a.imm("p", r1, 0x10000 + a.rng().below(1 << 20) * 8);
        a.load("ld", r2, r1, 0, 8);
    }
    // Values: mostly 0 (untouched memory) - actually Pattern-1!
    // Write distinct values so they are genuinely random.
    // (kept: zero-filled memory makes even random addresses P1,
    // which is itself a meaningful property of the classifier)
    const auto b = classifyLoadPatterns(out);
    EXPECT_GT(b.frac1(), 0.9);
}

TEST(Oracle, TrulyRandomValuesArePattern3)
{
    std::vector<MicroOp> out;
    Asm a(out, 3000, 1);
    for (int i = 0; i < 4096; ++i)
        a.mem().write(0x10000 + Addr(i) * 8, a.rng().next(), 8);
    while (!a.done()) {
        a.imm("p", r1, 0x10000 + a.rng().below(4096) * 8);
        a.load("ld", r2, r1, 0, 8);
    }
    const auto b = classifyLoadPatterns(out);
    EXPECT_GT(b.frac3(), 0.95);
}

TEST(Oracle, ExclusiveLoadsNotClassified)
{
    std::vector<MicroOp> out;
    Asm a(out, 1000, 1);
    a.imm("b", r1, 0x1000);
    while (!a.done())
        a.loadExclusive("ldx", r2, r1, 0, 8);
    const auto b = classifyLoadPatterns(out);
    EXPECT_EQ(b.total(), 0u);
}

TEST(Oracle, NonLoadsIgnored)
{
    std::vector<MicroOp> out;
    Asm a(out, 1000, 1);
    while (!a.done())
        a.imm("c", r1, 1);
    const auto b = classifyLoadPatterns(out);
    EXPECT_EQ(b.total(), 0u);
}
