#include <gtest/gtest.h>

#include "core/lvp.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::LoadOutcome;
using pipe::LoadProbe;

namespace
{

std::uint64_t nextToken = 1;

LoadProbe
probeOf(Addr pc)
{
    LoadProbe p;
    p.pc = pc;
    p.token = nextToken++;
    return p;
}

LoadOutcome
outcomeOf(Addr pc, Value v, Addr ea = 0x1000, unsigned size = 8)
{
    LoadOutcome o;
    o.pc = pc;
    o.token = nextToken++;
    o.effAddr = ea;
    o.size = size;
    o.value = v;
    return o;
}

/** Train the same (pc, value) n times. */
void
trainN(Lvp &l, Addr pc, Value v, int n)
{
    for (int i = 0; i < n; ++i)
        l.train(outcomeOf(pc, v));
}

} // anonymous namespace

TEST(Lvp, NoPredictionWhenCold)
{
    Lvp l(256);
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
}

TEST(Lvp, NoPredictionBeforeEffectiveConfidence)
{
    // Effective confidence is 64 observations; after a handful the
    // counter cannot have reached threshold 7 (first two steps are
    // deterministic, later ones probabilistic but bounded).
    Lvp l(256);
    trainN(l, 0x100, 42, 7);
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
}

TEST(Lvp, PredictsAfterManyConsistentObservations)
{
    Lvp l(256, 1);
    trainN(l, 0x100, 42, 400); // >> 64 effective
    const auto cp = l.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
    EXPECT_TRUE(cp.pred.isValue());
    EXPECT_EQ(cp.pred.value, 42u);
    EXPECT_EQ(cp.pred.component, pipe::ComponentId::LVP);
}

TEST(Lvp, ValueChangeResetsConfidence)
{
    Lvp l(256, 1);
    trainN(l, 0x100, 42, 400);
    ASSERT_TRUE(l.lookup(probeOf(0x100)).confident);
    l.train(outcomeOf(0x100, 43));
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
    // And the new value must be installed for retraining.
    trainN(l, 0x100, 43, 400);
    const auto cp = l.lookup(probeOf(0x100));
    ASSERT_TRUE(cp.confident);
    EXPECT_EQ(cp.pred.value, 43u);
}

TEST(Lvp, DistinctPcsTrackedIndependently)
{
    Lvp l(256, 1);
    trainN(l, 0x100, 1, 400);
    trainN(l, 0x104, 2, 400);
    EXPECT_EQ(l.lookup(probeOf(0x100)).pred.value, 1u);
    EXPECT_EQ(l.lookup(probeOf(0x104)).pred.value, 2u);
}

TEST(Lvp, ConflictEvictsViaTagMismatch)
{
    // Two PCs that collide in a 4-entry table: training one evicts
    // the other (direct mapped).
    Lvp l(4, 1);
    trainN(l, 0x100, 1, 400);
    ASSERT_TRUE(l.lookup(probeOf(0x100)).confident);
    trainN(l, 0x100 + 4 * 4, 2, 400); // same index, different tag
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
}

TEST(Lvp, StorageMatchesPaper81BitsPerEntry)
{
    Lvp l(1024);
    EXPECT_EQ(l.storageBits(), 1024ull * 81);
    EXPECT_EQ(l.entryBits(), 81u);
}

TEST(Lvp, ZeroEntriesIsInert)
{
    Lvp l(0);
    trainN(l, 0x100, 1, 100);
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
    EXPECT_EQ(l.storageBits(), 0u);
}

TEST(Lvp, DonorStopsPredictingAndFlushes)
{
    Lvp l(256, 1);
    trainN(l, 0x100, 1, 400);
    ASSERT_TRUE(l.lookup(probeOf(0x100)).confident);
    l.donateTable();
    EXPECT_TRUE(l.isDonor());
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
    l.unfuse();
    EXPECT_FALSE(l.isDonor());
    // Donor tables are flushed on unfuse too: must retrain.
    EXPECT_FALSE(l.lookup(probeOf(0x100)).confident);
}

TEST(Lvp, ReceiverGainsWaysAndKeepsData)
{
    Lvp l(4, 1);
    trainN(l, 0x100, 1, 400);
    l.receiveWays(1); // now 2-way
    ASSERT_TRUE(l.lookup(probeOf(0x100)).confident);
    // The conflicting PC now coexists instead of evicting.
    trainN(l, 0x100 + 4 * 4, 2, 400);
    EXPECT_TRUE(l.lookup(probeOf(0x100)).confident);
    EXPECT_TRUE(l.lookup(probeOf(0x100 + 4 * 4)).confident);
    l.unfuse();
    // Way 0 survives unfusing.
    EXPECT_EQ(l.numEntries(), 4u);
}

TEST(Lvp, WouldBeCorrectComparesValues)
{
    Lvp l(256, 1);
    trainN(l, 0x100, 42, 400);
    const auto cp = l.lookup(probeOf(0x100));
    EXPECT_TRUE(l.wouldBeCorrect(cp, outcomeOf(0x100, 42)));
    EXPECT_FALSE(l.wouldBeCorrect(cp, outcomeOf(0x100, 43)));
}
