#include <gtest/gtest.h>

#include "trace/memory_image.hh"

using namespace lvpsim;
using namespace lvpsim::trace;

TEST(MemoryImage, UntouchedReadsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.read(0x1000, 8), 0u);
    EXPECT_EQ(m.read(0xdeadbeef, 1), 0u);
}

TEST(MemoryImage, WriteReadRoundTrip)
{
    MemoryImage m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
}

TEST(MemoryImage, LittleEndianLayout)
{
    MemoryImage m;
    m.write(0x1000, 0x0A0B0C0Dull, 4);
    EXPECT_EQ(m.read(0x1000, 1), 0x0Dull);
    EXPECT_EQ(m.read(0x1001, 1), 0x0Cull);
    EXPECT_EQ(m.read(0x1002, 1), 0x0Bull);
    EXPECT_EQ(m.read(0x1003, 1), 0x0Aull);
}

TEST(MemoryImage, PartialWidthWriteMasks)
{
    MemoryImage m;
    m.write(0x2000, 0xffffffffffffffffull, 2);
    EXPECT_EQ(m.read(0x2000, 8), 0xffffull);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage m;
    const Addr a = MemoryImage::pageSize - 4; // straddles page 0/1
    m.write(a, 0x1234567890abcdefull, 8);
    EXPECT_EQ(m.read(a, 8), 0x1234567890abcdefull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(MemoryImage, OverlappingWritesLastWins)
{
    MemoryImage m;
    m.write(0x3000, 0xaaaaaaaaaaaaaaaaull, 8);
    m.write(0x3002, 0xbbbbull, 2);
    EXPECT_EQ(m.read(0x3000, 8), 0xaaaaaaaabbbbaaaaull);
}

TEST(MemoryImage, ZeroRange)
{
    MemoryImage m;
    m.write(0x4000, ~0ull, 8);
    m.write(0x4008, ~0ull, 8);
    m.zeroRange(0x4000, 12);
    EXPECT_EQ(m.read(0x4000, 8), 0u);
    EXPECT_EQ(m.read(0x4008, 4), 0u);
    EXPECT_EQ(m.read(0x400c, 4), 0xffffffffull);
}

TEST(MemoryImage, RejectsBadSize)
{
    MemoryImage m;
    EXPECT_DEATH((void)m.read(0, 9), "size");
    EXPECT_DEATH(m.write(0, 0, 0), "size");
}
