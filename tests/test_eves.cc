#include <gtest/gtest.h>

#include "core/eves.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::LoadOutcome;
using pipe::LoadProbe;
using pipe::Prediction;

namespace
{

std::uint64_t nextToken = 1;

Prediction
oneLoad(EvesPredictor &p, Addr pc, Value v, unsigned inflight = 0)
{
    LoadProbe probe;
    probe.pc = pc;
    probe.token = nextToken++;
    probe.inflightSamePc = inflight;
    const Prediction pred = p.predict(probe);
    LoadOutcome o;
    o.pc = pc;
    o.token = probe.token;
    o.effAddr = 0x1000;
    o.size = 8;
    o.value = v;
    p.train(o);
    return pred;
}

} // anonymous namespace

TEST(Eves, ColdPredictsNothing)
{
    EvesPredictor p;
    LoadProbe probe;
    probe.pc = 0x100;
    probe.token = nextToken++;
    EXPECT_FALSE(p.predict(probe).valid());
    p.abandon(probe.token);
}

TEST(Eves, LearnsConstantValue)
{
    EvesPredictor p;
    for (int i = 0; i < 400; ++i)
        oneLoad(p, 0x100, 42);
    const auto pred = oneLoad(p, 0x100, 42);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.value, 42u);
}

TEST(Eves, LearnsStrideValues)
{
    // The headline E-Stride capability: values that increase by a
    // fixed delta (the paper's composite predictor cannot do this).
    EvesPredictor p;
    Value v = 100;
    for (int i = 0; i < 500; ++i) {
        oneLoad(p, 0x200, v);
        v += 24;
    }
    const auto pred = oneLoad(p, 0x200, v);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.value, v); // next in sequence (then trained)
}

TEST(Eves, StrideAccountsForInflight)
{
    EvesPredictor p;
    Value v = 0;
    for (int i = 0; i < 500; ++i) {
        oneLoad(p, 0x300, v);
        v += 8;
    }
    // With k in-flight instances the prediction advances k+1 strides.
    LoadProbe probe;
    probe.pc = 0x300;
    probe.token = nextToken++;
    probe.inflightSamePc = 3;
    const auto pred = p.predict(probe);
    p.abandon(probe.token);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.value, v - 8 + 4 * 8);
}

TEST(Eves, ContextValuesViaVtage)
{
    EvesPredictor p;
    // Alternate values with alternating branch context.
    for (int i = 0; i < 600; ++i) {
        const bool ctx = i % 2 != 0;
        p.notifyBranch(0x900, ctx, 0x1000);
        oneLoad(p, 0x400, ctx ? 7 : 13);
    }
    int correct = 0, predicted = 0;
    for (int i = 0; i < 100; ++i) {
        const bool ctx = i % 2 != 0;
        p.notifyBranch(0x900, ctx, 0x1000);
        const auto pred = oneLoad(p, 0x400, ctx ? 7 : 13);
        if (pred.valid()) {
            ++predicted;
            correct += pred.value == (ctx ? 7u : 13u);
        }
    }
    EXPECT_GT(predicted, 50);
    EXPECT_GT(double(correct) / std::max(predicted, 1), 0.9);
}

TEST(Eves, RandomValuesStayUnpredicted)
{
    EvesPredictor p;
    Xoshiro256 rng(3);
    int predicted = 0;
    for (int i = 0; i < 500; ++i) {
        const auto pred = oneLoad(p, 0x500, rng.next());
        predicted += pred.valid() ? 1 : 0;
    }
    EXPECT_LT(predicted, 10);
}

TEST(Eves, PredictionsAreValueKind)
{
    EvesPredictor p;
    for (int i = 0; i < 400; ++i)
        oneLoad(p, 0x600, 5);
    const auto pred = oneLoad(p, 0x600, 5);
    ASSERT_TRUE(pred.valid());
    EXPECT_TRUE(pred.isValue());
    EXPECT_FALSE(pred.isAddress());
}

TEST(Eves, StorageTiersOrdered)
{
    EvesPredictor small(EvesConfig::small8k());
    EvesPredictor large(EvesConfig::large32k());
    EvesPredictor inf(EvesConfig::infinite());
    EXPECT_LT(small.storageBits(), large.storageBits());
    EXPECT_LT(large.storageBits(), inf.storageBits());
    // The tiers should be in the ballpark of their names.
    EXPECT_NEAR(double(small.storageBits()) / 8192.0, 8.0, 4.0);
    EXPECT_NEAR(double(large.storageBits()) / 8192.0, 32.0, 12.0);
}

TEST(Eves, AbandonKeepsStateConsistent)
{
    EvesPredictor p;
    for (int i = 0; i < 100; ++i) {
        LoadProbe probe;
        probe.pc = 0x700;
        probe.token = nextToken++;
        p.predict(probe);
        p.abandon(probe.token);
    }
    SUCCEED();
}
