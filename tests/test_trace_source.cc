/**
 * @file
 * TraceSource contract tests: the synthetic backend is bit-identical
 * to the historical generateWorkload() path, reset() replays the
 * exact stream, the recorder/RecordedSource pair round-trips, and
 * trace specs parse/print consistently.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace_source.hh"
#include "trace/trace_spec.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using trace::MicroOp;

namespace
{

bool
sameOps(const std::vector<MicroOp> &a, const std::vector<MicroOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (trace::debugString(a[i]) != trace::debugString(b[i]))
            return false;
    }
    return true;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

} // anonymous namespace

TEST(TraceSource, SyntheticMatchesGenerateWorkload)
{
    trace::SyntheticSource src("memset_loop", 2000, 1);
    const auto direct = trace::generateWorkload("memset_loop", 2000, 1);
    EXPECT_TRUE(sameOps(src.instructions(), direct));
    EXPECT_EQ(src.instructionCount(), direct.size());
    EXPECT_EQ(src.name(), "memset_loop");
    EXPECT_STREQ(src.format(), "synthetic");
    EXPECT_EQ(src.identity(), "synth:memset_loop#2000#1");
}

TEST(TraceSource, ResetReplaysIdenticalStream)
{
    trace::SyntheticSource src("pointer_chase", 500, 7);
    const auto first = trace::materialize(src);
    EXPECT_EQ(first.size(), src.instructionCount());

    MicroOp op;
    EXPECT_FALSE(src.next(op)); // drained

    src.reset();
    const auto second = trace::materialize(src);
    EXPECT_TRUE(sameOps(first, second));
}

TEST(TraceSource, MaterializeHonorsBudget)
{
    trace::SyntheticSource src("stream_sum", 1000, 1);
    const auto head = trace::materialize(src, 100);
    ASSERT_EQ(head.size(), 100u);
    src.reset();
    const auto all = trace::materialize(src);
    ASSERT_GE(all.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(trace::debugString(head[i]),
                  trace::debugString(all[i]));
}

TEST(TraceSource, RecordReplayRoundTrip)
{
    const std::string path = tempPath("roundtrip.lvpt");
    trace::SyntheticSource src("hash_probe", 800, 3);

    std::string err;
    const std::size_t written = trace::recordTrace(src, path, 0, &err);
    ASSERT_EQ(written, src.instructionCount()) << err;

    auto replay = trace::RecordedSource::open(path, &err);
    ASSERT_NE(replay, nullptr) << err;
    EXPECT_STREQ(replay->format(), "lvpt");
    EXPECT_EQ(replay->instructionCount(), src.instructionCount());
    EXPECT_TRUE(sameOps(replay->instructions(), src.instructions()));
    EXPECT_EQ(trace::hashTrace(replay->instructions()),
              trace::hashTrace(src.instructions()));
    // Identity embeds the content hash: a distinct trace written to
    // the same path must get a distinct identity.
    const std::string id1 = replay->identity();
    trace::SyntheticSource other("stream_sum", 800, 3);
    ASSERT_GT(trace::recordTrace(other, path), 0u);
    auto replay2 = trace::RecordedSource::open(path, &err);
    ASSERT_NE(replay2, nullptr) << err;
    EXPECT_NE(replay2->identity(), id1);
    std::remove(path.c_str());
}

TEST(TraceSource, OpenMissingFileFailsCleanly)
{
    std::string err;
    auto src = trace::RecordedSource::open(
        tempPath("does_not_exist.lvpt"), &err);
    EXPECT_EQ(src, nullptr);
    EXPECT_FALSE(err.empty());
}

TEST(TraceSpec, ParseAndPrint)
{
    const auto bare = trace::parseTraceSpec("memset_loop");
    EXPECT_EQ(bare.kind, trace::TraceKind::Synthetic);
    EXPECT_EQ(bare.name, "memset_loop");
    EXPECT_EQ(trace::traceSpecString(bare), "memset_loop");

    const auto synth = trace::parseTraceSpec("synth:memset_loop");
    EXPECT_EQ(synth.kind, trace::TraceKind::Synthetic);
    EXPECT_EQ(synth.name, "memset_loop");

    const auto lvpt = trace::parseTraceSpec("lvpt:/tmp/a.lvpt");
    EXPECT_EQ(lvpt.kind, trace::TraceKind::Lvpt);
    EXPECT_EQ(lvpt.name, "/tmp/a.lvpt");
    EXPECT_EQ(trace::traceSpecString(lvpt), "lvpt:/tmp/a.lvpt");

    const auto cvp = trace::parseTraceSpec("cvp:/tmp/b.cvp.gz");
    EXPECT_EQ(cvp.kind, trace::TraceKind::Cvp);
    EXPECT_EQ(cvp.name, "/tmp/b.cvp.gz");
    EXPECT_EQ(trace::traceSpecString(cvp), "cvp:/tmp/b.cvp.gz");
}

TEST(TraceSpec, OpenSyntheticViaFactory)
{
    std::string err;
    auto src = trace::openTraceSource(
        trace::parseTraceSpec("memset_loop"), 300, 1, &err);
    ASSERT_NE(src, nullptr) << err;
    EXPECT_STREQ(src->format(), "synthetic");
    EXPECT_EQ(src->instructionCount(), 300u);
}

TEST(TraceSource, DebugStringIsStable)
{
    MicroOp op;
    op.pc = 0x4000;
    op.cls = trace::OpClass::Load;
    op.dst = 3;
    op.src = {1, invalidReg, invalidReg};
    op.effAddr = 0x10000;
    op.memSize = 8;
    op.memValue = 0x2a;
    EXPECT_EQ(trace::debugString(op),
              "pc=0x4000 cls=4 dst=3 src=1,-,- ea=0x10000 sz=8 "
              "val=0x2a excl=0 taken=0 tgt=0x0");
}
