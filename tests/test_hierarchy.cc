#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

using namespace lvpsim;
using namespace lvpsim::mem;

namespace
{

HierarchyConfig
noPrefetch()
{
    HierarchyConfig cfg;
    cfg.enablePrefetch = false;
    return cfg;
}

} // anonymous namespace

TEST(Hierarchy, ColdAccessPaysFullLatency)
{
    MemoryHierarchy m(noPrefetch());
    const auto r = m.dataAccess(0x100, 0x50000000, false);
    // TLB walk + L1D + L2 + L3 + memory = 20 + 2 + 16 + 32 + 200.
    EXPECT_EQ(r.latency, 20u + 2u + 16u + 32u + 200u);
    EXPECT_FALSE(r.l1Hit);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    MemoryHierarchy m(noPrefetch());
    m.dataAccess(0x100, 0x50000000, false);
    const auto r = m.dataAccess(0x100, 0x50000000, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 2u); // TLB hit + L1D
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy m(noPrefetch());
    const Addr target = 0x60000000;
    m.dataAccess(0x100, target, false);
    // Evict from 64KB 4-way L1 with 5 conflicting blocks
    // (set stride = 256 sets x 64B = 16KB), keeping them within the
    // same L2 set's reach is fine - L2 is much bigger.
    for (int i = 1; i <= 4; ++i)
        m.dataAccess(0x100, target + i * 16 * 1024, false);
    const auto r = m.dataAccess(0x100, target, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latency, 2u + 16u);
}

TEST(Hierarchy, PaqProbeHitGivesL1Latency)
{
    MemoryHierarchy m(noPrefetch());
    m.dataAccess(0x100, 0x70000000, false);
    const auto r = m.paqProbe(0x70000000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, PaqProbeMissDoesNotFill)
{
    MemoryHierarchy m(noPrefetch());
    const auto r = m.paqProbe(0x70001000);
    EXPECT_FALSE(r.l1Hit);
    // The probe must not have filled anything (step 5 disabled).
    EXPECT_FALSE(m.l1d().contains(0x70001000));
    EXPECT_FALSE(m.l2().contains(0x70001000));
}

TEST(Hierarchy, TlbMissCostsWalk)
{
    MemoryHierarchy m(noPrefetch());
    m.dataAccess(0x100, 0x80000000, false); // cold: TLB walk + miss
    // Same page, next 64B block: TLB hits, L1 misses, but the 128B
    // L2 block filled by the first access covers it.
    const auto r = m.dataAccess(0x100, 0x80000040, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latency, 2u + 16u); // no TLB walk this time
}

TEST(Hierarchy, PrefetcherCutsStreamMisses)
{
    HierarchyConfig with_pf;
    with_pf.enablePrefetch = true;
    MemoryHierarchy pf(with_pf);
    MemoryHierarchy nopf(noPrefetch());

    // A strided stream from one PC; count total latency both ways.
    Cycle lat_pf = 0, lat_nopf = 0;
    for (int i = 0; i < 512; ++i) {
        const Addr a = 0x90000000 + Addr(i) * 64;
        lat_pf += pf.dataAccess(0x200, a, false).latency;
        lat_nopf += nopf.dataAccess(0x200, a, false).latency;
    }
    EXPECT_GT(pf.prefetchesIssued(), 100u);
    EXPECT_LT(lat_pf, lat_nopf);
}

TEST(Hierarchy, InstFetchWarmsICache)
{
    MemoryHierarchy m(noPrefetch());
    const Cycle cold = m.instFetch(0x400000);
    const Cycle warm = m.instFetch(0x400000);
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, 1u); // Table III: 1-cycle L1I
}

TEST(Hierarchy, StoresAllocateDirty)
{
    MemoryHierarchy m(noPrefetch());
    m.dataAccess(0x100, 0xa0000000, true);
    EXPECT_TRUE(m.l1d().contains(0xa0000000));
}

TEST(Hierarchy, L3HitPath)
{
    MemoryHierarchy m(noPrefetch());
    const Addr target = 0xb0000000;
    m.dataAccess(0x100, target, false);
    // Evict from L1 (16KB set stride) AND L2 (512KB 8-way 128B ->
    // 512 sets x 128B = 64KB stride).
    for (int i = 1; i <= 8; ++i)
        m.dataAccess(0x100, target + Addr(i) * 64 * 1024, false);
    const auto r = m.dataAccess(0x100, target, false);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_TRUE(r.l3Hit);
}
