/**
 * @file
 * Unit tests for common/ring_buffer.hh: wraparound, full/empty
 * boundaries, reference stability across pops, and the random-access
 * iterator contract the core's std::lower_bound searches rely on.
 */

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/ring_buffer.hh"

using lvpsim::RingBuffer;

TEST(RingBuffer, StartsEmptyAndRoundsCapacityUpToPow2)
{
    RingBuffer<int> rb(6);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 8u); // 6 -> 8
    EXPECT_EQ(RingBuffer<int>(8).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(1).capacity(), 1u);
}

TEST(RingBuffer, FifoOrderSurvivesManyWraparounds)
{
    RingBuffer<int> rb(4);
    int next_in = 0, next_out = 0;
    // Steady-state occupancy 3 over a capacity-4 (pow2) ring: the
    // head wraps hundreds of times.
    for (int i = 0; i < 3; ++i)
        rb.push_back(next_in++);
    for (int step = 0; step < 1000; ++step) {
        EXPECT_EQ(rb.front(), next_out);
        rb.pop_front();
        ++next_out;
        rb.push_back(next_in++);
        EXPECT_EQ(rb.size(), 3u);
        EXPECT_EQ(rb.back(), next_in - 1);
    }
}

TEST(RingBuffer, FillToCapacityThenDrain)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), rb.capacity());
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    EXPECT_TRUE(rb.empty());
    // Reusable after a full drain, from a now-nonzero head.
    rb.push_back(41);
    EXPECT_EQ(rb.back(), 41);
}

TEST(RingBuffer, PopBackRemovesYoungest)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 5; ++i)
        rb.push_back(i);
    rb.pop_back();
    rb.pop_back();
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.back(), 2);
    rb.push_back(9);
    EXPECT_EQ(rb.back(), 9);
}

TEST(RingBuffer, IndexingIsFrontRelative)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; ++i)
        rb.push_back(10 + i);
    rb.pop_front(); // head moves off slot 0
    rb.push_back(14); // physically wraps to slot 0
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], int(11 + i));
}

TEST(RingBuffer, ReferencesStableAcrossOtherPushesAndPops)
{
    // Index-stability contract: pushing/popping other elements never
    // moves a live element (the core keeps Inflight* across stage
    // logic within a cycle).
    RingBuffer<int> rb(8);
    for (int i = 0; i < 6; ++i)
        rb.push_back(i);
    int *third = &rb[3];
    rb.pop_front();
    rb.pop_front();
    rb.push_back(6);
    rb.push_back(7);
    EXPECT_EQ(*third, 3);
    EXPECT_EQ(&rb[1], third); // same slot, new logical index
}

TEST(RingBuffer, IteratorsAreRandomAccess)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 6; ++i)
        rb.push_back(i * 10);
    rb.pop_front();
    rb.pop_front();
    rb.push_back(60);
    rb.push_back(70); // wrapped: logical [20..70]

    auto it = rb.begin();
    EXPECT_EQ(*(it + 3), 50);
    it += 2;
    EXPECT_EQ(*it, 40);
    EXPECT_EQ(it - rb.begin(), 2);
    EXPECT_EQ(rb.end() - rb.begin(),
              std::ptrdiff_t(rb.size()));
    EXPECT_TRUE(rb.begin() < rb.end());
    EXPECT_EQ(rb.begin()[5], 70);

    std::vector<int> seen(rb.begin(), rb.end());
    EXPECT_EQ(seen, (std::vector<int>{20, 30, 40, 50, 60, 70}));
    std::vector<int> rseen(rb.rbegin(), rb.rend());
    EXPECT_EQ(rseen, (std::vector<int>{70, 60, 50, 40, 30, 20}));
}

TEST(RingBuffer, LowerBoundOverWrappedRing)
{
    // The core binary-searches the seq-sorted ROB; exercise
    // std::lower_bound across a physically wrapped window.
    RingBuffer<int> rb(8);
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);
    for (int i = 0; i < 5; ++i)
        rb.pop_front();
    for (int i = 8; i < 12; ++i)
        rb.push_back(i); // logical [5..11], wrapped
    for (int probe = 5; probe < 12; ++probe) {
        auto it = std::lower_bound(rb.begin(), rb.end(), probe);
        ASSERT_NE(it, rb.end());
        EXPECT_EQ(*it, probe);
    }
    EXPECT_EQ(std::lower_bound(rb.begin(), rb.end(), 42), rb.end());
}

TEST(RingBuffer, ConstIterationAndConversion)
{
    RingBuffer<int> rb(4);
    rb.push_back(1);
    rb.push_back(2);
    const RingBuffer<int> &crb = rb;
    int sum = 0;
    for (int v : crb)
        sum += v;
    EXPECT_EQ(sum, 3);
    RingBuffer<int>::const_iterator ci = rb.begin(); // conversion
    EXPECT_EQ(*ci, 1);
    EXPECT_EQ(std::accumulate(crb.begin(), crb.end(), 0), 3);
}

TEST(RingBuffer, ClearResetsToEmpty)
{
    RingBuffer<int> rb(4);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
    EXPECT_EQ(rb.back(), 7);
}
