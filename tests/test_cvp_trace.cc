/**
 * @file
 * CVP-1 trace format tests: the checked-in fixture parses to its
 * golden output and drives the differential harness cleanly, the
 * writer/reader pair round-trips exactly as cvpProjection specifies,
 * malformed inputs fail with clean errors (no crash/UB), and the
 * gzip path round-trips when zlib is available.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/composite.hh"
#include "pipeline/core_config.hh"
#include "qa/differential.hh"
#include "trace/cvp_trace.hh"
#include "trace/trace_source.hh"

using namespace lvpsim;
using trace::CvpInstClass;
using trace::MicroOp;
using trace::OpClass;

namespace
{

const char *const fixturePath =
    LVPSIM_TEST_DATA_DIR "/mini_pointer_chase.cvp";
const char *const goldenPath =
    LVPSIM_TEST_DATA_DIR "/mini_pointer_chase.golden";

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

/** A handcrafted trace covering every OpClass and format corner. */
std::vector<MicroOp>
cornerTrace()
{
    std::vector<MicroOp> ops;
    auto add = [&](OpClass cls) -> MicroOp & {
        MicroOp op;
        op.pc = 0x1000 + 4 * ops.size();
        op.cls = cls;
        ops.push_back(op);
        return ops.back();
    };
    add(OpClass::IntAlu).dst = 5;
    {
        MicroOp &op = add(OpClass::Load);
        op.dst = 3;
        op.src = {1, invalidReg, invalidReg};
        op.effAddr = 0xdead0000;
        op.memSize = 8;
        op.memValue = 0x123456789abcdef0ull;
    }
    {
        // An exclusive store: exclusiveMem is not representable and
        // the stored value is not carried by the format.
        MicroOp &op = add(OpClass::Store);
        op.src = {2, 7, invalidReg};
        op.effAddr = 0xbeef;
        op.memSize = 4;
        op.memValue = 42;
        op.exclusiveMem = true;
    }
    {
        MicroOp &op = add(OpClass::Branch); // taken, explicit target
        op.taken = true;
        op.target = 0x2000;
        op.src = {9, invalidReg, invalidReg};
    }
    {
        MicroOp &op = add(OpClass::Branch); // not taken: target is
        op.taken = false;                   // rewritten to pc + 4
        op.target = 0x3333;
    }
    {
        MicroOp &op = add(OpClass::Call); // folds to Branch(taken)
        op.taken = true;
        op.target = 0x4000;
    }
    {
        MicroOp &op = add(OpClass::Ret); // folds to IndirBr
        op.taken = true;
        op.target = 0x1010;
    }
    {
        MicroOp &op = add(OpClass::IndirBr);
        op.taken = true;
        op.target = 0x5000;
        op.src = {4, invalidReg, invalidReg};
    }
    add(OpClass::IntMul).dst = 8;
    add(OpClass::IntDiv).dst = 9;   // folds to IntMul
    {
        MicroOp &op = add(OpClass::FpAlu); // SIMD-bank destination
        op.dst = 40;
        op.src = {33, 34, invalidReg};
    }
    add(OpClass::Barrier); // folds to IntAlu
    add(OpClass::Nop);
    {
        MicroOp &op = add(OpClass::Load); // load with no dst reg:
        op.effAddr = 0x7000;              // value cannot be carried
        op.memSize = 2;
        op.memValue = 99;
    }
    return ops;
}

} // anonymous namespace

TEST(CvpTrace, FixtureParsesToGolden)
{
    std::vector<MicroOp> ops;
    std::string err;
    ASSERT_TRUE(trace::loadCvpTraceFile(fixturePath, ops, &err))
        << err;
    ASSERT_EQ(ops.size(), 200u);

    std::ifstream golden(goldenPath);
    ASSERT_TRUE(golden.is_open()) << goldenPath;
    std::string line;
    std::size_t i = 0;
    while (std::getline(golden, line)) {
        ASSERT_LT(i, ops.size());
        EXPECT_EQ(trace::debugString(ops[i]), line)
            << "fixture record " << i;
        ++i;
    }
    EXPECT_EQ(i, ops.size());
}

TEST(CvpTrace, FixtureRunsDifferentialCleanly)
{
    std::vector<MicroOp> ops;
    std::string err;
    ASSERT_TRUE(trace::loadCvpTraceFile(fixturePath, ops, &err))
        << err;
    const auto res = qa::runDifferential(
        pipe::CoreConfig{}, vp::CompositeConfig::homogeneous(256),
        ops);
    EXPECT_TRUE(res.ok()) << res.failureReport();
}

TEST(CvpTrace, FixtureThroughTraceSource)
{
    std::string err;
    auto src = trace::CvpTraceSource::open(fixturePath, &err);
    ASSERT_NE(src, nullptr) << err;
    EXPECT_STREQ(src->format(), "cvp");
    EXPECT_EQ(src->instructionCount(), 200u);
    EXPECT_EQ(src->identity().rfind("cvp:", 0), 0u);
    // max_records caps the parse.
    auto head = trace::CvpTraceSource::open(fixturePath, &err, 10);
    ASSERT_NE(head, nullptr) << err;
    EXPECT_EQ(head->instructionCount(), 10u);
}

TEST(CvpTrace, RoundTripEqualsProjection)
{
    const auto ops = cornerTrace();
    std::ostringstream os;
    ASSERT_TRUE(trace::writeCvpTrace(os, ops));

    std::istringstream is(os.str());
    std::vector<MicroOp> back;
    std::string err;
    ASSERT_TRUE(trace::readCvpTrace(is, back, &err)) << err;
    ASSERT_EQ(back.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(trace::debugString(back[i]),
                  trace::debugString(trace::cvpProjection(ops[i])))
            << "record " << i;

    // The projection is a fixed point: once an op has been through
    // one round trip, further round trips are byte-identical. (The
    // FIRST write can differ — e.g. a Call exports as UncondDirect,
    // imports as a taken Branch, and re-exports as CondBranch.)
    std::ostringstream second;
    ASSERT_TRUE(trace::writeCvpTrace(second, back));
    std::istringstream is2(second.str());
    std::vector<MicroOp> again;
    ASSERT_TRUE(trace::readCvpTrace(is2, again, &err)) << err;
    ASSERT_EQ(again.size(), back.size());
    for (std::size_t i = 0; i < back.size(); ++i)
        EXPECT_EQ(trace::debugString(again[i]),
                  trace::debugString(back[i]))
            << "record " << i;
    std::ostringstream third;
    ASSERT_TRUE(trace::writeCvpTrace(third, again));
    EXPECT_EQ(second.str(), third.str());
}

TEST(CvpTrace, EmptyStreamParses)
{
    std::istringstream is("");
    std::vector<MicroOp> ops{MicroOp{}};
    std::string err;
    EXPECT_TRUE(trace::readCvpTrace(is, ops, &err)) << err;
    EXPECT_TRUE(ops.empty());
}

TEST(CvpTrace, TruncatedRecordsFailCleanly)
{
    std::ostringstream os;
    ASSERT_TRUE(trace::writeCvpTrace(os, cornerTrace()));
    const std::string bytes = os.str();

    // Every proper prefix that cuts a record mid-way must fail with
    // an error (prefixes at record boundaries succeed instead).
    std::size_t failures = 0;
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        std::istringstream is(bytes.substr(0, cut));
        std::vector<MicroOp> ops;
        std::string err;
        if (!trace::readCvpTrace(is, ops, &err)) {
            EXPECT_FALSE(err.empty());
            EXPECT_NE(err.find("truncated"), std::string::npos)
                << err;
            ++failures;
        }
    }
    EXPECT_GT(failures, 0u);
}

TEST(CvpTrace, BadInstructionClassFailsCleanly)
{
    std::string bytes(8, '\0'); // pc
    bytes.push_back(char(9));   // first invalid class id
    std::istringstream is(bytes);
    std::vector<MicroOp> ops;
    std::string err;
    EXPECT_FALSE(trace::readCvpTrace(is, ops, &err));
    EXPECT_NE(err.find("bad instruction class"), std::string::npos)
        << err;
}

TEST(CvpTrace, ImplausibleRegisterCountFailsCleanly)
{
    std::string bytes(8, '\0');  // pc
    bytes.push_back(char(0));    // Alu
    bytes.push_back(char(200));  // input-reg count way past sane
    std::istringstream is(bytes);
    std::vector<MicroOp> ops;
    std::string err;
    EXPECT_FALSE(trace::readCvpTrace(is, ops, &err));
    EXPECT_NE(err.find("implausible input register count"),
              std::string::npos)
        << err;
}

TEST(CvpTrace, DroppedRegistersOnImport)
{
    // Flags (64) and zero (65) registers, and inputs past the third,
    // are dropped on import.
    std::string bytes(8, '\0'); // pc = 0
    bytes.push_back(char(0));   // Alu
    bytes.push_back(char(5));   // 5 input regs
    for (unsigned char r : {1, 64, 65, 2, 3})
        bytes.push_back(char(r));
    bytes.push_back(char(1));  // 1 output reg
    bytes.push_back(char(64)); // the flags register: dropped
    bytes.append(8, '\0');     // its value
    std::istringstream is(bytes);
    std::vector<MicroOp> ops;
    std::string err;
    ASSERT_TRUE(trace::readCvpTrace(is, ops, &err)) << err;
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].src[0], 1);
    EXPECT_EQ(ops[0].src[1], 2);
    EXPECT_EQ(ops[0].src[2], 3);
    EXPECT_EQ(ops[0].dst, invalidReg);
}

TEST(CvpTrace, ClassMapping)
{
    EXPECT_EQ(trace::cvpClassOf(OpClass::IntAlu), CvpInstClass::Alu);
    EXPECT_EQ(trace::cvpClassOf(OpClass::IntDiv),
              CvpInstClass::SlowAlu);
    EXPECT_EQ(trace::cvpClassOf(OpClass::Call),
              CvpInstClass::UncondDirect);
    EXPECT_EQ(trace::cvpClassOf(OpClass::Ret),
              CvpInstClass::UncondIndirect);
    EXPECT_EQ(trace::cvpClassOf(OpClass::Barrier), CvpInstClass::Alu);
    EXPECT_EQ(trace::cvpClassOf(OpClass::Nop), CvpInstClass::Undef);
}

TEST(CvpTrace, GzipRoundTrip)
{
    if (!trace::cvpGzipSupported())
        GTEST_SKIP() << "built without zlib";

    const auto ops = cornerTrace();
    const std::string path = tempPath("corner.cvp.gz");
    std::string err;
    ASSERT_TRUE(trace::saveCvpTraceFile(path, ops, true, &err))
        << err;

    // The file really is gzip (2-byte magic)...
    std::ifstream raw(path, std::ios::binary);
    unsigned char magic[2] = {0, 0};
    raw.read(reinterpret_cast<char *>(magic), 2);
    EXPECT_EQ(magic[0], 0x1f);
    EXPECT_EQ(magic[1], 0x8b);

    // ... and loads transparently back to the projection.
    std::vector<MicroOp> back;
    ASSERT_TRUE(trace::loadCvpTraceFile(path, back, &err)) << err;
    ASSERT_EQ(back.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(trace::debugString(back[i]),
                  trace::debugString(trace::cvpProjection(ops[i])));
    std::remove(path.c_str());
}

TEST(CvpTrace, CorruptGzipFailsCleanly)
{
    if (!trace::cvpGzipSupported())
        GTEST_SKIP() << "built without zlib";
    const std::string path = tempPath("corrupt.cvp.gz");
    {
        std::ofstream os(path, std::ios::binary);
        const unsigned char junk[] = {0x1f, 0x8b, 0x00, 0x01, 0x02};
        os.write(reinterpret_cast<const char *>(junk), sizeof(junk));
    }
    std::vector<MicroOp> ops;
    std::string err;
    EXPECT_FALSE(trace::loadCvpTraceFile(path, ops, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}
