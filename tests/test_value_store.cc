#include <gtest/gtest.h>

#include "core/composite.hh"
#include "core/lvp.hh"
#include "core/value_store.hh"

using namespace lvpsim;
using namespace lvpsim::vp;

TEST(InlineValueStore, RoundTrips)
{
    InlineValueStore s;
    const auto r = s.store(0xdeadbeef);
    ASSERT_TRUE(s.load(r).has_value());
    EXPECT_EQ(*s.load(r), 0xdeadbeefull);
    EXPECT_EQ(s.refBits(), 64u);
    EXPECT_EQ(s.poolBits(), 0u);
}

TEST(SharedValueStore, RoundTrips)
{
    SharedValueStore s(64);
    const auto r = s.store(42);
    ASSERT_TRUE(s.load(r).has_value());
    EXPECT_EQ(*s.load(r), 42ull);
}

TEST(SharedValueStore, DeduplicatesIdenticalValues)
{
    SharedValueStore s(64);
    const auto a = s.store(7);
    const auto b = s.store(7);
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_EQ(a.gen, b.gen);
    EXPECT_EQ(s.liveValues(), 1u);
}

TEST(SharedValueStore, DistinctValuesGetDistinctSlots)
{
    SharedValueStore s(64);
    const auto a = s.store(1);
    const auto b = s.store(2);
    EXPECT_NE(a.idx, b.idx);
    EXPECT_EQ(s.liveValues(), 2u);
}

TEST(SharedValueStore, RecycledSlotInvalidatesOldRefs)
{
    SharedValueStore s(4);
    const auto old = s.store(100);
    // Overflow the 4-slot pool so slot(100) is recycled.
    for (Value v = 0; v < 16; ++v)
        s.store(1000 + v);
    EXPECT_FALSE(s.load(old).has_value());
}

TEST(SharedValueStore, LiveValuesBoundedByPool)
{
    SharedValueStore s(8);
    for (Value v = 0; v < 100; ++v)
        s.store(v);
    EXPECT_LE(s.liveValues(), 8u);
    EXPECT_GT(s.evictions(), 0u);
}

TEST(SharedValueStore, RefBitsAreCompact)
{
    SharedValueStore s(512);
    EXPECT_EQ(s.refBits(), 9u + 2u); // log2(512) + generation tag
    EXPECT_EQ(s.poolBits(), 512ull * 66);
}

TEST(SharedValueStore, ClockPrefersUnsharedSlots)
{
    SharedValueStore s(4);
    const auto hot = s.store(1);
    s.store(2);
    s.store(3);
    s.store(4);
    (void)s.store(1); // dedup hit: marks the slot shared/hot
    s.store(5);       // must recycle a one-shot slot, not the hot one
    EXPECT_TRUE(s.load(hot).has_value());
}

TEST(LvpShared, PredictsThroughSharedPool)
{
    SharedValueStore pool(256);
    Lvp l(256, 1, lvpConfThreshold, &pool);
    pipe::LoadOutcome o;
    o.pc = 0x100;
    o.effAddr = 0x1000;
    o.size = 8;
    o.value = 42;
    for (int i = 0; i < 400; ++i) {
        o.token = i + 1;
        l.train(o);
    }
    pipe::LoadProbe p;
    p.pc = 0x100;
    p.token = 9999;
    const auto cp = l.lookup(p);
    ASSERT_TRUE(cp.confident);
    EXPECT_EQ(cp.pred.value, 42u);
}

TEST(LvpShared, EntryBitsShrink)
{
    SharedValueStore pool(512);
    Lvp shared(1024, 1, lvpConfThreshold, &pool);
    Lvp inline_(1024, 1);
    // 14 tag + 3 conf + (9+2) pointer = 28 vs 81.
    EXPECT_EQ(shared.entryBits(), 14u + 3u + 11u);
    EXPECT_EQ(inline_.entryBits(), 81u);
    EXPECT_LT(shared.storageBits(), inline_.storageBits() / 2);
}

TEST(LvpShared, PoolRecyclingDropsPredictionSafely)
{
    SharedValueStore pool(4);
    Lvp l(256, 1, lvpConfThreshold, &pool);
    pipe::LoadOutcome o;
    o.pc = 0x100;
    o.effAddr = 0x1000;
    o.size = 8;
    o.value = 42;
    for (int i = 0; i < 400; ++i) {
        o.token = i + 1;
        l.train(o);
    }
    ASSERT_TRUE(l.lookup({0x100, 9998, 0}).confident);
    // Thrash the tiny pool from other values; 42's slot recycles.
    pipe::LoadOutcome other = o;
    other.pc = 0x200;
    for (int i = 0; i < 64; ++i) {
        other.value = 1000 + i;
        other.token = 10000 + i;
        l.train(other);
    }
    // The stale entry must fail safe: no prediction, no wrong value.
    const auto cp = l.lookup({0x100, 9999, 0});
    if (cp.confident) {
        EXPECT_EQ(cp.pred.value, 42u);
    }
}

TEST(CompositeShared, StorageDropsCoverageSurvives)
{
    auto plain_cfg = CompositeConfig::homogeneous(1024);
    auto shared_cfg = plain_cfg;
    shared_cfg.sharedValueArray = true; // pool auto-sized
    CompositePredictor plain(plain_cfg);
    CompositePredictor shared(shared_cfg);
    EXPECT_LT(shared.storageBits(), plain.storageBits());

    // Both learn a constant load; the shared one must still predict.
    for (int i = 0; i < 400; ++i) {
        pipe::LoadProbe p;
        p.pc = 0x100;
        p.token = i + 1;
        shared.predict(p);
        pipe::LoadOutcome o;
        o.pc = 0x100;
        o.token = i + 1;
        o.effAddr = 0x1000;
        o.size = 8;
        o.value = 77;
        shared.train(o);
    }
    pipe::LoadProbe p;
    p.pc = 0x100;
    p.token = 100000;
    const auto pred = shared.predict(p);
    shared.abandon(p.token);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.value, 77u);
}
