/**
 * @file
 * The differential correctness gate (`ctest -L differential`): every
 * suite workload runs through {no-VP, composite, oracle} pipelines
 * and must retire bit-identical commit streams, drain predictor
 * bookkeeping, keep every confidence counter in range, and order
 * speedups sanely. A fuzzed-trace sweep extends the same checks past
 * the curated workloads, shrinking any counterexample it finds.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qa/differential.hh"
#include "qa/generators.hh"
#include "qa/property.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

vp::CompositeConfig
testComposite()
{
    // Everything on, with epochs short enough that the AM and fusion
    // machinery actually runs inside a short differential sim.
    auto cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = 5000;
    return cfg;
}

} // anonymous namespace

class DifferentialWorkload
    : public testing::TestWithParam<std::string>
{};

TEST_P(DifferentialWorkload, PipelinesAgree)
{
    const auto code = trace::generateWorkload(GetParam(), 20000, 1);
    ASSERT_FALSE(code.empty());

    const auto r = qa::runDifferential(pipe::CoreConfig{},
                                       testComposite(), code);
    EXPECT_TRUE(r.ok()) << r.failureReport();

    // Ordering: the oracle (no flushes, full coverage) bounds the
    // composite from above, and value prediction never hurts the
    // no-VP baseline by more than a sliver. The tolerances absorb
    // second-order timing effects (e.g. a prediction shifting a
    // load's issue slot); a real ordering bug blows well past them.
    EXPECT_GE(r.oracle.ipc(), r.base.ipc() * 0.999)
        << "oracle slower than no-VP baseline";
    EXPECT_GE(r.oracle.ipc(), r.composite.ipc() * 0.999)
        << "oracle slower than composite";
    EXPECT_GE(r.composite.ipc(), r.base.ipc() * 0.95)
        << "composite >5% below baseline";

    // The oracle really predicted: full coverage, zero flushes.
    EXPECT_EQ(r.oracle.stats.predictionsWrong, 0u);
    EXPECT_EQ(r.oracle.stats.vpFlushes, 0u);
    EXPECT_EQ(r.oracle.stats.predictionsMade,
              r.oracle.stats.eligibleLoads);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DifferentialWorkload,
    testing::ValuesIn(trace::allWorkloadNames()),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(DifferentialFuzz, FuzzedTracesAgreeAcrossPipelines)
{
    // Fuzzed traces x fuzzed core configs, with shrinking on
    // failure: the strongest single check in the repo - any
    // squash/refetch accounting bug that skips, duplicates, or
    // reorders a commit in ANY of the three pipelines fails here
    // with a minimal reproducer.
    qa::TraceGenConfig tcfg;
    tcfg.maxOps = 2048;
    // The core config stays fixed across shrink candidates so the
    // property being minimized never shifts under the shrinker.
    const auto r = qa::checkTraceProperty(
        15, 0xd1ff,
        [](const std::vector<trace::MicroOp> &code) {
            auto vcfg = testComposite();
            vcfg.epochInstrs = 1000;
            return qa::runDifferential(pipe::CoreConfig{}, vcfg,
                                       code)
                .ok();
        },
        tcfg);
    EXPECT_TRUE(r.ok()) << r.describe();
}

TEST(DifferentialFuzz, FuzzedCoreConfigsAgreeAcrossPipelines)
{
    // Same gate under fuzzed core geometries: tiny ROBs, single
    // load/store lanes, deep fetch-to-execute - the queue-full and
    // stall paths the curated Table III config rarely exercises.
    const auto r = qa::forAllSeeds(10, 0xc04e, [](qa::Gen &g) {
        const auto ccfg = qa::genCoreConfig(g);
        qa::TraceGenConfig tcfg;
        tcfg.maxOps = 1024;
        const auto code = qa::genTrace(g, tcfg);
        auto vcfg = testComposite();
        vcfg.epochInstrs = 500;
        const auto d = qa::runDifferential(ccfg, vcfg, code);
        if (!d.ok())
            throw std::runtime_error(d.failureReport());
        return true;
    });
    EXPECT_TRUE(r.ok) << r.describe();
}

TEST(DifferentialHarness, DetectsDivergentStreams)
{
    // Sanity-check the checker: two different traces must hash
    // differently, or the whole gate is vacuous.
    qa::Gen g1(1), g2(2);
    const auto a = qa::genTrace(g1);
    const auto b = qa::genTrace(g2);
    const auto ra =
        qa::runPipeline(pipe::CoreConfig{}, a, nullptr, "none");
    const auto rb =
        qa::runPipeline(pipe::CoreConfig{}, b, nullptr, "none");
    EXPECT_NE(ra.commitHash, rb.commitHash);
    EXPECT_TRUE(ra.commitsMatchTrace);
    EXPECT_TRUE(rb.commitsMatchTrace);
    EXPECT_EQ(ra.commits, a.size());
}
