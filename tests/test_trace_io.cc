#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using namespace lvpsim::trace;

namespace
{

bool
opsEqual(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.cls == b.cls && a.dst == b.dst &&
           a.src == b.src && a.effAddr == b.effAddr &&
           a.memSize == b.memSize && a.memValue == b.memValue &&
           a.exclusiveMem == b.exclusiveMem && a.taken == b.taken &&
           a.target == b.target;
}

} // anonymous namespace

TEST(TraceIo, RoundTripsAWorkloadTrace)
{
    const auto ops = generateWorkload("memset_loop", 5000, 1);
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(ss, ops));
    std::vector<MicroOp> back;
    std::string err;
    ASSERT_TRUE(readTrace(ss, back, &err)) << err;
    ASSERT_EQ(back.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        ASSERT_TRUE(opsEqual(ops[i], back[i])) << "op " << i;
}

TEST(TraceIo, RoundTripsEveryOpClass)
{
    // interp_dispatch exercises loads, stores, branches, calls and
    // indirect branches; stack_spill adds call/ret.
    for (const char *w : {"interp_dispatch", "stack_spill"}) {
        const auto ops = generateWorkload(w, 3000, 1);
        std::stringstream ss;
        ASSERT_TRUE(writeTrace(ss, ops));
        std::vector<MicroOp> back;
        ASSERT_TRUE(readTrace(ss, back));
        ASSERT_EQ(back.size(), ops.size()) << w;
        for (std::size_t i = 0; i < ops.size(); ++i)
            ASSERT_TRUE(opsEqual(ops[i], back[i])) << w;
    }
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(ss, {}));
    std::vector<MicroOp> back{MicroOp{}};
    ASSERT_TRUE(readTrace(ss, back));
    EXPECT_TRUE(back.empty());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss("NOPE....");
    std::vector<MicroOp> back;
    std::string err;
    EXPECT_FALSE(readTrace(ss, back, &err));
    EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(TraceIo, RejectsTruncatedStream)
{
    const auto ops = generateWorkload("memset_loop", 100, 1);
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(ss, ops));
    std::string data = ss.str();
    data.resize(data.size() / 2); // chop it
    std::stringstream cut(data);
    std::vector<MicroOp> back;
    std::string err;
    EXPECT_FALSE(readTrace(cut, back, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos);
}

TEST(TraceIo, RejectsWrongVersion)
{
    const auto ops = generateWorkload("memset_loop", 10, 1);
    std::stringstream ss;
    ASSERT_TRUE(writeTrace(ss, ops));
    std::string data = ss.str();
    data[4] = 99; // bump version field
    std::stringstream bad(data);
    std::vector<MicroOp> back;
    std::string err;
    EXPECT_FALSE(readTrace(bad, back, &err));
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(TraceIo, FileRoundTrip)
{
    const auto ops = generateWorkload("const_table", 2000, 7);
    const std::string path = "/tmp/lvpsim_test_trace.lvpt";
    ASSERT_TRUE(saveTraceFile(path, ops));
    std::vector<MicroOp> back;
    std::string err;
    ASSERT_TRUE(loadTraceFile(path, back, &err)) << err;
    EXPECT_EQ(back.size(), ops.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFailsCleanly)
{
    std::vector<MicroOp> back;
    std::string err;
    EXPECT_FALSE(loadTraceFile("/nonexistent/nope.lvpt", back, &err));
    EXPECT_FALSE(err.empty());
}
