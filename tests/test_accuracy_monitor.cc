#include <gtest/gtest.h>

#include "core/accuracy_monitor.hh"

using namespace lvpsim;
using namespace lvpsim::vp;

namespace
{

ComponentCorrectness
cc(int lvp, int sap, int cvp, int cap)
{
    return {lvp, sap, cvp, cap};
}

} // anonymous namespace

// ---------------------------------------------------------------------
// M-AM
// ---------------------------------------------------------------------

TEST(MAm, StartsUnsilenced)
{
    MAm am(1000);
    for (unsigned c = 0; c < numComponents; ++c)
        EXPECT_FALSE(am.silenced(c, 0x100));
}

TEST(MAm, SilencesComponentAboveThreshold)
{
    // Component 0 mispredicts 10% of the time (100 MPKP >> 3 MPKP).
    MAm am(1000, 3.0);
    for (int i = 0; i < 100; ++i)
        am.recordOutcome(0x100, cc(i % 10 == 0 ? 0 : 1, -1, -1, -1));
    am.onRetire(1000); // epoch boundary
    EXPECT_TRUE(am.silenced(0, 0x100));
    EXPECT_FALSE(am.silenced(1, 0x100));
}

TEST(MAm, AccurateComponentStaysOn)
{
    // 1 mispredict per 1000 predictions = 1 MPKP < 3.
    MAm am(1000, 3.0);
    for (int i = 0; i < 2000; ++i)
        am.recordOutcome(0x100, cc(i == 0 ? 0 : 1, -1, -1, -1));
    am.onRetire(1000);
    EXPECT_FALSE(am.silenced(0, 0x100));
}

TEST(MAm, RecoversNextEpoch)
{
    MAm am(1000, 3.0);
    for (int i = 0; i < 10; ++i)
        am.recordOutcome(0x100, cc(0, -1, -1, -1));
    am.onRetire(1000);
    ASSERT_TRUE(am.silenced(0, 0x100));
    // Next epoch: all correct -> unsilenced afterwards.
    for (int i = 0; i < 100; ++i)
        am.recordOutcome(0x100, cc(1, -1, -1, -1));
    am.onRetire(1000);
    EXPECT_FALSE(am.silenced(0, 0x100));
}

TEST(MAm, EpochBoundaryRequiresRetirement)
{
    MAm am(1000, 3.0);
    for (int i = 0; i < 10; ++i)
        am.recordOutcome(0x100, cc(0, -1, -1, -1));
    am.onRetire(500); // not yet an epoch
    EXPECT_FALSE(am.silenced(0, 0x100));
    am.onRetire(500);
    EXPECT_TRUE(am.silenced(0, 0x100));
}

TEST(MAm, ComponentsTrackedIndependently)
{
    MAm am(1000, 3.0);
    for (int i = 0; i < 50; ++i)
        am.recordOutcome(0x100, cc(0, 1, 0, -1));
    am.onRetire(1000);
    EXPECT_TRUE(am.silenced(0, 0x100));
    EXPECT_FALSE(am.silenced(1, 0x100));
    EXPECT_TRUE(am.silenced(2, 0x100));
    EXPECT_FALSE(am.silenced(3, 0x100)); // never predicted
}

// ---------------------------------------------------------------------
// PC-AM
// ---------------------------------------------------------------------

TEST(PcAm, NoEntryMeansNoSilencing)
{
    PcAm am(64);
    EXPECT_FALSE(am.silenced(0, 0x100));
    // Outcomes without a prior flush are ignored (no entry).
    am.recordOutcome(0x100, cc(0, 0, 0, 0));
    EXPECT_FALSE(am.silenced(0, 0x100));
}

TEST(PcAm, FlushAllocatesAndTracks)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    // Below 95% accuracy: 1 correct, 1 incorrect = 50%.
    am.recordOutcome(0x100, cc(1, -1, -1, -1));
    am.recordOutcome(0x100, cc(0, -1, -1, -1));
    EXPECT_TRUE(am.silenced(0, 0x100));
    EXPECT_FALSE(am.silenced(1, 0x100)); // no data for SAP
}

TEST(PcAm, HighAccuracyStaysOn)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    for (int i = 0; i < 99; ++i)
        am.recordOutcome(0x100, cc(1, -1, -1, -1));
    am.recordOutcome(0x100, cc(0, -1, -1, -1)); // 99% >= 95%
    EXPECT_FALSE(am.silenced(0, 0x100));
}

TEST(PcAm, SilencingIsPerPc)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    am.recordOutcome(0x100, cc(0, -1, -1, -1));
    EXPECT_TRUE(am.silenced(0, 0x100));
    EXPECT_FALSE(am.silenced(0, 0x200)); // other PC untouched
}

TEST(PcAm, CountersHalveOnOverflow)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    // 127 corrects then one incorrect triggers the shift; the ratio
    // (and thus the verdict) is preserved.
    for (int i = 0; i < 127; ++i)
        am.recordOutcome(0x100, cc(1, -1, -1, -1));
    EXPECT_FALSE(am.silenced(0, 0x100));
    am.recordOutcome(0x100, cc(1, -1, -1, -1)); // 128 -> halves
    EXPECT_FALSE(am.silenced(0, 0x100));
    // Still functional afterwards.
    for (int i = 0; i < 30; ++i)
        am.recordOutcome(0x100, cc(0, -1, -1, -1));
    EXPECT_TRUE(am.silenced(0, 0x100));
}

TEST(PcAm, ReplacementEvictsConflictingPc)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    am.recordOutcome(0x100, cc(0, -1, -1, -1));
    ASSERT_TRUE(am.silenced(0, 0x100));
    // Find a PC that maps to the same 64-entry slot with a different
    // tag; a flush from it replaces the entry.
    auto index_of = [](Addr pc) {
        return ((pc >> 2) ^ (pc >> 8)) % 64;
    };
    auto tag_of = [](Addr pc) {
        return ((pc >> 2) ^ (pc >> 12)) & 0x3ff;
    };
    Addr same_set = 0;
    for (Addr pc = 0x104; pc < 0x400000; pc += 4) {
        if (index_of(pc) == index_of(0x100) &&
            tag_of(pc) != tag_of(0x100)) {
            same_set = pc;
            break;
        }
    }
    ASSERT_NE(same_set, 0u);
    am.recordFlush(same_set);
    EXPECT_FALSE(am.silenced(0, 0x100));
}

TEST(PcAm, InfiniteVariantHasNoConflicts)
{
    PcAm am(0, 0.95); // infinite
    for (Addr pc = 0x100; pc < 0x100 + 4096; pc += 4) {
        am.recordFlush(pc);
        am.recordOutcome(pc, cc(0, -1, -1, -1));
    }
    for (Addr pc = 0x100; pc < 0x100 + 4096; pc += 4)
        EXPECT_TRUE(am.silenced(0, pc));
}

TEST(PcAm, StorageScalesWithEntries)
{
    PcAm small(64);
    // 64 x (10-bit tag + valid + 8x8-bit counters).
    EXPECT_EQ(small.storageBits(), 64ull * (10 + 1 + 64));
}

TEST(PcAm, PerComponentVerdicts)
{
    PcAm am(64, 0.95);
    am.recordFlush(0x100);
    for (int i = 0; i < 20; ++i)
        am.recordOutcome(0x100, cc(1, 0, -1, -1));
    EXPECT_FALSE(am.silenced(0, 0x100)); // LVP perfect
    EXPECT_TRUE(am.silenced(1, 0x100));  // SAP always wrong
}
