/**
 * @file
 * Property: no predictor confidence counter ever leaves its FPC
 * saturating range, and no probe snapshot leaks, under 10k fuzzed
 * probe/train/abandon events that follow the pipeline's token
 * protocol (probe at fetch, retire-order training, youngest-first
 * abandons on squash).
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "core/composite.hh"
#include "qa/generators.hh"
#include "qa/property.hh"

using namespace lvpsim;
using trace::MicroOp;

namespace
{

struct PendingProbe
{
    std::uint64_t token = 0;
    const MicroOp *op = nullptr;
    pipe::Prediction pred{};
};

/** Assert every live confidence counter is within its FPC range. */
void
expectConfidencesInRange(const vp::CompositePredictor &p,
                         const char *when)
{
    p.visitConfidences([&](unsigned value, unsigned max_level) {
        ASSERT_LE(value, max_level) << when;
    });
}

/**
 * Drive @p p through ~@p events fuzzed load probes drawn from a
 * generated trace, resolving them in retirement order with
 * occasional youngest-first squashes, exactly as the core would.
 */
void
fuzzPredictor(vp::CompositePredictor &p, qa::Gen &g,
              std::size_t events)
{
    qa::TraceGenConfig tcfg;
    tcfg.minOps = 4096;
    tcfg.maxOps = 4096;
    const auto ops = qa::genTrace(g, tcfg);

    std::deque<PendingProbe> pending;
    std::uint64_t nextToken = 1;
    std::size_t probes = 0;

    auto trainOldest = [&] {
        PendingProbe pp = pending.front();
        pending.pop_front();
        pipe::LoadOutcome out;
        out.pc = pp.op->pc;
        out.token = pp.token;
        out.effAddr = pp.op->effAddr;
        out.size = pp.op->memSize;
        out.value = pp.op->memValue;
        const bool confident = pp.pred.valid();
        out.predictionUsed = confident && g.chance(0.9);
        out.predictionCorrect =
            out.predictionUsed &&
            (pp.pred.isValue() ? pp.pred.value == out.value
                               : g.chance(0.7));
        p.train(out);
        p.onRetire(1);
    };

    std::size_t i = 0;
    while (probes < events) {
        const MicroOp &op = ops[i];
        i = (i + 1) % ops.size();
        if (op.isBranch()) {
            p.notifyBranch(op.pc, op.taken, op.target);
            continue;
        }
        if (!op.isPredictableLoad())
            continue;

        pipe::LoadProbe probe;
        probe.pc = op.pc;
        probe.token = nextToken++;
        probe.inflightSamePc = unsigned(g.below(3));
        PendingProbe pp;
        pp.token = probe.token;
        pp.op = &op;
        pp.pred = p.predict(probe);
        p.notifyLoad(op.pc);
        pending.push_back(pp);
        ++probes;

        // Retire a prefix, sometimes squash a suffix (youngest
        // first, like a flush), and never let the window grow past
        // a plausible ROB's worth of loads.
        while (pending.size() > 72 ||
               (!pending.empty() && g.chance(0.45)))
            trainOldest();
        if (!pending.empty() && g.chance(0.03)) {
            const std::size_t squash = 1 + g.below(pending.size());
            for (std::size_t k = 0; k < squash; ++k) {
                p.abandon(pending.back().token);
                pending.pop_back();
            }
        }

        if (probes % 1000 == 0)
            expectConfidencesInRange(p, "mid-stream");
    }
    while (!pending.empty())
        trainOldest();
}

} // anonymous namespace

TEST(PredictorBoundsFuzz, SingleComponentsStayInRange)
{
    for (const auto id :
         {pipe::ComponentId::LVP, pipe::ComponentId::SAP,
          pipe::ComponentId::CVP, pipe::ComponentId::CAP}) {
        auto p = vp::makeSinglePredictor(id, 512);
        qa::Gen g(qa::caseSeed(0xb0b, std::uint64_t(id)));
        fuzzPredictor(*p, g, 10000);
        expectConfidencesInRange(*p, pipe::componentName(id));
        EXPECT_EQ(p->pendingSnapshots(), 0u)
            << pipe::componentName(id);
    }
}

TEST(PredictorBoundsFuzz, CompositeStaysInRange)
{
    vp::CompositePredictor p(vp::CompositeConfig::homogeneous(2048));
    qa::Gen g(qa::caseSeed(0xc0c0, 1));
    fuzzPredictor(p, g, 10000);
    expectConfidencesInRange(p, "composite");
    EXPECT_EQ(p.pendingSnapshots(), 0u);
}

TEST(PredictorBoundsFuzz, BestOfCompositeStaysInRange)
{
    // AM + smart training + fusion all on, with epochs short enough
    // that fusion actually fires inside the fuzz run.
    auto cfg = vp::CompositeConfig::bestOf(2048);
    cfg.epochInstrs = 2000;
    vp::CompositePredictor p(cfg);
    qa::Gen g(qa::caseSeed(0xc0c0, 2));
    fuzzPredictor(p, g, 10000);
    expectConfidencesInRange(p, "bestOf");
    EXPECT_EQ(p.pendingSnapshots(), 0u);
}
