/** Fixture: a well-formed, justified suppression left behind after
 *  the violation it silenced was fixed — the check it names can no
 *  longer fire on its line. */

#include <cstdint>

namespace fixture
{

// lvplint: allow(determinism) -- seeded from the config, not the
// clock (stale: the rand() call this silenced is long gone)
std::uint64_t seed = 42;

} // namespace fixture
