/** Fixture: suppressions that do not carry their weight — one with
 *  no justification, one naming a check that does not exist. */

#include <cstdint>

namespace fixture
{

// lvplint: allow(determinism)
std::uint64_t counterA = 0;

// lvplint: allow(no-such-check) -- confidently wrong
std::uint64_t counterB = 0;

} // namespace fixture
