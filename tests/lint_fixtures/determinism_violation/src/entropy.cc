/** Fixture: seeded determinism violations (ambient entropy, a
 *  wall-clock read, a default-constructed RNG engine, and an
 *  order-unspecified float reduction), nothing else. */

#include <chrono>
#include <cstdlib>
#include <numeric>
#include <random>
#include <vector>

namespace fixture
{

unsigned
ambientEntropy()
{
    std::random_device rd;
    return rd() ^ unsigned(rand());
}

long
wallClockNanos()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

unsigned
defaultSeededDraw()
{
    std::mt19937 gen;
    return gen();
}

double
unorderedSum(const std::vector<double> &xs)
{
    return std::reduce(xs.begin(), xs.end(), 0.0);
}

} // namespace fixture
