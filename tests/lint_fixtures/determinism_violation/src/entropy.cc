/** Fixture: seeded determinism violations (ambient entropy and a
 *  wall-clock read), nothing else. */

#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture
{

unsigned
ambientEntropy()
{
    std::random_device rd;
    return rd() ^ unsigned(rand());
}

long
wallClockNanos()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace fixture
