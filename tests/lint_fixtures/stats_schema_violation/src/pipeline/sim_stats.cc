/** Fixture: one registered-but-undocumented counter and one
 *  documented-but-unregistered counter. */

#include <cstdint>
#include <functional>
#include <string>

namespace fixture
{

struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t secretCounter = 0;
};

void
forEachCounter(
    const SimStats &s,
    const std::function<void(std::string, std::uint64_t)> &fn)
{
    fn("cycles", s.cycles);
    fn("secret_counter", s.secretCounter);
}

} // namespace fixture
