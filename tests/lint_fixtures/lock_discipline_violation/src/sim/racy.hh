/** Fixture: every way to lose the lock-discipline contract — a raw
 *  std::mutex (invisible to thread-safety analysis), an unguarded
 *  member of a mutex-holding class, and a GUARDED_BY naming a mutex
 *  the class does not declare. */

#pragma once

#include <cstdint>
#include <mutex>

namespace fixture
{

class Racy
{
  public:
    void bump();

  private:
    std::mutex mx;
    std::uint64_t counter = 0;
    std::uint64_t total GUARDED_BY(otherMx) = 0;
};

} // namespace fixture
