/** Fixture: node-based containers as pipeline state, no suppression. */

#pragma once

#include <cstdint>
#include <deque>
#include <list>

namespace fixture
{

struct NodeQueues
{
    std::deque<std::uint64_t> rob;
    std::list<std::uint64_t> freeList;
};

} // namespace fixture
