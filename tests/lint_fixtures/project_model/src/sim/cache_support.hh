/** Project-model fixture: reached via a directory-relative include
 *  spelling ("cache_support.hh"), not an src/-rooted one. */

#pragma once

namespace fixture
{

struct Support
{
    int payload = 0;
};

} // namespace fixture
