/** Project-model fixture: one mutex-holding class exercising every
 *  member classification the cross-TU index knows about — mutex,
 *  condition variable, guarded, atomic, once_flag, const, and one
 *  deliberately unguarded plain member ('scratch'). */

#pragma once

#include "cache_support.hh"
#include "common/base.hh"
#include "vendor/not_in_tree.hh"

namespace fixture
{

class Cache
{
  public:
    int lookup(int key) EXCLUDES(mx);

  private:
    Mutex mx;
    std::condition_variable ready;
    std::map<int, int> table GUARDED_BY(mx);
    std::atomic<int> hits{0};
    std::once_flag init;
    const int capacity = 64;
    int scratch = 0;
};

} // namespace fixture
