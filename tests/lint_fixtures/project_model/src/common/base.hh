/** Project-model fixture: the bottom-layer header. */

#pragma once

namespace fixture
{

constexpr int kBase = 1;

} // namespace fixture
