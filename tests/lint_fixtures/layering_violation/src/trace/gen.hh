/** Fixture: a trace-layer header reaching *up* into sim — the edge
 *  the layering manifest forbids. */

#pragma once

#include "sim/runner.hh"

namespace fixture
{

constexpr int kGen = kRunner + 1;

} // namespace fixture
