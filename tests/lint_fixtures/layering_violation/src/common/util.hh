/** Fixture: bottom-layer header; nothing to see. */

#pragma once

namespace fixture
{

constexpr int kUtil = 1;

} // namespace fixture
