/** Fixture: top-layer header with a legal downward include. */

#pragma once

#include "common/util.hh"

namespace fixture
{

constexpr int kRunner = kUtil + 1;

} // namespace fixture
