/** Fixture: checkpointable class with a member missing from its
 *  saveState/restoreState pair (`hits` is the seeded violation), and
 *  a serializeSnapshot/deserializeSnapshot overload pair whose
 *  deserialize half skips a Snapshot member (`clock` is the second
 *  seeded violation). */

#pragma once

#include <cstdint>
#include <vector>

namespace fixture
{

class Counter
{
  public:
    struct Snapshot
    {
        std::vector<std::uint64_t> table;
        std::uint64_t clock = 0;
    };

    void saveState(Snapshot &s) const
    {
        s.table = table;
        s.clock = clock;
    }

    void restoreState(const Snapshot &s)
    {
        table = s.table;
        clock = s.clock;
    }

  private:
    std::vector<std::uint64_t> table;
    std::uint64_t clock = 0;
    std::uint64_t hits = 0;
};

struct ByteSink;
struct ByteSource;

inline void
serializeSnapshot(ByteSink &w, const Counter::Snapshot &s)
{
    put(w, s.table);
    put(w, s.clock);
}

inline void
deserializeSnapshot(ByteSource &r, Counter::Snapshot &s)
{
    get(r, s.table);
}

} // namespace fixture
