// Fixture: grammar vocabulary that drifted from the doc table.
// 'zoom' is undocumented, and docs/kernel_dsl.md documents 'iters'
// which is missing here.
const char *const kSpecGrammarFields[] = {
    "mix", "base", "zoom",
};
