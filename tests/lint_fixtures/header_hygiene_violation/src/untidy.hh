/** Fixture: classic include guard, unsorted includes, and a
 *  namespace-scope using-directive. */

#ifndef FIXTURE_UNTIDY_HH
#define FIXTURE_UNTIDY_HH

#include <vector>
#include <cstdint>
#include "untidy_support.hh"
#include <string>

namespace fixture
{

using namespace std;

inline uint64_t
twice(uint64_t v)
{
    return 2 * v;
}

} // namespace fixture

#endif // FIXTURE_UNTIDY_HH
