/** Fixture support header (itself clean). */

#pragma once

#include <cstdint>

namespace fixture
{

inline std::uint64_t
once(std::uint64_t v)
{
    return v;
}

} // namespace fixture
