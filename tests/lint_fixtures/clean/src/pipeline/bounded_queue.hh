/** Fixture: a justified suppression must silence the hot-path check
 *  (and the clean tree stays clean with it in place). */

#pragma once

#include <cstddef>
#include <deque>

namespace fixture
{

struct BoundedQueue
{
    // lvplint: allow(hotpath-alloc) -- fixture stand-in for a
    // cold-path queue that is drained before the cycle loop starts
    std::deque<std::size_t> pending;
};

} // namespace fixture
