/** Fixture: counter registrations in sync with docs/results_schema.md. */

#include <cstdint>
#include <functional>
#include <string>

namespace fixture
{

struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t usedByComponent[2] = {0, 0};
};

std::string
componentCounterName(const char *prefix, std::size_t i)
{
    return std::string(prefix) + std::to_string(i);
}

void
forEachCounter(
    const SimStats &s,
    const std::function<void(std::string, std::uint64_t)> &fn)
{
    fn("cycles", s.cycles);
    fn("loads", s.loads);
    for (std::size_t i = 0; i < 2; ++i)
        fn(componentCounterName("used_by_component_", i),
           s.usedByComponent[i]);
}

} // namespace fixture
