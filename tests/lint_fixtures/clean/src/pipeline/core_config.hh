/** Fixture: Table III constants in sync with ../DESIGN.md. */

#pragma once

#include <cstdint>

namespace fixture
{

struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned issueWidth = 8;
    unsigned lsLanes = 2;
    unsigned retireWidth = 8;

    unsigned robSize = 224;
    unsigned iqSize = 97;
    unsigned ldqSize = 72;
    unsigned stqSize = 56;

    unsigned fetchToExecute = 13;
};

} // namespace fixture
