/**
 * @file
 * Interval profiler (trace/interval_profile.hh): interval cutting,
 * fixed-point normalization, snapshot/resume bit-identity, and
 * profile determinism.
 */

#include <gtest/gtest.h>

#include "trace/interval_profile.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using trace::IntervalProfile;
using trace::IntervalProfiler;
using trace::IntervalSignature;

namespace
{

std::vector<trace::MicroOp>
ops(const char *workload, std::size_t n)
{
    return trace::generateWorkload(workload, n, /*seed=*/1);
}

bool
sameProfile(const IntervalProfile &a, const IntervalProfile &b)
{
    if (a.intervalLen != b.intervalLen ||
        a.totalInstructions != b.totalInstructions ||
        a.intervals.size() != b.intervals.size())
        return false;
    for (std::size_t i = 0; i < a.intervals.size(); ++i) {
        if (a.intervals[i].v != b.intervals[i].v ||
            a.intervals[i].instructions !=
                b.intervals[i].instructions ||
            a.intervals[i].loads != b.intervals[i].loads)
            return false;
    }
    return true;
}

} // namespace

TEST(IntervalProfile, CutsTraceIntoIntervalsWithPartialTail)
{
    const auto trace = ops("pointer_chase", 25000);
    const auto p = trace::profileTrace(trace, 10000);

    EXPECT_EQ(p.intervalLen, 10000u);
    EXPECT_EQ(p.totalInstructions, trace.size());
    ASSERT_EQ(p.intervals.size(), (trace.size() + 9999) / 10000);

    std::uint64_t total = 0;
    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
        const auto &sig = p.intervals[i];
        if (i + 1 < p.intervals.size())
            EXPECT_EQ(sig.instructions, 10000u);
        else
            EXPECT_LE(sig.instructions, 10000u);
        total += sig.instructions;
    }
    EXPECT_EQ(total, p.totalInstructions);
}

TEST(IntervalProfile, GroupsNormalizeToFixedOne)
{
    const auto p =
        trace::profileTrace(ops("stream_sum", 30000), 10000);
    for (const auto &sig : p.intervals) {
        std::uint64_t pcSum = 0, strideSum = 0;
        for (std::size_t d = 0; d < IntervalSignature::pcDims; ++d)
            pcSum += sig.v[d];
        for (std::size_t d = IntervalSignature::pcDims;
             d < IntervalSignature::dims; ++d)
            strideSum += sig.v[d];
        // Integer floor division: the sum can undershoot fixedOne by
        // at most one unit per bucket, never overshoot.
        EXPECT_LE(pcSum, IntervalSignature::fixedOne);
        EXPECT_GT(pcSum, IntervalSignature::fixedOne -
                             IntervalSignature::pcDims);
        if (sig.loads > 1) {
            EXPECT_LE(strideSum, IntervalSignature::fixedOne);
            EXPECT_GT(strideSum, IntervalSignature::fixedOne -
                                     IntervalSignature::strideDims);
        }
    }
}

TEST(IntervalProfile, DistinctPhasesGetDistinctSignatures)
{
    // Two different kernels concatenated: the interval signatures of
    // the halves must differ (otherwise clustering cannot separate
    // phases).
    auto a = ops("stream_sum", 10000);
    const auto b = ops("pointer_chase", 10000);
    a.insert(a.end(), b.begin(), b.end());
    const auto p = trace::profileTrace(a, 10000);
    ASSERT_GE(p.intervals.size(), 2u);
    EXPECT_NE(p.intervals.front().v, p.intervals.back().v);
}

TEST(IntervalProfile, DeterministicAcrossRuns)
{
    const auto trace = ops("hash_probe", 20000);
    EXPECT_TRUE(sameProfile(trace::profileTrace(trace, 7000),
                            trace::profileTrace(trace, 7000)));
}

TEST(IntervalProfile, SnapshotResumeIsBitIdentical)
{
    const auto trace = ops("pointer_chase", 15000);

    IntervalProfiler straight(4000);
    for (const auto &op : trace)
        straight.observe(op);

    // Suspend mid-interval, roll the original forward past the
    // suspension point, then restore and resume: the resumed profile
    // must match the straight-through one exactly.
    IntervalProfiler resumed(4000);
    const std::size_t cut = 6500; // mid-interval on purpose
    for (std::size_t i = 0; i < cut; ++i)
        resumed.observe(trace[i]);
    IntervalProfiler::Snapshot snap;
    resumed.saveState(snap);
    for (std::size_t i = cut; i < cut + 1000; ++i)
        resumed.observe(trace[i]); // diverge...
    resumed.restoreState(snap);    // ...and rewind
    for (std::size_t i = cut; i < trace.size(); ++i)
        resumed.observe(trace[i]);

    EXPECT_TRUE(sameProfile(straight.finish(), resumed.finish()));
}

TEST(IntervalProfile, FinishResetsTheProfiler)
{
    const auto trace = ops("stream_sum", 9000);
    IntervalProfiler p(2000);
    for (const auto &op : trace)
        p.observe(op);
    const auto first = p.finish();
    EXPECT_EQ(p.observed(), 0u);
    for (const auto &op : trace)
        p.observe(op);
    EXPECT_TRUE(sameProfile(first, p.finish()));
}
