#include <gtest/gtest.h>

#include <unordered_map>

#include "core/oracle.hh"
#include "trace/kernels/memset_loop.hh"
#include "trace/memory_image.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using namespace lvpsim::trace;

namespace
{

constexpr std::size_t testLen = 30000;

std::vector<MicroOp>
gen(const std::string &name, std::size_t n = testLen,
    std::uint64_t seed = 1)
{
    return generateWorkload(name, n, seed);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Properties that must hold for EVERY registered workload.
// ---------------------------------------------------------------------

class KernelProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelProperty, ProducesRequestedLength)
{
    const auto ops = gen(GetParam());
    EXPECT_EQ(ops.size(), testLen);
}

TEST_P(KernelProperty, DeterministicForSameSeed)
{
    const auto a = gen(GetParam(), 5000, 7);
    const auto b = gen(GetParam(), 5000, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "at op " << i;
        ASSERT_EQ(a[i].memValue, b[i].memValue) << "at op " << i;
        ASSERT_EQ(a[i].effAddr, b[i].effAddr) << "at op " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "at op " << i;
    }
}

TEST_P(KernelProperty, RegisterIdsInRange)
{
    for (const auto &op : gen(GetParam(), 5000)) {
        if (op.dst != invalidReg) {
            EXPECT_LT(op.dst, numArchRegs);
        }
        for (RegId s : op.src) {
            if (s != invalidReg) {
                EXPECT_LT(s, numArchRegs);
            }
        }
    }
}

TEST_P(KernelProperty, LoadsReturnLastStoredValue)
{
    // Replay the trace: any load from a byte range fully written
    // during the trace must observe the latest stored data.
    MemoryImage shadow;
    std::unordered_map<Addr, bool> written;
    for (const auto &op : gen(GetParam())) {
        if (op.isStore()) {
            shadow.write(op.effAddr, op.memValue, op.memSize);
            for (unsigned i = 0; i < op.memSize; ++i)
                written[op.effAddr + i] = true;
        } else if (op.isLoad()) {
            bool all_written = true;
            for (unsigned i = 0; i < op.memSize; ++i)
                all_written &= written.count(op.effAddr + i) > 0;
            if (all_written) {
                ASSERT_EQ(op.memValue,
                          shadow.read(op.effAddr, op.memSize))
                    << "load at pc 0x" << std::hex << op.pc;
            }
        }
    }
}

TEST_P(KernelProperty, HasLoadsAndBranches)
{
    std::size_t loads = 0, branches = 0;
    for (const auto &op : gen(GetParam()))
    {
        loads += op.isLoad() ? 1 : 0;
        branches += op.isBranch() ? 1 : 0;
    }
    // Every kernel must exercise the studied structures.
    EXPECT_GT(loads, testLen / 50);
    EXPECT_GT(branches, testLen / 100);
}

TEST_P(KernelProperty, MemAccessSizesValid)
{
    for (const auto &op : gen(GetParam(), 5000)) {
        if (op.isLoad() || op.isStore()) {
            EXPECT_TRUE(op.memSize == 1 || op.memSize == 2 ||
                        op.memSize == 4 || op.memSize == 8)
                << "size " << int(op.memSize);
        }
    }
}

TEST_P(KernelProperty, BranchTargetsNonZero)
{
    for (const auto &op : gen(GetParam(), 5000)) {
        if (op.isBranch()) {
            EXPECT_NE(op.target, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, KernelProperty,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// Suite composition and per-kernel pattern expectations.
// ---------------------------------------------------------------------

TEST(Workloads, RegistryHasFullSuite)
{
    const auto names = allWorkloadNames();
    EXPECT_GE(names.size(), 24u);
    // No duplicate names.
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
}

TEST(Workloads, SmokeSuiteIsSubset)
{
    const auto &reg = WorkloadRegistry::instance();
    for (const auto &n : smokeWorkloadNames())
        EXPECT_TRUE(reg.contains(n)) << n;
}

TEST(Workloads, UnknownWorkloadIsFatal)
{
    EXPECT_DEATH((void)generateWorkload("no_such_kernel", 10),
                 "unknown workload");
}

TEST(KernelPattern, ConstTableIsPattern1)
{
    const auto b = vp::classifyLoadPatterns(gen("const_table"));
    EXPECT_GT(b.frac1(), 0.9);
}

TEST(KernelPattern, StreamSumIsPattern2)
{
    const auto b = vp::classifyLoadPatterns(gen("stream_sum"));
    EXPECT_GT(b.frac2(), 0.9);
}

TEST(KernelPattern, HashProbeMixesPatterns)
{
    // Linear-probing chains are stride-16 (instantaneous Pattern-2
    // under the infinite oracle), but chains break on every new key,
    // so a large Pattern-3 remainder must exist and Pattern-1 stays
    // small. Real SAP coverage on this kernel is near zero because 9
    // consecutive same-stride observations never accumulate.
    const auto b = vp::classifyLoadPatterns(gen("hash_probe"));
    EXPECT_GT(b.frac3(), 0.2);
    EXPECT_LT(b.frac1(), 0.3);
}

TEST(KernelPattern, StencilIsPattern2Dominant)
{
    const auto b = vp::classifyLoadPatterns(gen("stencil2d"));
    EXPECT_GT(b.frac2(), 0.5);
}

TEST(KernelPattern, GlobalFlagsIsPattern1Dominant)
{
    const auto b = vp::classifyLoadPatterns(gen("global_flags"));
    EXPECT_GT(b.frac1(), 0.8);
}

TEST(KernelPattern, SuiteMixIsBalanced)
{
    // Figure 2's premise: across the whole pool, no single pattern
    // should dominate completely.
    vp::PatternBreakdown total;
    for (const auto &n : allWorkloadNames()) {
        const auto b = vp::classifyLoadPatterns(gen(n, 20000));
        total.pattern1 += b.pattern1;
        total.pattern2 += b.pattern2;
        total.pattern3 += b.pattern3;
    }
    EXPECT_GT(total.frac1(), 0.10);
    EXPECT_GT(total.frac2(), 0.10);
    EXPECT_GT(total.frac3(), 0.10);
    EXPECT_LT(total.frac1(), 0.70);
    EXPECT_LT(total.frac2(), 0.70);
    EXPECT_LT(total.frac3(), 0.70);
}

TEST(MemsetLoop, InnerLoopLoadsReadZero)
{
    MemsetLoopKernel k(16, 4);
    const auto ops = k.generate(2000, 1);
    std::vector<MicroOp> dummy;
    Asm a(dummy, 1, 1);
    const Addr ld_pc = MemsetLoopKernel::studiedLoadPc(a);
    (void)ld_pc;
    // All inner-loop loads observe the memset result: zero.
    bool saw_load = false;
    for (const auto &op : ops) {
        if (op.isLoad()) {
            saw_load = true;
            EXPECT_EQ(op.memValue, 0u);
        }
    }
    EXPECT_TRUE(saw_load);
}

TEST(MemsetLoop, RespectsInnerTripCount)
{
    MemsetLoopKernel k(8, 2);
    const auto ops = k.generate(100000, 1);
    // 2 outer iterations x (8 stores + 8 loads) plus loop overhead;
    // body() re-runs until max_ops, so count loads per memset phase.
    std::int64_t loads = 0, stores = 0;
    for (const auto &op : ops) {
        loads += op.isLoad() ? 1 : 0;
        stores += op.isStore() ? 1 : 0;
    }
    // One inner-loop load per memset store; the final body pass may
    // be truncated mid-phase, so allow one inner loop of slack.
    EXPECT_NEAR(double(loads), double(stores), 8.0);
}
