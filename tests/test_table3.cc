/**
 * @file
 * Conformance check: the default CoreConfig and HierarchyConfig must
 * match the paper's Table III baseline, field by field.
 */

#include <gtest/gtest.h>

#include "pipeline/core_config.hh"

using namespace lvpsim;
using namespace lvpsim::pipe;

TEST(TableIII, PipelineWidths)
{
    CoreConfig c;
    EXPECT_EQ(c.fetchWidth, 4u);   // Fetch through Rename: 4/cycle
    EXPECT_EQ(c.issueWidth, 8u);   // Issue through Commit: 8/cycle
    EXPECT_EQ(c.lsLanes, 2u);      // 2 of 8 lanes are load/store
    EXPECT_EQ(c.retireWidth, 8u);
}

TEST(TableIII, WindowSizes)
{
    CoreConfig c;
    EXPECT_EQ(c.robSize, 224u); // modeled after Intel Skylake
    EXPECT_EQ(c.iqSize, 97u);
    EXPECT_EQ(c.ldqSize, 72u);
    EXPECT_EQ(c.stqSize, 56u);
}

TEST(TableIII, FetchToExecuteLatency)
{
    CoreConfig c;
    EXPECT_EQ(c.fetchToExecute, 13u);
}

TEST(TableIII, L1Caches)
{
    CoreConfig c;
    EXPECT_EQ(c.memory.l1i.sizeBytes, 64u * 1024);
    EXPECT_EQ(c.memory.l1i.assoc, 4u);
    EXPECT_EQ(c.memory.l1i.blockSize, 64u);
    EXPECT_EQ(c.memory.l1i.accessLatency, 1u);
    EXPECT_EQ(c.memory.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(c.memory.l1d.assoc, 4u);
    EXPECT_EQ(c.memory.l1d.accessLatency, 2u);
}

TEST(TableIII, L2L3Memory)
{
    CoreConfig c;
    EXPECT_EQ(c.memory.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(c.memory.l2.assoc, 8u);
    EXPECT_EQ(c.memory.l2.blockSize, 128u);
    EXPECT_EQ(c.memory.l2.accessLatency, 16u);
    EXPECT_EQ(c.memory.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(c.memory.l3.assoc, 16u);
    EXPECT_EQ(c.memory.l3.blockSize, 128u);
    EXPECT_EQ(c.memory.l3.accessLatency, 32u);
    EXPECT_EQ(c.memory.memoryLatency, 200u);
}

TEST(TableIII, BranchPredictionBaseline)
{
    CoreConfig c;
    EXPECT_EQ(c.rasDepth, 16u); // RAS: 16 entries
    // "State-of-art 32KB TAGE" class. Our default is ~15KB: the
    // synthetic kernels' branch footprints saturate far below even
    // that, so the extra capacity would be dead weight (documented
    // deviation in DESIGN.md).
    const double tage_kb = double(c.tage.storageBits()) / 8192.0;
    EXPECT_GT(tage_kb, 8.0);
    EXPECT_LT(tage_kb, 64.0);
}

TEST(TableIII, PrefetcherEnabledByDefault)
{
    CoreConfig c;
    EXPECT_TRUE(c.memory.enablePrefetch);
}
