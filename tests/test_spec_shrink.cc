/**
 * @file
 * Structured shrinking over KernelSpecs (qa/shrink_spec.hh): a
 * failing multi-phase, multi-stream spec must shrink to a small
 * single-pattern witness, every intermediate candidate must stay
 * valid, and shrinking must be deterministic.
 */

#include <gtest/gtest.h>

#include <string>

#include "qa/shrink_spec.hh"
#include "trace/kernel_spec.hh"

using namespace lvpsim;
using trace::KernelSpec;
using trace::PatternKind;

namespace
{

KernelSpec
parseOrDie(const std::string &text)
{
    std::string err;
    KernelSpec s = trace::parseKernelSpec(text, &err);
    EXPECT_TRUE(err.empty()) << text << ": " << err;
    return s;
}

std::size_t
totalStreams(const KernelSpec &s)
{
    std::size_t n = 0;
    for (const auto &ph : s.phases)
        n += ph.streams.size();
    return n;
}

} // anonymous namespace

TEST(SpecShrink, FailingSpecShrinksToSinglePatternWitness)
{
    // "Property": no ctx stream with period >= 16. The seed spec
    // violates it in its middle phase, buried among other streams.
    const auto holds = [](const KernelSpec &s) {
        for (const auto &ph : s.phases)
            for (const auto &st : ph.streams)
                if (st.kind == PatternKind::Ctx && st.period >= 16)
                    return false;
        return true;
    };

    const KernelSpec failing = parseOrDie(
        "[iters=128,mix=rr]stride(wset=512,step=16,glue=xor)*2,"
        "const(v=0xbeef)*3;"
        "[iters=64]ctx(period=64,fill=rng,glue=fadd)*2,pick(k=8),"
        "const(v=0x42);"
        "[iters=32]chase(wset=8,order=shuffle),ctx(period=4)");
    ASSERT_FALSE(holds(failing));

    qa::ShrinkStats stats;
    const KernelSpec minimal = qa::shrinkStructured<KernelSpec>(
        failing, holds, &stats);

    // Still failing, still valid.
    EXPECT_FALSE(holds(minimal));
    EXPECT_TRUE(trace::validateKernelSpec(minimal).empty())
        << trace::printKernelSpec(minimal);

    // The witness is structurally minimal: <= 2 phases (here it can
    // reach 1), a single stream, and that stream is the culprit with
    // its field shrunk to the property's boundary.
    EXPECT_LE(minimal.phases.size(), 2u);
    EXPECT_EQ(totalStreams(minimal), 1u);
    ASSERT_FALSE(minimal.phases.empty());
    ASSERT_FALSE(minimal.phases[0].streams.empty());
    const auto &culprit = minimal.phases[0].streams[0];
    EXPECT_EQ(culprit.kind, PatternKind::Ctx);
    EXPECT_EQ(culprit.period, 16u); // halving stops at the boundary
    EXPECT_EQ(culprit.weight, 1u);

    EXPECT_GT(stats.candidatesTried, 0u);
    EXPECT_LT(stats.finalOps, stats.originalOps);

    // Deterministic: same input, same witness.
    const KernelSpec again = qa::shrinkStructured<KernelSpec>(
        failing, holds);
    EXPECT_EQ(trace::printKernelSpec(again),
              trace::printKernelSpec(minimal));
}

TEST(SpecShrink, CandidatesAreAlwaysValid)
{
    const KernelSpec spec = parseOrDie(
        "[iters=96,mix=rand]stride(wset=96,step=8),pick(k=16,esz=4);"
        "[]chase(wset=12,step=32)");
    for (const auto &cand :
         qa::Shrinkable<KernelSpec>::candidates(spec))
        EXPECT_TRUE(trace::validateKernelSpec(cand).empty())
            << trace::printKernelSpec(cand);
}
