#include <gtest/gtest.h>

#include "common/bitutils.hh"

using namespace lvpsim;

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(BitUtils, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(3), 1u);
    EXPECT_EQ(log2i(1024), 10u);
    EXPECT_EQ(log2i(1ull << 63), 63u);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, Mask)
{
    EXPECT_EQ(mask(0), 0ull);
    EXPECT_EQ(mask(1), 1ull);
    EXPECT_EQ(mask(14), 0x3fffull);
    EXPECT_EQ(mask(64), ~0ull);
    EXPECT_EQ(mask(65), ~0ull);
}

TEST(BitUtils, Bits)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdull);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcull);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabull);
}

TEST(BitUtils, FoldBitsPreservesSmallValues)
{
    EXPECT_EQ(foldBits(0x5, 8), 0x5ull);
    EXPECT_EQ(foldBits(0, 8), 0ull);
}

TEST(BitUtils, FoldBitsXorsChunks)
{
    // 0xab ^ 0xcd
    EXPECT_EQ(foldBits(0xabcd, 8), 0xabull ^ 0xcdull);
    // Folding to 4 bits XORs all nibbles.
    EXPECT_EQ(foldBits(0xabcd, 4),
              (0xaull ^ 0xbull ^ 0xcull ^ 0xdull));
}

TEST(BitUtils, FoldBitsZeroWidth)
{
    EXPECT_EQ(foldBits(0x1234, 0), 0ull);
}

TEST(BitUtils, SignExtendPositive)
{
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x01, 8), 1);
}

TEST(BitUtils, SignExtendNegative)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x3ff, 10), -1);
}

TEST(BitUtils, SignExtendFullWidth)
{
    EXPECT_EQ(signExtend(~0ull, 64), -1);
}

TEST(BitUtils, FitsSigned)
{
    // The paper's SAP stride field is 10 bits: [-512, 511].
    EXPECT_TRUE(fitsSigned(511, 10));
    EXPECT_TRUE(fitsSigned(-512, 10));
    EXPECT_FALSE(fitsSigned(512, 10));
    EXPECT_FALSE(fitsSigned(-513, 10));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(BitUtils, Mix64Deterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(BitUtils, Mix64SpreadsBits)
{
    // Consecutive inputs should differ in many output bits.
    int differing = __builtin_popcountll(mix64(1) ^ mix64(2));
    EXPECT_GT(differing, 16);
}
