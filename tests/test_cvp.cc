#include <gtest/gtest.h>

#include "core/cvp.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::LoadOutcome;
using pipe::LoadProbe;

namespace
{

std::uint64_t nextToken = 1;

/**
 * Drives CVP the way the composite does: probe (capturing the
 * fetch-time context snapshot), then train with the same token.
 */
class CvpDriver
{
  public:
    explicit CvpDriver(std::size_t entries) : cvp(entries, 1) {}

    /** Simulate one load in a given branch context. */
    ComponentPrediction
    loadInContext(Addr pc, Value v, const std::vector<bool> &context)
    {
        // Establish the context: a fixed branch PC sequence whose
        // outcomes are the context bits.
        for (std::size_t i = 0; i < context.size(); ++i)
            cvp.notifyBranch(0x9000 + Addr(i) * 4, context[i],
                             0x9100);
        LoadProbe p;
        p.pc = pc;
        p.token = nextToken++;
        const auto cp = cvp.lookup(p);
        LoadOutcome o;
        o.pc = pc;
        o.token = p.token;
        o.effAddr = 0x1000;
        o.size = 8;
        o.value = v;
        cvp.train(o);
        return cp;
    }

    Cvp cvp;
};

} // anonymous namespace

TEST(Cvp, NoPredictionWhenCold)
{
    Cvp c(768, 1);
    LoadProbe p;
    p.pc = 0x100;
    p.token = nextToken++;
    EXPECT_FALSE(c.lookup(p).confident);
    c.abandon(p.token);
}

TEST(Cvp, LearnsContextDependentValues)
{
    // The same static load produces value 7 after context A and 13
    // after context B: LVP could never predict this, CVP must.
    CvpDriver d(768);
    const std::vector<bool> ctx_a{true, false, true, true, false};
    const std::vector<bool> ctx_b{false, true, false, false, true};
    for (int i = 0; i < 200; ++i) {
        d.loadInContext(0x100, 7, ctx_a);
        d.loadInContext(0x100, 13, ctx_b);
    }
    const auto pa = d.loadInContext(0x100, 7, ctx_a);
    ASSERT_TRUE(pa.confident);
    EXPECT_EQ(pa.pred.value, 7u);
    const auto pb = d.loadInContext(0x100, 13, ctx_b);
    ASSERT_TRUE(pb.confident);
    EXPECT_EQ(pb.pred.value, 13u);
}

TEST(Cvp, StableValueBecomesConfidentQuickly)
{
    // Effective confidence ~16 observations (Table IV).
    CvpDriver d(768);
    const std::vector<bool> ctx{true, true, false};
    ComponentPrediction cp;
    int when = -1;
    for (int i = 0; i < 100; ++i) {
        cp = d.loadInContext(0x200, 99, ctx);
        if (cp.confident && when < 0)
            when = i;
    }
    ASSERT_GE(when, 0);
    EXPECT_GE(when, 4);   // cannot be confident before threshold 4
    EXPECT_LE(when, 80);  // and must get there reasonably soon
    EXPECT_EQ(cp.pred.value, 99u);
}

TEST(Cvp, ChangingValuesStayUnpredicted)
{
    CvpDriver d(768);
    const std::vector<bool> ctx{true, false};
    for (int i = 0; i < 100; ++i) {
        const auto cp = d.loadInContext(0x300, Value(i), ctx);
        EXPECT_FALSE(cp.confident) << "iteration " << i;
    }
}

TEST(Cvp, PredictionKindIsValue)
{
    CvpDriver d(768);
    const std::vector<bool> ctx{true};
    for (int i = 0; i < 200; ++i)
        d.loadInContext(0x400, 5, ctx);
    const auto cp = d.loadInContext(0x400, 5, ctx);
    ASSERT_TRUE(cp.confident);
    EXPECT_TRUE(cp.pred.isValue());
    EXPECT_EQ(cp.pred.component, pipe::ComponentId::CVP);
}

TEST(Cvp, AbandonDropsSnapshot)
{
    Cvp c(768, 1);
    LoadProbe p;
    p.pc = 0x500;
    p.token = nextToken++;
    c.lookup(p);
    c.abandon(p.token);
    // Training with the same token now has no snapshot: no effect,
    // no crash.
    LoadOutcome o;
    o.pc = 0x500;
    o.token = p.token;
    o.value = 1;
    c.train(o);
    SUCCEED();
}

TEST(Cvp, EntriesSplitAcrossThreeTables)
{
    // Tables are {1/2, 1/4, 1/4}, each rounded down to a power of
    // two (folded-history indices need power-of-two tables).
    Cvp c(1024, 1);
    EXPECT_EQ(c.numEntries(), 1024u); // 512 + 256 + 256
    Cvp odd(1000, 1);
    EXPECT_EQ(odd.numEntries(), 512u); // 256 + 128 + 128
}

TEST(Cvp, StorageMatchesPaper81BitsPerEntry)
{
    Cvp c(1024, 1);
    EXPECT_EQ(c.storageBits(), 1024ull * 81);
}

TEST(Cvp, DonorLifecycle)
{
    CvpDriver d(768);
    const std::vector<bool> ctx{true};
    for (int i = 0; i < 200; ++i)
        d.loadInContext(0x600, 5, ctx);
    ASSERT_TRUE(d.loadInContext(0x600, 5, ctx).confident);
    d.cvp.donateTable();
    EXPECT_FALSE(d.loadInContext(0x600, 5, ctx).confident);
    d.cvp.unfuse();
    EXPECT_FALSE(d.loadInContext(0x600, 5, ctx).confident);
}

TEST(Cvp, ZeroEntriesIsInert)
{
    Cvp c(0, 1);
    LoadProbe p;
    p.pc = 0x700;
    p.token = nextToken++;
    EXPECT_FALSE(c.lookup(p).confident);
    EXPECT_EQ(c.storageBits(), 0u);
}
