/**
 * @file
 * End-to-end tests: full workloads through the full core with real
 * predictors, checking the paper's qualitative claims hold on this
 * reproduction.
 */

#include <gtest/gtest.h>

#include "core/composite.hh"
#include "core/eves.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using namespace lvpsim::sim;
using pipe::ComponentId;

namespace
{

RunConfig
quickRun(std::size_t instrs = 60000)
{
    RunConfig rc;
    rc.maxInstrs = instrs;
    return rc;
}

vp::CompositeConfig
scaled(vp::CompositeConfig cfg, std::size_t instrs)
{
    cfg.epochInstrs = std::max<std::size_t>(2000, instrs / 40);
    return cfg;
}

} // anonymous namespace

TEST(Integration, BaselineRunsEveryWorkload)
{
    const RunConfig rc = quickRun(20000);
    for (const auto &w : trace::allWorkloadNames()) {
        pipe::NullPredictor none;
        const auto s = runWorkload(w, &none, rc);
        EXPECT_EQ(s.instructions, rc.maxInstrs) << w;
        EXPECT_GT(s.ipc(), 0.05) << w;
        EXPECT_LT(s.ipc(), 4.01) << w;
    }
}

TEST(Integration, CompositeIsDeterministic)
{
    const RunConfig rc = quickRun(40000);
    auto run_once = [&] {
        vp::CompositePredictor p(
            scaled(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
        return runWorkload("pointer_chase", &p, rc);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.predictionsUsed, b.predictionsUsed);
    EXPECT_EQ(a.predictionsWrong, b.predictionsWrong);
}

TEST(Integration, AccuracyStaysHighAcrossSmokeSuite)
{
    // The paper's design point: ~99% accuracy on used predictions.
    const RunConfig rc = quickRun();
    for (const auto &w : trace::smokeWorkloadNames()) {
        vp::CompositePredictor p(
            scaled(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
        const auto s = runWorkload(w, &p, rc);
        if (s.predictionsUsed > 100) {
            EXPECT_GT(s.accuracy(), 0.95) << w;
        }
    }
}

TEST(Integration, CompositeNeverTanksAWorkload)
{
    const RunConfig rc = quickRun();
    SuiteRunner runner(trace::smokeWorkloadNames(), rc);
    for (const auto &w : trace::smokeWorkloadNames()) {
        const auto &base = runner.baseline(w);
        vp::CompositePredictor p(
            scaled(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
        const auto s = runWorkload(w, &p, rc);
        EXPECT_GT(s.ipc() / base.ipc(), 0.97) << w;
    }
}

TEST(Integration, CompositeSpeedsUpLatencyBoundWork)
{
    const RunConfig rc = quickRun();
    pipe::NullPredictor none;
    const auto base = runWorkload("pointer_chase", &none, rc);
    vp::CompositePredictor p(
        scaled(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
    const auto s = runWorkload("pointer_chase", &p, rc);
    EXPECT_GT(s.ipc() / base.ipc(), 1.3);
}

TEST(Integration, CompositeCoverageBeatsEveryComponent)
{
    // Figure 4 / Section V-A: the composite uses the state better
    // than any single component of the same total size.
    const RunConfig rc = quickRun();
    SuiteRunner runner(trace::smokeWorkloadNames(), rc);

    const auto composite = runner.run("composite", [&] {
        return std::make_unique<vp::CompositePredictor>(
            scaled(vp::CompositeConfig::homogeneous(1024),
                   rc.maxInstrs));
    });
    for (ComponentId id :
         {ComponentId::LVP, ComponentId::SAP, ComponentId::CVP,
          ComponentId::CAP}) {
        const auto single =
            runner.run(pipe::componentName(id), [&] {
                return vp::makeSinglePredictor(id, 1024);
            });
        EXPECT_GT(composite.meanCoverage(), single.meanCoverage())
            << pipe::componentName(id);
    }
}

TEST(Integration, EvesRunsAndPredicts)
{
    const RunConfig rc = quickRun();
    vp::EvesPredictor eves(vp::EvesConfig::large32k());
    const auto s = runWorkload("const_table", &eves, rc);
    EXPECT_GT(s.predictionsUsed, 1000u);
    EXPECT_GT(s.accuracy(), 0.95);
}

TEST(Integration, EvesCatchesStrideValuesCompositeCannot)
{
    // producer_consumer payloads form a stride-1 value sequence:
    // EVES's E-Stride covers loads the composite drops.
    const RunConfig rc = quickRun();
    vp::EvesPredictor eves(vp::EvesConfig::large32k());
    const auto se = runWorkload("producer_consumer", &eves, rc);
    EXPECT_GT(se.predictionsUsed, 100u);
}

TEST(Integration, CompositeCoverageBeatsEves)
{
    // The paper's headline (Figure 11): composite coverage is much
    // higher than EVES at comparable or larger EVES budgets.
    const RunConfig rc = quickRun();
    SuiteRunner runner(trace::smokeWorkloadNames(), rc);
    const auto composite = runner.run("composite", [&] {
        return std::make_unique<vp::CompositePredictor>(
            scaled(vp::CompositeConfig::bestOf(1024), rc.maxInstrs));
    });
    const auto eves = runner.run("eves", [&] {
        return std::make_unique<vp::EvesPredictor>(
            vp::EvesConfig::large32k());
    });
    EXPECT_GT(composite.meanCoverage(), eves.meanCoverage());
}

TEST(Integration, SuiteRunnerCachesBaselines)
{
    const RunConfig rc = quickRun(20000);
    SuiteRunner runner({"memset_loop"}, rc);
    const auto &a = runner.baseline("memset_loop");
    const auto &b = runner.baseline("memset_loop");
    EXPECT_EQ(&a, &b);
}

TEST(Integration, StorageAccountingFlowsThroughResults)
{
    const RunConfig rc = quickRun(20000);
    SuiteRunner runner({"memset_loop"}, rc);
    const auto res = runner.run("composite", [&] {
        return std::make_unique<vp::CompositePredictor>(
            vp::CompositeConfig::homogeneous(1024));
    });
    EXPECT_GT(res.storageKB(), 5.0);
    EXPECT_LT(res.storageKB(), 20.0);
}

TEST(Integration, TraceCacheReturnsSameTrace)
{
    auto &c = TraceCache::instance();
    auto a = c.get("memset_loop", 10000, 1);
    auto b = c.get("memset_loop", 10000, 1);
    EXPECT_EQ(a.get(), b.get());
    auto d = c.get("memset_loop", 10000, 2);
    EXPECT_NE(a.get(), d.get());
}
