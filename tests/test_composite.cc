#include <gtest/gtest.h>

#include "core/composite.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::ComponentId;
using pipe::LoadOutcome;
using pipe::LoadProbe;
using pipe::Prediction;

namespace
{

std::uint64_t nextToken = 1;

/** Probe + train one load with a constant value and address. */
Prediction
oneLoad(CompositePredictor &p, Addr pc, Value v, Addr ea,
        bool used = false, bool correct = false)
{
    LoadProbe probe;
    probe.pc = pc;
    probe.token = nextToken++;
    const Prediction pred = p.predict(probe);
    LoadOutcome o;
    o.pc = pc;
    o.token = probe.token;
    o.effAddr = ea;
    o.size = 8;
    o.value = v;
    o.predictionUsed = used;
    o.predictionCorrect = correct;
    p.train(o);
    return pred;
}

/** Warm a constant-value, constant-address load until predicted. */
void
warm(CompositePredictor &p, Addr pc, Value v, Addr ea, int n = 400)
{
    for (int i = 0; i < n; ++i)
        oneLoad(p, pc, v, ea, true, true);
}

CompositeConfig
plain(std::size_t per_component = 256)
{
    CompositeConfig cfg;
    cfg.lvpEntries = per_component;
    cfg.sapEntries = per_component;
    cfg.cvpEntries = per_component;
    cfg.capEntries = per_component;
    cfg.seed = 42;
    return cfg;
}

} // anonymous namespace

TEST(Composite, ColdPredictsNothing)
{
    CompositePredictor p(plain());
    LoadProbe probe;
    probe.pc = 0x100;
    probe.token = nextToken++;
    EXPECT_FALSE(p.predict(probe).valid());
    p.abandon(probe.token);
}

TEST(Composite, LearnsConstantLoad)
{
    CompositePredictor p(plain());
    warm(p, 0x100, 42, 0x8000);
    const auto pred = oneLoad(p, 0x100, 42, 0x8000);
    ASSERT_TRUE(pred.valid());
}

TEST(Composite, SelectionPrefersValueOverAddress)
{
    // A constant load becomes confident in LVP/CVP (value) and
    // SAP/CAP (address); the value prediction must win (Section V-A:
    // no speculative cache access needed).
    CompositePredictor p(plain());
    warm(p, 0x100, 42, 0x8000);
    const auto pred = oneLoad(p, 0x100, 42, 0x8000);
    ASSERT_TRUE(pred.valid());
    EXPECT_TRUE(pred.isValue());
    // And context-aware (CVP) over context-agnostic (LVP).
    EXPECT_EQ(pred.component, ComponentId::CVP);
}

TEST(Composite, AddressPredictorsCoverValueChanges)
{
    // Address constant, value changes every time: only SAP/CAP can
    // become confident; CAP (context-aware) is preferred.
    CompositePredictor p(plain());
    for (int i = 0; i < 400; ++i)
        oneLoad(p, 0x200, Value(i) * 7919, 0x9000);
    const auto pred = oneLoad(p, 0x200, 1, 0x9000);
    ASSERT_TRUE(pred.valid());
    EXPECT_TRUE(pred.isAddress());
    EXPECT_EQ(pred.addr, 0x9000u);
    EXPECT_EQ(pred.component, ComponentId::CAP);
}

TEST(Composite, ZeroSizedComponentsAreSkipped)
{
    CompositeConfig cfg = plain();
    cfg.cvpEntries = 0;
    cfg.capEntries = 0;
    CompositePredictor p(cfg);
    warm(p, 0x100, 42, 0x8000);
    const auto pred = oneLoad(p, 0x100, 42, 0x8000);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.component, ComponentId::LVP);
}

TEST(Composite, MakeSingleExposesOneComponent)
{
    auto p = makeSinglePredictor(ComponentId::SAP, 512);
    // Strided addresses, changing values: only SAP applies.
    for (int i = 0; i < 100; ++i)
        oneLoad(*p, 0x300, Value(i), 0xa000 + Addr(i) * 8);
    LoadProbe probe;
    probe.pc = 0x300;
    probe.token = nextToken++;
    const auto pred = p->predict(probe);
    p->abandon(probe.token);
    ASSERT_TRUE(pred.valid());
    EXPECT_EQ(pred.component, ComponentId::SAP);
    EXPECT_EQ(p->storageBits(), 512ull * 77);
}

TEST(Composite, StorageSumsComponentsAndAm)
{
    CompositeConfig cfg = plain(256);
    CompositePredictor no_am(cfg);
    // LVP 81 + SAP 77 + CVP 81 + CAP 67 bits per entry.
    EXPECT_EQ(no_am.storageBits(),
              256ull * (81 + 77 + 81 + 67));
    cfg.am = AmKind::PcAm;
    CompositePredictor with_am(cfg);
    EXPECT_GT(with_am.storageBits(), no_am.storageBits());
}

TEST(Composite, PcAmSilencesMisbehavingComponent)
{
    CompositeConfig cfg = plain();
    cfg.am = AmKind::PcAm;
    CompositePredictor p(cfg);
    // Constant address with changing values: CAP/SAP get confident
    // and predict the right address, but the pipeline reports the
    // used predictions as wrong (stale values), flushing every time.
    int predictions_after_training = 0;
    for (int i = 0; i < 600; ++i) {
        LoadProbe probe;
        probe.pc = 0x400;
        probe.token = nextToken++;
        const Prediction pred = p.predict(probe);
        LoadOutcome o;
        o.pc = 0x400;
        o.token = probe.token;
        o.effAddr = 0xb000;
        o.size = 8;
        o.value = Value(i) * 13;
        o.predictionUsed = pred.valid();
        o.predictionCorrect = false; // pipeline: stale every time
        p.train(o);
        if (i > 300)
            predictions_after_training += pred.valid() ? 1 : 0;
    }
    // The PC-AM must have silenced the address predictors for this
    // PC: almost no predictions late in the run.
    EXPECT_LT(predictions_after_training, 30);
    EXPECT_GT(p.compositeStats().amSquashes, 0u);
}

TEST(Composite, SmartTrainingTrainsRoughlyOne)
{
    CompositeConfig cfg = plain();
    cfg.smartTraining = true;
    CompositePredictor p(cfg);
    warm(p, 0x100, 42, 0x8000, 1500);
    // Figure 7: with smart training the average number of predictors
    // updated approaches one.
    EXPECT_LT(p.compositeStats().avgTrainedPerLoad(), 1.8);
}

TEST(Composite, TrainAllUpdatesAllFour)
{
    CompositePredictor p(plain());
    warm(p, 0x100, 42, 0x8000, 500);
    EXPECT_NEAR(p.compositeStats().avgTrainedPerLoad(), 4.0, 0.01);
}

TEST(Composite, SmartTrainingReducesOverlap)
{
    // The same access pattern through both policies: smart training
    // must leave fewer loads with multiple confident components.
    auto run = [](bool smart) {
        CompositeConfig cfg = plain();
        cfg.smartTraining = smart;
        CompositePredictor p(cfg);
        warm(p, 0x500, 7, 0xc000, 1500);
        const auto &h = p.compositeStats().confidentHist;
        std::uint64_t multi = 0, total = 0;
        for (std::size_t i = 0; i <= numComponents; ++i) {
            total += h[i];
            if (i >= 2)
                multi += h[i];
        }
        return double(multi) / double(total);
    };
    EXPECT_LT(run(true), run(false));
}

TEST(Composite, SmartTrainingInvalidatesSkippedSap)
{
    // Strided loads of a CONSTANT value, with periodic stride breaks.
    // Each break resets SAP and reopens train-all windows in which
    // the value predictors accumulate confidence; once a value
    // predictor and SAP are simultaneously correct, the value
    // predictor is chosen and the skipped SAP entry is invalidated
    // (Section V-D).
    CompositeConfig cfg = plain();
    cfg.smartTraining = true;
    CompositePredictor p(cfg);
    for (int phase = 0; phase < 60; ++phase) {
        const Addr base = 0x8000 + Addr(phase) * 0x5000;
        for (int i = 0; i < 12; ++i)
            oneLoad(p, 0x100, 42, base + Addr(i) * 8, true, true);
    }
    EXPECT_GT(p.compositeStats().sapInvalidations, 0u);
}

TEST(Composite, ProbeTrainBalanced)
{
    CompositePredictor p(plain());
    warm(p, 0x100, 42, 0x8000, 200);
    EXPECT_EQ(p.compositeStats().probes,
              p.compositeStats().trainEvents);
}

TEST(Composite, FusionDonatesIdleComponents)
{
    CompositeConfig cfg = plain(64);
    cfg.tableFusion = true;
    cfg.epochInstrs = 1000;
    cfg.fusionClassifyEpochs = 2;
    cfg.fusionCycleEpochs = 10;
    CompositePredictor p(cfg);
    // Heavy LVP-predictable traffic and nothing for the others.
    for (int e = 0; e < 4; ++e) {
        for (int i = 0; i < 500; ++i)
            oneLoad(p, 0x100, 42, 0x8000, true, true);
        p.onRetire(1000);
    }
    EXPECT_TRUE(p.currentlyFused());
    EXPECT_GE(p.fusionEvents(), 1u);
    // At least one component must have donated its table.
    int donors = 0;
    for (unsigned c = 0; c < numComponents; ++c)
        donors += p.componentActive(c) ? 0 : 1;
    EXPECT_GE(donors, 1);
}

TEST(Composite, FusionRevertsAfterCycle)
{
    CompositeConfig cfg = plain(64);
    cfg.tableFusion = true;
    cfg.epochInstrs = 1000;
    cfg.fusionClassifyEpochs = 2;
    cfg.fusionCycleEpochs = 4;
    CompositePredictor p(cfg);
    for (int e = 0; e < 3; ++e) {
        for (int i = 0; i < 300; ++i)
            oneLoad(p, 0x100, 42, 0x8000, true, true);
        p.onRetire(1000);
    }
    ASSERT_TRUE(p.currentlyFused());
    p.onRetire(1000); // epoch 4: revert
    EXPECT_FALSE(p.currentlyFused());
    for (unsigned c = 0; c < numComponents; ++c)
        EXPECT_TRUE(p.componentActive(c));
}

TEST(Composite, FusionStorageStaysConstant)
{
    CompositeConfig cfg = plain(64);
    cfg.tableFusion = true;
    cfg.epochInstrs = 1000;
    cfg.fusionClassifyEpochs = 2;
    CompositePredictor p(cfg);
    const auto before = p.storageBits();
    for (int e = 0; e < 3; ++e) {
        for (int i = 0; i < 300; ++i)
            oneLoad(p, 0x100, 42, 0x8000, true, true);
        p.onRetire(1000);
    }
    ASSERT_TRUE(p.currentlyFused());
    EXPECT_EQ(p.storageBits(), before);
}

TEST(Composite, HomogeneousFactoryDividesBudget)
{
    const auto cfg = CompositeConfig::homogeneous(1024);
    EXPECT_EQ(cfg.lvpEntries, 256u);
    EXPECT_EQ(cfg.sapEntries, 256u);
    EXPECT_EQ(cfg.cvpEntries, 256u);
    EXPECT_EQ(cfg.capEntries, 256u);
}

TEST(Composite, BestOfEnablesAllOptimizations)
{
    const auto cfg = CompositeConfig::bestOf(1024);
    EXPECT_EQ(cfg.am, AmKind::PcAm);
    EXPECT_TRUE(cfg.smartTraining);
    EXPECT_TRUE(cfg.tableFusion);
}
