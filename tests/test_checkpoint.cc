/**
 * @file
 * Warmup checkpointing and the sweep-engine memo caches
 * (sim::CheckpointCache / sim::BaselineCache): build-once semantics
 * under concurrency, restore bit-identity against inline warmup, and
 * the warmup=0 fast path staying byte-for-byte the pre-checkpoint
 * engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/composite.hh"
#include "core/lvp_interface.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

std::vector<std::pair<std::string, std::uint64_t>>
flat(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

sim::RunConfig
shortRun(std::size_t warmup)
{
    sim::RunConfig rc;
    rc.maxInstrs = 3000;
    rc.warmupInstrs = warmup;
    return rc;
}

const char *kWorkload = "stream_sum";

} // anonymous namespace

TEST(RunConfigKey, DistinguishesEveryRelevantKnob)
{
    const auto base = shortRun(2000);
    auto a = base;
    a.maxInstrs += 1;
    auto b = base;
    b.warmupInstrs += 1;
    auto c = base;
    c.traceSeed += 1;
    auto d = base;
    d.core.robSize += 1;
    auto e = base;
    e.core.memory.l1d.sizeBytes *= 2;
    auto f = base;
    f.core.tage.numTables += 1;
    const std::string key = sim::runConfigKey(base);
    for (const auto &other : {a, b, c, d, e, f})
        EXPECT_NE(key, sim::runConfigKey(other));
    EXPECT_EQ(key, sim::runConfigKey(base));
}

TEST(CheckpointCache, ConcurrentSameKeyBuildsOnce)
{
    auto &cache = sim::CheckpointCache::instance();
    cache.clear();
    const auto rc = shortRun(4000);
    const std::uint64_t gen0 = cache.generations();

    constexpr int kThreads = 8;
    std::vector<sim::CheckpointCache::CheckpointPtr> got(kThreads);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                got[t] = cache.get(kWorkload, rc);
            });
        for (auto &th : threads)
            th.join();
    }

    EXPECT_EQ(cache.generations() - gen0, 1u)
        << "same-key checkpoint simulated more than once";
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[t], nullptr);
        EXPECT_EQ(got[t], got[0]) << "thread " << t
                                  << " got a different entry";
    }
    EXPECT_EQ(got[0]->warmupInstrs, rc.warmupInstrs);
}

TEST(CheckpointCache, DistinctKeysBuildSeparately)
{
    auto &cache = sim::CheckpointCache::instance();
    cache.clear();
    const std::uint64_t gen0 = cache.generations();
    const auto a = cache.get(kWorkload, shortRun(4000));
    const auto b = cache.get(kWorkload, shortRun(5000));
    const auto c = cache.get("hash_probe", shortRun(4000));
    EXPECT_EQ(cache.generations() - gen0, 3u);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    // Hits after the builds return the identical entries.
    EXPECT_EQ(cache.get(kWorkload, shortRun(4000)), a);
    EXPECT_EQ(cache.generations() - gen0, 3u);
}

TEST(BaselineCache, MemoizesPerKey)
{
    auto &cache = sim::BaselineCache::instance();
    cache.clear();
    const auto rc = shortRun(0);
    const std::uint64_t gen0 = cache.generations();
    const auto a = cache.get(kWorkload, rc);
    const auto b = cache.get(kWorkload, rc);
    EXPECT_EQ(a, b);
    EXPECT_EQ(cache.generations() - gen0, 1u);

    auto other = rc;
    other.maxInstrs += 500;
    const auto c = cache.get(kWorkload, other);
    EXPECT_NE(a, c);
    EXPECT_EQ(cache.generations() - gen0, 2u);

    // The memoized baseline is the plain no-VP simulation.
    pipe::NullPredictor none;
    EXPECT_EQ(flat(a->stats),
              flat(sim::runWorkload(kWorkload, &none, rc)));
}

TEST(Checkpoint, ZeroWarmupMatchesDirectRun)
{
    const auto rc = shortRun(0);
    auto ops = sim::TraceCache::instance().get(
        kWorkload, rc.maxInstrs, rc.traceSeed);
    auto direct_vp = vp::makeSinglePredictor(pipe::ComponentId::LVP,
                                             256);
    const auto direct = sim::runTrace(*ops, direct_vp.get(), rc);
    auto cached_vp = vp::makeSinglePredictor(pipe::ComponentId::LVP,
                                             256);
    const auto cached = sim::runWorkload(kWorkload, cached_vp.get(),
                                         rc);
    EXPECT_EQ(flat(direct), flat(cached));
}

TEST(Checkpoint, RestoreMatchesInlineWarmup)
{
    const auto rc = shortRun(6000);
    auto ops = sim::TraceCache::instance().get(
        kWorkload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);

    // Reference: one core warms up and measures in a single life.
    auto inline_vp = vp::makeSinglePredictor(pipe::ComponentId::SAP,
                                             512);
    const auto inline_stats =
        sim::runTrace(*ops, inline_vp.get(), rc);

    // Under test: restore from the process-wide checkpoint.
    sim::CheckpointCache::instance().clear();
    auto restored_vp = vp::makeSinglePredictor(pipe::ComponentId::SAP,
                                               512);
    const auto restored =
        sim::runWorkload(kWorkload, restored_vp.get(), rc);

    EXPECT_EQ(flat(inline_stats), flat(restored));
}
