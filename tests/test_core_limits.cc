/**
 * @file
 * Pipeline resource-limit tests: each Table III structure must
 * actually constrain execution the way its size says it should.
 */

#include <gtest/gtest.h>

#include "pipeline/core.hh"
#include "trace/asm_emitter.hh"

using namespace lvpsim;
using namespace lvpsim::pipe;
using namespace lvpsim::trace;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4;

SimStats
runWith(const std::vector<MicroOp> &ops, CoreConfig cfg = {})
{
    NullPredictor none;
    Core core(cfg, ops, &none);
    return core.run();
}

} // anonymous namespace

TEST(CoreLimits, RetireWidthCapsIpc)
{
    // Independent 1-cycle ops with an 8-wide retire but a generous
    // front end cannot exceed the retire width... the narrower fetch
    // (4) binds first in the default config; widen fetch to check
    // retire.
    std::vector<MicroOp> out;
    Asm a(out, 30000, 1);
    while (!a.done())
        a.imm("c", r1, 1);
    CoreConfig cfg;
    cfg.fetchWidth = 16;
    cfg.issueWidth = 16;
    cfg.retireWidth = 8;
    const auto s = runWith(out, cfg);
    EXPECT_LE(s.ipc(), 8.01);
    EXPECT_GT(s.ipc(), 7.0);
}

TEST(CoreLimits, IssueWidthCapsThroughput)
{
    std::vector<MicroOp> out;
    Asm a(out, 30000, 1);
    while (!a.done())
        a.imm("c", r1, 1);
    CoreConfig cfg;
    cfg.fetchWidth = 16;
    cfg.issueWidth = 4;
    cfg.lsLanes = 1;
    cfg.retireWidth = 16;
    const auto s = runWith(out, cfg);
    // 3 generic lanes bound these ALU ops.
    EXPECT_LE(s.ipc(), 3.01);
    EXPECT_GT(s.ipc(), 2.5);
}

TEST(CoreLimits, TinyRobThrottlesMissOverlap)
{
    // A pointer chase over a large footprint: more ROB lets more
    // independent work proceed past the misses.
    std::vector<MicroOp> out;
    Asm a(out, 30000, 1);
    a.mem().write(0x10000, 0x10000, 8);
    a.imm("p", r1, 0x10000);
    while (!a.done()) {
        a.load("chase", r1, r1, 0, 8);
        for (int i = 0; i < 6; ++i)
            a.imm("w", r2, 5); // independent filler
    }
    CoreConfig small;
    small.robSize = 16;
    small.iqSize = 16;
    CoreConfig big;
    const auto s_small = runWith(out, small);
    const auto s_big = runWith(out, big);
    EXPECT_GT(s_big.ipc(), s_small.ipc() * 1.2);
}

TEST(CoreLimits, LdqCapBlocksDispatch)
{
    // All-load code with a tiny LDQ: throughput collapses to the
    // LDQ drain rate rather than the LS lanes.
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.mem().write(0x20000, 7, 8);
    a.imm("b", r1, 0x20000);
    while (!a.done())
        a.load("ld", r2, r1, 0, 8);
    CoreConfig tiny;
    tiny.ldqSize = 2;
    const auto s_tiny = runWith(out, tiny);
    const auto s_full = runWith(out);
    EXPECT_LT(s_tiny.ipc(), s_full.ipc());
    EXPECT_EQ(s_tiny.instructions, out.size());
}

TEST(CoreLimits, StqCapBlocksDispatch)
{
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.imm("b", r1, 0x30000);
    a.imm("v", r2, 9);
    while (!a.done())
        a.store("st", r2, r1, 0, 8);
    CoreConfig tiny;
    tiny.stqSize = 2;
    const auto s_tiny = runWith(out, tiny);
    const auto s_full = runWith(out);
    EXPECT_LT(s_tiny.ipc(), s_full.ipc());
    EXPECT_EQ(s_tiny.instructions, out.size());
}

TEST(CoreLimits, DivLatencyShowsInSerialChains)
{
    auto make = [](bool use_div) {
        std::vector<MicroOp> out;
        Asm a(out, 10000, 1);
        a.imm("x", r1, 1000000);
        a.imm("d", r2, 3);
        while (!a.done()) {
            if (use_div)
                a.div("op", r1, r1, r2);
            else
                a.add("op", r1, r1, r2);
        }
        return out;
    };
    const auto s_add = runWith(make(false));
    const auto s_div = runWith(make(true));
    // Divides are 12 cycles vs 1: the serial chain is ~12x slower.
    EXPECT_GT(s_add.ipc() / s_div.ipc(), 8.0);
}

TEST(CoreLimits, FpLatencyShowsInSerialChains)
{
    auto make = [](bool fp) {
        std::vector<MicroOp> out;
        Asm a(out, 10000, 1);
        a.imm("x", r1, 1);
        a.imm("y", r2, 3);
        while (!a.done()) {
            if (fp)
                a.fadd("op", r1, r1, r2);
            else
                a.add("op", r1, r1, r2);
        }
        return out;
    };
    const auto s_int = runWith(make(false));
    const auto s_fp = runWith(make(true));
    EXPECT_NEAR(s_int.ipc() / s_fp.ipc(), 4.0, 0.5);
}

TEST(CoreLimits, StoreToLoadForwardingIsFast)
{
    // store -> load of the same address, serially dependent through
    // the loaded value: forwarding (1 cycle) vs D-cache (2 + AGU).
    std::vector<MicroOp> out;
    Asm a(out, 20000, 1);
    a.imm("b", r1, 0x40000);
    a.imm("v", r2, 1);
    while (!a.done()) {
        a.store("st", r2, r1, 0, 8);
        a.load("ld", r2, r1, 0, 8);
        a.addi("inc", r2, r2, 1);
    }
    const auto s = runWith(out);
    // With forwarding the loop's serial latency is store-issue ->
    // load-forward (2) -> add (1); without it, load costs 3 alone.
    // Mostly a sanity check that forwarding code paths run and all
    // instructions commit without memory-order flushes exploding.
    EXPECT_EQ(s.instructions, out.size());
    // The wait table clears periodically, so a handful of violations
    // recur over the run; they must stay rare.
    EXPECT_LT(s.memOrderFlushes, 50u);
    EXPECT_GT(s.ipc(), 0.5);
}

TEST(CoreLimits, DeeperFrontEndRaisesBranchPenalty)
{
    // Random branches: a deeper fetch-to-execute pipe pays more per
    // mispredict.
    std::vector<MicroOp> out;
    Asm a(out, 30000, 5);
    a.imm("x", r1, 1);
    while (!a.done()) {
        a.addi("w", r1, r1, 1);
        a.branch("br", a.rng().bernoulli(0.5), "w", r1);
    }
    CoreConfig shallow;
    shallow.fetchToExecute = 6;
    CoreConfig deep;
    deep.fetchToExecute = 24;
    const auto s_shallow = runWith(out, shallow);
    const auto s_deep = runWith(out, deep);
    EXPECT_GT(s_shallow.ipc(), s_deep.ipc() * 1.3);
}
