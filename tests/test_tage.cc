#include <gtest/gtest.h>

#include "branch/history.hh"
#include "branch/tage.hh"

using namespace lvpsim;
using namespace lvpsim::branch;

namespace
{

/** Drive predict+update for a repeated direction pattern; return the
 *  mispredict rate over the last @p measure occurrences. */
double
mispredictRate(Tage &t, Addr pc, const std::vector<bool> &pattern,
               int reps, int measure_tail)
{
    int total = 0, wrong = 0;
    const int n = reps * int(pattern.size());
    for (int i = 0; i < n; ++i) {
        const bool taken = pattern[i % pattern.size()];
        const bool pred = t.predict(pc);
        if (i >= n - measure_tail) {
            ++total;
            wrong += (pred != taken) ? 1 : 0;
        }
        t.update(pc, taken);
    }
    return total ? double(wrong) / total : 0.0;
}

} // anonymous namespace

TEST(FoldedHistory, FoldsRecentBitsOnly)
{
    HistoryRing ring(128);
    FoldedHistory f(8, 4);
    // Push 8 ones: intermediate folds are nonzero (the final fold of
    // 8 ones into 4 bits XOR-cancels to 0, which is fine).
    bool saw_nonzero = false;
    for (int i = 0; i < 8; ++i) {
        ring.push(1);
        f.update(ring);
        saw_nonzero |= f.value() != 0;
    }
    EXPECT_TRUE(saw_nonzero);
    // Push 8 zeros: the ones age out of the window completely.
    for (int i = 0; i < 8; ++i) {
        ring.push(0);
        f.update(ring);
    }
    EXPECT_EQ(f.value(), 0u);
}

TEST(FoldedHistory, WindowIsExact)
{
    // Two rings with the same last-8 bits but different older bits
    // must fold to the same value.
    HistoryRing r1(64), r2(64);
    FoldedHistory f1(8, 5), f2(8, 5);
    auto push = [](HistoryRing &r, FoldedHistory &f, unsigned b) {
        r.push(b);
        f.update(r);
    };
    for (int i = 0; i < 10; ++i)
        push(r1, f1, 1); // old bits: ones
    for (int i = 0; i < 10; ++i)
        push(r2, f2, 0); // old bits: zeros
    const unsigned tail[8] = {1, 0, 1, 1, 0, 0, 1, 0};
    for (unsigned b : tail) {
        push(r1, f1, b);
        push(r2, f2, b);
    }
    EXPECT_EQ(f1.value(), f2.value());
}

TEST(HistoryRing, AtReturnsRecentBits)
{
    HistoryRing r(16);
    r.push(1);
    r.push(0);
    r.push(1);
    EXPECT_EQ(r.at(0), 1u);
    EXPECT_EQ(r.at(1), 0u);
    EXPECT_EQ(r.at(2), 1u);
}

TEST(Tage, LearnsAlwaysTaken)
{
    Tage t;
    EXPECT_LT(mispredictRate(t, 0x1000, {true}, 500, 400), 0.01);
}

TEST(Tage, LearnsAlwaysNotTaken)
{
    Tage t;
    EXPECT_LT(mispredictRate(t, 0x1000, {false}, 500, 400), 0.01);
}

TEST(Tage, LearnsShortLoopPattern)
{
    // T T T N repeated: bimodal alone cannot do this; the tagged
    // history tables must pick it up.
    Tage t;
    EXPECT_LT(mispredictRate(t, 0x2000,
                             {true, true, true, false}, 800, 800),
              0.05);
}

TEST(Tage, LearnsLongerPattern)
{
    std::vector<bool> pat;
    for (int i = 0; i < 12; ++i)
        pat.push_back(i < 11); // loop of trip count 12
    Tage t;
    EXPECT_LT(mispredictRate(t, 0x3000, pat, 400, 1200), 0.05);
}

TEST(Tage, RandomIsHard)
{
    // Sanity: on unbiased random directions TAGE cannot do much
    // better than 50% - guards against tests passing vacuously.
    Tage t;
    Xoshiro256 rng(3);
    int wrong = 0, total = 4000;
    for (int i = 0; i < total; ++i) {
        const bool taken = rng.bernoulli(0.5);
        const bool pred = t.predict(0x4000);
        wrong += pred != taken;
        t.update(0x4000, taken);
    }
    EXPECT_GT(double(wrong) / total, 0.35);
}

TEST(Tage, TracksManyBranches)
{
    // Several branch PCs with opposite biases at once.
    Tage t;
    int wrong = 0, total = 0;
    for (int i = 0; i < 3000; ++i) {
        for (Addr pc = 0x100; pc < 0x100 + 16 * 4; pc += 4) {
            const bool taken = ((pc >> 2) & 1) != 0;
            const bool pred = t.predict(pc);
            if (i > 100) {
                ++total;
                wrong += pred != taken;
            }
            t.update(pc, taken);
        }
        if (total > 20000)
            break;
    }
    EXPECT_LT(double(wrong) / total, 0.02);
}

TEST(Tage, StorageBitsPlausible)
{
    TageConfig cfg;
    // Default configuration should be in the ~32KB class (Table III).
    const double kb = double(cfg.storageBits()) / 8192.0;
    EXPECT_GT(kb, 8.0);
    EXPECT_LT(kb, 64.0);
}

TEST(Tage, UpdateWithoutPredictPanics)
{
    Tage t;
    t.predict(0x100);
    EXPECT_DEATH(t.update(0x104, true), "matching predict");
}

TEST(Tage, HistoryOnlyUpdateAdvancesContext)
{
    // Interleaving unconditional (history-only) branches must not
    // break learning of a history-correlated pattern.
    Tage t;
    int wrong = 0, total = 0;
    bool flip = false;
    for (int i = 0; i < 4000; ++i) {
        t.updateHistoryOnly(0x8000 + (i % 3) * 4, true);
        const bool taken = flip;
        const bool pred = t.predict(0x9000);
        if (i > 1000) {
            ++total;
            wrong += pred != taken;
        }
        t.update(0x9000, taken);
        flip = !flip;
    }
    EXPECT_LT(double(wrong) / total, 0.05);
}
