#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace lvpsim::stats;

TEST(Stats, ScalarCounts)
{
    StatGroup g("core");
    Scalar s(g, "cycles", "total cycles");
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 11u);
    EXPECT_EQ(s.name(), "core.cycles");
}

TEST(Stats, ScalarReset)
{
    StatGroup g;
    Scalar s(g, "x", "");
    s += 5;
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    StatGroup g;
    Histogram h(g, "h", "test", 4);
    h.sample(0);
    h.sample(2, 3);
    h.sample(99); // overflow clamps to last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 3u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Stats, GroupDumpContainsAll)
{
    StatGroup g("vp");
    Scalar a(g, "preds", "predictions");
    Scalar b(g, "miss", "mispredictions");
    a += 3;
    b += 1;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("vp.preds"), std::string::npos);
    EXPECT_NE(out.find("vp.miss"), std::string::npos);
    EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(Stats, EmptyPrefixNamesUnqualified)
{
    StatGroup g;
    Scalar s(g, "plain", "");
    EXPECT_EQ(s.name(), "plain");
}

TEST(Stats, HistogramReset)
{
    StatGroup g;
    Histogram h(g, "h", "", 2);
    h.sample(1, 7);
    g.resetAll();
    EXPECT_EQ(h.total(), 0u);
}
