/**
 * @file
 * Parameterized configuration sweeps over the substrates: every
 * reasonable geometry must behave sanely, not just the Table III
 * defaults.
 */

#include <gtest/gtest.h>

#include "branch/tage.hh"
#include "common/random.hh"
#include "memory/cache.hh"
#include "pipeline/core.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

// ---------------------------------------------------------------------
// TAGE geometry sweep.
// ---------------------------------------------------------------------

struct TageParam
{
    unsigned tables;
    unsigned logTagged;
    unsigned maxHist;
};

class TageSweep : public ::testing::TestWithParam<TageParam>
{
};

TEST_P(TageSweep, LearnsLoopPatternAtAnyGeometry)
{
    branch::TageConfig cfg;
    cfg.numTables = GetParam().tables;
    cfg.logTagged = GetParam().logTagged;
    cfg.maxHist = GetParam().maxHist;
    branch::Tage t(cfg);

    // Trip-count-5 loop: needs the tagged tables.
    int wrong = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool taken = (i % 5) != 4;
        const bool pred = t.predict(0x4000);
        if (i > 3000) {
            ++total;
            wrong += pred != taken;
        }
        t.update(0x4000, taken);
    }
    EXPECT_LT(double(wrong) / total, 0.10);
}

TEST_P(TageSweep, StorageScalesWithGeometry)
{
    branch::TageConfig cfg;
    cfg.numTables = GetParam().tables;
    cfg.logTagged = GetParam().logTagged;
    cfg.maxHist = GetParam().maxHist;
    EXPECT_GT(cfg.storageBits(), 0u);
    branch::TageConfig bigger = cfg;
    bigger.logTagged = cfg.logTagged + 1;
    EXPECT_GT(bigger.storageBits(), cfg.storageBits());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TageSweep,
    ::testing::Values(TageParam{4, 8, 64}, TageParam{6, 10, 130},
                      TageParam{8, 9, 256}, TageParam{3, 11, 32}),
    [](const ::testing::TestParamInfo<TageParam> &info) {
        const auto &p = info.param;
        return "t" + std::to_string(p.tables) + "_log" +
               std::to_string(p.logTagged) + "_h" +
               std::to_string(p.maxHist);
    });

// ---------------------------------------------------------------------
// Cache geometry sweep.
// ---------------------------------------------------------------------

struct CacheParam
{
    std::size_t sizeKB;
    unsigned assoc;
    unsigned block;
};

class CacheSweep : public ::testing::TestWithParam<CacheParam>
{
};

TEST_P(CacheSweep, HitsAfterFillAtAnyGeometry)
{
    const auto p = GetParam();
    mem::CacheConfig cfg{"sweep", p.sizeKB * 1024, p.assoc, p.block,
                         2};
    mem::Cache c(cfg);
    for (Addr a = 0; a < 64 * 1024; a += p.block)
        c.fill(a, false, nullptr);
    // Recently filled blocks within capacity must hit.
    unsigned hits = 0, probes = 0;
    for (Addr a = 64 * 1024 - p.sizeKB * 1024 / 2; a < 64 * 1024;
         a += p.block) {
        ++probes;
        hits += c.probe(a) ? 1 : 0;
    }
    EXPECT_EQ(hits, probes);
}

TEST_P(CacheSweep, AssociativityBoundsConflicts)
{
    const auto p = GetParam();
    mem::CacheConfig cfg{"sweep", p.sizeKB * 1024, p.assoc, p.block,
                         2};
    mem::Cache c(cfg);
    const std::size_t sets = p.sizeKB * 1024 / p.block / p.assoc;
    const Addr set_stride = Addr(sets) * p.block;
    // Fill exactly `assoc` conflicting blocks: all must survive.
    for (unsigned w = 0; w < p.assoc; ++w)
        c.fill(w * set_stride, false, nullptr);
    for (unsigned w = 0; w < p.assoc; ++w)
        EXPECT_TRUE(c.contains(w * set_stride)) << "way " << w;
    // One more evicts exactly one.
    c.fill(Addr(p.assoc) * set_stride, false, nullptr);
    unsigned alive = 0;
    for (unsigned w = 0; w <= p.assoc; ++w)
        alive += c.contains(w * set_stride) ? 1 : 0;
    EXPECT_EQ(alive, p.assoc);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheParam{4, 1, 64}, CacheParam{8, 2, 32},
                      CacheParam{64, 4, 64}, CacheParam{32, 8, 128},
                      CacheParam{16, 16, 64}),
    [](const ::testing::TestParamInfo<CacheParam> &info) {
        const auto &p = info.param;
        return std::to_string(p.sizeKB) + "k_w" +
               std::to_string(p.assoc) + "_b" +
               std::to_string(p.block);
    });

// ---------------------------------------------------------------------
// Core width/window sweep: narrower machines must be slower, never
// incorrect.
// ---------------------------------------------------------------------

struct CoreParam
{
    unsigned fetchWidth;
    unsigned issueWidth;
    unsigned lsLanes;
    unsigned robSize;
};

class CoreSweep : public ::testing::TestWithParam<CoreParam>
{
};

TEST_P(CoreSweep, CommitsEverythingAtAnyWidth)
{
    const auto p = GetParam();
    pipe::CoreConfig cfg;
    cfg.fetchWidth = p.fetchWidth;
    cfg.issueWidth = p.issueWidth;
    cfg.lsLanes = p.lsLanes;
    cfg.robSize = p.robSize;
    cfg.iqSize = std::min(cfg.iqSize, p.robSize);
    const auto ops = trace::generateWorkload("memset_loop", 20000, 1);
    pipe::NullPredictor none;
    pipe::Core core(cfg, ops, &none);
    const auto s = core.run();
    EXPECT_EQ(s.instructions, ops.size());
    EXPECT_LE(s.ipc(), double(p.fetchWidth) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, CoreSweep,
    ::testing::Values(CoreParam{1, 2, 1, 32},
                      CoreParam{2, 4, 1, 64},
                      CoreParam{4, 8, 2, 224},
                      CoreParam{8, 8, 4, 512}),
    [](const ::testing::TestParamInfo<CoreParam> &info) {
        const auto &p = info.param;
        return "f" + std::to_string(p.fetchWidth) + "_i" +
               std::to_string(p.issueWidth) + "_ls" +
               std::to_string(p.lsLanes) + "_rob" +
               std::to_string(p.robSize);
    });

TEST(CoreSweep, WiderMachinesAreFaster)
{
    const auto ops = trace::generateWorkload("branchy_mix", 30000, 1);
    auto ipc_of = [&](unsigned fetch, unsigned issue, unsigned ls) {
        pipe::CoreConfig cfg;
        cfg.fetchWidth = fetch;
        cfg.issueWidth = issue;
        cfg.lsLanes = ls;
        pipe::NullPredictor none;
        pipe::Core core(cfg, ops, &none);
        return core.run().ipc();
    };
    const double narrow = ipc_of(1, 2, 1);
    const double medium = ipc_of(2, 4, 1);
    const double wide = ipc_of(4, 8, 2);
    EXPECT_LT(narrow, medium);
    EXPECT_LE(medium, wide * 1.001);
}
