/**
 * @file
 * Seeded differential fuzzing for the allocation-free containers:
 * RingBuffer is driven against std::deque and FlatMap against
 * std::unordered_map with identical operation streams. Fixed seeds
 * keep the tests deterministic (CI-safe), matching the repo's other
 * fuzz suites.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_map.hh"
#include "common/random.hh"
#include "common/ring_buffer.hh"

using lvpsim::FlatMap;
using lvpsim::RingBuffer;
using lvpsim::Xoshiro256;

namespace
{

/**
 * Drive a RingBuffer and a std::deque through the same random
 * push/pop stream (weighted towards the core's usage: mostly
 * push_back/pop_front, occasional pop_back bursts like a squash) and
 * demand identical contents after every step.
 */
void
fuzzRingAgainstDeque(std::uint64_t seed, std::size_t capacity,
                     std::size_t steps)
{
    Xoshiro256 rng(seed);
    RingBuffer<std::uint64_t> rb(capacity);
    std::deque<std::uint64_t> ref;
    std::uint64_t next = 0;

    for (std::size_t step = 0; step < steps; ++step) {
        const std::uint64_t roll = rng() % 100;
        if (roll < 45) { // push_back
            if (ref.size() < rb.capacity()) {
                rb.push_back(next);
                ref.push_back(next);
                ++next;
            }
        } else if (roll < 80) { // pop_front
            if (!ref.empty()) {
                ASSERT_EQ(rb.front(), ref.front());
                rb.pop_front();
                ref.pop_front();
            }
        } else if (roll < 90) { // squash-like pop_back burst
            std::uint64_t burst = rng() % 4;
            while (burst-- && !ref.empty()) {
                ASSERT_EQ(rb.back(), ref.back());
                rb.pop_back();
                ref.pop_back();
            }
        } else if (roll < 95) { // random-access probe
            if (!ref.empty()) {
                const std::size_t i = rng() % ref.size();
                ASSERT_EQ(rb[i], ref[i]);
            }
        } else { // full scan through iterators
            ASSERT_TRUE(std::equal(rb.begin(), rb.end(),
                                   ref.begin(), ref.end()));
            ASSERT_TRUE(std::equal(rb.rbegin(), rb.rend(),
                                   ref.rbegin(), ref.rend()));
        }
        ASSERT_EQ(rb.size(), ref.size());
        ASSERT_EQ(rb.empty(), ref.empty());
    }
}

/**
 * Drive a FlatMap and a std::unordered_map through the same random
 * insert/overwrite/erase/lookup stream and demand identical contents
 * after every step. @p Hash lets the same harness run with the
 * production hash and with a degenerate clustering hash.
 */
template <typename Hash>
void
fuzzMapAgainstUnordered(std::uint64_t seed, std::uint64_t key_space,
                        std::size_t steps)
{
    Xoshiro256 rng(seed);
    FlatMap<std::uint64_t, std::uint64_t, Hash> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (std::size_t step = 0; step < steps; ++step) {
        const std::uint64_t key = rng() % key_space;
        const std::uint64_t roll = rng() % 100;
        if (roll < 40) { // insert / overwrite
            const std::uint64_t val = rng();
            m[key] = val;
            ref[key] = val;
        } else if (roll < 55) { // emplace (insert-only)
            const std::uint64_t val = rng();
            const auto r = m.emplace(key, val);
            const auto rr = ref.emplace(key, val);
            ASSERT_EQ(r.second, rr.second);
            ASSERT_EQ(r.first->second, rr.first->second);
        } else if (roll < 80) { // erase by key
            ASSERT_EQ(m.erase(key), ref.erase(key));
        } else if (roll < 95) { // lookup
            const auto it = m.find(key);
            const auto rit = ref.find(key);
            ASSERT_EQ(it != m.end(), rit != ref.end());
            if (rit != ref.end()) {
                ASSERT_EQ(it->second, rit->second);
            }
            ASSERT_EQ(m.contains(key), rit != ref.end());
        } else { // full iteration: same entry set, no dups
            std::size_t visited = 0;
            for (const auto &kv : m) {
                const auto rit = ref.find(kv.first);
                ASSERT_NE(rit, ref.end()) << kv.first;
                ASSERT_EQ(kv.second, rit->second);
                ++visited;
            }
            ASSERT_EQ(visited, ref.size());
        }
        ASSERT_EQ(m.size(), ref.size());
    }
}

/** Collapses groups of 8 keys onto one home slot: adversarial probe
 *  chains that stress backward-shift deletion under churn. */
struct ClusterHash8
{
    std::uint64_t operator()(std::uint64_t k) const { return k / 8; }
};

} // anonymous namespace

TEST(ContainersFuzz, RingBufferMatchesDequeSmallRing)
{
    // Tiny pow2 ring: constant wraparound, frequent full/empty.
    fuzzRingAgainstDeque(0x0001ull, 4, 20000);
}

TEST(ContainersFuzz, RingBufferMatchesDequeRobSizedRing)
{
    // ROB-sized ring with a non-pow2 requested capacity.
    fuzzRingAgainstDeque(0x5eedbeefull, 224, 20000);
}

TEST(ContainersFuzz, FlatMapMatchesUnorderedDenseKeys)
{
    // Small key space: lots of overwrites, erase hits, reinsertions.
    fuzzMapAgainstUnordered<lvpsim::FlatHash>(0xf1a70001ull, 64,
                                              20000);
}

TEST(ContainersFuzz, FlatMapMatchesUnorderedSparseKeys)
{
    // Wide key space: mostly misses and fresh inserts, with growth.
    fuzzMapAgainstUnordered<lvpsim::FlatHash>(0xf1a70002ull,
                                              1u << 20, 20000);
}

TEST(ContainersFuzz, FlatMapMatchesUnorderedClusteredHash)
{
    // Degenerate hash: every operation lands in a long probe chain,
    // exercising wrap and backward-shift paths continuously.
    fuzzMapAgainstUnordered<ClusterHash8>(0xf1a70003ull, 256, 20000);
}
