#include <gtest/gtest.h>

#include "branch/ittage.hh"
#include "common/random.hh"

using namespace lvpsim;
using namespace lvpsim::branch;

TEST(Ittage, LearnsMonomorphicTarget)
{
    Ittage it;
    const Addr pc = 0x1000, target = 0x5000;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr pred = it.predict(pc);
        if (i > 20)
            wrong += pred != target;
        it.update(pc, target);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(Ittage, LearnsAlternatingTargetsViaHistory)
{
    // Target alternates A B A B...: history-indexed tables must
    // separate the two contexts.
    Ittage it;
    const Addr pc = 0x2000;
    int wrong = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        const Addr target = (i % 2) ? 0x6000 : 0x7000;
        const Addr pred = it.predict(pc);
        if (i > 2000) {
            ++total;
            wrong += pred != target;
        }
        it.update(pc, target);
    }
    EXPECT_LT(double(wrong) / total, 0.10);
}

TEST(Ittage, LearnsShortRotation)
{
    // Dispatch loop rotating over 4 handlers.
    Ittage it;
    const Addr pc = 0x3000;
    int wrong = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        const Addr target = 0x8000 + (i % 4) * 0x100;
        const Addr pred = it.predict(pc);
        if (i > 4000) {
            ++total;
            wrong += pred != target;
        }
        it.update(pc, target);
    }
    EXPECT_LT(double(wrong) / total, 0.15);
}

TEST(Ittage, RandomTargetsAreHard)
{
    Ittage it;
    Xoshiro256 rng(5);
    const Addr pc = 0x4000;
    int wrong = 0, total = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr target = 0x9000 + rng.below(64) * 4;
        const Addr pred = it.predict(pc);
        ++total;
        wrong += pred != target;
        it.update(pc, target);
    }
    EXPECT_GT(double(wrong) / total, 0.5);
}

TEST(Ittage, MultiplePcsIndependent)
{
    Ittage it;
    int wrong = 0, total = 0;
    for (int i = 0; i < 1000; ++i) {
        for (Addr pc = 0x100; pc < 0x100 + 8 * 4; pc += 4) {
            const Addr target = 0xa000 + pc * 16;
            const Addr pred = it.predict(pc);
            if (i > 100) {
                ++total;
                wrong += pred != target;
            }
            it.update(pc, target);
        }
    }
    EXPECT_LT(double(wrong) / total, 0.02);
}

TEST(Ittage, StorageBitsPlausible)
{
    IttageConfig cfg;
    const double kb = double(cfg.storageBits()) / 8192.0;
    EXPECT_GT(kb, 4.0);
    EXPECT_LT(kb, 64.0);
}
