/**
 * @file
 * Workload-space fuzzing over the kernel-spec DSL (`ctest -L fuzz`).
 *
 * For seeded random specs (qa::genKernelSpec):
 *
 *  - the measured ideal-family models (qa::measureIdealFamilies)
 *    must match the spec's analytic ground-truth profile
 *    (trace::computeTruthProfile) within its stated tolerance — the
 *    deterministic families exactly up to the truncated final
 *    iteration, the random-pick family within its binomial bound;
 *  - the real composite predictor, scored through the championship
 *    harness, must never beat the per-load union of the ideal
 *    families by more than a sliver (a predictor that "outperforms"
 *    an infinite-capacity oracle is exploiting a bug).
 *
 * Failures report the spec in `synth:` grammar plus the seed, which
 * reproduces the case exactly.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/composite.hh"
#include "qa/property.hh"
#include "qa/spec_gen.hh"
#include "qa/spec_oracles.hh"
#include "sim/cvp1.hh"
#include "trace/kernel_spec.hh"
#include "trace/spec_truth.hh"

using namespace lvpsim;

namespace
{

/** One generated case: spec, trace, truth, measurement. */
struct Case
{
    trace::KernelSpec spec;
    std::string text;
    std::size_t maxOps = 0;
    std::uint64_t traceSeed = 0;
    std::vector<trace::MicroOp> ops;
    trace::TruthProfile truth;
    qa::OracleFamilyCounts measured;
};

Case
makeCase(qa::Gen &g, std::size_t min_ops, std::size_t spread)
{
    Case c;
    c.spec = qa::genKernelSpec(g);
    c.text = trace::printKernelSpec(c.spec);
    c.maxOps = min_ops + g.below(spread);
    c.traceSeed = g.u64();
    c.ops = trace::SpecKernel(c.spec).generate(c.maxOps, c.traceSeed);
    c.truth = trace::computeTruthProfile(c.spec, c.maxOps, c.traceSeed);
    c.measured = qa::measureIdealFamilies(c.ops);
    return c;
}

[[noreturn]] void
failCase(const Case &c, const std::string &what)
{
    std::ostringstream os;
    os << what << "\n  spec: synth:" << c.text
       << "\n  max_ops=" << c.maxOps << " trace_seed=" << c.traceSeed;
    throw std::runtime_error(os.str());
}

void
checkFamily(const Case &c, const char *fam, double measured,
            const trace::FamilyTruth &t)
{
    const double lo = t.hits - t.tol;
    const double hi = t.hits + t.tol + double(c.truth.loadSlack);
    if (measured < lo || measured > hi) {
        std::ostringstream os;
        os << fam << " hits " << measured << " outside ["
           << lo << ", " << hi << "] (expected " << t.hits
           << " +- " << t.tol << " +slack " << c.truth.loadSlack
           << ")";
        failCase(c, os.str());
    }
}

} // anonymous namespace

TEST(SpecTruthFuzz, OracleMatchesGroundTruth)
{
    const auto r = qa::forAllSeeds(100, 0x5bec0001, [](qa::Gen &g) {
        const Case c = makeCase(g, 20000, 30000);
        if (c.measured.loads < c.truth.total.loads ||
            c.measured.loads >
                c.truth.total.loads + c.truth.loadSlack) {
            std::ostringstream os;
            os << "loads " << c.measured.loads << " outside ["
               << c.truth.total.loads << ", "
               << c.truth.total.loads + c.truth.loadSlack << "]";
            failCase(c, os.str());
        }
        checkFamily(c, "lvp", double(c.measured.lvp),
                    c.truth.total.lvp);
        checkFamily(c, "sap", double(c.measured.sap),
                    c.truth.total.sap);
        checkFamily(c, "ctx1", double(c.measured.ctx1),
                    c.truth.total.ctx);
        checkFamily(c, "cap1", double(c.measured.cap1),
                    c.truth.total.cap);
        return true;
    });
    EXPECT_TRUE(r.ok) << r.describe();
}

TEST(SpecTruthFuzz, CompositeNeverBeatsOracleUnion)
{
    const auto r = qa::forAllSeeds(30, 0x5bec0002, [](qa::Gen &g) {
        const Case c = makeCase(g, 20000, 20000);

        auto cfg = vp::CompositeConfig::bestOf(1024);
        cfg.epochInstrs = 5000; // exercise the AM/fusion machinery
        vp::CompositePredictor pred(cfg);
        cvp1::PipelineVpAdapter adapter(pred);
        const auto cs = cvp1::runChampionship(c.ops, adapter);

        // The composite's CVP hashes branch-path history rather than
        // value history, so it is not strictly dominated by any one
        // family — but the five-family union plus a small slack
        // bounds everything a real table-based predictor can know.
        const double bound = double(c.measured.unionHits) +
                             0.03 * double(cs.eligibleLoads) + 10.0;
        if (double(cs.correct) > bound) {
            std::ostringstream os;
            os << "composite correct " << cs.correct
               << " beats oracle union bound " << bound << " (union "
               << c.measured.unionHits << " of "
               << c.measured.loads << " loads)";
            failCase(c, os.str());
        }
        return true;
    });
    EXPECT_TRUE(r.ok) << r.describe();
}
