/**
 * @file
 * Legacy-kernel equivalence gate for the kernel-spec DSL (`ctest -L
 * differential`): a handful of the hand-written suite kernels are
 * re-expressed as KernelSpecs, and each pair must produce a
 * byte-identical MicroOp stream — same PCs, op classes, registers,
 * addresses, values, branch targets — across seeds and trace
 * lengths, including mid-iteration truncation points. This pins the
 * DSL's emission contract (register roles, prologue re-emission,
 * site first-use order, init RNG draw order) to the kernels the
 * paper results were produced with.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "trace/kernel_spec.hh"
#include "trace/workloads.hh"

using namespace lvpsim;
using trace::MicroOp;

namespace
{

/** name -> spec re-expression of the legacy kernel. */
struct Pair
{
    const char *legacy;
    const char *spec;
};

const Pair kPairs[] = {
    {"const_table",
     "[base=0x30000000]const(),const(v=0x1111,glue=xor),"
     "const(v=0x1222),const(v=0x1333,glue=xor),const(v=0x1444),"
     "const(v=0x1555,glue=xor),const(v=0x1666),const(v=0x1777)"},
    {"stream_sum",
     "[iters=32768,base=0x20000000]"
     "stride(wset=32768,fill=rng,glue=fadd)"},
    {"pointer_chase", "[base=0x40000000]chase(order=shuffle)"},
};

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.cls == b.cls && a.dst == b.dst &&
           a.src == b.src && a.effAddr == b.effAddr &&
           a.memSize == b.memSize && a.memValue == b.memValue &&
           a.exclusiveMem == b.exclusiveMem && a.taken == b.taken &&
           a.target == b.target;
}

class SpecEquivalence
    : public testing::TestWithParam<std::tuple<Pair, std::uint64_t>>
{};

TEST_P(SpecEquivalence, ByteIdenticalStream)
{
    const Pair &p = std::get<0>(GetParam());
    const std::uint64_t seed = std::get<1>(GetParam());

    std::string err;
    const trace::KernelSpec ks = trace::parseKernelSpec(p.spec, &err);
    ASSERT_TRUE(err.empty()) << p.spec << ": " << err;
    const trace::SpecKernel spec(ks);
    const auto &legacy =
        trace::WorkloadRegistry::instance().find(p.legacy);

    // Full length plus truncation points that cut prologues and
    // iterations mid-way (70001 lands inside an iteration for all
    // three kernels).
    for (std::size_t len : {std::size_t(50000), std::size_t(70001),
                            std::size_t(7), std::size_t(1)}) {
        const auto want = legacy.make()->generate(len, seed);
        const auto got = spec.generate(len, seed);
        ASSERT_EQ(want.size(), got.size())
            << p.legacy << " len=" << len;
        for (std::size_t i = 0; i < want.size(); ++i)
            ASSERT_TRUE(sameOp(want[i], got[i]))
                << p.legacy << " len=" << len << " op " << i
                << ": pc 0x" << std::hex << want[i].pc << " vs 0x"
                << got[i].pc;
    }
}

INSTANTIATE_TEST_SUITE_P(
    LegacyKernels, SpecEquivalence,
    testing::Combine(testing::ValuesIn(kPairs),
                     testing::Values(std::uint64_t(1),
                                     std::uint64_t(42))),
    [](const testing::TestParamInfo<SpecEquivalence::ParamType> &i) {
        return std::string(std::get<0>(i.param).legacy) + "_seed" +
               std::to_string(std::get<1>(i.param));
    });

} // anonymous namespace
