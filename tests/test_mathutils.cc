#include <gtest/gtest.h>

#include "common/mathutils.hh"

using namespace lvpsim;

TEST(MathUtils, ArithMean)
{
    EXPECT_DOUBLE_EQ(arithMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithMean({5.0}), 5.0);
}

TEST(MathUtils, GeoMean)
{
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(MathUtils, GeoMeanLessThanArithMean)
{
    const std::vector<double> xs{1.0, 2.0, 10.0};
    EXPECT_LT(geoMean(xs), arithMean(xs));
}

TEST(MathUtils, Speedup)
{
    EXPECT_NEAR(speedup(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(speedup(1.0, 2.0), -0.5, 1e-12);
}

TEST(MathUtils, GeoMeanRejectsNonPositive)
{
    EXPECT_DEATH((void)geoMean({1.0, 0.0}), "positive");
}

TEST(MathUtils, MeanRejectsEmpty)
{
    EXPECT_DEATH((void)arithMean({}), "empty");
}
