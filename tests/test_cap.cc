#include <gtest/gtest.h>

#include "core/cap.hh"

using namespace lvpsim;
using namespace lvpsim::vp;
using pipe::LoadOutcome;
using pipe::LoadProbe;

namespace
{

std::uint64_t nextToken = 1;

class CapDriver
{
  public:
    explicit CapDriver(std::size_t entries) : cap(entries, 1) {}

    /**
     * One load at @p pc, preceded by a branch path that forms the
     * context, loading from @p ea.
     */
    ComponentPrediction
    loadOnPath(Addr pc, Addr ea, const std::vector<Addr> &path,
               unsigned size = 8)
    {
        for (Addr bp : path)
            cap.notifyBranch(bp, true, bp + 0x100);
        LoadProbe p;
        p.pc = pc;
        p.token = nextToken++;
        const auto cp = cap.lookup(p);
        LoadOutcome o;
        o.pc = pc;
        o.token = p.token;
        o.effAddr = ea;
        o.size = size;
        o.value = ea ^ 0xabcd;
        cap.train(o);
        return cp;
    }

    Cap cap;
};

} // anonymous namespace

TEST(Cap, NoPredictionWhenCold)
{
    Cap c(256, 1);
    LoadProbe p;
    p.pc = 0x100;
    p.token = nextToken++;
    EXPECT_FALSE(c.lookup(p).confident);
    c.abandon(p.token);
}

TEST(Cap, LearnsAfterFourObservations)
{
    // CAP has the lowest threshold: 4 consecutive observations of a
    // given path/PC (Table IV). The {1, 1, 0.5} FPC vector needs at
    // least 3 trains, typically ~4.
    CapDriver d(256);
    const std::vector<Addr> path{0x700, 0x704, 0x708};
    int when = -1;
    for (int i = 0; i < 40; ++i) {
        const auto cp = d.loadOnPath(0x100, 0x5000, path);
        if (cp.confident && when < 0)
            when = i;
    }
    ASSERT_GE(when, 3);
    EXPECT_LE(when, 12);
}

TEST(Cap, PredictsTheLearnedAddress)
{
    CapDriver d(256);
    const std::vector<Addr> path{0x700, 0x704};
    for (int i = 0; i < 30; ++i)
        d.loadOnPath(0x100, 0x5000, path);
    const auto cp = d.loadOnPath(0x100, 0x5000, path);
    ASSERT_TRUE(cp.confident);
    EXPECT_TRUE(cp.pred.isAddress());
    EXPECT_EQ(cp.pred.addr, 0x5000u);
    EXPECT_EQ(cp.pred.component, pipe::ComponentId::CAP);
}

TEST(Cap, DistinguishesControlPaths)
{
    // Same static load, two different load paths, two different
    // addresses: both must be predicted correctly by context.
    CapDriver d(256);
    const std::vector<Addr> path_a{0x700, 0x704, 0x708, 0x70c};
    const std::vector<Addr> path_b{0x800, 0x804, 0x808, 0x80c};
    for (int i = 0; i < 40; ++i) {
        d.loadOnPath(0x100, 0x5000, path_a);
        d.loadOnPath(0x100, 0x6000, path_b);
    }
    EXPECT_EQ(d.loadOnPath(0x100, 0x5000, path_a).pred.addr,
              0x5000u);
    EXPECT_EQ(d.loadOnPath(0x100, 0x6000, path_b).pred.addr,
              0x6000u);
}

TEST(Cap, AddressChangeResetsConfidence)
{
    CapDriver d(256);
    const std::vector<Addr> path{0x700};
    for (int i = 0; i < 30; ++i)
        d.loadOnPath(0x100, 0x5000, path);
    ASSERT_TRUE(d.loadOnPath(0x100, 0x5000, path).confident);
    d.loadOnPath(0x100, 0x9000, path); // trains the new address
    EXPECT_FALSE(d.loadOnPath(0x100, 0x9000, path).confident);
}

TEST(Cap, SizeChangeResetsConfidence)
{
    CapDriver d(256);
    const std::vector<Addr> path{0x700};
    for (int i = 0; i < 30; ++i)
        d.loadOnPath(0x100, 0x5000, path, 8);
    ASSERT_TRUE(d.loadOnPath(0x100, 0x5000, path, 8).confident);
    d.loadOnPath(0x100, 0x5000, path, 4);
    EXPECT_FALSE(d.loadOnPath(0x100, 0x5000, path, 4).confident);
}

TEST(Cap, StorageMatchesPaper67BitsPerEntry)
{
    Cap c(1024, 1);
    EXPECT_EQ(c.storageBits(), 1024ull * 67);
    EXPECT_EQ(c.entryBits(), 67u);
}

TEST(Cap, AbandonDropsSnapshot)
{
    Cap c(256, 1);
    LoadProbe p;
    p.pc = 0x100;
    p.token = nextToken++;
    c.lookup(p);
    c.abandon(p.token);
    LoadOutcome o;
    o.pc = 0x100;
    o.token = p.token;
    o.effAddr = 0x5000;
    o.size = 8;
    c.train(o); // no snapshot: must be a no-op
    SUCCEED();
}

TEST(Cap, DonorLifecycle)
{
    CapDriver d(256);
    const std::vector<Addr> path{0x700};
    for (int i = 0; i < 30; ++i)
        d.loadOnPath(0x100, 0x5000, path);
    ASSERT_TRUE(d.loadOnPath(0x100, 0x5000, path).confident);
    d.cap.donateTable();
    EXPECT_FALSE(d.loadOnPath(0x100, 0x5000, path).confident);
    EXPECT_TRUE(d.cap.isDonor());
    d.cap.unfuse();
    EXPECT_FALSE(d.cap.isDonor());
}
