#include <gtest/gtest.h>

#include "trace/asm_emitter.hh"

using namespace lvpsim;
using namespace lvpsim::trace;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3;

} // anonymous namespace

TEST(AsmEmitter, SiteAssignsStablePcs)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    const Addr pc1 = a.pcOf("alpha");
    const Addr pc2 = a.pcOf("beta");
    EXPECT_NE(pc1, pc2);
    EXPECT_EQ(a.pcOf("alpha"), pc1);
    EXPECT_EQ(pc1 % 4, 0u);
}

TEST(AsmEmitter, SamePcAcrossDynamicInstances)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("x", r1, 1);
    a.imm("x", r1, 2);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].pc, out[1].pc);
}

TEST(AsmEmitter, AluComputesValues)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("a", r1, 10);
    a.imm("b", r2, 32);
    a.add("c", r3, r1, r2);
    EXPECT_EQ(a.reg(r3), 42u);
    a.sub("d", r3, r2, r1);
    EXPECT_EQ(a.reg(r3), 22u);
    a.mul("e", r3, r1, r2);
    EXPECT_EQ(a.reg(r3), 320u);
    a.div("f", r3, r2, r1);
    EXPECT_EQ(a.reg(r3), 3u);
    a.xorOp("g", r3, r1, r1);
    EXPECT_EQ(a.reg(r3), 0u);
    a.shl("h", r3, r1, 2);
    EXPECT_EQ(a.reg(r3), 40u);
    a.shr("i", r3, r1, 1);
    EXPECT_EQ(a.reg(r3), 5u);
}

TEST(AsmEmitter, DivideByZeroYieldsZero)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("a", r1, 10);
    a.imm("z", r2, 0);
    a.div("d", r3, r1, r2);
    EXPECT_EQ(a.reg(r3), 0u);
}

TEST(AsmEmitter, LoadReturnsStoredValue)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("base", r1, 0x10000);
    a.imm("val", r2, 0xabcd);
    a.store("st", r2, r1, 8, 8);
    const Value v = a.load("ld", r3, r1, 8, 8);
    EXPECT_EQ(v, 0xabcdull);
    EXPECT_EQ(a.reg(r3), 0xabcdull);
    // The emitted load op carries the same value and address.
    const MicroOp &ld = out.back();
    EXPECT_EQ(ld.cls, OpClass::Load);
    EXPECT_EQ(ld.memValue, 0xabcdull);
    EXPECT_EQ(ld.effAddr, 0x10008ull);
    EXPECT_EQ(ld.memSize, 8);
}

TEST(AsmEmitter, IndexedAddressing)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("base", r1, 0x20000);
    a.imm("idx", r2, 0x30);
    a.load("ld", r3, r1, 8, 4, r2);
    EXPECT_EQ(out.back().effAddr, 0x20038ull);
    // Both registers are recorded as sources.
    EXPECT_EQ(out.back().src[0], r1);
    EXPECT_EQ(out.back().src[1], r2);
}

TEST(AsmEmitter, ExclusiveLoadsFlagged)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.imm("base", r1, 0x30000);
    a.loadExclusive("ldx", r2, r1, 0, 8);
    EXPECT_TRUE(out.back().exclusiveMem);
    EXPECT_FALSE(out.back().isPredictableLoad());
    a.load("ld", r2, r1, 0, 8);
    EXPECT_TRUE(out.back().isPredictableLoad());
}

TEST(AsmEmitter, BranchDirectionsAndTargets)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    const Addr target = a.pcOf("top");
    a.branch("br", true, "top");
    EXPECT_TRUE(out.back().taken);
    EXPECT_EQ(out.back().target, target);
    a.branch("br", false, "top");
    EXPECT_FALSE(out.back().taken);
    EXPECT_EQ(out.back().target, out.back().pc + 4);
}

TEST(AsmEmitter, CallRetPairing)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.call("c1", "fn");
    const Addr ret_target = out.back().pc + 4;
    a.nop("fn");
    a.ret("r1s");
    EXPECT_EQ(out.back().cls, OpClass::Ret);
    EXPECT_EQ(out.back().target, ret_target);
}

TEST(AsmEmitter, NestedCallsUnwindInOrder)
{
    std::vector<MicroOp> out;
    Asm a(out, 100, 1);
    a.call("c1", "f1");
    const Addr ret1 = out.back().pc + 4;
    a.call("c2", "f2");
    const Addr ret2 = out.back().pc + 4;
    a.ret("ra");
    EXPECT_EQ(out.back().target, ret2);
    a.ret("rb");
    EXPECT_EQ(out.back().target, ret1);
}

TEST(AsmEmitter, StopsAtMaxOps)
{
    std::vector<MicroOp> out;
    Asm a(out, 5, 1);
    for (int i = 0; i < 20; ++i)
        a.nop("n");
    EXPECT_EQ(out.size(), 5u);
    EXPECT_TRUE(a.done());
}

TEST(AsmEmitter, DeterministicRngFromSeed)
{
    std::vector<MicroOp> o1, o2;
    Asm a1(o1, 10, 99), a2(o2, 10, 99);
    EXPECT_EQ(a1.rng().next(), a2.rng().next());
}

TEST(AsmEmitter, IndirectBranchRecordsTarget)
{
    std::vector<MicroOp> out;
    Asm a(out, 10, 1);
    const Addr h = a.pcOf("handler3");
    a.indirect("dispatch", h, r1);
    EXPECT_EQ(out.back().cls, OpClass::IndirBr);
    EXPECT_EQ(out.back().target, h);
    EXPECT_TRUE(out.back().taken);
}

TEST(AsmEmitter, StoreRecordsDataAndAddressDeps)
{
    std::vector<MicroOp> out;
    Asm a(out, 10, 1);
    a.imm("b", r1, 0x40000);
    a.imm("v", r2, 7);
    a.store("st", r2, r1, 0, 4);
    const MicroOp &st = out.back();
    EXPECT_EQ(st.cls, OpClass::Store);
    EXPECT_EQ(st.src[0], r1);
    EXPECT_EQ(st.src[1], r2);
    EXPECT_EQ(st.memValue, 7u);
}
