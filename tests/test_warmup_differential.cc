/**
 * @file
 * Differential gate for warmup checkpointing: the checkpoint-restore
 * sweep engine (SuiteRunner -> runWorkload -> CheckpointCache /
 * BaselineCache) must produce counter-identical SimStats to a single
 * core that warms up and measures inline via runTrace(), for every
 * (workload, predictor configuration) pair, serially and with a
 * parallel runner.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/composite.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

std::vector<std::pair<std::string, std::uint64_t>>
flat(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

const std::vector<std::string> &
testWorkloads()
{
    // Deliberately diverse: streaming loads, pointer chasing, and
    // call-heavy control flow stress different checkpointed state
    // (prefetcher, memdep, RAS/ITTAGE).
    static const std::vector<std::string> ws = {
        "stream_sum", "pointer_chase", "call_tree", "hash_probe"};
    return ws;
}

std::vector<std::pair<std::string, sim::PredictorFactory>>
testConfigs()
{
    std::vector<std::pair<std::string, sim::PredictorFactory>> out;
    out.emplace_back("lvp-1024", [] {
        return vp::makeSinglePredictor(pipe::ComponentId::LVP, 1024);
    });
    out.emplace_back("cap-512", [] {
        return vp::makeSinglePredictor(pipe::ComponentId::CAP, 512);
    });
    out.emplace_back("composite-1024", [] {
        auto cfg = vp::CompositeConfig::bestOf(1024);
        cfg.epochInstrs = 2000;
        return std::make_unique<vp::CompositePredictor>(cfg);
    });
    return out;
}

} // anonymous namespace

class WarmupDifferential : public testing::TestWithParam<std::size_t>
{};

TEST_P(WarmupDifferential, CheckpointedSweepMatchesInlineWarmup)
{
    const std::size_t jobs = GetParam();
    sim::RunConfig rc;
    rc.maxInstrs = 4000;
    rc.warmupInstrs = 8000;

    const auto &workloads = testWorkloads();
    const auto configs = testConfigs();

    // Reference: inline warmup + measurement, one core per pair.
    std::vector<std::vector<pipe::SimStats>> ref(configs.size());
    std::vector<pipe::SimStats> ref_base;
    for (const auto &w : workloads) {
        auto ops = sim::TraceCache::instance().get(
            w, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
        pipe::NullPredictor none;
        ref_base.push_back(sim::runTrace(*ops, &none, rc));
        for (std::size_t c = 0; c < configs.size(); ++c) {
            auto vp = configs[c].second();
            ref[c].push_back(sim::runTrace(*ops, vp.get(), rc));
        }
    }

    // Under test: the checkpointing sweep engine, from cold caches.
    sim::CheckpointCache::instance().clear();
    sim::BaselineCache::instance().clear();
    sim::SuiteRunner runner(workloads, rc, jobs);
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto res =
            runner.run(configs[c].first, configs[c].second);
        ASSERT_EQ(res.rows.size(), workloads.size());
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            EXPECT_EQ(flat(ref_base[w]), flat(res.rows[w].base))
                << configs[c].first << "/" << workloads[w]
                << " baseline diverged (jobs=" << jobs << ")";
            EXPECT_EQ(flat(ref[c][w]), flat(res.rows[w].withVp))
                << configs[c].first << "/" << workloads[w]
                << " diverged (jobs=" << jobs << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, WarmupDifferential,
                         testing::Values(std::size_t(1),
                                         std::size_t(4)),
                         [](const auto &info) {
                             return "jobs" +
                                    std::to_string(info.param);
                         });
