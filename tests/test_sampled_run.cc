/**
 * @file
 * Sampled simulation driver (sim/sampled.hh): extrapolation accuracy
 * against full runs, bit-exact determinism, warm-cache reuse of plans
 * and interval checkpoints, and content-hash keying of interval
 * checkpoints for rewritten trace files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/composite.hh"
#include "core/lvp_interface.hh"
#include "sim/experiment.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

sim::RunConfig
sampledRun(std::size_t instrs, std::size_t k, std::size_t len)
{
    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.sampleK = k;
    rc.sampleIntervalLen = len;
    return rc;
}

std::unique_ptr<pipe::LoadValuePredictor>
makeVp()
{
    return std::make_unique<vp::CompositePredictor>(
        vp::CompositeConfig::homogeneous(512));
}

} // anonymous namespace

TEST(SampledRun, ExtrapolationTracksFullRunWithinBound)
{
    const char *workload = "pointer_chase";
    auto rc = sampledRun(200000, 6, 20000);

    auto vpS = makeVp();
    const auto sampled =
        sim::runSampledWorkload(workload, vpS.get(), rc);
    ASSERT_GT(sampled.sampleK, 0u);
    ASSERT_GT(sampled.sampleError, 0.0);

    auto full = rc;
    full.sampleK = 0;
    auto vpF = makeVp();
    const auto ref = sim::runWorkload(workload, vpF.get(), full);

    const double refIpc = ref.ipc();
    ASSERT_GT(refIpc, 0.0);
    const double relIpcErr =
        std::abs(sampled.stats.ipc() - refIpc) / refIpc;
    EXPECT_LE(relIpcErr, sampled.sampleError)
        << "sampled IPC " << sampled.stats.ipc() << " vs full "
        << refIpc;
    EXPECT_LE(std::abs(sampled.stats.accuracy() - ref.accuracy()),
              sampled.sampleError);
    // The extrapolated instruction count reconstructs the trace size.
    const double instErr =
        std::abs(double(sampled.stats.instructions) -
                 double(ref.instructions)) /
        double(ref.instructions);
    EXPECT_LE(instErr, 0.05);
}

TEST(SampledRun, BitIdenticalAcrossRepeats)
{
    const char *workload = "hash_probe";
    const auto rc = sampledRun(100000, 4, 10000);

    auto vp1 = makeVp();
    const auto a = sim::runSampledWorkload(workload, vp1.get(), rc);
    auto vp2 = makeVp();
    const auto b = sim::runSampledWorkload(workload, vp2.get(), rc);

    EXPECT_TRUE(pipe::statsEqual(a.stats, b.stats));
    EXPECT_EQ(a.sampleError, b.sampleError);
    EXPECT_EQ(a.sampleK, b.sampleK);
}

TEST(SampledRun, WarmRerunHitsPlanAndCheckpointCaches)
{
    const char *workload = "stream_sum";
    const auto rc = sampledRun(120000, 4, 15000);

    auto vp1 = makeVp();
    (void)sim::runSampledWorkload(workload, vp1.get(), rc);

    const auto plans0 = sim::PlanCache::instance().generations();
    const auto ckpts0 =
        sim::CheckpointCache::instance().generations();
    auto vp2 = makeVp();
    (void)sim::runSampledWorkload(workload, vp2.get(), rc);
    EXPECT_EQ(sim::PlanCache::instance().generations(), plans0)
        << "warm rerun rebuilt the sample plan";
    EXPECT_EQ(sim::CheckpointCache::instance().generations(), ckpts0)
        << "warm rerun rebuilt interval checkpoints";
}

TEST(SampledRun, ShortTraceDegeneratesToSingleInterval)
{
    // Trace shorter than one interval: the plan has one all-covering
    // representative and the "sampled" run is exact.
    const auto rc = sampledRun(5000, 4, 100000);
    auto vpS = makeVp();
    const auto sampled =
        sim::runSampledWorkload("memset_loop", vpS.get(), rc);
    EXPECT_EQ(sampled.sampleK, 1u);

    auto full = rc;
    full.sampleK = 0;
    auto vpF = makeVp();
    const auto ref = sim::runWorkload("memset_loop", vpF.get(), full);
    EXPECT_TRUE(pipe::statsEqual(sampled.stats, ref));
}

TEST(SampledRun, SuiteRunnerPropagatesSampleMetadata)
{
    const auto rc = sampledRun(60000, 3, 10000);
    sim::SuiteRunner runner({"pointer_chase", "stream_sum"}, rc, 2);
    const auto res = runner.run("sampled", [] { return makeVp(); });
    ASSERT_EQ(res.rows.size(), 2u);
    for (const auto &row : res.rows) {
        EXPECT_TRUE(row.sampled);
        EXPECT_GT(row.sampleK, 0u);
        EXPECT_EQ(row.intervalLength, 10000u);
        EXPECT_GT(row.sampleError, 0.0);
    }
}

TEST(SampledRun, RewrittenTraceFileCannotAliasIntervalCheckpoints)
{
    // Record two different traces to the SAME path. The caches key
    // file-backed traces on FNV-1a content identity, so rewriting the
    // file must produce fresh interval checkpoints, not stale hits.
    const std::string path =
        "/tmp/lvpsim_test_sampled_rewrite.lvpt";
    const std::string spec = "lvpt:" + path;
    const auto rc = sampledRun(30000, 3, 5000);

    const auto first =
        trace::generateWorkload("stream_sum", 30000, 1);
    ASSERT_TRUE(trace::saveTraceFile(path, first));
    auto vp1 = makeVp();
    const auto before =
        sim::runSampledWorkload(spec, vp1.get(), rc);

    const auto rewritten =
        trace::generateWorkload("pointer_chase", 30000, 1);
    ASSERT_TRUE(trace::saveTraceFile(path, rewritten));
    // TraceCache keys on the spec string (it would hand back the old
    // bytes); the checkpoint/plan caches must NOT need this clear —
    // their keys embed the content hash.
    sim::TraceCache::instance().clear();

    const auto ckpts0 =
        sim::CheckpointCache::instance().generations();
    const auto plans0 = sim::PlanCache::instance().generations();
    auto vp2 = makeVp();
    const auto after = sim::runSampledWorkload(spec, vp2.get(), rc);
    EXPECT_GT(sim::CheckpointCache::instance().generations(), ckpts0)
        << "rewritten trace aliased stale interval checkpoints";
    EXPECT_GT(sim::PlanCache::instance().generations(), plans0)
        << "rewritten trace aliased a stale sample plan";
    EXPECT_FALSE(pipe::statsEqual(before.stats, after.stats))
        << "two different traces reported identical stats";
    std::remove(path.c_str());
}
