/**
 * @file
 * The persistent checkpoint store (sim/checkpoint_store.hh):
 * corruption robustness (version bumps, truncation, flipped bytes,
 * foreign keys are all misses, never crashes), LRU trimming, claim
 * timeouts, and the L1/L2 layering — CheckpointCache, BaselineCache
 * and PlanCache must serve from disk across an in-memory clear()
 * without re-simulating, bit-identically to the inline build.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/binio.hh"
#include "common/mmap_file.hh"
#include "core/composite.hh"
#include "core/lvp_interface.hh"
#include "pipeline/snapshot_io.hh"
#include "sim/checkpoint_store.hh"
#include "sim/experiment.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"

using namespace lvpsim;

namespace
{

std::vector<std::pair<std::string, std::uint64_t>>
flat(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

/** Per-test scratch directory, wiped on entry and exit. */
class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = std::string("/tmp/lvpsim_store_gtest_") + info->name();
        wipe();
        ASSERT_TRUE(makeDirs(dir));
    }

    void TearDown() override
    {
        // Never leave the process-wide store pointed at a dead dir.
        sim::CheckpointStore::instance().configure("", 0);
        wipe();
    }

    void wipe()
    {
        for (const DirEntry &e : listDir(dir))
            removeFile(dir + "/" + e.name);
        removeFile(dir);
    }

    std::vector<DirEntry> entries() const { return listDir(dir); }

    std::string dir;
};

/** Publish `payload` under `key` and return the entry's path. */
std::string
publishBytes(sim::CheckpointStore &store, const std::string &key,
             const std::vector<std::uint8_t> &payload)
{
    store.publish(key, [&](BinWriter &w) {
        w.bytes(payload.data(), payload.size());
    });
    return store.entryPath(key);
}

/** tryLoad that captures the raw payload bytes on success. */
bool
loadBytes(sim::CheckpointStore &store, const std::string &key,
          std::vector<std::uint8_t> *out = nullptr)
{
    return store.tryLoad(key, [&](BinReader &r) {
        std::vector<std::uint8_t> got(r.remaining());
        r.bytes(got.data(), got.size());
        if (!r.ok() || !r.atEnd())
            return false;
        if (out)
            *out = std::move(got);
        return true;
    });
}

void
rewriteFile(const std::string &path,
            const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             std::streamsize(bytes.size()));
    ASSERT_TRUE(os.good());
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    MappedFile mf = MappedFile::open(path);
    std::vector<std::uint8_t> out(mf.size());
    if (mf.valid())
        std::copy(mf.data(), mf.data() + mf.size(), out.begin());
    return out;
}

const std::vector<std::uint8_t> kPayload = {1, 2, 3, 4, 5,
                                            6, 7, 8, 9};

} // anonymous namespace

TEST_F(StoreTest, DisabledStoreIsInertButBuilds)
{
    sim::CheckpointStore store; // default: no directory
    EXPECT_FALSE(store.enabled());
    EXPECT_EQ(store.entryPath("k"), "");
    EXPECT_FALSE(loadBytes(store, "k"));

    bool built = false;
    store.fetchOrBuild(
        "k", [](BinReader &) { return true; },
        [&](BinWriter &) { built = true; });
    EXPECT_TRUE(built) << "disabled store must still run the build";
}

TEST_F(StoreTest, PublishThenLoadRoundTrips)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    ASSERT_TRUE(store.enabled());

    publishBytes(store, "some:key", kPayload);
    std::vector<std::uint8_t> got;
    EXPECT_TRUE(loadBytes(store, "some:key", &got));
    EXPECT_EQ(got, kPayload);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);
    EXPECT_GE(store.seconds(), 0.0);
}

TEST_F(StoreTest, VersionBumpIsMiss)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    const auto path = publishBytes(store, "k", kPayload);

    // The format version is the u32 right after the magic; a bumped
    // store format must invalidate, not misparse, old entries.
    auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), 8u);
    bytes[4] ^= 0xff;
    rewriteFile(path, bytes);
    EXPECT_FALSE(loadBytes(store, "k"));
    EXPECT_EQ(store.misses(), 1u);
}

TEST_F(StoreTest, EveryTruncationIsMiss)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    const auto path = publishBytes(store, "k", kPayload);
    const auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), kPayload.size());

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        rewriteFile(path,
                    {bytes.begin(), bytes.begin() + long(len)});
        EXPECT_FALSE(loadBytes(store, "k")) << "prefix " << len;
    }
    rewriteFile(path, bytes);
    EXPECT_TRUE(loadBytes(store, "k"));
}

TEST_F(StoreTest, AnyFlippedByteIsMiss)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    const auto path = publishBytes(store, "k", kPayload);
    const auto bytes = readFile(path);

    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto bad = bytes;
        bad[i] ^= 0x01;
        rewriteFile(path, bad);
        EXPECT_FALSE(loadBytes(store, "k")) << "byte " << i;
    }
    rewriteFile(path, bytes);
    EXPECT_TRUE(loadBytes(store, "k"));
}

TEST_F(StoreTest, EntryServedUnderForeignKeyIsMiss)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    const auto path = publishBytes(store, "key-a", kPayload);

    // A (hypothetical) filename-hash collision must be caught by the
    // full key string stored in the header: serve key-a's bytes at
    // key-b's path and the load must reject them.
    const auto bytes = readFile(path);
    rewriteFile(store.entryPath("key-b"), bytes);
    EXPECT_FALSE(loadBytes(store, "key-b"));
    EXPECT_TRUE(loadBytes(store, "key-a"));
}

TEST_F(StoreTest, LruTrimKeepsStoreUnderBudget)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);
    const auto path = publishBytes(store, "probe", kPayload);
    const std::uint64_t entryBytes =
        std::uint64_t(readFile(path).size());
    removeFile(path);

    // Budget for two entries (the keys share a payload size).
    sim::CheckpointStore budgeted;
    budgeted.configure(dir, 2 * entryBytes + 1);
    publishBytes(budgeted, "k1", kPayload);
    publishBytes(budgeted, "k2", kPayload);
    publishBytes(budgeted, "k3", kPayload);

    std::uint64_t total = 0;
    for (const DirEntry &e : entries())
        total += e.sizeBytes;
    EXPECT_LE(total, 2 * entryBytes + 1);
    EXPECT_LE(entries().size(), 2u);
    EXPECT_GE(entries().size(), 1u);
}

TEST_F(StoreTest, FetchOrBuildIsBuildOnceAcrossInstances)
{
    sim::CheckpointStore first;
    first.configure(dir, 0);
    int builds = 0;
    const auto decode = [](BinReader &r) {
        return r.u32() == 42 && r.ok() && r.atEnd();
    };
    const auto build = [&](BinWriter &w) {
        ++builds;
        w.u32(42);
    };
    first.fetchOrBuild("shared", decode, build);
    EXPECT_EQ(builds, 1);

    // A second store over the same directory — a stand-in for a
    // second process — must hit the published entry, not rebuild.
    sim::CheckpointStore second;
    second.configure(dir, 0);
    second.fetchOrBuild("shared", decode, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(second.hits(), 1u);
}

TEST_F(StoreTest, UnresolvableClaimDegradesToLocalBuild)
{
    sim::CheckpointStore store;
    store.configure(dir, 0);

    // Park a live claim on the key with no owner ever publishing.
    // With a short poll budget the loser must fall back to building
    // locally (duplicate work, never a wedge) and still publish.
    ClaimFile claim =
        ClaimFile::tryAcquire(store.entryPath("k") + ".building");
    ASSERT_TRUE(claim.owned());
    setenv("LVPSIM_STORE_CLAIM_TIMEOUT_MS", "50", 1);
    bool built = false;
    store.fetchOrBuild(
        "k", [](BinReader &r) { return r.u32() == 7 && r.atEnd(); },
        [&](BinWriter &w) {
            built = true;
            w.u32(7);
        });
    unsetenv("LVPSIM_STORE_CLAIM_TIMEOUT_MS");
    EXPECT_TRUE(built);
    EXPECT_TRUE(store.tryLoad("k", [](BinReader &r) {
        return r.u32() == 7 && r.atEnd();
    }));
}

TEST_F(StoreTest, ResolveDirPrecedence)
{
    setenv("LVPSIM_STORE", "/tmp/env-store", 1);
    EXPECT_EQ(sim::CheckpointStore::resolveDir("/cli"), "/cli");
    EXPECT_EQ(sim::CheckpointStore::resolveDir("off"), "");
    EXPECT_EQ(sim::CheckpointStore::resolveDir(""),
              "/tmp/env-store");
    setenv("LVPSIM_STORE", "none", 1);
    EXPECT_EQ(sim::CheckpointStore::resolveDir(""), "");
    unsetenv("LVPSIM_STORE");
    const char *home = std::getenv("HOME");
    if (home && *home)
        EXPECT_EQ(sim::CheckpointStore::resolveDir(""),
                  std::string(home) + "/.cache/lvpsim");
}

namespace
{

sim::RunConfig
warmRc(std::uint64_t seed)
{
    sim::RunConfig rc;
    rc.maxInstrs = 3000;
    rc.warmupInstrs = 5000;
    rc.traceSeed = seed; // distinct seed => distinct cache keys
    return rc;
}

} // anonymous namespace

TEST_F(StoreTest, CheckpointCacheServesFromDiskAcrossClear)
{
    auto &store = sim::CheckpointStore::instance();
    store.configure(dir, 0);
    auto &cache = sim::CheckpointCache::instance();
    cache.clear();

    const auto rc = warmRc(101);
    const auto gen0 = cache.generations();
    const auto built = cache.get("stream_sum", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u);

    cache.clear(); // drop L1; the disk entry must satisfy the re-get
    const auto restored = cache.get("stream_sum", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u)
        << "disk hit re-simulated the warmup";
    EXPECT_EQ(restored->warmupInstrs, built->warmupInstrs);

    // The restored snapshot is bit-identical to the built one.
    BinWriter a, b;
    pipe::serializeSnapshot(a, built->core);
    pipe::serializeSnapshot(b, restored->core);
    EXPECT_EQ(a.buffer(), b.buffer());
}

TEST_F(StoreTest, BaselineCacheServesFromDiskAcrossClear)
{
    auto &store = sim::CheckpointStore::instance();
    store.configure(dir, 0);
    auto &cache = sim::BaselineCache::instance();
    cache.clear();
    sim::CheckpointCache::instance().clear();

    const auto rc = warmRc(102);
    const auto gen0 = cache.generations();
    const auto built = cache.get("hash_probe", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u);

    cache.clear();
    sim::CheckpointCache::instance().clear();
    const auto restored = cache.get("hash_probe", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u)
        << "disk hit re-simulated the baseline";
    EXPECT_EQ(flat(restored->stats), flat(built->stats));
}

TEST_F(StoreTest, PlanCacheServesFromDiskAcrossClear)
{
    auto &store = sim::CheckpointStore::instance();
    store.configure(dir, 0);
    auto &cache = sim::PlanCache::instance();
    cache.clear();

    sim::RunConfig rc;
    rc.maxInstrs = 60000;
    rc.sampleK = 3;
    rc.sampleIntervalLen = 10000;
    rc.traceSeed = 103;

    const auto gen0 = cache.generations();
    const auto built = cache.get("pointer_chase", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u);

    cache.clear();
    const auto restored = cache.get("pointer_chase", rc);
    EXPECT_EQ(cache.generations() - gen0, 1u)
        << "disk hit re-profiled the trace";
    ASSERT_EQ(restored->reps.size(), built->reps.size());
    for (std::size_t i = 0; i < built->reps.size(); ++i) {
        EXPECT_EQ(restored->reps[i].interval,
                  built->reps[i].interval);
        EXPECT_EQ(restored->reps[i].weightInstructions,
                  built->reps[i].weightInstructions);
        EXPECT_EQ(restored->reps[i].clusterSize,
                  built->reps[i].clusterSize);
    }
    EXPECT_EQ(restored->assignment, built->assignment);
    EXPECT_EQ(restored->intervalLen, built->intervalLen);
    EXPECT_EQ(restored->totalInstructions,
              built->totalInstructions);
}

TEST_F(StoreTest, WarmDiskSuiteRunMatchesColdInlineRun)
{
    // The acceptance differential: a suite computed cold (inline
    // warmup, store off) must match one served warm from disk, at
    // --jobs 1 and --jobs 4.
    const std::vector<std::string> suite = {"stream_sum",
                                            "pointer_chase",
                                            "hash_probe"};
    const auto rc = warmRc(104);
    const auto makeVp = [] {
        return vp::makeSinglePredictor(pipe::ComponentId::LVP, 512);
    };

    auto clearAll = [] {
        sim::CheckpointCache::instance().clear();
        sim::BaselineCache::instance().clear();
        sim::PlanCache::instance().clear();
    };

    sim::CheckpointStore::instance().configure("", 0);
    clearAll();
    sim::SuiteRunner cold(suite, rc, 1);
    const auto ref = cold.run("lvp", makeVp);

    // Populate the store, then serve two fresh "processes" from it.
    sim::CheckpointStore::instance().configure(dir, 0);
    clearAll();
    sim::SuiteRunner warmup(suite, rc, 2);
    (void)warmup.run("lvp", makeVp);

    for (std::size_t jobs : {std::size_t(1), std::size_t(4)}) {
        clearAll();
        sim::CheckpointStore::instance().resetCounters();
        sim::SuiteRunner warm(suite, rc, jobs);
        const auto got = warm.run("lvp", makeVp);
        EXPECT_GT(sim::CheckpointStore::instance().hits(), 0u)
            << "jobs " << jobs << ": warm run never touched disk";
        ASSERT_EQ(got.rows.size(), ref.rows.size());
        for (std::size_t i = 0; i < ref.rows.size(); ++i) {
            EXPECT_EQ(flat(got.rows[i].base), flat(ref.rows[i].base))
                << "jobs " << jobs << " row " << i;
            EXPECT_EQ(flat(got.rows[i].withVp),
                      flat(ref.rows[i].withVp))
                << "jobs " << jobs << " row " << i;
        }
    }
}

TEST_F(StoreTest, SequentialOverlappingBatchesTraverseGapsOnce)
{
    // Regression for the interval-claim redesign: batch B's indices
    // extend past batch A's, so B must resume from A's cursor
    // position instead of re-fast-forwarding from zero.
    sim::CheckpointStore::instance().configure("", 0);
    auto &cache = sim::CheckpointCache::instance();
    cache.clear();

    sim::RunConfig rc;
    rc.maxInstrs = 50000;
    rc.traceSeed = 105;

    const auto ff0 = cache.ffInstructions();
    (void)cache.getIntervals("stream_sum", rc, {10000});
    EXPECT_EQ(cache.ffInstructions() - ff0, 10000u);
    (void)cache.getIntervals("stream_sum", rc, {10000, 20000});
    EXPECT_EQ(cache.ffInstructions() - ff0, 20000u)
        << "overlapping batch re-traversed the shared gap";
}

TEST_F(StoreTest, ConcurrentOverlappingBatchesShareTheCursor)
{
    sim::CheckpointStore::instance().configure("", 0);
    auto &cache = sim::CheckpointCache::instance();
    cache.clear();

    sim::RunConfig rc;
    rc.maxInstrs = 60000;
    rc.traceSeed = 106;
    // Generate the trace up front so the racing batches contend on
    // the claim/cursor logic, not on trace generation.
    (void)sim::TraceCache::instance().get("hash_probe", rc.maxInstrs,
                                          rc.traceSeed);

    const auto ff0 = cache.ffInstructions();
    const auto gen0 = cache.generations();
    std::vector<sim::CheckpointCache::CheckpointPtr> a, b;
    {
        std::thread ta([&] {
            a = cache.getIntervals("hash_probe", rc, {10000, 30000});
        });
        std::thread tb([&] {
            b = cache.getIntervals("hash_probe", rc,
                                   {10000, 20000, 30000});
        });
        ta.join();
        tb.join();
    }

    // Whatever the interleaving, each index is simulated exactly
    // once. Fast-forward work is bounded by the claim design: the
    // ideal single pass is 30000 instructions; a batch whose claim
    // registration loses the race to the streaming cursor re-covers
    // at most one inter-index gap (10000 here) from the nearest
    // completed checkpoint — never the whole prefix from zero.
    EXPECT_EQ(cache.generations() - gen0, 3u);
    EXPECT_GE(cache.ffInstructions() - ff0, 30000u);
    EXPECT_LE(cache.ffInstructions() - ff0, 40000u);
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[2]);
    for (const auto &c : b)
        ASSERT_NE(c, nullptr);
}
