/**
 * @file
 * Custom main() for the google-benchmark binaries (micro_uarch,
 * micro_predictors) so they accept the harness-wide flags every
 * other bench/ binary takes (see bench_common.hh):
 *
 *   --jobs N|auto  accepted for glob-wide uniformity; microbenchmark
 *                  timing is single-threaded by design, so the value
 *                  only has to parse
 *   --json FILE    mapped onto google-benchmark's native JSON report
 *                  (--benchmark_out=FILE --benchmark_out_format=json;
 *                  NOT the docs/results_schema.md format -- these
 *                  binaries measure wall time, not simulations)
 *   --warmup N     exported as LVPSIM_WARMUP so benchmark fixtures
 *                  that build a RunConfig pick up the warmup length
 *
 *
 * Unrecognized arguments pass through to google-benchmark, so the
 * native --benchmark_* flags keep working.
 */

#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "sim/parallel_executor.hh"

namespace lvpsim
{
namespace bench
{

inline int
microbenchMain(int argc, char **argv, const char *tag)
{
    std::vector<std::string> fwd;
    fwd.emplace_back(argc > 0 ? argv[0] : tag);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            std::size_t jobs = 1;
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, jobs)) {
                std::cerr << "bad --jobs value '" << v
                          << "' (want a count or 'auto')\n";
                return 2;
            }
        } else if (a == "--json") {
            fwd.push_back("--benchmark_out=" + next("--json"));
            fwd.push_back("--benchmark_out_format=json");
        } else if (a == "--warmup") {
            const std::string v = next("--warmup");
            ::setenv("LVPSIM_WARMUP", v.c_str(), 1);
        } else if (a == "--help" || a == "-h") {
            std::cout << tag
                      << " [--jobs N|auto] [--json FILE]"
                         " [--warmup N] [--benchmark_* ...]\n"
                         "--json writes google-benchmark's JSON"
                         " report; native --benchmark_* flags pass"
                         " through.\n";
            return 0;
        } else {
            fwd.push_back(a);
        }
    }

    std::vector<char *> cargv;
    cargv.reserve(fwd.size());
    for (auto &s : fwd)
        cargv.push_back(s.data());
    int cargc = int(cargv.size());
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace lvpsim

