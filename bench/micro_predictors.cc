/**
 * @file
 * Microbenchmarks (google-benchmark): raw lookup/train throughput of
 * the predictor structures, independent of the pipeline model.
 */

#include <benchmark/benchmark.h>

#include "microbench_main.hh"

#include "core/cap.hh"
#include "core/composite.hh"
#include "core/cvp.hh"
#include "core/eves.hh"
#include "core/lvp.hh"
#include "core/sap.hh"

using namespace lvpsim;
using namespace lvpsim::vp;

namespace
{

pipe::LoadProbe
probeOf(Addr pc, std::uint64_t token)
{
    pipe::LoadProbe p;
    p.pc = pc;
    p.token = token;
    return p;
}

pipe::LoadOutcome
outcomeOf(Addr pc, std::uint64_t token)
{
    pipe::LoadOutcome o;
    o.pc = pc;
    o.token = token;
    o.effAddr = 0x1000 + (pc & 0xff) * 8;
    o.size = 8;
    o.value = pc * 3;
    return o;
}

template <typename PredT>
void
componentLookupTrain(benchmark::State &state)
{
    PredT pred(1024, 1);
    std::uint64_t token = 1;
    Addr pc = 0x400000;
    for (auto _ : state) {
        auto cp = pred.lookup(probeOf(pc, token));
        benchmark::DoNotOptimize(cp);
        pred.train(outcomeOf(pc, token));
        ++token;
        pc = 0x400000 + (token % 512) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_LvpLookupTrain(benchmark::State &state)
{
    componentLookupTrain<Lvp>(state);
}

void
BM_SapLookupTrain(benchmark::State &state)
{
    componentLookupTrain<Sap>(state);
}

void
BM_CvpLookupTrain(benchmark::State &state)
{
    componentLookupTrain<Cvp>(state);
}

void
BM_CapLookupTrain(benchmark::State &state)
{
    componentLookupTrain<Cap>(state);
}

void
BM_CompositePredictTrain(benchmark::State &state)
{
    CompositeConfig cfg = CompositeConfig::bestOf(
        std::size_t(state.range(0)));
    cfg.epochInstrs = 10000;
    CompositePredictor pred(cfg);
    std::uint64_t token = 1;
    for (auto _ : state) {
        const Addr pc = 0x400000 + (token % 512) * 4;
        auto p = pred.predict(probeOf(pc, token));
        benchmark::DoNotOptimize(p);
        pred.train(outcomeOf(pc, token));
        pred.onRetire(4);
        ++token;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_EvesPredictTrain(benchmark::State &state)
{
    EvesPredictor pred(EvesConfig::large32k());
    std::uint64_t token = 1;
    for (auto _ : state) {
        const Addr pc = 0x400000 + (token % 512) * 4;
        auto p = pred.predict(probeOf(pc, token));
        benchmark::DoNotOptimize(p);
        pred.train(outcomeOf(pc, token));
        ++token;
    }
    state.SetItemsProcessed(state.iterations());
}

} // anonymous namespace

BENCHMARK(BM_LvpLookupTrain);
BENCHMARK(BM_SapLookupTrain);
BENCHMARK(BM_CvpLookupTrain);
BENCHMARK(BM_CapLookupTrain);
BENCHMARK(BM_CompositePredictTrain)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_EvesPredictTrain);

int
main(int argc, char **argv)
{
    return lvpsim::bench::microbenchMain(argc, argv,
                                         "micro_predictors");
}
