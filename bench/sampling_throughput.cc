/**
 * @file
 * Sampled-simulation benchmark: how much faster is a SimPoint-style
 * sampled suite run (docs/sampling.md) than full detailed
 * simulation, and does the extrapolation stay inside its own
 * reported confidence bounds? Three phases run the same composite
 * configuration over the same workload suite:
 *
 *   full     detailed simulation of every instruction (SuiteRunner
 *            with sampling off) — the reference results.
 *   sampled  cold sampled run from empty caches: pays interval
 *            profiling, k-means planning and interval-checkpoint
 *            construction, then simulates only the representative
 *            intervals and extrapolates.
 *   warm     the identical sampled run again with only the baseline
 *            memo cleared: every plan and interval checkpoint must
 *            be a cache hit (generation counters are checked), and
 *            the results must be counter-for-counter identical to
 *            the cold sampled phase.
 *
 * Self-checks (the speedup is only reported when they hold):
 *   exit 3  warm phase rebuilt a plan/checkpoint, or warm results
 *           diverged from the cold sampled results;
 *   exit 4  a sampled row (or the suite aggregate) missed the full
 *           reference by more than its own reported sample_error.
 *
 * tools/bench_sampling.sh runs this binary on the bench-release
 * preset at 2M instructions/workload and commits BENCH_sampling.json;
 * the `sampled_vs_full` ctest gate replays that measurement on
 * Release trees (tools/check_sampling_gate.sh).
 *
 * Command line (harness conventions, like every bench binary):
 *   --jobs N|auto      worker threads for all phases (default 1)
 *   --json FILE        write the measurement as BENCH_sampling.json
 *   --sample K         representatives per workload (default 8)
 *   --interval-len N   interval length (default instrs/200, min 2000)
 *
 * Run scaling: LVPSIM_INSTRS (default 20000), LVPSIM_SUITE.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

#include "bench_common.hh"

using namespace lvpsim;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Every raw counter as (name, value), in declaration order. */
std::vector<std::pair<std::string, std::uint64_t>>
flatCounters(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

/** True when every counter matches; prints the first divergence. */
bool
statsIdentical(const std::string &what, const pipe::SimStats &cold,
               const pipe::SimStats &warm)
{
    const auto a = flatCounters(cold);
    const auto b = flatCounters(warm);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].second != b[i].second) {
            std::cerr << "MISMATCH " << what << ": " << a[i].first
                      << " cold=" << a[i].second
                      << " warm=" << b[i].second << "\n";
            return false;
        }
    }
    return true;
}

double
geomeanIpc(const sim::SuiteResult &res)
{
    double log_sum = 0.0;
    for (const auto &row : res.rows)
        log_sum += std::log(row.withVp.ipc());
    return res.rows.empty()
               ? 0.0
               : std::exp(log_sum / double(res.rows.size()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = 1;
    std::string json_path;
    const std::size_t instrs = sim::instrsFromEnv(20000);
    std::size_t sample_k = 8;
    std::size_t interval_len =
        std::max<std::size_t>(2000, instrs / 200);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, jobs)) {
                std::cerr << "bad --jobs value '" << v << "'\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--sample") {
            const long long n = std::atoll(next("--sample"));
            if (n <= 0) {
                std::cerr << "bad --sample value (want > 0)\n";
                std::exit(2);
            }
            sample_k = std::size_t(n);
        } else if (a == "--interval-len") {
            const long long n = std::atoll(next("--interval-len"));
            if (n <= 0) {
                std::cerr << "bad --interval-len value (want > 0)\n";
                std::exit(2);
            }
            interval_len = std::size_t(n);
        } else if (a == "--help" || a == "-h") {
            std::cout << "sampling_throughput [--jobs N|auto] "
                         "[--json FILE] [--sample K] "
                         "[--interval-len N]\n"
                         "env: LVPSIM_INSTRS, LVPSIM_SUITE\n";
            return 0;
        } else {
            std::cerr << "unknown option '" << a
                      << "' (try --help)\n";
            return 2;
        }
    }

    sim::RunConfig rc_full;
    rc_full.maxInstrs = instrs;
    sim::RunConfig rc_sampled = rc_full;
    rc_sampled.sampleK = sample_k;
    rc_sampled.sampleIntervalLen = interval_len;

    const auto workloads = sim::suiteFromEnv();
    const std::size_t W = workloads.size();
    const auto factory = bench::compositeFactory(
        bench::tunedComposite(2048, instrs));

    std::cout << "sampling throughput: " << W << " workloads, "
              << instrs << " instructions each, sample "
              << sample_k << " x " << interval_len
              << ", jobs=" << jobs << "\n";

    // Trace synthesis is identical work in all phases; run it up
    // front so none of them is charged for it.
    sim::ParallelExecutor pool(jobs);
    pool.parallelFor(W, [&](std::size_t i) {
        sim::TraceCache::instance().get(workloads[i], instrs,
                                        rc_full.traceSeed);
    });

    // -------- full: detailed simulation of every instruction ----
    sim::CheckpointCache::instance().clear();
    sim::BaselineCache::instance().clear();
    sim::PlanCache::instance().clear();
    const auto full_t0 = Clock::now();
    sim::SuiteRunner full_runner(workloads, rc_full, jobs);
    const auto full = full_runner.run("composite", factory);
    const double full_wall = secondsSince(full_t0);
    std::cout << "full (every instruction):  "
              << sim::fmtF(full_wall, 3) << " s\n";

    // -------- sampled, cold: pays profile + plan + checkpoints ---
    sim::CheckpointCache::instance().clear();
    sim::BaselineCache::instance().clear();
    sim::PlanCache::instance().clear();
    const auto cold_t0 = Clock::now();
    sim::SuiteRunner cold_runner(workloads, rc_sampled, jobs);
    const auto cold = cold_runner.run("composite", factory);
    const double cold_wall = secondsSince(cold_t0);

    double checkpoint_seconds = 0.0;
    for (const auto &row : cold.rows)
        checkpoint_seconds += row.checkpointSeconds;
    std::cout << "sampled (cold caches):     "
              << sim::fmtF(cold_wall, 3) << " s (of which "
              << sim::fmtF(checkpoint_seconds, 3)
              << " s checkpoint builds)\n";

    // -------- sampled, warm: plans and checkpoints must be hits --
    const auto plans0 = sim::PlanCache::instance().generations();
    const auto ckpts0 = sim::CheckpointCache::instance().generations();
    sim::BaselineCache::instance().clear();
    const auto warm_t0 = Clock::now();
    sim::SuiteRunner warm_runner(workloads, rc_sampled, jobs);
    const auto warm = warm_runner.run("composite", factory);
    const double warm_wall = secondsSince(warm_t0);
    std::cout << "sampled (warm caches):     "
              << sim::fmtF(warm_wall, 3) << " s\n";

    // -------- self-checks --------
    bool identical =
        sim::PlanCache::instance().generations() == plans0 &&
        sim::CheckpointCache::instance().generations() == ckpts0;
    if (!identical)
        std::cerr << "warm phase rebuilt a sample plan or interval "
                     "checkpoint that should have been cached\n";
    for (std::size_t w = 0; w < W; ++w) {
        identical &= statsIdentical(workloads[w] + "/base",
                                    cold.rows[w].base,
                                    warm.rows[w].base);
        identical &= statsIdentical(workloads[w],
                                    cold.rows[w].withVp,
                                    warm.rows[w].withVp);
    }
    if (!identical) {
        std::cerr << "sampled results are not reproducible; "
                     "refusing to report a speedup\n";
        return 3;
    }

    double max_ipc_err = 0.0, max_acc_err = 0.0;
    double mean_bound = 0.0;
    std::size_t out_of_bounds = 0;
    for (std::size_t w = 0; w < W; ++w) {
        const auto &f = full.rows[w];
        const auto &s = cold.rows[w];
        const double ipc_err =
            std::abs(s.withVp.ipc() - f.withVp.ipc()) /
            f.withVp.ipc();
        // Accuracy is a fraction of used predictions; below ~0.5%
        // coverage it is a ratio of near-zero counters on both
        // sides and rounding noise swamps the comparison, so only
        // rows where the predictor meaningfully fires are checked.
        const bool acc_meaningful =
            f.withVp.predictionsUsed * 200 > f.withVp.eligibleLoads;
        const double acc_err =
            acc_meaningful ? std::abs(s.withVp.accuracy() -
                                      f.withVp.accuracy())
                           : 0.0;
        max_ipc_err = std::max(max_ipc_err, ipc_err);
        max_acc_err = std::max(max_acc_err, acc_err);
        mean_bound += s.sampleError;
        if (ipc_err > s.sampleError || acc_err > s.sampleError) {
            std::cerr << "OUT OF BOUNDS " << workloads[w]
                      << ": ipc err " << sim::fmtF(ipc_err, 4)
                      << ", accuracy err " << sim::fmtF(acc_err, 4)
                      << " vs bound "
                      << sim::fmtF(s.sampleError, 4) << "\n";
            ++out_of_bounds;
        }
    }
    mean_bound /= double(W);
    const double suite_ipc_err =
        std::abs(geomeanIpc(cold) - geomeanIpc(full)) /
        geomeanIpc(full);
    std::cout << "max per-workload error:    ipc "
              << sim::fmtF(100.0 * max_ipc_err, 2)
              << "%, accuracy "
              << sim::fmtF(100.0 * max_acc_err, 2)
              << "% (mean bound "
              << sim::fmtF(100.0 * mean_bound, 2) << "%)\n"
              << "suite geomean IPC error:   "
              << sim::fmtF(100.0 * suite_ipc_err, 2) << "%\n";
    if (out_of_bounds > 0 || suite_ipc_err > mean_bound) {
        std::cerr << "sampled extrapolation missed its reported "
                     "confidence bounds ("
                  << out_of_bounds << "/" << W
                  << " workloads); refusing to report a speedup\n";
        return 4;
    }

    const double speedup =
        cold_wall > 0.0 ? full_wall / cold_wall : 0.0;
    const double warm_speedup =
        warm_wall > 0.0 ? full_wall / warm_wall : 0.0;
    std::cout << "within reported bounds: yes\n"
              << "sampling speedup: " << sim::fmtF(speedup, 2)
              << "x cold, " << sim::fmtF(warm_speedup, 2)
              << "x warm\n";

    if (json_path.empty())
        return 0;

    sim::JsonValue doc = sim::JsonValue::object();
    doc.set("schema_version", std::uint64_t(1));
    doc.set("tool", "lvpsim");
    sim::JsonValue meta = sim::JsonValue::object();
    meta.set("bench", "sampling_throughput");
    meta.set("jobs", std::uint64_t(jobs));
    meta.set("instructions", std::uint64_t(instrs));
    meta.set("sample_k", std::uint64_t(sample_k));
    meta.set("interval_length", std::uint64_t(interval_len));
    meta.set("suite", std::getenv("LVPSIM_SUITE")
                          ? std::getenv("LVPSIM_SUITE")
                          : "full");
    meta.set("workloads", std::uint64_t(W));
    doc.set("meta", std::move(meta));
    sim::JsonValue full_j = sim::JsonValue::object();
    full_j.set("wall_seconds", full_wall);
    doc.set("full", std::move(full_j));
    sim::JsonValue cold_j = sim::JsonValue::object();
    cold_j.set("wall_seconds", cold_wall);
    cold_j.set("checkpoint_build_seconds", checkpoint_seconds);
    doc.set("sampled", std::move(cold_j));
    sim::JsonValue warm_j = sim::JsonValue::object();
    warm_j.set("wall_seconds", warm_wall);
    doc.set("warm", std::move(warm_j));
    doc.set("speedup", speedup);
    doc.set("warm_speedup", warm_speedup);
    doc.set("max_rel_ipc_error", max_ipc_err);
    doc.set("max_accuracy_error", max_acc_err);
    doc.set("mean_sample_error", mean_bound);
    doc.set("suite_ipc_error", suite_ipc_err);
    doc.set("within_bounds", true);
    doc.set("identical", true);

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    doc.dump(os);
    os << "\n";
    std::cout << "results: " << json_path << "\n";
    return 0;
}
