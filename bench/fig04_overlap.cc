/**
 * @file
 * Paper Figure 4: percent of dynamic loads predicted by one, two,
 * three or four components when every component has 1K entries.
 * The paper reports that 66% of predicted loads are covered by more
 * than one component.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig04");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 4: component overlap at 1K entries each", rc,
           workloads.size());

    // Plain composite, 1K entries per component, no optimizations.
    vp::CompositeConfig cfg;
    cfg.lvpEntries = cfg.sapEntries = cfg.cvpEntries =
        cfg.capEntries = 1024;

    // One slot per workload, reduced serially afterwards: the
    // aggregate is identical for any --jobs value.
    std::vector<vp::CompositeStats> per(workloads.size());
    sim::ParallelExecutor pool(benchJobs());
    pool.parallelFor(workloads.size(), [&](std::size_t i) {
        vp::CompositePredictor p(cfg);
        (void)sim::runWorkload(workloads[i], &p, rc);
        per[i] = p.compositeStats();
        std::cout << "." << std::flush;
    });
    std::cout << "\n\n";

    std::array<std::uint64_t, vp::numComponents + 1> hist{};
    std::array<std::uint64_t, vp::numComponents> solo{};
    for (const auto &cs : per) {
        for (std::size_t i = 0; i < hist.size(); ++i)
            hist[i] += cs.confidentHist[i];
        for (std::size_t c = 0; c < solo.size(); ++c)
            solo[c] += cs.soloByComponent[c];
    }

    std::uint64_t predicted = 0;
    for (std::size_t i = 1; i < hist.size(); ++i)
        predicted += hist[i];

    sim::TextTable t({"bucket", "loads", "pct_of_predicted"});
    auto pct = [&](std::uint64_t n) {
        return sim::fmtPct(predicted ? double(n) / predicted : 0.0);
    };
    t.addRow({"one (by LVP)", std::to_string(solo[0]),
              pct(solo[0])});
    t.addRow({"one (by SAP)", std::to_string(solo[1]),
              pct(solo[1])});
    t.addRow({"one (by CVP)", std::to_string(solo[2]),
              pct(solo[2])});
    t.addRow({"one (by CAP)", std::to_string(solo[3]),
              pct(solo[3])});
    t.addRow({"two", std::to_string(hist[2]), pct(hist[2])});
    t.addRow({"three", std::to_string(hist[3]), pct(hist[3])});
    t.addRow({"four", std::to_string(hist[4]), pct(hist[4])});
    t.print(std::cout);
    t.printCsv(std::cout, "fig04");

    const double multi =
        predicted ? double(hist[2] + hist[3] + hist[4]) / predicted
                  : 0.0;
    std::cout << "\nloads predicted by more than one component: "
              << sim::fmtPct(multi)
              << "   (paper: ~66%)\n";
    return finishBench();
}
