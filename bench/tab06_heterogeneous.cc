/**
 * @file
 * Paper Table VI: heterogeneous component sizing. For each total
 * entry budget, a set of allocation candidates (including the
 * homogeneous split and the paper's winning shapes) is evaluated; the
 * best is reported with its storage, speedup/KB and gain over the
 * homogeneous allocation.
 */

#include <cstdlib>

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

namespace
{

struct Candidate
{
    const char *name;
    // Numerators over 8: {LVP, SAP, CVP, CAP}, summing to 8.
    std::array<unsigned, 4> eighths;
};

/**
 * LVPSIM_TAB06_FULL=1 switches from the curated candidate list to an
 * exhaustive enumeration of all {0,1,2,4}-eighth allocations summing
 * to the budget (the paper "swept the predictor table sizes
 * independently"); slower, so off by default.
 */
bool
fullSweep()
{
    const char *s = std::getenv("LVPSIM_TAB06_FULL");
    return s && *s == '1';
}

std::vector<std::array<unsigned, 4>>
allAllocations()
{
    std::vector<std::array<unsigned, 4>> out;
    const unsigned parts[] = {0, 1, 2, 3, 4, 5, 6, 8};
    for (unsigned a : parts)
        for (unsigned b : parts)
            for (unsigned c : parts)
                for (unsigned d : parts)
                    if (a + b + c + d == 8)
                        out.push_back({a, b, c, d});
    return out;
}

const Candidate candidates[] = {
    {"homogeneous", {2, 2, 2, 2}},
    {"SAP-heavy", {1, 4, 2, 1}},   // paper's 2048/512 winner shape
    {"CVP-heavy", {1, 1, 4, 2}},   // paper's 256 winner shape
    {"CAP-heavy", {1, 1, 2, 4}},
    {"LVP-heavy", {4, 2, 1, 1}},
    {"value-heavy", {4, 1, 2, 1}},
    {"no-LVP", {0, 4, 2, 2}},
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, "tab06");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Table VI: heterogeneous component sizing", rc,
           workloads.size());

    auto runner = makeRunner(workloads, rc);
    const std::size_t totals[] = {256, 512, 1024, 2048, 4096};

    // Build the allocation list: curated shapes, or the full sweep.
    std::vector<std::pair<std::string, std::array<unsigned, 4>>>
        allocations;
    if (fullSweep()) {
        for (const auto &a : allAllocations()) {
            std::string name;
            for (unsigned v : a)
                name += std::to_string(v);
            allocations.emplace_back(name + "/8", a);
        }
        std::cout << "full sweep: " << allocations.size()
                  << " allocations per budget\n";
    } else {
        for (const auto &cand : candidates)
            allocations.emplace_back(cand.name, cand.eighths);
    }

    sim::TextTable t({"total", "best_config", "LVP", "SAP", "CVP",
                      "CAP", "storageKB", "speedup", "speedup_perKB",
                      "vs_homogeneous"});
    for (std::size_t total : totals) {
        double best = -1e9, homog = 0.0, best_kb = 0.0;
        const std::string *best_cand = nullptr;
        std::array<std::size_t, 4> best_sizes{};
        for (const auto &[name, eighths] : allocations) {
            vp::CompositeConfig cfg;
            cfg.lvpEntries = total * eighths[0] / 8;
            cfg.sapEntries = total * eighths[1] / 8;
            cfg.cvpEntries = total * eighths[2] / 8;
            cfg.capEntries = total * eighths[3] / 8;
            const auto res = runner.run(name, compositeFactory(cfg));
            const double sp = res.geomeanSpeedup();
            if (eighths == std::array<unsigned, 4>{2, 2, 2, 2})
                homog = sp;
            if (sp > best) {
                best = sp;
                best_cand = &name;
                best_kb = res.storageKB();
                best_sizes = {cfg.lvpEntries, cfg.sapEntries,
                              cfg.cvpEntries, cfg.capEntries};
            }
            std::cout << "." << std::flush;
        }
        t.addRow({std::to_string(total), *best_cand,
                  std::to_string(best_sizes[0]),
                  std::to_string(best_sizes[1]),
                  std::to_string(best_sizes[2]),
                  std::to_string(best_sizes[3]),
                  sim::fmtF(best_kb, 2), sim::fmtPct(best),
                  sim::fmtF(100.0 * best / best_kb, 3),
                  sim::fmtPct(best - homog)});
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "tab06");
    std::cout << "\npaper shape: heterogeneous allocations matter "
                 "most at small budgets; at large budgets the "
                 "homogeneous split is (near-)best; speedup/KB is "
                 "maximized by the smallest configurations\n";
    return finishBench();
}
