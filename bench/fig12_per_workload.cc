/**
 * @file
 * Paper Figure 12: per-workload speedup (a) and coverage (b) of the
 * best composite (9.6KB-class budget) vs EVES (32KB-class budget).
 * The paper's composite wins on 67 of 85 workloads.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig12");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 12: per-workload composite (9.6KB) vs EVES (32KB)",
           rc, workloads.size());

    auto runner = makeRunner(workloads, rc);
    const auto comp = runner.run(
        "composite",
        compositeFactory(tunedComposite(1024, rc.maxInstrs)));
    const auto eves =
        runner.run("eves", evesFactory(vp::EvesConfig::large32k()));

    sim::TextTable t({"workload", "composite_speedup", "eves_speedup",
                      "composite_coverage", "eves_coverage",
                      "winner"});
    int comp_wins = 0, eves_wins = 0, ties = 0;
    for (std::size_t i = 0; i < comp.rows.size(); ++i) {
        const auto &c = comp.rows[i];
        const auto &e = eves.rows[i];
        const double dc = c.speedup(), de = e.speedup();
        const char *winner = "tie";
        if (dc > de + 0.002) {
            winner = "composite";
            ++comp_wins;
        } else if (de > dc + 0.002) {
            winner = "eves";
            ++eves_wins;
        } else {
            ++ties;
        }
        t.addRow({c.workload, sim::fmtPct(dc), sim::fmtPct(de),
                  sim::fmtPct(c.coverage()),
                  sim::fmtPct(e.coverage()), winner});
    }
    t.addRow({"AVERAGE", sim::fmtPct(comp.geomeanSpeedup()),
              sim::fmtPct(eves.geomeanSpeedup()),
              sim::fmtPct(comp.meanCoverage()),
              sim::fmtPct(eves.meanCoverage()), ""});
    t.print(std::cout);
    t.printCsv(std::cout, "fig12");

    std::cout << "\ncomposite wins " << comp_wins << ", EVES wins "
              << eves_wins << ", ties " << ties << " (of "
              << comp.rows.size()
              << ")   paper: composite 67/85, EVES 9/85\n";
    return finishBench();
}
