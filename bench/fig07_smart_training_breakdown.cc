/**
 * @file
 * Paper Figure 7: breakdown of the number of confident components per
 * predicted load, and average number of components trained, with and
 * without smart training (256 - 4K total entries).
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

namespace
{

struct Agg
{
    std::array<std::uint64_t, vp::numComponents + 1> hist{};
    std::array<std::uint64_t, vp::numComponents> solo{};
    double avgTrained = 0.0;
};

Agg
collect(const std::vector<std::string> &workloads,
        const sim::RunConfig &rc, std::size_t total, bool smart)
{
    // Indexed slots + serial reduction: aggregate identical for any
    // --jobs value.
    std::vector<vp::CompositeStats> per(workloads.size());
    lvpsim::sim::ParallelExecutor pool(lvpsim::bench::benchJobs());
    pool.parallelFor(workloads.size(), [&](std::size_t i) {
        auto cfg = vp::CompositeConfig::homogeneous(total);
        cfg.smartTraining = smart;
        vp::CompositePredictor p(cfg);
        (void)lvpsim::sim::runWorkload(workloads[i], &p, rc);
        per[i] = p.compositeStats();
        std::cout << "." << std::flush;
    });

    Agg agg;
    double trained_sum = 0.0;
    for (const auto &cs : per) {
        for (std::size_t i = 0; i < agg.hist.size(); ++i)
            agg.hist[i] += cs.confidentHist[i];
        for (std::size_t c = 0; c < agg.solo.size(); ++c)
            agg.solo[c] += cs.soloByComponent[c];
        trained_sum += cs.avgTrainedPerLoad();
    }
    agg.avgTrained = trained_sum / double(workloads.size());
    return agg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig07");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 7: prediction-count breakdown, train-all vs smart "
           "training",
           rc, workloads.size());

    const std::size_t totals[] = {256, 512, 1024, 2048, 4096};
    sim::TextTable t({"total_entries", "policy", "oneLVP", "oneSAP",
                      "oneCVP", "oneCAP", "two", "three", "four",
                      "multi_pct", "avg_trained"});
    for (std::size_t total : totals) {
        for (bool smart : {false, true}) {
            const auto agg = collect(workloads, rc, total, smart);
            std::uint64_t predicted = 0;
            for (std::size_t i = 1; i < agg.hist.size(); ++i)
                predicted += agg.hist[i];
            const double multi =
                predicted ? double(agg.hist[2] + agg.hist[3] +
                                   agg.hist[4]) /
                                predicted
                          : 0.0;
            t.addRow({std::to_string(total),
                      smart ? "smart" : "train-all",
                      std::to_string(agg.solo[0]),
                      std::to_string(agg.solo[1]),
                      std::to_string(agg.solo[2]),
                      std::to_string(agg.solo[3]),
                      std::to_string(agg.hist[2]),
                      std::to_string(agg.hist[3]),
                      std::to_string(agg.hist[4]),
                      sim::fmtPct(multi),
                      sim::fmtF(agg.avgTrained, 2)});
        }
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig07");
    std::cout << "\npaper shape: smart training slashes the share of "
                 "multi-predicted loads (62% -> 12% at 1K) and trains "
                 "close to one component per load\n";
    return finishBench();
}
