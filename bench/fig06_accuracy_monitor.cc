/**
 * @file
 * Paper Figure 6: speedup gained by adding an accuracy monitor to the
 * plain composite predictor - M-AM, 64-entry PC-AM, and infinite
 * PC-AM (all at 1K total entries unless swept).
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig06");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 6: accuracy monitor throttling", rc,
           workloads.size());

    auto runner = makeRunner(workloads, rc);
    const std::size_t totals[] = {512, 1024, 2048};

    sim::TextTable t({"total_entries", "am", "speedup", "coverage",
                      "accuracy", "delta_vs_noAM"});
    for (std::size_t total : totals) {
        auto base_cfg = scaleEpochs(
            vp::CompositeConfig::homogeneous(total), rc.maxInstrs);
        const auto no_am =
            runner.run("composite", compositeFactory(base_cfg));

        const std::pair<vp::AmKind, const char *> kinds[] = {
            {vp::AmKind::MAm, "M-AM"},
            {vp::AmKind::PcAm, "PC-AM(64)"},
            {vp::AmKind::PcAmInfinite, "PC-AM(inf)"},
        };
        t.addRow({std::to_string(total), "none",
                  sim::fmtPct(no_am.geomeanSpeedup()),
                  sim::fmtPct(no_am.meanCoverage()),
                  sim::fmtPct(no_am.meanAccuracy()), "-"});
        for (const auto &[kind, name] : kinds) {
            auto cfg = base_cfg;
            cfg.am = kind;
            const auto res = runner.run(name, compositeFactory(cfg));
            t.addRow({std::to_string(total), name,
                      sim::fmtPct(res.geomeanSpeedup()),
                      sim::fmtPct(res.meanCoverage()),
                      sim::fmtPct(res.meanAccuracy()),
                      sim::fmtPct(res.geomeanSpeedup() -
                                  no_am.geomeanSpeedup())});
            std::cout << "." << std::flush;
        }
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig06");
    std::cout << "\npaper shape: every AM variant improves the plain "
                 "composite; PC-AM generally beats M-AM and the "
                 "finite PC-AM tracks the infinite one\n";
    return finishBench();
}
