/**
 * @file
 * Paper Figure 8: speedup of the smart training policy over train-all
 * as the total budget scales. Most effective at small/moderate sizes.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig08");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 8: smart training speedup", rc, workloads.size());

    auto runner = makeRunner(workloads, rc);
    const std::size_t totals[] = {256, 512, 1024, 2048, 4096};

    sim::TextTable t({"total_entries", "train_all", "smart",
                      "smart_gain"});
    for (std::size_t total : totals) {
        auto cfg = vp::CompositeConfig::homogeneous(total);
        const auto all =
            runner.run("train-all", compositeFactory(cfg));
        cfg.smartTraining = true;
        const auto smart =
            runner.run("smart", compositeFactory(cfg));
        t.addRow({std::to_string(total),
                  sim::fmtPct(all.geomeanSpeedup()),
                  sim::fmtPct(smart.geomeanSpeedup()),
                  sim::fmtPct(smart.geomeanSpeedup() -
                              all.geomeanSpeedup())});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig08");
    std::cout << "\npaper shape: smart training helps most at small "
                 "and moderate predictor sizes\n";
    return finishBench();
}
