/**
 * @file
 * Paper Figure 5: speedup of a homogeneous composite predictor over
 * the best single component predictor with the same total number of
 * entries (256 - 4K).
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;
using pipe::ComponentId;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig05");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 5: composite vs best component (same total "
           "entries)",
           rc, workloads.size());

    const std::size_t totals[] = {256, 512, 1024, 2048, 4096};
    const ComponentId comps[] = {ComponentId::LVP, ComponentId::SAP,
                                 ComponentId::CVP, ComponentId::CAP};

    auto runner = makeRunner(workloads, rc);
    sim::TextTable t({"total_entries", "composite", "best_component",
                      "which", "composite_vs_best"});
    for (std::size_t total : totals) {
        const auto comp_res = runner.run(
            "composite",
            compositeFactory(vp::CompositeConfig::homogeneous(total)));

        double best = -1.0;
        std::string best_name;
        for (ComponentId id : comps) {
            const auto res = runner.run(pipe::componentName(id),
                                        singleFactory(id, total));
            if (res.geomeanSpeedup() > best) {
                best = res.geomeanSpeedup();
                best_name = pipe::componentName(id);
            }
            std::cout << "." << std::flush;
        }
        const double comp_speedup = comp_res.geomeanSpeedup();
        t.addRow({std::to_string(total), sim::fmtPct(comp_speedup),
                  sim::fmtPct(best), best_name,
                  best > 0 ? sim::fmtPct(comp_speedup / best - 1.0)
                           : "n/a"});
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig05");
    std::cout << "\npaper shape: except at the smallest size, the "
                 "composite clearly exceeds the best component\n";
    return finishBench();
}
