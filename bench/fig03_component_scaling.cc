/**
 * @file
 * Paper Figure 3: speedup of each component predictor in isolation as
 * the table budget scales from 64 to 4K entries. The paper observes a
 * performance knee around 1K entries (8-10KB).
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;
using pipe::ComponentId;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig03");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 3: component predictor scaling (64 - 4K entries)",
           rc, workloads.size());

    const std::size_t sizes[] = {64, 128, 256, 512, 1024, 2048, 4096};
    const ComponentId comps[] = {ComponentId::LVP, ComponentId::SAP,
                                 ComponentId::CVP, ComponentId::CAP};

    auto runner = makeRunner(workloads, rc);
    sim::TextTable t({"predictor", "entries", "storageKB", "speedup",
                      "coverage", "accuracy"});
    for (ComponentId id : comps) {
        for (std::size_t n : sizes) {
            const auto res = runner.run(pipe::componentName(id),
                                        singleFactory(id, n));
            t.addRow({pipe::componentName(id), std::to_string(n),
                      sim::fmtF(res.storageKB(), 2),
                      sim::fmtPct(res.geomeanSpeedup()),
                      sim::fmtPct(res.meanCoverage()),
                      sim::fmtPct(res.meanAccuracy())});
            std::cout << "." << std::flush;
        }
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig03");
    std::cout << "\npaper shape: all four predictors knee around 1K "
                 "entries; no component dominates\n";
    return finishBench();
}
