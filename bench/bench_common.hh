/**
 * @file
 * Shared scaffolding for the experiment harnesses in bench/. Each
 * binary regenerates one table or figure of the paper, printing an
 * aligned text table plus greppable CSV lines.
 *
 * Run scaling:
 *   LVPSIM_INSTRS=<n>        instructions per workload (default 150K)
 *   LVPSIM_SUITE=smoke|full  workload list (default full, 24 kernels)
 */

#ifndef LVPSIM_BENCH_COMMON_HH
#define LVPSIM_BENCH_COMMON_HH

#include <iostream>
#include <memory>
#include <string>

#include "core/composite.hh"
#include "core/eves.hh"
#include "sim/experiment.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace bench
{

inline sim::RunConfig
benchRunConfig()
{
    sim::RunConfig rc;
    rc.maxInstrs = sim::instrsFromEnv(150000);
    return rc;
}

/** Scale the paper's 1M-instruction epochs to the run length. */
inline vp::CompositeConfig
scaleEpochs(vp::CompositeConfig cfg, std::size_t instrs)
{
    cfg.epochInstrs = std::max<std::size_t>(2000, instrs / 40);
    return cfg;
}

inline void
banner(const std::string &what, const sim::RunConfig &rc,
       std::size_t workloads)
{
    std::cout << "=====================================================\n"
              << what << "\n"
              << "workloads: " << workloads
              << "   instructions/workload: " << rc.maxInstrs
              << "\n"
              << "=====================================================\n";
}

/** Factory helpers used by several harnesses. */
inline sim::PredictorFactory
compositeFactory(const vp::CompositeConfig &cfg)
{
    return [cfg] {
        return std::make_unique<vp::CompositePredictor>(cfg);
    };
}

/**
 * The composite optimization variants a designer would choose among
 * (the paper's Figure 10 reports the MAX over its composite design
 * space). Smart training and fusion are included both on and off:
 * their benefit depends on table pressure, which varies by suite.
 */
inline std::vector<std::pair<std::string, vp::CompositeConfig>>
compositeVariants(std::size_t total, std::size_t instrs)
{
    std::vector<std::pair<std::string, vp::CompositeConfig>> out;
    auto base = scaleEpochs(vp::CompositeConfig::homogeneous(total),
                            instrs);
    out.emplace_back("plain", base);
    auto am = base;
    am.am = vp::AmKind::PcAm;
    out.emplace_back("pc-am", am);
    auto fused = am;
    fused.tableFusion = true;
    out.emplace_back("pc-am+fusion", fused);
    auto all = fused;
    all.smartTraining = true;
    out.emplace_back("all-opts", all);
    return out;
}

/** The composite configuration that wins most broadly in this suite
 *  (PC-AM + fusion); used where one fixed design is required. */
inline vp::CompositeConfig
tunedComposite(std::size_t total, std::size_t instrs)
{
    auto cfg = scaleEpochs(vp::CompositeConfig::homogeneous(total),
                           instrs);
    cfg.am = vp::AmKind::PcAm;
    cfg.tableFusion = true;
    return cfg;
}

inline sim::PredictorFactory
singleFactory(pipe::ComponentId id, std::size_t entries)
{
    return [id, entries] {
        return vp::makeSinglePredictor(id, entries);
    };
}

inline sim::PredictorFactory
evesFactory(const vp::EvesConfig &cfg)
{
    return [cfg] { return std::make_unique<vp::EvesPredictor>(cfg); };
}

} // namespace bench
} // namespace lvpsim

#endif // LVPSIM_BENCH_COMMON_HH
