/**
 * @file
 * Shared scaffolding for the experiment harnesses in bench/. Each
 * binary regenerates one table or figure of the paper, printing an
 * aligned text table plus greppable CSV lines, and can additionally
 * emit a machine-readable results file (docs/results_schema.md).
 *
 * Command line (every bench binary):
 *   --jobs N     run suite simulations on N worker threads
 *                (0 or "auto" = one per hardware thread; default 1)
 *   --json FILE  write every SuiteResult produced by the bench to
 *                FILE in the documented JSON schema
 *   --warmup N   warm each workload for N instructions before the
 *                measured region (default LVPSIM_WARMUP or 0); see
 *                RunConfig.warmupInstrs
 *
 * Run scaling:
 *   LVPSIM_INSTRS=<n>        instructions per workload (default 150K)
 *   LVPSIM_WARMUP=<n>        warmup instructions (default 0)
 *   LVPSIM_SUITE=smoke|full  workload list (default full, 28 kernels)
 */

#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/composite.hh"
#include "core/eves.hh"
#include "sim/experiment.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/results_json.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace bench
{

/** Per-binary state configured by initBench(). */
struct BenchOptions
{
    std::size_t jobs = 1;
    std::size_t warmup = sim::warmupFromEnv();
    std::string jsonPath;
    std::string tag; ///< bench name, recorded in the JSON meta
    std::vector<sim::SuiteResult> recorded;
};

inline BenchOptions &
benchOptions()
{
    static BenchOptions o;
    return o;
}

inline sim::RunConfig
benchRunConfig()
{
    sim::RunConfig rc;
    rc.maxInstrs = sim::instrsFromEnv(150000);
    rc.warmupInstrs = benchOptions().warmup;
    return rc;
}

/**
 * Parse the shared bench flags (--jobs / --json / --help). Call at
 * the top of every bench main(); exits on bad usage.
 */
inline void
initBench(int argc, char **argv, const std::string &tag)
{
    BenchOptions &o = benchOptions();
    o.tag = tag;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, o.jobs)) {
                std::cerr << "bad --jobs value '" << v
                          << "' (want a count or 'auto')\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            o.jsonPath = next("--json");
        } else if (a == "--warmup") {
            const std::string v = next("--warmup");
            const long long n = std::atoll(v.c_str());
            if (n < 0) {
                std::cerr << "bad --warmup value '" << v
                          << "' (want a count >= 0)\n";
                std::exit(2);
            }
            o.warmup = std::size_t(n);
        } else if (a == "--help" || a == "-h") {
            std::cout << tag
                      << " [--jobs N|auto] [--json FILE]"
                         " [--warmup N]\n"
                         "env: LVPSIM_INSTRS, LVPSIM_WARMUP,"
                         " LVPSIM_SUITE\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << a
                      << "' (try --help)\n";
            std::exit(2);
        }
    }
}

inline std::size_t
benchJobs()
{
    return benchOptions().jobs;
}

/** Record one SuiteResult for the --json report. */
inline void
recordSuite(const sim::SuiteResult &res)
{
    benchOptions().recorded.push_back(res);
}

/**
 * A SuiteRunner honouring --jobs, with every run() recorded for the
 * --json report. Use instead of constructing sim::SuiteRunner
 * directly in bench code.
 */
inline sim::SuiteRunner
makeRunner(const std::vector<std::string> &workloads,
           const sim::RunConfig &rc)
{
    sim::SuiteRunner runner(workloads, rc, benchJobs());
    runner.setObserver(recordSuite);
    return runner;
}

/**
 * Write the --json report (if requested). Call as the bench's return
 * expression: returns 0 on success, 1 if the file cannot be written.
 */
inline int
finishBench()
{
    BenchOptions &o = benchOptions();
    if (o.jsonPath.empty())
        return 0;
    sim::ReportMeta meta;
    meta.jobs = o.jobs;
    meta.maxInstrs = sim::instrsFromEnv(150000);
    meta.warmupInstrs = o.warmup;
    meta.traceSeed = 1;
    meta.suite = o.tag;
    std::string err;
    if (!sim::writeResultsFile(o.jsonPath, o.recorded, meta, &err)) {
        std::cerr << err << "\n";
        return 1;
    }
    std::cout << "results: " << o.jsonPath << " ("
              << o.recorded.size() << " suite runs)\n";
    return 0;
}

/** Scale the paper's 1M-instruction epochs to the run length. */
inline vp::CompositeConfig
scaleEpochs(vp::CompositeConfig cfg, std::size_t instrs)
{
    cfg.epochInstrs = std::max<std::size_t>(2000, instrs / 40);
    return cfg;
}

inline void
banner(const std::string &what, const sim::RunConfig &rc,
       std::size_t workloads)
{
    std::cout << "=====================================================\n"
              << what << "\n"
              << "workloads: " << workloads
              << "   instructions/workload: " << rc.maxInstrs
              << "\n"
              << "=====================================================\n";
}

/** Factory helpers used by several harnesses. */
inline sim::PredictorFactory
compositeFactory(const vp::CompositeConfig &cfg)
{
    return [cfg] {
        return std::make_unique<vp::CompositePredictor>(cfg);
    };
}

/**
 * The composite optimization variants a designer would choose among
 * (the paper's Figure 10 reports the MAX over its composite design
 * space). Smart training and fusion are included both on and off:
 * their benefit depends on table pressure, which varies by suite.
 */
inline std::vector<std::pair<std::string, vp::CompositeConfig>>
compositeVariants(std::size_t total, std::size_t instrs)
{
    std::vector<std::pair<std::string, vp::CompositeConfig>> out;
    auto base = scaleEpochs(vp::CompositeConfig::homogeneous(total),
                            instrs);
    out.emplace_back("plain", base);
    auto am = base;
    am.am = vp::AmKind::PcAm;
    out.emplace_back("pc-am", am);
    auto fused = am;
    fused.tableFusion = true;
    out.emplace_back("pc-am+fusion", fused);
    auto all = fused;
    all.smartTraining = true;
    out.emplace_back("all-opts", all);
    return out;
}

/** The composite configuration that wins most broadly in this suite
 *  (PC-AM + fusion); used where one fixed design is required. */
inline vp::CompositeConfig
tunedComposite(std::size_t total, std::size_t instrs)
{
    auto cfg = scaleEpochs(vp::CompositeConfig::homogeneous(total),
                           instrs);
    cfg.am = vp::AmKind::PcAm;
    cfg.tableFusion = true;
    return cfg;
}

inline sim::PredictorFactory
singleFactory(pipe::ComponentId id, std::size_t entries)
{
    return [id, entries] {
        return vp::makeSinglePredictor(id, entries);
    };
}

inline sim::PredictorFactory
evesFactory(const vp::EvesConfig &cfg)
{
    return [cfg] { return std::make_unique<vp::EvesPredictor>(cfg); };
}

} // namespace bench
} // namespace lvpsim

