/**
 * @file
 * Sweep-engine benchmark: how much faster does a configuration sweep
 * run with warmup checkpointing and baseline memoization than with
 * the naive per-configuration loop? The measured sweep is the
 * fig03-style shape every figure harness shares — a grid of component
 * predictors x table sizes, each evaluated against the same no-VP
 * baseline over the whole workload suite — with a warmup region in
 * front of every measurement (default 2x the measured instructions,
 * the regime warmup checkpointing is designed for).
 *
 * Two phases simulate the identical sweep:
 *
 *   cold  models the pre-checkpoint engine: every configuration
 *         re-simulates the warmup region inline via runTrace(), and
 *         the baseline is simulated once per workload (also with
 *         inline warmup).
 *   warm  the real sweep engine (SuiteRunner): the post-warmup
 *         checkpoint is built once per workload (CheckpointCache),
 *         every configuration restores from it and simulates only
 *         the measured region, and the no-VP baseline is memoized
 *         process-wide (BaselineCache).
 *
 * Every (configuration, workload) SimStats pair is compared counter
 * by counter across the phases; any mismatch aborts with exit 3, so
 * the reported speedup can only come from work that provably did not
 * change the results. tools/bench_sweep.sh runs this binary on the
 * bench-release preset and commits BENCH_sweep.json.
 *
 * Command line (harness conventions, like every bench binary):
 *   --jobs N|auto  worker threads for both phases (default 1)
 *   --json FILE    write the measurement as BENCH_sweep.json
 *   --warmup N     warmup instructions (default LVPSIM_WARMUP, or
 *                  2x LVPSIM_INSTRS when unset)
 *
 * Run scaling: LVPSIM_INSTRS (default 20000), LVPSIM_SUITE.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

#include "bench_common.hh"

using namespace lvpsim;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Every raw counter as (name, value), in declaration order. */
std::vector<std::pair<std::string, std::uint64_t>>
flatCounters(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

/** True when every counter matches; prints the first divergence. */
bool
statsIdentical(const std::string &what, const pipe::SimStats &cold,
               const pipe::SimStats &warm)
{
    const auto a = flatCounters(cold);
    const auto b = flatCounters(warm);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].second != b[i].second) {
            std::cerr << "MISMATCH " << what << ": " << a[i].first
                      << " cold=" << a[i].second
                      << " warm=" << b[i].second << "\n";
            return false;
        }
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = 1;
    std::string json_path;
    const std::size_t instrs = sim::instrsFromEnv(20000);
    std::size_t warmup = sim::warmupFromEnv(2 * instrs);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, jobs)) {
                std::cerr << "bad --jobs value '" << v << "'\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--warmup") {
            const long long n = std::atoll(next("--warmup"));
            if (n < 0) {
                std::cerr << "bad --warmup value (want >= 0)\n";
                std::exit(2);
            }
            warmup = std::size_t(n);
        } else if (a == "--help" || a == "-h") {
            std::cout << "sweep_throughput [--jobs N|auto] "
                         "[--json FILE] [--warmup N]\n"
                         "env: LVPSIM_INSTRS, LVPSIM_WARMUP, "
                         "LVPSIM_SUITE\n";
            return 0;
        } else {
            std::cerr << "unknown option '" << a
                      << "' (try --help)\n";
            return 2;
        }
    }

    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.warmupInstrs = warmup;

    const auto workloads = sim::suiteFromEnv();
    const pipe::ComponentId comps[] = {
        pipe::ComponentId::LVP, pipe::ComponentId::SAP,
        pipe::ComponentId::CVP, pipe::ComponentId::CAP};
    const std::size_t sizes[] = {256, 1024, 4096};
    std::vector<std::pair<std::string, sim::PredictorFactory>> configs;
    for (pipe::ComponentId id : comps)
        for (std::size_t n : sizes)
            configs.emplace_back(std::string(pipe::componentName(id)) +
                                     "-" + std::to_string(n),
                                 bench::singleFactory(id, n));

    const std::size_t W = workloads.size();
    const std::size_t C = configs.size();
    std::cout << "sweep throughput: " << C << " configurations x "
              << W << " workloads, " << instrs
              << " instructions after " << warmup
              << " warmup, jobs=" << jobs << "\n";

    // Trace synthesis is identical work in both engines; run it
    // up front so neither phase is charged for it.
    sim::ParallelExecutor pool(jobs);
    pool.parallelFor(W, [&](std::size_t i) {
        sim::TraceCache::instance().get(
            workloads[i], rc.maxInstrs + rc.warmupInstrs,
            rc.traceSeed);
    });

    // -------- cold: inline warmup for every simulation --------
    std::vector<pipe::SimStats> cold_base(W);
    std::vector<std::vector<pipe::SimStats>> cold(
        C, std::vector<pipe::SimStats>(W));
    const auto cold_t0 = Clock::now();
    pool.parallelFor(W, [&](std::size_t w) {
        auto ops = sim::TraceCache::instance().get(
            workloads[w], rc.maxInstrs + rc.warmupInstrs,
            rc.traceSeed);
        pipe::NullPredictor none;
        cold_base[w] = sim::runTrace(*ops, &none, rc);
    });
    pool.parallelFor(C * W, [&](std::size_t i) {
        const std::size_t c = i / W, w = i % W;
        auto ops = sim::TraceCache::instance().get(
            workloads[w], rc.maxInstrs + rc.warmupInstrs,
            rc.traceSeed);
        auto vp = configs[c].second();
        cold[c][w] = sim::runTrace(*ops, vp.get(), rc);
    });
    const double cold_wall = secondsSince(cold_t0);
    std::cout << "cold (inline warmup):       "
              << sim::fmtF(cold_wall, 3) << " s\n";

    // -------- warm: the checkpointing sweep engine --------
    // Start from empty caches so the phase pays its own checkpoint
    // and baseline builds (the honest end-to-end sweep cost).
    sim::CheckpointCache::instance().clear();
    sim::BaselineCache::instance().clear();
    std::vector<sim::SuiteResult> warm(C);
    const auto warm_t0 = Clock::now();
    sim::SuiteRunner runner(workloads, rc, jobs);
    for (std::size_t c = 0; c < C; ++c)
        warm[c] = runner.run(configs[c].first, configs[c].second);
    const double warm_wall = secondsSince(warm_t0);

    double checkpoint_seconds = 0.0;
    if (!warm.empty())
        for (const auto &row : warm.front().rows)
            checkpoint_seconds += row.checkpointSeconds;
    std::cout << "warm (checkpointed sweep):  "
              << sim::fmtF(warm_wall, 3) << " s (of which "
              << sim::fmtF(checkpoint_seconds, 3)
              << " s checkpoint builds)\n";

    // -------- self-check: identical results, then report --------
    bool identical = true;
    for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t w = 0; w < W; ++w) {
            const auto &row = warm[c].rows[w];
            identical &= statsIdentical(
                configs[c].first + "/" + workloads[w] + "/base",
                cold_base[w], row.base);
            identical &= statsIdentical(
                configs[c].first + "/" + workloads[w], cold[c][w],
                row.withVp);
        }
    }
    if (!identical) {
        std::cerr << "sweep results diverged between engines; "
                     "refusing to report a speedup\n";
        return 3;
    }

    const double speedup =
        warm_wall > 0.0 ? cold_wall / warm_wall : 0.0;
    std::cout << "identical results: yes\n"
              << "sweep speedup: " << sim::fmtF(speedup, 2)
              << "x\n";

    if (json_path.empty())
        return 0;

    sim::JsonValue doc = sim::JsonValue::object();
    doc.set("schema_version", std::uint64_t(1));
    doc.set("tool", "lvpsim");
    sim::JsonValue meta = sim::JsonValue::object();
    meta.set("bench", "sweep_throughput");
    meta.set("jobs", std::uint64_t(jobs));
    meta.set("instructions", std::uint64_t(instrs));
    meta.set("warmup_instructions", std::uint64_t(warmup));
    meta.set("suite", std::getenv("LVPSIM_SUITE")
                          ? std::getenv("LVPSIM_SUITE")
                          : "full");
    meta.set("configs", std::uint64_t(C));
    meta.set("workloads", std::uint64_t(W));
    doc.set("meta", std::move(meta));
    sim::JsonValue cold_j = sim::JsonValue::object();
    cold_j.set("wall_seconds", cold_wall);
    doc.set("cold", std::move(cold_j));
    sim::JsonValue warm_j = sim::JsonValue::object();
    warm_j.set("wall_seconds", warm_wall);
    warm_j.set("checkpoint_build_seconds", checkpoint_seconds);
    doc.set("warm", std::move(warm_j));
    doc.set("speedup", speedup);
    doc.set("identical", true);

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    doc.dump(os);
    os << "\n";
    std::cout << "results: " << json_path << "\n";
    return 0;
}
