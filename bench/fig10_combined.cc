/**
 * @file
 * Paper Figure 10: best overall composite (all optimizations: PC-AM +
 * smart training + table fusion) vs best overall single component at
 * each storage budget. The paper reports 54%-74% relative benefit.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;
using pipe::ComponentId;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig10");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 10: best composite (all opts) vs best component",
           rc, workloads.size());

    const std::size_t totals[] = {256, 512, 1024, 2048, 4096};
    const ComponentId comps[] = {ComponentId::LVP, ComponentId::SAP,
                                 ComponentId::CVP, ComponentId::CAP};

    auto runner = makeRunner(workloads, rc);
    sim::TextTable t({"total_entries", "storageKB", "best_composite",
                      "which_opts", "best_component", "which",
                      "relative_benefit"});
    for (std::size_t total : totals) {
        // The paper's Figure 10 reports MAX(Composite): the best of
        // the composite design space at each budget.
        double comp_best = -1e9;
        std::string comp_name;
        double comp_kb = 0.0;
        for (const auto &[name, cfg] :
             compositeVariants(total, rc.maxInstrs)) {
            const auto res = runner.run(name, compositeFactory(cfg));
            if (res.geomeanSpeedup() > comp_best) {
                comp_best = res.geomeanSpeedup();
                comp_name = name;
                comp_kb = res.storageKB();
            }
            std::cout << "." << std::flush;
        }

        double best = -1.0;
        std::string best_name;
        for (ComponentId id : comps) {
            const auto res = runner.run(pipe::componentName(id),
                                        singleFactory(id, total));
            if (res.geomeanSpeedup() > best) {
                best = res.geomeanSpeedup();
                best_name = pipe::componentName(id);
            }
            std::cout << "." << std::flush;
        }
        t.addRow({std::to_string(total), sim::fmtF(comp_kb, 2),
                  sim::fmtPct(comp_best), comp_name,
                  sim::fmtPct(best), best_name,
                  best > 0 ? sim::fmtPct(comp_best / best - 1.0)
                           : "n/a"});
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig10");
    std::cout << "\npaper shape: >50% relative benefit at every size "
                 "(54%-74% reported)\n";
    return finishBench();
}
