/**
 * @file
 * Simulator-throughput baseline: how fast does the cycle-level core
 * itself run? Every figure/table harness reruns the same inner work —
 * synthesize a trace, run the no-VP baseline, run a composite
 * configuration — over the whole workload suite, so raw simulation
 * throughput is the binding constraint on evaluation scale. This
 * binary measures exactly that inner work end to end and reports
 * simulated kilo-instructions per wall-second (kIPS), per workload
 * and aggregate, so hot-path changes are measured rather than
 * asserted (see docs/performance.md).
 *
 * Command line (harness conventions, like every bench binary):
 *   --jobs N|auto  run workloads on N worker threads (default 1;
 *                  throughput numbers are only comparable at equal
 *                  --jobs)
 *   --json FILE    write the measurement in the BENCH_throughput.json
 *                  schema (docs/performance.md)
 *   --repeat N     simulate each workload N times, report the
 *                  median pass (default 1; use 3+ for committed
 *                  baselines — the median rejects one-sided load
 *                  spikes without the minimum's optimistic bias)
 *   --warmup N     warm each workload for N instructions before the
 *                  measured region (default LVPSIM_WARMUP or 0)
 *
 * Run scaling: LVPSIM_INSTRS (default 150000), LVPSIM_WARMUP,
 * LVPSIM_SUITE.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/composite.hh"
#include "sim/json.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

#include "bench_common.hh"

using namespace lvpsim;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WorkloadMeasurement
{
    std::string workload;
    std::uint64_t instructions = 0; ///< simulated, both pipelines
    std::uint64_t cycles = 0;       ///< simulated, both pipelines
    double genSeconds = 0.0;        ///< trace synthesis (first pass)
    double simSeconds = 0.0;        ///< median simulation pass
    std::vector<double> passSeconds; ///< one entry per --repeat pass

    double kips() const
    {
        return simSeconds > 0.0
                   ? double(instructions) / 1000.0 / simSeconds
                   : 0.0;
    }
};

/** Median of the samples (mean of the middle two when even). */
double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t mid = xs.size() / 2;
    return xs.size() % 2 ? xs[mid]
                         : 0.5 * (xs[mid - 1] + xs[mid]);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = 1;
    std::string json_path;
    unsigned repeat = 1;
    std::size_t warmup = sim::warmupFromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, jobs)) {
                std::cerr << "bad --jobs value '" << v << "'\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--repeat") {
            repeat = unsigned(std::atoi(next("--repeat")));
            if (repeat == 0)
                repeat = 1;
        } else if (a == "--warmup") {
            const long long n = std::atoll(next("--warmup"));
            if (n < 0) {
                std::cerr << "bad --warmup value (want >= 0)\n";
                std::exit(2);
            }
            warmup = std::size_t(n);
        } else if (a == "--help" || a == "-h") {
            std::cout << "micro_throughput [--jobs N|auto] "
                         "[--json FILE] [--repeat N] [--warmup N]\n"
                         "env: LVPSIM_INSTRS, LVPSIM_WARMUP, "
                         "LVPSIM_SUITE\n";
            return 0;
        } else {
            std::cerr << "unknown option '" << a
                      << "' (try --help)\n";
            return 2;
        }
    }

    const std::size_t instrs = sim::instrsFromEnv(150000);
    const auto workloads = sim::suiteFromEnv();
    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.warmupInstrs = warmup;

    const auto vp_cfg = bench::scaleEpochs(
        vp::CompositeConfig::homogeneous(1024), instrs);

    std::cout << "simulator throughput: " << workloads.size()
              << " workloads x " << instrs
              << " instructions (no-VP + composite), median of "
              << repeat << (repeat == 1 ? " pass" : " passes")
              << ", jobs=" << jobs;
    if (warmup)
        std::cout << ", warmup " << warmup;
    std::cout << "\n";

    // Phase 1: trace synthesis (timed separately — it also runs on
    // every suite invocation, but is not the cycle loop). Traces are
    // long enough to cover the warmup region plus the measurement.
    std::vector<WorkloadMeasurement> rows(workloads.size());
    sim::ParallelExecutor pool(jobs);
    const auto gen_t0 = Clock::now();
    pool.parallelFor(workloads.size(), [&](std::size_t i) {
        const auto t0 = Clock::now();
        auto ops = sim::TraceCache::instance().get(
            workloads[i], rc.maxInstrs + rc.warmupInstrs,
            rc.traceSeed);
        rows[i].workload = workloads[i];
        rows[i].genSeconds = secondsSince(t0);
        (void)ops;
    });
    const double gen_wall = secondsSince(gen_t0);

    // Phase 2: simulation. Each pass runs the full no-VP + composite
    // pair per workload; the median pass is reported (robust to load
    // spikes in either direction, unlike the minimum, which is biased
    // toward lucky scheduling). Instruction and cycle counts come
    // from the first pass — simulation is deterministic, so every
    // pass counts the same work.
    std::vector<double> pass_walls;
    pass_walls.reserve(repeat);
    for (unsigned pass = 0; pass < repeat; ++pass) {
        const auto t0 = Clock::now();
        pool.parallelFor(workloads.size(), [&](std::size_t i) {
            auto ops = sim::TraceCache::instance().get(
                workloads[i], rc.maxInstrs + rc.warmupInstrs,
                rc.traceSeed);
            const auto w0 = Clock::now();
            const auto base = sim::runTrace(*ops, nullptr, rc);
            vp::CompositePredictor pred(vp_cfg);
            const auto with_vp = sim::runTrace(*ops, &pred, rc);
            WorkloadMeasurement &m = rows[i];
            m.passSeconds.push_back(secondsSince(w0));
            if (pass == 0) {
                m.instructions =
                    base.instructions + with_vp.instructions;
                m.cycles = base.cycles + with_vp.cycles;
            }
        });
        pass_walls.push_back(secondsSince(t0));
    }
    for (auto &m : rows)
        m.simSeconds = median(m.passSeconds);
    const double sim_wall = median(pass_walls);

    std::uint64_t total_instrs = 0, total_cycles = 0;
    double sum_sim_seconds = 0.0;
    sim::TextTable t(
        {"workload", "instrs", "gen_ms", "sim_ms", "kips"});
    for (const auto &m : rows) {
        total_instrs += m.instructions;
        total_cycles += m.cycles;
        sum_sim_seconds += m.simSeconds;
        t.addRow({m.workload, std::to_string(m.instructions),
                  sim::fmtF(m.genSeconds * 1e3, 2),
                  sim::fmtF(m.simSeconds * 1e3, 2),
                  sim::fmtF(m.kips(), 1)});
    }
    // Aggregate throughput uses the wall clock of the whole phase:
    // with --jobs 1 this equals the per-workload sum; with more jobs
    // it reports the real end-to-end rate.
    const double agg_kips =
        sim_wall > 0.0 ? double(total_instrs) / 1000.0 / sim_wall
                       : 0.0;
    t.addRow({"AGGREGATE", std::to_string(total_instrs),
              sim::fmtF(gen_wall * 1e3, 2),
              sim::fmtF(sim_wall * 1e3, 2), sim::fmtF(agg_kips, 1)});
    t.print(std::cout);
    t.printCsv(std::cout, "throughput");
    std::cout << "aggregate: " << sim::fmtF(agg_kips, 1)
              << " kIPS simulated (" << sim::fmtF(sim_wall, 3)
              << " s simulation, " << sim::fmtF(gen_wall, 3)
              << " s trace synthesis)\n";

    if (json_path.empty())
        return 0;

    sim::JsonValue doc = sim::JsonValue::object();
    doc.set("schema_version", std::uint64_t(1));
    doc.set("tool", "lvpsim");
    sim::JsonValue meta = sim::JsonValue::object();
    meta.set("bench", "micro_throughput");
    meta.set("jobs", std::uint64_t(jobs));
    meta.set("instructions", std::uint64_t(instrs));
    meta.set("warmup_instructions", std::uint64_t(warmup));
    meta.set("repeat", std::uint64_t(repeat));
    // Which statistic sim_seconds / sim_wall_seconds report across
    // the --repeat passes (the minimum before schema consumers care).
    meta.set("statistic", "median");
    meta.set("suite", std::getenv("LVPSIM_SUITE")
                          ? std::getenv("LVPSIM_SUITE")
                          : "full");
    doc.set("meta", std::move(meta));
    sim::JsonValue rows_json = sim::JsonValue::array();
    for (const auto &m : rows) {
        sim::JsonValue r = sim::JsonValue::object();
        r.set("workload", m.workload);
        r.set("instructions", m.instructions);
        r.set("cycles", m.cycles);
        r.set("gen_seconds", m.genSeconds);
        r.set("sim_seconds", m.simSeconds);
        r.set("kips", m.kips());
        rows_json.push(std::move(r));
    }
    doc.set("workloads", std::move(rows_json));
    sim::JsonValue agg = sim::JsonValue::object();
    agg.set("total_instructions", total_instrs);
    agg.set("total_cycles", total_cycles);
    agg.set("gen_wall_seconds", gen_wall);
    agg.set("sim_wall_seconds", sim_wall);
    agg.set("sim_seconds_sum", sum_sim_seconds);
    agg.set("kips", agg_kips);
    doc.set("aggregate", std::move(agg));

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    doc.dump(os);
    os << "\n";
    std::cout << "results: " << json_path << "\n";
    return 0;
}
