/**
 * @file
 * Ablation: sensitivity to the misprediction recovery cost. The paper
 * assumes flush-based recovery and a 13-cycle fetch-to-execute
 * pipeline (Table III); this bench varies the front-end depth, which
 * scales both the branch and the value misprediction penalties.
 */

#include "bench_common.hh"
#include "common/mathutils.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "abl_flush_cost");
    auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Ablation: front-end depth / flush cost sensitivity", rc,
           workloads.size());

    const Cycle depths[] = {8, 13, 20};

    sim::TextTable t({"fetch_to_execute", "baseline_ipc_geomean",
                      "composite_speedup", "accuracy"});
    for (Cycle d : depths) {
        rc.core.fetchToExecute = d;
        auto runner = makeRunner(workloads, rc);
        const auto res = runner.run(
            "composite",
            compositeFactory(scaleEpochs(
                vp::CompositeConfig::bestOf(1024), rc.maxInstrs)));
        std::vector<double> base_ipcs;
        for (const auto &r : res.rows)
            base_ipcs.push_back(r.base.ipc());
        t.addRow({std::to_string(d), sim::fmtF(geoMean(base_ipcs), 3),
                  sim::fmtPct(res.geomeanSpeedup()),
                  sim::fmtPct(res.meanAccuracy())});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "abl_flush_cost");
    std::cout << "\nexpected shape: value prediction keeps its benefit "
                 "across pipeline depths because the 99%-accuracy "
                 "tuning keeps flush costs negligible\n";
    return finishBench();
}
