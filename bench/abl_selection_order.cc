/**
 * @file
 * Ablation: the composite's confident-selection priority. The paper
 * argues highly-confident predictors rarely disagree (<0.03%), so
 * the order barely affects performance but does affect how often the
 * (power-hungry) address predictors' cache probes are used.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "abl_selection_order");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Ablation: confident-selection priority order", rc,
           workloads.size());

    auto runner = makeRunner(workloads, rc);

    struct Variant
    {
        const char *name;
        std::array<std::uint8_t, 4> order; // ComponentId values
    };
    // ComponentId: LVP=0 SAP=1 CVP=2 CAP=3.
    const Variant variants[] = {
        {"paper: CVP,LVP,CAP,SAP", {2, 0, 3, 1}},
        {"value-agnostic-first: LVP,CVP,SAP,CAP", {0, 2, 1, 3}},
        {"address-first: CAP,SAP,CVP,LVP", {3, 1, 2, 0}},
        {"reverse: SAP,CAP,LVP,CVP", {1, 3, 0, 2}},
    };

    sim::TextTable t({"order", "speedup", "coverage", "accuracy",
                      "addr_share_of_used"});
    for (const auto &v : variants) {
        auto cfg = vp::CompositeConfig::homogeneous(1024);
        cfg.selectionOrder = v.order;
        const auto res = runner.run(v.name, compositeFactory(cfg));
        std::uint64_t addr_used = 0, used = 0;
        for (const auto &r : res.rows) {
            addr_used += r.withVp.usedByComponent[1] +
                         r.withVp.usedByComponent[3];
            used += r.withVp.predictionsUsed;
        }
        t.addRow({v.name, sim::fmtPct(res.geomeanSpeedup()),
                  sim::fmtPct(res.meanCoverage()),
                  sim::fmtPct(res.meanAccuracy()),
                  sim::fmtPct(used ? double(addr_used) / used : 0.0)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "abl_selection_order");
    std::cout << "\nexpected shape: speedups are close (confident "
                 "predictors rarely disagree), but value-first orders "
                 "use far fewer speculative cache probes\n";
    return finishBench();
}
