/**
 * @file
 * Microbenchmarks (google-benchmark): substrate throughput - TAGE,
 * cache hierarchy, and whole-pipeline simulation speed.
 */

#include <benchmark/benchmark.h>

#include "microbench_main.hh"

#include "branch/tage.hh"
#include "common/random.hh"
#include "core/composite.hh"
#include "memory/hierarchy.hh"
#include "pipeline/core.hh"
#include "trace/workloads.hh"

using namespace lvpsim;

namespace
{

void
BM_TagePredictUpdate(benchmark::State &state)
{
    branch::Tage tage;
    Xoshiro256 rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        const bool taken = (pc >> 4) & 1;
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        pc = 0x1000 + rng.below(256) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheHierarchyHit(benchmark::State &state)
{
    mem::MemoryHierarchy m;
    m.dataAccess(0x100, 0x10000, false); // warm one line
    for (auto _ : state) {
        auto r = m.dataAccess(0x100, 0x10000, false);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheHierarchyStream(benchmark::State &state)
{
    mem::MemoryHierarchy m;
    Addr a = 0x10000000;
    for (auto _ : state) {
        auto r = m.dataAccess(0x100, a, false);
        benchmark::DoNotOptimize(r);
        a += 64;
    }
    state.SetItemsProcessed(state.iterations());
}

/** Whole-core simulation speed, in simulated instructions/second. */
void
BM_PipelineSimulation(benchmark::State &state)
{
    const auto ops =
        trace::generateWorkload("memset_loop", 50000, 1);
    for (auto _ : state) {
        pipe::CoreConfig cfg;
        pipe::NullPredictor none;
        pipe::Core core(cfg, ops, &none);
        auto stats = core.run();
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}

void
BM_PipelineWithComposite(benchmark::State &state)
{
    const auto ops =
        trace::generateWorkload("memset_loop", 50000, 1);
    for (auto _ : state) {
        pipe::CoreConfig cfg;
        vp::CompositePredictor pred(
            vp::CompositeConfig::bestOf(1024));
        pipe::Core core(cfg, ops, &pred);
        auto stats = core.run();
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}

} // anonymous namespace

BENCHMARK(BM_TagePredictUpdate);
BENCHMARK(BM_CacheHierarchyHit);
BENCHMARK(BM_CacheHierarchyStream);
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineWithComposite)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return lvpsim::bench::microbenchMain(argc, argv, "micro_uarch");
}
