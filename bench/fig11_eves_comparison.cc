/**
 * @file
 * Paper Figure 11: composite predictor (4.2KB and 9.6KB budgets) vs
 * the CVP-1 winner EVES (8KB, 32KB, infinite): average speedup and
 * coverage. The paper's composite more than doubles EVES's coverage
 * and delivers >50% more speedup.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig11");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 11: composite vs EVES", rc, workloads.size());

    auto runner = makeRunner(workloads, rc);
    sim::TextTable t({"predictor", "storageKB", "speedup",
                      "coverage", "accuracy"});
    struct Row
    {
        std::string name;
        sim::SuiteResult res;
    };
    std::vector<Row> rows;

    // Composite budgets: 512 entries ~ 4.2KB, 1024 entries ~ 9.6KB
    // (at 76.5 bits/entry average, plus the PC-AM).
    for (std::size_t total : {512, 1024}) {
        const auto cfg = tunedComposite(total, rc.maxInstrs);
        rows.push_back({"composite-" + std::to_string(total),
                        runner.run("composite",
                                   compositeFactory(cfg))});
        std::cout << "." << std::flush;
    }
    rows.push_back(
        {"EVES-8KB",
         runner.run("eves8k", evesFactory(vp::EvesConfig::small8k()))});
    rows.push_back({"EVES-32KB",
                    runner.run("eves32k",
                               evesFactory(vp::EvesConfig::large32k()))});
    rows.push_back({"EVES-inf",
                    runner.run("evesinf",
                               evesFactory(vp::EvesConfig::infinite()))});
    std::cout << "\n\n";

    for (const auto &r : rows) {
        t.addRow({r.name, sim::fmtF(r.res.storageKB(), 1),
                  sim::fmtPct(r.res.geomeanSpeedup()),
                  sim::fmtPct(r.res.meanCoverage()),
                  sim::fmtPct(r.res.meanAccuracy())});
    }
    t.print(std::cout);
    t.printCsv(std::cout, "fig11");

    const auto &c96 = rows[1].res;
    const auto &e32 = rows[3].res;
    std::cout << "\ncomposite(1024) vs EVES-32KB:"
              << "  speedup increase "
              << sim::fmtPct(e32.geomeanSpeedup() > 0
                                 ? c96.geomeanSpeedup() /
                                           e32.geomeanSpeedup() -
                                       1.0
                                 : 0.0)
              << "  coverage increase "
              << sim::fmtPct(e32.meanCoverage() > 0
                                 ? c96.meanCoverage() /
                                           e32.meanCoverage() -
                                       1.0
                                 : 0.0)
              << "\npaper: +55% speedup, +133% coverage\n";
    return finishBench();
}
