/**
 * @file
 * Persistent-checkpoint-store benchmark: how much of a configuration
 * sweep's cost does the disk-backed store (docs/performance.md)
 * eliminate for a process that starts cold? The measured sweep is the
 * fig03-style grid every figure harness shares — component predictors
 * x table sizes over the whole workload suite — behind a warmup
 * region large enough (default 16x the measured instructions) that
 * checkpoint construction dominates, the regime the store targets.
 *
 * Four phases simulate the identical sweep (--phase all, default):
 *
 *   inline       store disabled, in-memory caches cleared: the
 *                no-store reference results and cost.
 *   cold         store enabled on an empty directory, caches
 *                cleared: pays every build plus publish I/O.
 *   warm-memory  store enabled, in-memory caches left warm: the L1
 *                hit path (disk untouched for results).
 *   warm-disk    store enabled, in-memory caches cleared again: a
 *                simulated fresh process, everything served from
 *                disk (store misses must be zero).
 *
 * Every (configuration, workload) SimStats pair is compared counter
 * by counter across all phases; any mismatch — or a warm-disk phase
 * that misses the store — aborts with exit 3, so the reported
 * speedup can only come from work that provably did not change the
 * results.
 *
 * --phase cold / --phase warm run one phase in isolation so
 * tools/bench_store.sh can measure a *real* fresh-process warm run
 * (two separate processes sharing --store) instead of an in-process
 * approximation; each such run emits an FNV-1a checksum over all
 * result counters that the script compares across processes.
 * tools/bench_store.sh commits BENCH_store.json; the `store_speedup`
 * ctest gate (tools/check_store_gate.sh) replays the two-process
 * measurement on Release trees.
 *
 * Command line (harness conventions, like every bench binary):
 *   --jobs N|auto  worker threads for all phases (default 1)
 *   --json FILE    write the measurement as BENCH_store.json
 *   --store DIR    store directory (required; must start empty for
 *                  --phase all / cold)
 *   --phase P      all | cold | warm (default all)
 *   --warmup N     warmup instructions (default LVPSIM_WARMUP, or
 *                  16x LVPSIM_INSTRS when unset)
 *
 * Run scaling: LVPSIM_INSTRS (default 20000), LVPSIM_SUITE.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/checkpoint_store.hh"
#include "sim/json.hh"
#include "sim/options.hh"
#include "sim/parallel_executor.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/workloads.hh"

#include "bench_common.hh"

using namespace lvpsim;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Every raw counter as (name, value), in declaration order. */
std::vector<std::pair<std::string, std::uint64_t>>
flatCounters(const pipe::SimStats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            out.emplace_back(std::string(name), v);
        });
    return out;
}

/** True when every counter matches; prints the first divergence. */
bool
statsIdentical(const std::string &what, const pipe::SimStats &ref,
               const pipe::SimStats &got)
{
    const auto a = flatCounters(ref);
    const auto b = flatCounters(got);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].second != b[i].second) {
            std::cerr << "MISMATCH " << what << ": " << a[i].first
                      << " ref=" << a[i].second
                      << " got=" << b[i].second << "\n";
            return false;
        }
    }
    return true;
}

/** One sweep over all configurations; caches cleared on request. */
struct SweepResult
{
    std::vector<sim::SuiteResult> runs;
    double wallSeconds = 0.0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    double storeSeconds = 0.0;
};

SweepResult
runSweep(
    const std::vector<std::string> &workloads,
    const std::vector<std::pair<std::string, sim::PredictorFactory>>
        &configs,
    const sim::RunConfig &rc, std::size_t jobs, bool clearMemory)
{
    if (clearMemory) {
        sim::CheckpointCache::instance().clear();
        sim::BaselineCache::instance().clear();
        sim::PlanCache::instance().clear();
    }
    auto &store = sim::CheckpointStore::instance();
    store.resetCounters();

    SweepResult out;
    const auto t0 = Clock::now();
    sim::SuiteRunner runner(workloads, rc, jobs);
    for (const auto &cfg : configs)
        out.runs.push_back(runner.run(cfg.first, cfg.second));
    out.wallSeconds = secondsSince(t0);
    out.storeHits = store.hits();
    out.storeMisses = store.misses();
    out.storeSeconds = store.seconds();
    return out;
}

/** FNV-1a over every result counter, for cross-process equality. */
std::string
resultsChecksum(const SweepResult &r)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (const auto &run : r.runs) {
        for (const auto &row : run.rows) {
            for (const auto &kv : flatCounters(row.base))
                mix(kv.second);
            for (const auto &kv : flatCounters(row.withVp))
                mix(kv.second);
        }
    }
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << h;
    return os.str();
}

bool
sweepsIdentical(
    const std::vector<std::string> &workloads,
    const std::vector<std::pair<std::string, sim::PredictorFactory>>
        &configs,
    const std::string &what, const SweepResult &ref,
    const SweepResult &got)
{
    bool ok = true;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const std::string tag =
                what + "/" + configs[c].first + "/" + workloads[w];
            ok &= statsIdentical(tag + "/base", ref.runs[c].rows[w].base,
                                 got.runs[c].rows[w].base);
            ok &= statsIdentical(tag, ref.runs[c].rows[w].withVp,
                                 got.runs[c].rows[w].withVp);
        }
    }
    return ok;
}

sim::JsonValue
phaseJson(const SweepResult &r)
{
    sim::JsonValue o = sim::JsonValue::object();
    o.set("wall_seconds", r.wallSeconds);
    o.set("store_hits", r.storeHits);
    o.set("store_misses", r.storeMisses);
    o.set("store_seconds", r.storeSeconds);
    return o;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = 1;
    std::string json_path;
    std::string store_dir;
    std::string phase = "all";
    const std::size_t instrs = sim::instrsFromEnv(20000);
    std::size_t warmup = sim::warmupFromEnv(16 * instrs);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << what << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            const std::string v = next("--jobs");
            if (!sim::ParallelExecutor::parseJobs(v, jobs)) {
                std::cerr << "bad --jobs value '" << v << "'\n";
                std::exit(2);
            }
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--store") {
            store_dir = next("--store");
        } else if (a == "--phase") {
            phase = next("--phase");
            if (phase != "all" && phase != "cold" &&
                phase != "warm") {
                std::cerr << "bad --phase value '" << phase
                          << "' (want all|cold|warm)\n";
                std::exit(2);
            }
        } else if (a == "--warmup") {
            const long long n = std::atoll(next("--warmup"));
            if (n < 0) {
                std::cerr << "bad --warmup value (want >= 0)\n";
                std::exit(2);
            }
            warmup = std::size_t(n);
        } else if (a == "--help" || a == "-h") {
            std::cout << "store_throughput [--jobs N|auto] "
                         "[--json FILE] --store DIR "
                         "[--phase all|cold|warm] [--warmup N]\n"
                         "env: LVPSIM_INSTRS, LVPSIM_WARMUP, "
                         "LVPSIM_SUITE\n";
            return 0;
        } else {
            std::cerr << "unknown option '" << a
                      << "' (try --help)\n";
            return 2;
        }
    }
    if (store_dir.empty()) {
        std::cerr << "missing --store DIR (the store is the thing "
                     "under test)\n";
        return 2;
    }

    sim::RunConfig rc;
    rc.maxInstrs = instrs;
    rc.warmupInstrs = warmup;

    const auto workloads = sim::suiteFromEnv();
    const pipe::ComponentId comps[] = {
        pipe::ComponentId::LVP, pipe::ComponentId::SAP,
        pipe::ComponentId::CVP, pipe::ComponentId::CAP};
    const std::size_t sizes[] = {256, 1024, 4096};
    std::vector<std::pair<std::string, sim::PredictorFactory>> configs;
    for (pipe::ComponentId id : comps)
        for (std::size_t n : sizes)
            configs.emplace_back(std::string(pipe::componentName(id)) +
                                     "-" + std::to_string(n),
                                 bench::singleFactory(id, n));

    const std::size_t W = workloads.size();
    const std::size_t C = configs.size();
    std::cout << "store throughput: " << C << " configurations x "
              << W << " workloads, " << instrs
              << " instructions after " << warmup
              << " warmup, jobs=" << jobs << ", phase=" << phase
              << "\n";

    // Trace synthesis is identical work in every phase; run it up
    // front so none of them is charged for it.
    sim::ParallelExecutor pool(jobs);
    pool.parallelFor(W, [&](std::size_t i) {
        sim::TraceCache::instance().get(
            workloads[i], rc.maxInstrs + rc.warmupInstrs,
            rc.traceSeed);
    });

    auto &store = sim::CheckpointStore::instance();
    auto sweep = [&](bool clearMemory) {
        return runSweep(workloads, configs, rc, jobs, clearMemory);
    };

    if (phase == "cold" || phase == "warm") {
        // One isolated phase for the cross-process measurement
        // (tools/bench_store.sh runs cold and warm as separate
        // processes sharing --store).
        store.configure(store_dir, 0);
        if (!store.enabled()) {
            std::cerr << "store directory '" << store_dir
                      << "' is unusable\n";
            return 2;
        }
        const auto r = sweep(true);
        std::cout << phase << " process:  "
                  << sim::fmtF(r.wallSeconds, 3) << " s ("
                  << r.storeHits << " store hits, " << r.storeMisses
                  << " misses)\n";
        if (phase == "cold" && r.storeMisses == 0) {
            std::cerr << "cold phase had no store misses; the store "
                         "directory was not empty\n";
            return 3;
        }
        if (phase == "warm" &&
            (r.storeMisses != 0 || r.storeHits == 0)) {
            std::cerr << "warm phase was not fully served from disk ("
                      << r.storeHits << " hits, " << r.storeMisses
                      << " misses)\n";
            return 3;
        }
        if (json_path.empty())
            return 0;
        sim::JsonValue doc = sim::JsonValue::object();
        doc.set("schema_version", std::uint64_t(1));
        doc.set("tool", "lvpsim");
        sim::JsonValue meta = sim::JsonValue::object();
        meta.set("bench", "store_throughput");
        meta.set("phase", phase);
        meta.set("jobs", std::uint64_t(jobs));
        meta.set("instructions", std::uint64_t(instrs));
        meta.set("warmup_instructions", std::uint64_t(warmup));
        meta.set("suite", std::getenv("LVPSIM_SUITE")
                              ? std::getenv("LVPSIM_SUITE")
                              : "full");
        meta.set("configs", std::uint64_t(C));
        meta.set("workloads", std::uint64_t(W));
        doc.set("meta", std::move(meta));
        doc.set(phase, phaseJson(r));
        doc.set("results_checksum", resultsChecksum(r));
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        doc.dump(os);
        os << "\n";
        std::cout << "results: " << json_path << "\n";
        return 0;
    }

    // -------- inline: no store, the reference sweep --------
    store.configure("", 0);
    const auto inline_r = sweep(true);
    std::cout << "inline (no store):      "
              << sim::fmtF(inline_r.wallSeconds, 3) << " s\n";

    // -------- cold: empty store, pays builds + publish I/O -------
    store.configure(store_dir, 0);
    if (!store.enabled()) {
        std::cerr << "store directory '" << store_dir
                  << "' is unusable\n";
        return 2;
    }
    const auto cold = sweep(true);
    std::cout << "cold (publishes):       "
              << sim::fmtF(cold.wallSeconds, 3) << " s ("
              << cold.storeMisses << " misses, "
              << sim::fmtF(cold.storeSeconds, 3) << " s store I/O)\n";

    // -------- warm-memory: L1 intact, disk untouched --------
    const auto warm_mem = sweep(false);
    std::cout << "warm (memory, L1):      "
              << sim::fmtF(warm_mem.wallSeconds, 3) << " s\n";

    // -------- warm-disk: simulated fresh process --------
    const auto warm_disk = sweep(true);
    std::cout << "warm (disk, L2):        "
              << sim::fmtF(warm_disk.wallSeconds, 3) << " s ("
              << warm_disk.storeHits << " hits, "
              << warm_disk.storeMisses << " misses)\n";

    // -------- self-checks --------
    bool identical = true;
    if (cold.storeMisses == 0) {
        std::cerr << "cold phase had no store misses; the store "
                     "directory was not empty\n";
        identical = false;
    }
    if (warm_disk.storeMisses != 0 || warm_disk.storeHits == 0) {
        std::cerr << "warm-disk phase was not fully served from "
                     "disk ("
                  << warm_disk.storeHits << " hits, "
                  << warm_disk.storeMisses << " misses)\n";
        identical = false;
    }
    identical &= sweepsIdentical(workloads, configs, "cold",
                                 inline_r, cold);
    identical &= sweepsIdentical(workloads, configs, "warm-memory",
                                 inline_r, warm_mem);
    identical &= sweepsIdentical(workloads, configs, "warm-disk",
                                 inline_r, warm_disk);
    if (!identical) {
        std::cerr << "store-served results diverged from the inline "
                     "reference; refusing to report a speedup\n";
        return 3;
    }

    const double speedup = warm_disk.wallSeconds > 0.0
                               ? cold.wallSeconds /
                                     warm_disk.wallSeconds
                               : 0.0;
    const double mem_speedup =
        warm_mem.wallSeconds > 0.0
            ? cold.wallSeconds / warm_mem.wallSeconds
            : 0.0;
    std::cout << "identical results: yes\n"
              << "store speedup: " << sim::fmtF(speedup, 2)
              << "x warm-disk, " << sim::fmtF(mem_speedup, 2)
              << "x warm-memory\n";

    if (json_path.empty())
        return 0;

    sim::JsonValue doc = sim::JsonValue::object();
    doc.set("schema_version", std::uint64_t(1));
    doc.set("tool", "lvpsim");
    sim::JsonValue meta = sim::JsonValue::object();
    meta.set("bench", "store_throughput");
    meta.set("phase", "all");
    meta.set("jobs", std::uint64_t(jobs));
    meta.set("instructions", std::uint64_t(instrs));
    meta.set("warmup_instructions", std::uint64_t(warmup));
    meta.set("suite", std::getenv("LVPSIM_SUITE")
                          ? std::getenv("LVPSIM_SUITE")
                          : "full");
    meta.set("configs", std::uint64_t(C));
    meta.set("workloads", std::uint64_t(W));
    doc.set("meta", std::move(meta));
    doc.set("inline", phaseJson(inline_r));
    doc.set("cold", phaseJson(cold));
    doc.set("warm_memory", phaseJson(warm_mem));
    doc.set("warm_disk", phaseJson(warm_disk));
    doc.set("speedup", speedup);
    doc.set("warm_memory_speedup", mem_speedup);
    doc.set("results_checksum", resultsChecksum(inline_r));
    doc.set("identical", true);

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    doc.dump(os);
    os << "\n";
    std::cout << "results: " << json_path << "\n";
    return 0;
}
