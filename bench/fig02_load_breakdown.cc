/**
 * @file
 * Paper Figure 2: breakdown of dynamic loads into Pattern-1 (LVP
 * proxy), Pattern-2 (SAP proxy) and Pattern-3 (CVP/CAP proxy), using
 * infinite-resource classification (Section IV-A).
 */

#include "bench_common.hh"
#include "core/oracle.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main()
{
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 2: load breakdown by pattern", rc,
           workloads.size());

    sim::TextTable t({"workload", "pattern1(LVP)", "pattern2(SAP)",
                      "pattern3(CVP/CAP)", "loads"});
    vp::PatternBreakdown total;
    for (const auto &w : workloads) {
        auto ops = sim::TraceCache::instance().get(w, rc.maxInstrs,
                                                   rc.traceSeed);
        const auto b = vp::classifyLoadPatterns(*ops);
        t.addRow({w, sim::fmtPct(b.frac1()), sim::fmtPct(b.frac2()),
                  sim::fmtPct(b.frac3()),
                  std::to_string(b.total())});
        total.pattern1 += b.pattern1;
        total.pattern2 += b.pattern2;
        total.pattern3 += b.pattern3;
    }
    t.addRow({"SUITE", sim::fmtPct(total.frac1()),
              sim::fmtPct(total.frac2()), sim::fmtPct(total.frac3()),
              std::to_string(total.total())});
    t.print(std::cout);
    t.printCsv(std::cout, "fig02");

    std::cout << "\npaper shape: roughly even split across the three "
                 "patterns over the whole pool\n";
    return 0;
}
