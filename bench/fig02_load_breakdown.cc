/**
 * @file
 * Paper Figure 2: breakdown of dynamic loads into Pattern-1 (LVP
 * proxy), Pattern-2 (SAP proxy) and Pattern-3 (CVP/CAP proxy), using
 * infinite-resource classification (Section IV-A).
 */

#include "bench_common.hh"
#include "core/oracle.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig02");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 2: load breakdown by pattern", rc,
           workloads.size());

    sim::TextTable t({"workload", "pattern1(LVP)", "pattern2(SAP)",
                      "pattern3(CVP/CAP)", "loads"});
    // Classify on the pool (one slot per workload), emit rows in
    // workload order afterwards: output is --jobs invariant.
    std::vector<vp::PatternBreakdown> per(workloads.size());
    sim::ParallelExecutor pool(benchJobs());
    pool.parallelFor(workloads.size(), [&](std::size_t i) {
        auto ops = sim::TraceCache::instance().get(
            workloads[i], rc.maxInstrs, rc.traceSeed);
        per[i] = vp::classifyLoadPatterns(*ops);
    });
    vp::PatternBreakdown total;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto &b = per[i];
        t.addRow({workloads[i], sim::fmtPct(b.frac1()),
                  sim::fmtPct(b.frac2()), sim::fmtPct(b.frac3()),
                  std::to_string(b.total())});
        total.pattern1 += b.pattern1;
        total.pattern2 += b.pattern2;
        total.pattern3 += b.pattern3;
    }
    t.addRow({"SUITE", sim::fmtPct(total.frac1()),
              sim::fmtPct(total.frac2()), sim::fmtPct(total.frac3()),
              std::to_string(total.total())});
    t.print(std::cout);
    t.printCsv(std::cout, "fig02");

    std::cout << "\npaper shape: roughly even split across the three "
                 "patterns over the whole pool\n";
    return finishBench();
}
