/**
 * @file
 * Ablation: the paper tunes every confidence threshold to a 99%
 * accuracy target and claims lower accuracy decreases performance
 * (Section III-B). This bench lowers the thresholds and shows the
 * coverage/accuracy/speedup trade-off.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "abl_confidence");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Ablation: confidence thresholds vs the 99% accuracy "
           "design target",
           rc, workloads.size());

    auto runner = makeRunner(workloads, rc);

    struct Variant
    {
        const char *name;
        unsigned lvp, sap, cvp, cap;
    };
    // Threshold overrides (0 = Table IV default).
    const Variant variants[] = {
        {"paper (7/3/4/3)", 0, 0, 0, 0},
        {"lowered (5/2/3/2)", 5, 2, 3, 2},
        {"minimal (2/1/1/1)", 2, 1, 1, 1},
    };

    sim::TextTable t({"thresholds", "speedup", "coverage",
                      "accuracy", "flushes_per_kilo"});
    for (const auto &v : variants) {
        auto cfg = vp::CompositeConfig::homogeneous(1024);
        cfg.lvpConfThreshold = v.lvp;
        cfg.sapConfThreshold = v.sap;
        cfg.cvpConfThreshold = v.cvp;
        cfg.capConfThreshold = v.cap;
        const auto res = runner.run(v.name, compositeFactory(cfg));
        std::uint64_t flushes = 0, instrs = 0;
        for (const auto &r : res.rows) {
            flushes += r.withVp.vpFlushes;
            instrs += r.withVp.instructions;
        }
        t.addRow({v.name, sim::fmtPct(res.geomeanSpeedup()),
                  sim::fmtPct(res.meanCoverage()),
                  sim::fmtPct(res.meanAccuracy()),
                  sim::fmtF(1000.0 * double(flushes) /
                                double(instrs),
                            3)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "abl_confidence");
    std::cout << "\nexpected shape: lower thresholds raise coverage "
                 "but collapse accuracy, and the flush cost erases "
                 "the speedup - the paper's 99% target is the right "
                 "operating point\n";
    return finishBench();
}
