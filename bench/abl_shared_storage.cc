/**
 * @file
 * Ablation: the storage optimization the paper points at but leaves
 * out of scope (Section III-B closing remark) - decoupling the value
 * arrays of LVP and CVP into one shared, deduplicated pool. The paper
 * claims employing it "will not impact the findings"; this bench
 * checks that: storage drops substantially while speedup, coverage
 * and accuracy stay put.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "abl_shared_storage");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Ablation: shared value array (LVP+CVP)", rc,
           workloads.size());

    auto runner = makeRunner(workloads, rc);

    sim::TextTable t({"config", "storageKB", "speedup", "coverage",
                      "accuracy"});
    for (std::size_t total : {512, 1024, 2048}) {
        auto cfg = vp::CompositeConfig::homogeneous(total);
        const auto plain = runner.run("inline", compositeFactory(cfg));
        t.addRow({"inline-" + std::to_string(total),
                  sim::fmtF(plain.storageKB(), 2),
                  sim::fmtPct(plain.geomeanSpeedup()),
                  sim::fmtPct(plain.meanCoverage()),
                  sim::fmtPct(plain.meanAccuracy())});
        for (std::size_t pool : {std::size_t(0), total / 4}) {
            cfg.sharedValueArray = true;
            cfg.sharedPoolEntries = pool;
            const auto shared =
                runner.run("shared", compositeFactory(cfg));
            t.addRow({"shared" +
                          (pool ? std::to_string(pool) : "auto") +
                          "-" + std::to_string(total),
                      sim::fmtF(shared.storageKB(), 2),
                      sim::fmtPct(shared.geomeanSpeedup()),
                      sim::fmtPct(shared.meanCoverage()),
                      sim::fmtPct(shared.meanAccuracy())});
            std::cout << "." << std::flush;
        }
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "abl_shared_storage");
    std::cout << "\nexpected shape: ~30-40% total storage saved with "
                 "little speedup/coverage/accuracy change, as the "
                 "paper asserts\n";
    return finishBench();
}
