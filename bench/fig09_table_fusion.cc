/**
 * @file
 * Paper Figure 9: speedup from epoch-based table fusion. Like smart
 * training, fusion is most helpful for small predictors; at 1K
 * entries and above it contributes no speedup.
 */

#include "bench_common.hh"

using namespace lvpsim;
using namespace lvpsim::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv, "fig09");
    const auto rc = benchRunConfig();
    const auto workloads = sim::suiteFromEnv();
    banner("Figure 9: table fusion", rc, workloads.size());

    auto runner = makeRunner(workloads, rc);
    const std::size_t totals[] = {256, 512, 1024, 2048};

    sim::TextTable t({"total_entries", "no_fusion", "fusion",
                      "fusion_gain"});
    for (std::size_t total : totals) {
        auto cfg = scaleEpochs(
            vp::CompositeConfig::homogeneous(total), rc.maxInstrs);
        const auto off =
            runner.run("no-fusion", compositeFactory(cfg));
        cfg.tableFusion = true;
        const auto on = runner.run("fusion", compositeFactory(cfg));
        t.addRow({std::to_string(total),
                  sim::fmtPct(off.geomeanSpeedup()),
                  sim::fmtPct(on.geomeanSpeedup()),
                  sim::fmtPct(on.geomeanSpeedup() -
                              off.geomeanSpeedup())});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    t.print(std::cout);
    t.printCsv(std::cout, "fig09");
    std::cout << "\npaper shape: fusion helps small predictors; at 1K "
                 "entries and above it is neutral\n";
    return finishBench();
}
