/**
 * @file
 * Paper Table V: for the Listing 1 loop (N = 16 inner iterations),
 * how many inner-loop loads must complete before each component
 * predictor makes a prediction, at various outer iterations o.
 *
 * As in the paper this is an aliasing-free, in-order analysis: each
 * component is probed and trained in trace order, standalone. A dash
 * means the predictor never predicts in that outer iteration; 0 means
 * it predicts on the first inner iteration.
 */

#include <map>

#include "bench_common.hh"
#include "core/cap.hh"
#include "core/cvp.hh"
#include "core/lvp.hh"
#include "core/sap.hh"
#include "trace/kernels/memset_loop.hh"

using namespace lvpsim;
using namespace lvpsim::bench;
using namespace lvpsim::trace;

namespace
{

/** First predicting inner index per outer iteration, or -1. */
std::map<unsigned, int>
analyze(vp::ComponentPredictor &comp,
        const std::vector<MicroOp> &ops, Addr studied_pc,
        unsigned inner_n)
{
    std::map<unsigned, int> first_pred;
    std::map<Addr, unsigned> inflight; // pc -> in-flight (always 0
                                       // here: in-order analysis)
    (void)inflight;
    std::uint64_t token = 1;
    unsigned outer = 0, inner = 0;
    for (const auto &op : ops) {
        if (op.isBranch())
            comp.notifyBranch(op.pc, op.taken, op.target);
        if (!op.isLoad())
            continue;
        if (op.pc == studied_pc) {
            pipe::LoadProbe probe;
            probe.pc = op.pc;
            probe.token = token;
            const auto cp = comp.lookup(probe);
            const bool correct =
                cp.confident &&
                (cp.pred.isValue() ? cp.pred.value == op.memValue
                                   : cp.pred.addr == op.effAddr);
            if (correct && !first_pred.count(outer))
                first_pred[outer] = int(inner);
            if (++inner == inner_n) {
                if (!first_pred.count(outer))
                    first_pred[outer] = -1;
                inner = 0;
                ++outer;
            }
        } else {
            pipe::LoadProbe probe;
            probe.pc = op.pc;
            probe.token = token;
            comp.lookup(probe);
        }
        comp.notifyLoad(op.pc);
        pipe::LoadOutcome o;
        o.pc = op.pc;
        o.token = token++;
        o.effAddr = op.effAddr;
        o.size = op.memSize;
        o.value = op.memValue;
        comp.train(o);
    }
    return first_pred;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv, "tab05");
    constexpr unsigned inner_n = 16;
    constexpr unsigned outer_m = 80;
    MemsetLoopKernel kernel(inner_n, outer_m);
    const auto ops = kernel.generate(1u << 20, 1);

    // The studied load is the only load site in the kernel.
    Addr studied_pc = 0;
    for (const auto &op : ops)
        if (op.isLoad()) {
            studied_pc = op.pc;
            break;
        }

    std::cout << "Table V: first predicted inner-loop iteration of "
                 "Listing 1 (N=16), per outer iteration o\n"
              << "('-' = no prediction that outer iteration)\n\n";

    const unsigned outs[] = {0, 1, 2, 4, 8, 16, 32, 64};
    sim::TextTable t({"predictor", "o=0", "o=1", "o=2", "o=4", "o=8",
                      "o=16", "o=32", "o=64"});

    auto row = [&](const char *name,
                   vp::ComponentPredictor &comp) {
        const auto fp = analyze(comp, ops, studied_pc, inner_n);
        std::vector<std::string> cells{name};
        for (unsigned o : outs) {
            auto it = fp.find(o);
            if (it == fp.end() || it->second < 0)
                cells.push_back("-");
            else
                cells.push_back(std::to_string(it->second));
        }
        t.addRow(cells);
    };

    vp::Lvp lvp(1024, 1);
    vp::Sap sap(1024, 1);
    vp::Cvp cvp(1024, 1);
    vp::Cap cap(1024, 1);
    row("LVP", lvp);
    row("SAP", sap);
    row("CVP", cvp);
    row("CAP", cap);

    t.print(std::cout);
    t.printCsv(std::cout, "tab05");

    std::cout
        << "\npaper shape: SAP retrains every outer iteration "
           "(predicts after ~9 loads each o); LVP needs ~64 total "
           "observations but then predicts from i=0; CVP needs its "
           "history to fill plus ~16 observations; CAP predicts the "
           "early iterations (distinct history) once o > 4\n";
    return finishBench();
}
