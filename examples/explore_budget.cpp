/**
 * @file
 * Example: sweep the composite predictor's storage budget on one
 * workload and print the speedup/coverage curve - the kind of design
 * space exploration the paper's Section V performs, as a library user
 * would script it.
 *
 *   ./examples/explore_budget [workload]
 */

#include <iostream>
#include <string>

#include "core/composite.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"

int
main(int argc, char **argv)
{
    using namespace lvpsim;

    const std::string workload =
        argc > 1 ? argv[1] : "pointer_chase";
    sim::RunConfig rc;
    rc.maxInstrs = sim::instrsFromEnv(150000);

    pipe::NullPredictor none;
    const auto base = sim::runWorkload(workload, &none, rc);
    std::cout << "workload " << workload << ": baseline IPC "
              << base.ipc() << "\n\n";

    sim::TextTable t({"total_entries", "storageKB", "ipc", "speedup",
                      "coverage", "accuracy", "flushes"});
    for (std::size_t total : {128, 256, 512, 1024, 2048, 4096}) {
        vp::CompositeConfig cfg = vp::CompositeConfig::bestOf(total);
        cfg.epochInstrs = rc.maxInstrs / 40;
        vp::CompositePredictor p(cfg);
        const auto s = sim::runWorkload(workload, &p, rc);
        t.addRow({std::to_string(total),
                  sim::fmtF(double(p.storageBits()) / 8192.0, 2),
                  sim::fmtF(s.ipc(), 3),
                  sim::fmtPct(s.ipc() / base.ipc() - 1.0),
                  sim::fmtPct(s.coverage()),
                  sim::fmtPct(s.accuracy()),
                  std::to_string(s.vpFlushes)});
    }
    t.print(std::cout);
    return 0;
}
