/**
 * @file
 * Example: define a brand-new workload kernel with the Asm DSL, run it
 * against the full suite of predictors, and classify its loads with
 * the infinite-resource oracle - everything a user needs to study
 * their own access pattern.
 */

#include <iostream>
#include <memory>

#include "core/composite.hh"
#include "core/eves.hh"
#include "core/oracle.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"
#include "sim/tableio.hh"
#include "trace/synth_kernel.hh"

using namespace lvpsim;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4;

/**
 * A toy "transaction log" kernel: append records to a log (strided
 * stores), then scan the recent window (strided loads) and reread a
 * hot header (constant loads). Mixes Pattern-1 and Pattern-2 loads.
 */
class TxLogKernel : public trace::SynthKernel
{
  public:
    TxLogKernel() : SynthKernel("tx_log") {}

  protected:
    static constexpr Addr headerBase = 0x70000000;
    static constexpr Addr logBase = 0x70001000;
    static constexpr unsigned recSize = 32;
    static constexpr unsigned window = 64;

    void
    init(trace::Asm &a) const override
    {
        a.mem().write(headerBase, 0xfeed, 8); // magic
    }

    void
    body(trace::Asm &a) const override
    {
        std::uint64_t seq = 0;
        a.imm("log", r1, logBase);
        while (!a.done()) {
            // Append a record.
            a.load("ld_magic", r2, r1, 0, 8); // wait: header lives
            a.imm("hdr", r3, headerBase);
            a.load("ld_hdr", r2, r3, 0, 8); // hot header (P1)
            a.imm("val", r4, seq * 1315423911u);
            a.store("st_rec", r4, r1, 8, 8);
            a.addi("adv", r1, r1, recSize);
            ++seq;
            // Every 16 appends, scan the last `window` records.
            if (seq % 16 == 0) {
                const std::int64_t back =
                    -std::int64_t(recSize) * window;
                a.addi("scan0", r2, r1, back);
                for (unsigned i = 0; i < window; ++i) {
                    a.load("ld_scan", r4, r2, 8, 8); // strided (P2)
                    a.addi("scani", r2, r2, recSize);
                    a.branch("scanbr", i + 1 < window, "ld_scan",
                             r2);
                }
            }
            a.branch("loop", true, "ld_magic", r1);
        }
    }
};

} // anonymous namespace

int
main()
{
    sim::RunConfig rc;
    rc.maxInstrs = sim::instrsFromEnv(150000);

    TxLogKernel kernel;
    const auto ops = kernel.generate(rc.maxInstrs, 1);

    // 1. What does the oracle say about this kernel's loads?
    const auto b = vp::classifyLoadPatterns(ops);
    std::cout << "tx_log load patterns: P1 " << sim::fmtPct(b.frac1())
              << "  P2 " << sim::fmtPct(b.frac2()) << "  P3 "
              << sim::fmtPct(b.frac3()) << "\n\n";

    // 2. How do the predictors fare?
    pipe::NullPredictor none;
    const auto base = sim::runTrace(ops, &none, rc);

    sim::TextTable t({"predictor", "speedup", "coverage",
                      "accuracy"});
    auto report = [&](const char *name,
                      pipe::LoadValuePredictor &p) {
        const auto s = sim::runTrace(ops, &p, rc);
        t.addRow({name, sim::fmtPct(s.ipc() / base.ipc() - 1.0),
                  sim::fmtPct(s.coverage()),
                  sim::fmtPct(s.accuracy())});
    };

    for (auto id : {pipe::ComponentId::LVP, pipe::ComponentId::SAP,
                    pipe::ComponentId::CVP, pipe::ComponentId::CAP}) {
        auto single = vp::makeSinglePredictor(id, 1024);
        report(pipe::componentName(id), *single);
    }
    vp::CompositeConfig cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = rc.maxInstrs / 40;
    vp::CompositePredictor composite(cfg);
    report("composite", composite);
    vp::EvesPredictor eves(vp::EvesConfig::large32k());
    report("EVES-32K", eves);

    t.print(std::cout);
    return 0;
}
