/**
 * @file
 * Example: dissect what value prediction does to the pipeline on a
 * latency-bound workload - full run statistics with and without the
 * composite predictor, plus the per-component usage breakdown.
 */

#include <iostream>

#include "core/composite.hh"
#include "pipeline/core.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace lvpsim;

    const std::string workload =
        argc > 1 ? argv[1] : "pointer_chase";
    sim::RunConfig rc;
    rc.maxInstrs = sim::instrsFromEnv(150000);

    auto ops = sim::TraceCache::instance().get(workload,
                                               rc.maxInstrs,
                                               rc.traceSeed);

    pipe::NullPredictor none;
    pipe::Core base_core(rc.core, *ops, &none);
    const auto base = base_core.run();

    vp::CompositeConfig cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = rc.maxInstrs / 40;
    vp::CompositePredictor composite(cfg);
    pipe::Core vp_core(rc.core, *ops, &composite);
    const auto with_vp = vp_core.run();

    std::cout << "==== " << workload << ": baseline ====\n";
    base.dump(std::cout);
    std::cout << "  -- substrate --\n";
    base_core.dumpSubstrateStats(std::cout);
    std::cout << "\n==== " << workload << ": composite ("
              << double(composite.storageBits()) / 8192.0
              << " KB) ====\n";
    with_vp.dump(std::cout);
    std::cout << "  -- substrate --\n";
    vp_core.dumpSubstrateStats(std::cout);
    std::cout << "\n==== composite internals ====\n";
    composite.dumpStats(std::cout);

    std::cout << "\nspeedup: "
              << 100.0 * (with_vp.ipc() / base.ipc() - 1.0) << "%\n";
    return 0;
}
