/**
 * @file
 * Quickstart: build the paper's best composite predictor, run one
 * workload against the Skylake-like baseline core, and compare with
 * the no-prediction baseline.
 *
 *   ./examples/quickstart [workload] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/composite.hh"
#include "core/lvp_interface.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace lvpsim;

    const std::string workload = argc > 1 ? argv[1] : "memset_loop";
    sim::RunConfig rc;
    rc.maxInstrs =
        argc > 2 ? std::size_t(std::atoll(argv[2]))
                 : sim::instrsFromEnv(200000);

    std::cout << "workload: " << workload << "  ("
              << rc.maxInstrs << " instructions)\n\n";

    // Baseline: no value prediction.
    pipe::NullPredictor none;
    const auto base = sim::runWorkload(workload, &none, rc);

    // The paper's composite predictor with every optimization on:
    // 1K entries total, PC-AM, smart training, table fusion.
    vp::CompositeConfig cfg = vp::CompositeConfig::bestOf(1024);
    cfg.epochInstrs = rc.maxInstrs / 40; // scale epochs to run length
    vp::CompositePredictor composite(cfg);
    const auto with_vp = sim::runWorkload(workload, &composite, rc);

    std::cout << "baseline IPC:   " << base.ipc() << "\n";
    std::cout << "composite IPC:  " << with_vp.ipc() << "\n";
    std::cout << "speedup:        "
              << 100.0 * (with_vp.ipc() / base.ipc() - 1.0) << "%\n";
    std::cout << "coverage:       " << 100.0 * with_vp.coverage()
              << "% of eligible loads\n";
    std::cout << "accuracy:       " << 100.0 * with_vp.accuracy()
              << "% of used predictions\n";
    std::cout << "predictor size: "
              << double(composite.storageBits()) / 8192.0 << " KB\n\n";

    std::cout << "--- detailed run statistics ---\n";
    with_vp.dump(std::cout);
    std::cout << "\n--- composite internals ---\n";
    composite.dumpStats(std::cout);
    return 0;
}
