#include "core/oracle.hh"

#include "common/flat_map.hh"

namespace lvpsim
{
namespace vp
{

PatternBreakdown
classifyLoadPatterns(const std::vector<trace::MicroOp> &ops)
{
    struct PcState
    {
        bool seen = false;
        Value lastValue = 0;
        bool seenAddr = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        bool strideValid = false;
    };

    FlatMap<Addr, PcState> state;
    PatternBreakdown out;

    for (const auto &op : ops) {
        if (!op.isPredictableLoad())
            continue;
        PcState &s = state[op.pc];

        const bool p1 = s.seen && s.lastValue == op.memValue;
        const bool p2 =
            s.strideValid &&
            Addr(std::int64_t(s.lastAddr) + s.stride) == op.effAddr;

        // Ordered and exclusive: a Pattern-1 load is never considered
        // for Pattern-2 or Pattern-3 (paper Section IV-A).
        if (p1)
            ++out.pattern1;
        else if (p2)
            ++out.pattern2;
        else
            ++out.pattern3;

        // Infinite-resource bookkeeping.
        s.lastValue = op.memValue;
        s.seen = true;
        if (s.seenAddr) {
            s.stride =
                std::int64_t(op.effAddr) - std::int64_t(s.lastAddr);
            s.strideValid = true;
        }
        s.lastAddr = op.effAddr;
        s.seenAddr = true;
    }
    return out;
}

} // namespace vp
} // namespace lvpsim
