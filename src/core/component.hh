/**
 * @file
 * Internal interface shared by the four component load value
 * predictors (LVP, SAP, CVP, CAP). The composite predictor drives
 * components through this interface; a component can also run alone
 * via makeSinglePredictor().
 *
 * Protocol: for every probed load, lookup() is called exactly once at
 * fetch, and then exactly one of train() or abandon() is called with
 * the same token (at retire or squash). Context-aware components keep
 * per-token snapshots of their fetch-time indices/tags.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "core/lvp_interface.hh"

namespace lvpsim
{
namespace vp
{

/** What a component reports at fetch. */
struct ComponentPrediction
{
    bool confident = false;
    pipe::Prediction pred{};
};

class ComponentPredictor
{
  public:
    explicit ComponentPredictor(pipe::ComponentId component_id)
        : componentId(component_id)
    {}

    virtual ~ComponentPredictor() = default;

    pipe::ComponentId id() const { return componentId; }

    /** Probe at fetch (high-confidence prediction or nothing). */
    virtual ComponentPrediction lookup(const pipe::LoadProbe &p) = 0;

    /** Retirement-order training with the architectural outcome. */
    virtual void train(const pipe::LoadOutcome &o) = 0;

    /** Drop any per-token state without training. */
    virtual void abandon(std::uint64_t token) { (void)token; }

    /**
     * Would this component's fetch-time prediction have been correct
     * for this outcome? Used by the accuracy monitors and smart
     * training; must be callable before train()/abandon().
     */
    virtual bool wouldBeCorrect(const ComponentPrediction &cp,
                                const pipe::LoadOutcome &o) const
    {
        if (!cp.confident)
            return false;
        if (cp.pred.isValue())
            return cp.pred.value == o.value;
        return cp.pred.addr == o.effAddr;
    }

    /** Smart training: invalidate the entry for this PC (SAP only). */
    virtual void invalidateEntry(Addr pc) { (void)pc; }

    // History maintenance (context-aware components).
    virtual void notifyBranch(Addr pc, bool taken, Addr target)
    {
        (void)pc; (void)taken; (void)target;
    }
    virtual void notifyLoad(Addr pc) { (void)pc; }

    // ---- Table fusion hooks (Section V-E) ---------------------------
    /** Become a donor: table flushed and repurposed; stop predicting. */
    virtual void donateTable() {}
    /** Receive @p donor_tables extra ways' worth of storage. */
    virtual void receiveWays(unsigned donor_tables) { (void)donor_tables; }
    /** Revert to the unfused configuration. */
    virtual void unfuse() {}
    virtual bool isDonor() const { return false; }

    /**
     * Visit every live confidence counter as (value, max_level).
     * Used by the qa state-bounds checks: a counter outside
     * [0, max_level] means a saturation bug. Components without
     * table state visit nothing.
     */
    virtual void
    visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn) const
    {
        (void)fn;
    }

    /** Bit-exact storage (excluding any donated/received ways; the
     *  fusion design keeps total storage constant). */
    virtual std::uint64_t storageBits() const = 0;
    virtual std::size_t numEntries() const = 0;
    virtual unsigned entryBits() const = 0;

  private:
    pipe::ComponentId componentId;
};

} // namespace vp
} // namespace lvpsim

