/**
 * @file
 * SAP: Stride Address Predictor (paper Section III-B.1).
 *
 * PC-indexed, tagged table; each entry is a 14-bit tag, 49-bit last
 * virtual address, 2-bit FPC confidence, 10-bit stride and 2-bit load
 * size (77 bits). Prediction requires confidence >= 3 (effective 9
 * consecutive same-stride observations) and accounts for in-flight
 * occurrences of the load, as in EVES's stride predictor.
 */

#pragma once

#include "common/bitutils.hh"
#include "common/random.hh"
#include "common/tagged_table.hh"
#include "core/component.hh"
#include "core/vp_params.hh"

namespace lvpsim
{
namespace vp
{

class Sap : public ComponentPredictor
{
  public:
    explicit Sap(std::size_t entries, std::uint64_t seed = 0x5a9,
                 unsigned conf_threshold = sapConfThreshold)
        : ComponentPredictor(pipe::ComponentId::SAP), rng(seed),
          confThreshold(conf_threshold)
    {
        if (entries > 0)
            table.configure(entries, 1);
    }

    ComponentPrediction
    lookup(const pipe::LoadProbe &p) override
    {
        ComponentPrediction cp;
        if (disabled())
            return cp;
        const auto *way = table.lookup(index(p.pc), tag(p.pc));
        if (way && way->payload.conf.atLeast(confThreshold)) {
            const Entry &e = way->payload;
            // The table holds the address of the last *retired*
            // instance; step the stride once per in-flight instance
            // plus once for this instance.
            const std::int64_t steps =
                std::int64_t(p.inflightSamePc) + 1;
            const Addr predicted =
                Addr(std::int64_t(e.lastAddr) + steps * e.stride) &
                mask(vaddrBits);
            cp.confident = true;
            cp.pred.kind = pipe::Prediction::Kind::Address;
            cp.pred.addr = predicted;
            cp.pred.component = id();
        }
        return cp;
    }

    void
    train(const pipe::LoadOutcome &o) override
    {
        if (disabled())
            return;
        bool hit = false;
        auto &way = table.allocate(index(o.pc), tag(o.pc), &hit);
        Entry &e = way.payload;
        if (!hit) {
            e.lastAddr = o.effAddr & mask(vaddrBits);
            e.stride = 0;
            e.sizeLog2 = sizeLog2Of(o.size);
            e.conf.reset();
            e.seenOnce = true;
            return;
        }
        const std::int64_t delta =
            std::int64_t(o.effAddr & mask(vaddrBits)) -
            std::int64_t(e.lastAddr);
        if (fitsSigned(delta, sapStrideBits)) {
            if (e.seenOnce && delta == e.stride) {
                e.conf.increment(sapFpc(), rng);
            } else {
                e.stride = delta;
                e.conf.reset();
            }
        } else {
            // Stride does not fit the 10-bit field: unpredictable.
            e.stride = 0;
            e.conf.reset();
        }
        e.lastAddr = o.effAddr & mask(vaddrBits);
        e.sizeLog2 = sizeLog2Of(o.size);
        e.seenOnce = true;
    }

    /** Smart training: a skipped SAP entry has a broken stride anyway
     *  (paper Section V-D), so drop it. */
    void
    invalidateEntry(Addr pc) override
    {
        if (!disabled())
            table.invalidate(index(pc), tag(pc));
    }

    void donateTable() override { donor = true; table.flushAll(); }
    void
    receiveWays(unsigned donor_tables) override
    {
        if (!table.empty())
            table.setWays(1 + donor_tables);
    }
    void
    unfuse() override
    {
        if (donor) {
            donor = false;
            table.flushAll();
        } else if (!table.empty()) {
            table.setWays(1);
        }
    }
    bool isDonor() const override { return donor; }

    void
    visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn)
        const override
    {
        table.forEachValid([&](const auto &w) {
            fn(w.payload.conf.value(), sapFpc().maxLevel());
        });
    }

    std::uint64_t
    storageBits() const override
    {
        return std::uint64_t(numEntries()) * sapEntryBits;
    }
    std::size_t
    numEntries() const override
    {
        return table.empty() ? 0 : table.numSets();
    }
    unsigned entryBits() const override { return sapEntryBits; }

  private:
    struct Entry
    {
        Addr lastAddr = 0;
        std::int64_t stride = 0; ///< constrained to 10 signed bits
        std::uint8_t sizeLog2 = 0;
        bool seenOnce = false;
        FpcCounter conf;
    };

    static std::uint8_t
    sizeLog2Of(unsigned size)
    {
        return std::uint8_t(log2i(size ? size : 1));
    }

    bool disabled() const { return donor || table.empty(); }
    static std::uint64_t index(Addr pc) { return pc >> 2; }
    static std::uint64_t
    tag(Addr pc)
    {
        return ((pc >> 2) ^ (pc >> 16)) & mask(tagBits);
    }

    TaggedTable<Entry> table;
    Xoshiro256 rng;
    unsigned confThreshold;
    bool donor = false;
};

} // namespace vp
} // namespace lvpsim

