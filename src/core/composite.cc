#include "core/composite.hh"

#include <algorithm>

#include "common/bitutils.hh"

#include "common/logging.hh"
#include "core/cap.hh"
#include "core/cvp.hh"
#include "core/lvp.hh"
#include "core/sap.hh"

namespace lvpsim
{
namespace vp
{

namespace
{

constexpr unsigned cLVP = unsigned(pipe::ComponentId::LVP);
constexpr unsigned cSAP = unsigned(pipe::ComponentId::SAP);
constexpr unsigned cCVP = unsigned(pipe::ComponentId::CVP);
constexpr unsigned cCAP = unsigned(pipe::ComponentId::CAP);

/**
 * Smart-training priority (paper Section V-D): value over address and
 * context-agnostic over context-aware - LVP, CVP, SAP, CAP.
 */
constexpr unsigned trainingOrder[numComponents] = {cLVP, cCVP, cSAP,
                                                   cCAP};

} // anonymous namespace

CompositePredictor::CompositePredictor(const CompositeConfig &config)
    : cfg(config)
{
    // Live snapshots are bounded by the pipeline's in-flight window
    // plus its refetch stash (a few hundred for the paper's core);
    // pre-size so steady-state probes never allocate.
    snapshots.reserve(512);
    if (cfg.sharedValueArray) {
        std::size_t pool = cfg.sharedPoolEntries;
        if (pool == 0) {
            // Auto-size: shared values are deduplicated, so a pool a
            // quarter the size of the value-predictor entry count is
            // usually ample.
            pool = std::max<std::size_t>(
                64, (cfg.lvpEntries + cfg.cvpEntries) / 4);
        }
        pool = std::size_t(1) << log2i(pool); // power of two
        sharedValues = std::make_unique<SharedValueStore>(pool);
    }
    ValueStore *vs = sharedValues.get();

    comp[cLVP] = std::make_unique<Lvp>(
        cfg.lvpEntries, cfg.seed ^ 0x117b,
        cfg.lvpConfThreshold ? cfg.lvpConfThreshold
                             : lvpConfThreshold,
        vs);
    comp[cSAP] = std::make_unique<Sap>(
        cfg.sapEntries, cfg.seed ^ 0x5a9,
        cfg.sapConfThreshold ? cfg.sapConfThreshold
                             : sapConfThreshold);
    comp[cCVP] = std::make_unique<Cvp>(
        cfg.cvpEntries, cfg.seed ^ 0xc4b,
        cfg.cvpConfThreshold ? cfg.cvpConfThreshold
                             : cvpConfThreshold,
        vs);
    comp[cCAP] = std::make_unique<Cap>(
        cfg.capEntries, cfg.seed ^ 0xca9,
        cfg.capConfThreshold ? cfg.capConfThreshold
                             : capConfThreshold);

    switch (cfg.am) {
      case AmKind::MAm:
        am = std::make_unique<MAm>(cfg.epochInstrs,
                                   cfg.mAmThresholdMpkp);
        break;
      case AmKind::PcAm:
        am = std::make_unique<PcAm>(cfg.pcAmEntries,
                                    cfg.pcAmAccuracyThreshold);
        break;
      case AmKind::PcAmInfinite:
        am = std::make_unique<PcAm>(0, cfg.pcAmAccuracyThreshold);
        break;
      case AmKind::None:
        break;
    }
}

CompositePredictor::~CompositePredictor() = default;

bool
CompositePredictor::componentActive(unsigned c) const
{
    return comp[c]->numEntries() > 0 && !comp[c]->isDonor();
}

void
CompositePredictor::visitConfidences(
    const std::function<void(unsigned, unsigned)> &fn) const
{
    for (const auto &c : comp)
        if (c)
            c->visitConfidences(fn);
}

pipe::Prediction
CompositePredictor::predict(const pipe::LoadProbe &probe)
{
    ++cstats.probes;
    Snapshot snap;
    snap.pc = probe.pc;
    for (unsigned c = 0; c < numComponents; ++c) {
        snap.cp[c] = comp[c]->lookup(probe);
        if (snap.cp[c].confident)
            ++snap.numConfident;
    }

    // The AM squashes confident predictions from unreliable
    // components; squashed components still train and are still
    // monitored (their confidence is real, just not trusted).
    std::array<bool, numComponents> usable{};
    for (unsigned c = 0; c < numComponents; ++c) {
        usable[c] = snap.cp[c].confident;
        if (usable[c] && am && am->silenced(c, probe.pc)) {
            usable[c] = false;
            ++cstats.amSquashes;
        }
    }

    // Selection priority (paper Section V-A): value predictors
    // before address predictors (no speculative cache access
    // needed), and context-aware before context-agnostic.
    pipe::Prediction result;
    for (unsigned c : cfg.selectionOrder) {
        if (usable[c]) {
            result = snap.cp[c].pred;
            snap.chosen = std::int8_t(c);
            break;
        }
    }
    snapshots[probe.token] = snap;
    if (snapshots.size() > peakSnapshots)
        peakSnapshots = snapshots.size();
    return result;
}

void
CompositePredictor::train(const pipe::LoadOutcome &outcome)
{
    auto it = snapshots.find(outcome.token);
    if (it == snapshots.end()) {
        // No snapshot (should not happen for probed loads); train all
        // components conservatively.
        for (auto &c : comp)
            c->train(outcome);
        return;
    }
    const Snapshot snap = it->second;
    snapshots.erase(it);

    // Per-component correctness of the fetch-time predictions.
    ComponentCorrectness cc;
    bool any_confident = false;
    for (unsigned c = 0; c < numComponents; ++c) {
        if (!snap.cp[c].confident) {
            cc[c] = -1;
            continue;
        }
        any_confident = true;
        cc[c] =
            comp[c]->wouldBeCorrect(snap.cp[c], outcome) ? 1 : 0;
    }
    // For the component whose prediction was actually used, trust the
    // pipeline's validation verdict: an address predictor can predict
    // the right address yet deliver a wrong (stale) value. Any other
    // confident component that produced the *same* prediction would
    // have delivered the same wrong data, so it inherits the verdict.
    if (snap.chosen >= 0 && outcome.predictionUsed) {
        const unsigned ch = unsigned(snap.chosen);
        cc[ch] = outcome.predictionCorrect ? 1 : 0;
        if (!outcome.predictionCorrect) {
            const auto &used = snap.cp[ch].pred;
            for (unsigned c = 0; c < numComponents; ++c) {
                if (c == ch || cc[c] < 0)
                    continue;
                const auto &p = snap.cp[c].pred;
                if (p.kind == used.kind && p.addr == used.addr &&
                    p.value == used.value)
                    cc[c] = 0;
            }
        }
    }

    // Figure 4 / Figure 7 bookkeeping.
    ++cstats.confidentHist[snap.numConfident];
    if (snap.numConfident == 1) {
        for (unsigned c = 0; c < numComponents; ++c)
            if (snap.cp[c].confident)
                ++cstats.soloByComponent[c];
    }

    // Accuracy monitor bookkeeping (paper Section V-B).
    if (am) {
        if (any_confident)
            am->recordOutcome(outcome.pc, cc);
        if (outcome.predictionUsed && !outcome.predictionCorrect)
            am->recordFlush(outcome.pc);
    }

    // Fusion usefulness accounting (paper Section V-E).
    if (outcome.predictionUsed && snap.chosen >= 0)
        ++usedThisEpoch[unsigned(snap.chosen)];

    ++cstats.trainEvents;

    if (cfg.smartTraining && any_confident) {
        // Smart training (Section V-D): train (a) every component
        // that mispredicted and (b) the cheapest component that
        // predicted correctly; everyone else is left alone.
        std::array<bool, numComponents> do_train{};
        for (unsigned c = 0; c < numComponents; ++c)
            if (cc[c] == 0)
                do_train[c] = true;
        for (unsigned c : trainingOrder) {
            if (cc[c] == 1) {
                do_train[c] = true;
                break;
            }
        }
        if (cc[cSAP] == 1 && !do_train[cSAP]) {
            // A skipped SAP entry has a broken stride: invalidate it.
            comp[cSAP]->invalidateEntry(outcome.pc);
            ++cstats.sapInvalidations;
        }
        for (unsigned c = 0; c < numComponents; ++c) {
            if (do_train[c]) {
                comp[c]->train(outcome);
                if (componentActive(c))
                    ++cstats.componentsTrained;
            } else {
                comp[c]->abandon(outcome.token);
            }
        }
    } else {
        for (unsigned c = 0; c < numComponents; ++c) {
            comp[c]->train(outcome);
            if (componentActive(c))
                ++cstats.componentsTrained;
        }
    }
}

void
CompositePredictor::abandon(std::uint64_t token)
{
    snapshots.erase(token);
    for (auto &c : comp)
        c->abandon(token);
}

void
CompositePredictor::notifyBranch(Addr pc, bool taken, Addr target)
{
    for (auto &c : comp)
        c->notifyBranch(pc, taken, target);
}

void
CompositePredictor::notifyLoad(Addr pc)
{
    for (auto &c : comp)
        c->notifyLoad(pc);
}

void
CompositePredictor::onRetire(std::uint64_t n)
{
    if (am)
        am->onRetire(n);
    if (!cfg.tableFusion)
        return;
    retiredInEpoch += n;
    if (retiredInEpoch >= cfg.epochInstrs)
        epochTick();
}

void
CompositePredictor::epochTick()
{
    retiredInEpoch = 0;
    const double used_per_kilo_threshold =
        cfg.fusionUseThresholdPerKilo;
    const double epoch_kilo = double(cfg.epochInstrs) / 1000.0;

    if (!fused && epochInCycle < cfg.fusionClassifyEpochs) {
        for (unsigned c = 0; c < numComponents; ++c) {
            const double per_kilo =
                double(usedThisEpoch[c]) / epoch_kilo;
            if (per_kilo < used_per_kilo_threshold)
                ++epochsBelowThreshold[c];
            usedTotal[c] += usedThisEpoch[c];
        }
    }
    for (auto &u : usedThisEpoch)
        u = 0;

    ++epochInCycle;
    if (!fused && epochInCycle == cfg.fusionClassifyEpochs)
        performFusion();
    if (epochInCycle >= cfg.fusionCycleEpochs) {
        revertFusion();
        epochInCycle = 0;
        epochsBelowThreshold.fill(0);
        usedTotal.fill(0);
    }
}

void
CompositePredictor::performFusion()
{
    // Donors: below the usefulness threshold in at least one of the N
    // classification epochs. Receivers: everyone else.
    std::vector<unsigned> donors, receivers;
    for (unsigned c = 0; c < numComponents; ++c) {
        if (comp[c]->numEntries() == 0)
            continue; // absent components neither donate nor receive
        if (epochsBelowThreshold[c] > 0)
            donors.push_back(c);
        else
            receivers.push_back(c);
    }
    if (donors.empty() || receivers.empty())
        return;

    // Most useful receivers first; donors are dealt round-robin, so
    // 1 donor goes to the best receiver, 2 donors to two receivers,
    // and 3 donors all to the single receiver (paper Section V-E).
    std::sort(receivers.begin(), receivers.end(),
              [this](unsigned a, unsigned b) {
                  return usedTotal[a] > usedTotal[b];
              });
    std::array<unsigned, numComponents> extra_ways{};
    for (std::size_t i = 0; i < donors.size(); ++i)
        ++extra_ways[receivers[i % receivers.size()]];

    for (unsigned c : donors)
        comp[c]->donateTable();
    for (unsigned c : receivers)
        if (extra_ways[c] > 0)
            comp[c]->receiveWays(extra_ways[c]);
    fused = true;
    ++numFusions;
}

void
CompositePredictor::revertFusion()
{
    if (!fused)
        return;
    for (auto &c : comp)
        c->unfuse();
    fused = false;
}

std::uint64_t
CompositePredictor::storageBits() const
{
    std::uint64_t bits = 0;
    if (cfg.tableFusion) {
        // Fusion assumes one common table width - 81 bits (paper
        // Section V-E).
        std::uint64_t entries = 0;
        for (const auto &c : comp)
            entries += c->numEntries();
        bits = entries * 81;
    } else {
        for (const auto &c : comp)
            bits += c->storageBits();
    }
    if (sharedValues)
        bits += sharedValues->poolBits();
    if (am)
        bits += am->storageBits();
    return bits;
}

void
CompositePredictor::dumpStats(std::ostream &os) const
{
    os << "composite: probes=" << cstats.probes
       << " amSquashes=" << cstats.amSquashes
       << " sapInvalidations=" << cstats.sapInvalidations
       << " fusions=" << numFusions
       << " avgTrained=" << cstats.avgTrainedPerLoad() << "\n";
    os << "  confident-count histogram:";
    for (std::size_t i = 0; i < cstats.confidentHist.size(); ++i)
        os << " [" << i << "]=" << cstats.confidentHist[i];
    os << "\n";
}

std::unique_ptr<CompositePredictor>
makeSinglePredictor(pipe::ComponentId id, std::size_t entries,
                    std::uint64_t seed)
{
    CompositeConfig cfg;
    cfg.lvpEntries = id == pipe::ComponentId::LVP ? entries : 0;
    cfg.sapEntries = id == pipe::ComponentId::SAP ? entries : 0;
    cfg.cvpEntries = id == pipe::ComponentId::CVP ? entries : 0;
    cfg.capEntries = id == pipe::ComponentId::CAP ? entries : 0;
    cfg.seed = seed;
    return std::make_unique<CompositePredictor>(cfg);
}

} // namespace vp
} // namespace lvpsim
