/**
 * @file
 * LVP: Last Value Predictor (paper Section III-B.1).
 *
 * PC-indexed, tagged table; each entry is a 14-bit tag, 64-bit value
 * and 3-bit FPC confidence counter (81 bits). Prediction requires a
 * tag match and confidence >= 7 (effective 64 consecutive
 * observations).
 */

#pragma once

#include "common/bitutils.hh"
#include "common/random.hh"
#include "common/tagged_table.hh"
#include "core/component.hh"
#include "core/value_store.hh"
#include "core/vp_params.hh"

namespace lvpsim
{
namespace vp
{

class Lvp : public ComponentPredictor
{
  public:
    /**
     * @param value_store optional shared value array (paper Section
     *        III-B storage optimization); nullptr = inline values.
     */
    explicit Lvp(std::size_t entries, std::uint64_t seed = 0x117b,
                 unsigned conf_threshold = lvpConfThreshold,
                 ValueStore *value_store = nullptr)
        : ComponentPredictor(pipe::ComponentId::LVP), rng(seed),
          confThreshold(conf_threshold),
          values(value_store ? value_store : &inlineValues)
    {
        if (entries > 0)
            table.configure(entries, 1);
    }

    ComponentPrediction
    lookup(const pipe::LoadProbe &p) override
    {
        ComponentPrediction cp;
        if (disabled())
            return cp;
        const auto *way = table.lookup(index(p.pc), tag(p.pc));
        if (way && way->payload.conf.atLeast(confThreshold)) {
            // A recycled shared-pool slot reads as "no prediction".
            if (auto v = values->load(way->payload.value)) {
                cp.confident = true;
                cp.pred.kind = pipe::Prediction::Kind::Value;
                cp.pred.value = *v;
                cp.pred.component = id();
            }
        }
        return cp;
    }

    void
    train(const pipe::LoadOutcome &o) override
    {
        if (disabled())
            return;
        bool hit = false;
        auto &way = table.allocate(index(o.pc), tag(o.pc), &hit);
        const auto current = values->load(way.payload.value);
        if (hit && current && *current == o.value) {
            way.payload.conf.increment(lvpFpc(), rng);
        } else {
            way.payload.value = values->store(o.value);
            way.payload.conf.reset();
        }
    }

    void donateTable() override { donor = true; table.flushAll(); }
    void
    receiveWays(unsigned donor_tables) override
    {
        if (!table.empty())
            table.setWays(1 + donor_tables);
    }
    void
    unfuse() override
    {
        if (donor) {
            donor = false;
            table.flushAll();
        } else if (!table.empty()) {
            table.setWays(1);
        }
    }
    bool isDonor() const override { return donor; }

    void
    visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn)
        const override
    {
        table.forEachValid([&](const auto &w) {
            fn(w.payload.conf.value(), lvpFpc().maxLevel());
        });
    }

    std::uint64_t
    storageBits() const override
    {
        return std::uint64_t(configuredEntries()) * entryBits();
    }
    std::size_t numEntries() const override { return configuredEntries(); }
    unsigned
    entryBits() const override
    {
        return tagBits + lvpConfBits + values->refBits();
    }

  private:
    struct Entry
    {
        ValueStore::Ref value{};
        FpcCounter conf;
    };

    bool disabled() const { return donor || table.empty(); }
    std::size_t
    configuredEntries() const
    {
        return table.empty() ? 0 : table.numSets();
    }

    static std::uint64_t index(Addr pc) { return pc >> 2; }
    static std::uint64_t
    tag(Addr pc)
    {
        return ((pc >> 2) ^ (pc >> 16)) & mask(tagBits);
    }

    TaggedTable<Entry> table;
    Xoshiro256 rng;
    unsigned confThreshold;
    InlineValueStore inlineValues;
    ValueStore *values;
    bool donor = false;
};

} // namespace vp
} // namespace lvpsim

