/**
 * @file
 * Predictor parameters from the paper's Table IV.
 *
 * Every confidence counter is a forward probabilistic counter (FPC);
 * the vectors below are chosen so that the *effective* confidence (the
 * expected number of consecutive correct observations needed to reach
 * the threshold) matches the paper:
 *
 *   LVP: 3-bit counter, threshold 7, effective 64 observations
 *   SAP: 2-bit counter, threshold 3, effective  9 observations
 *   CVP: 3-bit counter, threshold 4, effective 16 (15) observations
 *   CAP: 2-bit counter, threshold 3, effective  4 observations
 */

#pragma once

#include <cstdint>

#include "common/sat_counter.hh"

namespace lvpsim
{
namespace vp
{

// ---- Per-entry field widths (bits), straight from the paper --------

constexpr unsigned tagBits = 14;
constexpr unsigned valueBits = 64;
constexpr unsigned vaddrBits = 49;
constexpr unsigned sizeBits = 2;

constexpr unsigned lvpConfBits = 3;
constexpr unsigned sapConfBits = 2;
constexpr unsigned sapStrideBits = 10;
constexpr unsigned cvpConfBits = 3;
constexpr unsigned capConfBits = 2;

/// 14 + 64 + 3 = 81 bits per LVP entry.
constexpr unsigned lvpEntryBits = tagBits + valueBits + lvpConfBits;
/// 14 + 49 + 2 + 10 + 2 = 77 bits per SAP entry.
constexpr unsigned sapEntryBits =
    tagBits + vaddrBits + sapConfBits + sapStrideBits + sizeBits;
/// Same as LVP: 81 bits per CVP entry.
constexpr unsigned cvpEntryBits = tagBits + valueBits + cvpConfBits;
/// 14 + 49 + 2 + 2 = 67 bits per CAP entry.
constexpr unsigned capEntryBits =
    tagBits + vaddrBits + capConfBits + sizeBits;

// ---- Confidence thresholds -----------------------------------------

constexpr unsigned lvpConfThreshold = 7;
constexpr unsigned sapConfThreshold = 3;
constexpr unsigned cvpConfThreshold = 4;
constexpr unsigned capConfThreshold = 3;

// ---- FPC vectors ----------------------------------------------------

/** LVP: 1+1+2+4+8+16+32 = 64 effective observations at threshold 7. */
inline const FpcVector &
lvpFpc()
{
    static const FpcVector v{1.0, 1.0, 0.5, 0.25, 0.125, 0.0625,
                             0.03125};
    return v;
}

/** SAP: 1+4+4 = 9 effective observations at threshold 3. */
inline const FpcVector &
sapFpc()
{
    static const FpcVector v{1.0, 0.25, 0.25};
    return v;
}

/** CVP: 1+2+4+8 = 15 (~16) effective observations at threshold 4. */
inline const FpcVector &
cvpFpc()
{
    static const FpcVector v{1.0, 0.5, 0.25, 0.125};
    return v;
}

/** CAP: 1+1+2 = 4 effective observations at threshold 3. */
inline const FpcVector &
capFpc()
{
    static const FpcVector v{1.0, 1.0, 0.5};
    return v;
}

/** CVP geometric history lengths, in history *events* per table. */
constexpr unsigned cvpHistLengths[3] = {5, 16, 64};

} // namespace vp
} // namespace lvpsim

