/**
 * @file
 * EVES: the winner of the first Championship Value Prediction
 * (Seznec, CVP-1 [4]), reimplemented as a load-only predictor for the
 * paper's Section V-G comparison. EVES combines
 *
 *   - E-Stride: a stride *value* predictor over the last retired
 *     value, accounting for in-flight occurrences of the load, and
 *   - E-VTAGE: a VTAGE-style context value predictor (untagged base
 *     table + geometric tagged tables) with usefulness-guided
 *     allocation.
 *
 * Both produce value (not address) predictions; high confidence is
 * required before predicting, as in the original.
 */

#pragma once

#include <array>
#include <memory>
#include <vector>

#include "branch/history.hh"
#include "common/flat_map.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/tagged_table.hh"
#include "core/lvp_interface.hh"

namespace lvpsim
{
namespace vp
{

struct EvesConfig
{
    std::size_t strideEntries = 512;
    std::size_t baseEntries = 512;
    std::size_t taggedEntries = 256; ///< per tagged table
    unsigned numTagged = 6;
    unsigned minHist = 2;   ///< history events, shortest tagged table
    unsigned maxHist = 64;
    unsigned strideConfThreshold = 7; ///< effective 64 observations
    unsigned vtageConfThreshold = 4;  ///< effective ~16 observations
    std::uint64_t seed = 0xe7e5;

    /** Roughly 8KB of prediction state. */
    static EvesConfig
    small8k()
    {
        EvesConfig c;
        c.strideEntries = 128;
        c.baseEntries = 256;
        c.taggedEntries = 64;
        return c;
    }

    /** Roughly 32KB of prediction state. */
    static EvesConfig
    large32k()
    {
        EvesConfig c;
        c.strideEntries = 512;
        c.baseEntries = 1024;
        c.taggedEntries = 256;
        return c;
    }

    /** Effectively unbounded tables (limit study). */
    static EvesConfig
    infinite()
    {
        EvesConfig c;
        c.strideEntries = 1u << 17;
        c.baseEntries = 1u << 17;
        c.taggedEntries = 1u << 16;
        return c;
    }
};

class EvesPredictor : public pipe::LoadValuePredictor
{
  public:
    explicit EvesPredictor(const EvesConfig &cfg = EvesConfig{});

    pipe::Prediction predict(const pipe::LoadProbe &probe) override;
    void train(const pipe::LoadOutcome &outcome) override;
    void abandon(std::uint64_t token) override;
    void notifyBranch(Addr pc, bool taken, Addr target) override;
    std::uint64_t storageBits() const override;
    const char *name() const override { return "eves"; }

  private:
    // ---- E-Stride ----------------------------------------------------
    struct StrideEntry
    {
        Value lastValue = 0;
        std::int64_t stride = 0;
        bool seenOnce = false;
        FpcCounter conf;
    };

    // ---- E-VTAGE -----------------------------------------------------
    struct BaseEntry
    {
        Value value = 0;
        FpcCounter conf;
    };

    struct TaggedEntry
    {
        Value value = 0;
        FpcCounter conf;
        std::uint8_t useful = 0;
    };

    struct Snapshot
    {
        std::vector<std::uint64_t> idx;
        std::vector<std::uint64_t> tag;
        int provider = -1; ///< tagged table index, -1 = base
    };

    std::uint64_t taggedIndex(Addr pc, unsigned t) const;
    std::uint64_t taggedTag(Addr pc, unsigned t) const;

    EvesConfig cfg;
    Xoshiro256 rng;

    TaggedTable<StrideEntry> strideTable;
    std::vector<BaseEntry> base;
    std::vector<TaggedTable<TaggedEntry>> tagged;
    std::vector<unsigned> histLen;
    std::vector<branch::FoldedHistory> foldIdx;
    std::vector<branch::FoldedHistory> foldTag;
    branch::HistoryRing ring;
    std::uint64_t pathHist = 0;

    // Flat like every other per-token map; note the Snapshot's
    // history vectors still allocate per probe (EVES is a comparison
    // baseline, not hot-path).
    FlatMap<std::uint64_t, Snapshot> snapshots;
};

} // namespace vp
} // namespace lvpsim

