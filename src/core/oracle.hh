/**
 * @file
 * Infinite-resource load pattern classification (paper Section IV-A,
 * Figure 2). Each dynamic load is placed in exactly one of three
 * ordered, exclusive patterns:
 *
 *   Pattern-1 (LVP proxy):     PC correlates with the load value
 *   Pattern-2 (SAP proxy):     PC correlates with the load address
 *   Pattern-3 (CVP/CAP proxy): all other loads
 *
 * "Infinite resources" means we perfectly remember the last
 * value/address/stride per static load.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/instruction.hh"

namespace lvpsim
{
namespace vp
{

struct PatternBreakdown
{
    std::uint64_t pattern1 = 0;
    std::uint64_t pattern2 = 0;
    std::uint64_t pattern3 = 0;

    std::uint64_t
    total() const
    {
        return pattern1 + pattern2 + pattern3;
    }

    double frac1() const { return ratio(pattern1); }
    double frac2() const { return ratio(pattern2); }
    double frac3() const { return ratio(pattern3); }

  private:
    double
    ratio(std::uint64_t n) const
    {
        const std::uint64_t t = total();
        return t ? double(n) / double(t) : 0.0;
    }
};

/** Classify every predictable dynamic load in @p ops. */
PatternBreakdown
classifyLoadPatterns(const std::vector<trace::MicroOp> &ops);

} // namespace vp
} // namespace lvpsim

