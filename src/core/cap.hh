/**
 * @file
 * CAP: Context Address Predictor (paper Section III-B.2), modeled on
 * DLVP [3] ("load value prediction via PATH-based address
 * prediction"). One tagged table indexed by a hash of the load PC and
 * the load path history; entries are 67 bits (14-bit tag, 49-bit
 * virtual address, 2-bit confidence, 2-bit size). The lowest
 * threshold of all components: 4 consecutive observations of a given
 * path/PC.
 *
 * The path here is the recent control-flow path (a bounded window of
 * ~16 branches), which matches the paper's Table V example: inside a
 * long inner loop the path stops changing after the window fills, so
 * CAP can distinguish (and predict) only the first ~16 iterations.
 */

#pragma once

#include "common/bitutils.hh"
#include "common/flat_map.hh"
#include "common/random.hh"
#include "common/tagged_table.hh"
#include "core/component.hh"
#include "core/vp_params.hh"

namespace lvpsim
{
namespace vp
{

class Cap : public ComponentPredictor
{
  public:
    explicit Cap(std::size_t entries, std::uint64_t seed = 0xca9,
                 unsigned conf_threshold = capConfThreshold)
        : ComponentPredictor(pipe::ComponentId::CAP), rng(seed),
          confThreshold(conf_threshold)
    {
        if (entries > 0)
            table.configure(entries, 1);
        snapshots.reserve(512); // in-flight window; see composite
    }

    ComponentPrediction
    lookup(const pipe::LoadProbe &p) override
    {
        ComponentPrediction cp;
        if (disabled())
            return cp;
        Snapshot snap{index(p.pc), tag(p.pc)};
        const auto *way = table.lookup(snap.idx, snap.tag);
        if (way && way->payload.conf.atLeast(confThreshold)) {
            cp.confident = true;
            cp.pred.kind = pipe::Prediction::Kind::Address;
            cp.pred.addr = way->payload.addr;
            cp.pred.component = id();
        }
        snapshots[p.token] = snap;
        return cp;
    }

    void
    train(const pipe::LoadOutcome &o) override
    {
        auto it = snapshots.find(o.token);
        if (it == snapshots.end())
            return;
        const Snapshot snap = it->second;
        snapshots.erase(it);
        if (disabled())
            return;
        bool hit = false;
        auto &way = table.allocate(snap.idx, snap.tag, &hit);
        Entry &e = way.payload;
        const Addr a = o.effAddr & mask(vaddrBits);
        const std::uint8_t sz = std::uint8_t(log2i(o.size ? o.size : 1));
        if (hit && e.addr == a && e.sizeLog2 == sz) {
            e.conf.increment(capFpc(), rng);
        } else {
            e.addr = a;
            e.sizeLog2 = sz;
            e.conf.reset();
        }
    }

    void abandon(std::uint64_t token) override { snapshots.erase(token); }

    void
    notifyBranch(Addr pc, bool taken, Addr target) override
    {
        (void)target;
        // Control-flow path: a rolling window of ~16 branches (the
        // 64-bit register shifts 4 bits per branch).
        path = (path << 4) ^ ((pc >> 2) & 0x7fff) ^
               (taken ? 0x9 : 0x0);
    }

    void donateTable() override { donor = true; table.flushAll(); }
    void
    receiveWays(unsigned donor_tables) override
    {
        if (!table.empty())
            table.setWays(1 + donor_tables);
    }
    void
    unfuse() override
    {
        if (donor) {
            donor = false;
            table.flushAll();
        } else if (!table.empty()) {
            table.setWays(1);
        }
    }
    bool isDonor() const override { return donor; }

    void
    visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn)
        const override
    {
        table.forEachValid([&](const auto &w) {
            fn(w.payload.conf.value(), capFpc().maxLevel());
        });
    }

    std::uint64_t
    storageBits() const override
    {
        return std::uint64_t(numEntries()) * capEntryBits;
    }
    std::size_t
    numEntries() const override
    {
        return table.empty() ? 0 : table.numSets();
    }
    unsigned entryBits() const override { return capEntryBits; }

  private:
    struct Entry
    {
        Addr addr = 0;
        std::uint8_t sizeLog2 = 0;
        FpcCounter conf;
    };

    struct Snapshot
    {
        std::uint64_t idx = 0;
        std::uint64_t tag = 0;
    };

    bool disabled() const { return donor || table.empty(); }

    std::uint64_t
    index(Addr pc) const
    {
        // Nonlinear mix: see Cvp::index for why a plain XOR of
        // path-derived values can alias context families.
        return mix64((pc >> 2) ^ path);
    }

    std::uint64_t
    tag(Addr pc) const
    {
        return ((pc >> 2) ^ (pc >> 16) ^ (path >> 3)) & mask(tagBits);
    }

    TaggedTable<Entry> table;
    FlatMap<std::uint64_t, Snapshot> snapshots;
    Xoshiro256 rng;
    unsigned confThreshold;
    std::uint64_t path = 0;
    bool donor = false;
};

} // namespace vp
} // namespace lvpsim

