/**
 * @file
 * Oracle load value predictor: predicts every predictable load's
 * architectural value perfectly, for zero storage.
 *
 * This is the upper-bound pipeline of the qa differential harness
 * (no flushes, maximal coverage): {no-VP, composite-VP, oracle-VP}
 * runs of one trace must retire bit-identical commit streams, and
 * per-workload speedups must order as oracle >= composite >= no-VP.
 *
 * It exploits the core's probe discipline: predict() is called
 * exactly once per dynamic predictable load, in program order (a
 * squashed load's re-fetch reuses its stashed first-fetch prediction
 * instead of re-probing), so the oracle simply walks the trace's
 * predictable-load sequence. Probes arriving out of the expected
 * order are counted in mismatches() and answered with no prediction.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/lvp_interface.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace vp
{

class OracleVp : public pipe::LoadValuePredictor
{
  public:
    /** @param code the trace the core will run (not owned). */
    explicit OracleVp(const std::vector<trace::MicroOp> &code);

    pipe::Prediction predict(const pipe::LoadProbe &probe) override;
    void train(const pipe::LoadOutcome &outcome) override;

    std::uint64_t storageBits() const override { return 0; }
    const char *name() const override { return "oracle"; }

    /** Probes answered with a (perfect) value prediction. */
    std::uint64_t probesServed() const { return served; }
    /** Probes whose PC did not match the expected trace load. */
    std::uint64_t mismatches() const { return mismatched; }

  private:
    struct PredictableLoad
    {
        Addr pc = 0;
        Value value = 0;
    };

    std::vector<PredictableLoad> loads;
    std::size_t nextLoad = 0;
    std::uint64_t served = 0;
    std::uint64_t mismatched = 0;
};

} // namespace vp
} // namespace lvpsim

