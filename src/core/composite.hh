/**
 * @file
 * The paper's composite load value predictor (Section V): LVP, SAP,
 * CVP and CAP running in parallel, with
 *
 *   - selection among confident components that prefers value over
 *     address predictions and context-aware over context-agnostic
 *     (CVP > LVP > CAP > SAP),
 *   - an optional Accuracy Monitor that squashes confident
 *     predictions from unreliable components (Section V-B),
 *   - heterogeneous per-component table sizes (Section V-C),
 *   - the smart training policy (Section V-D), and
 *   - epoch-based table fusion (Section V-E).
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/flat_map.hh"
#include "core/accuracy_monitor.hh"
#include "core/component.hh"
#include "core/lvp_interface.hh"
#include "core/value_store.hh"

namespace lvpsim
{
namespace vp
{

enum class AmKind { None, MAm, PcAm, PcAmInfinite };

struct CompositeConfig
{
    /// Entries per component (0 = leave the component out).
    /// cvpEntries is the total across CVP's three tables.
    std::size_t lvpEntries = 1024;
    std::size_t sapEntries = 1024;
    std::size_t cvpEntries = 1024;
    std::size_t capEntries = 1024;

    /// Per-component confidence threshold overrides (0 = paper value
    /// from Table IV). Used by the confidence ablation bench.
    unsigned lvpConfThreshold = 0;
    unsigned sapConfThreshold = 0;
    unsigned cvpConfThreshold = 0;
    unsigned capConfThreshold = 0;

    /// Confident-selection priority (indices are ComponentId values).
    /// Paper default: value before address, context-aware first.
    std::array<std::uint8_t, 4> selectionOrder{2, 0, 3, 1};

    AmKind am = AmKind::None;
    std::size_t pcAmEntries = 64;
    double pcAmAccuracyThreshold = 0.95;
    double mAmThresholdMpkp = 3.0;

    bool smartTraining = false;

    /// Decoupled, shared value array for LVP+CVP (paper Section
    /// III-B closing remark): entries shrink from 81 bits to
    /// tag+conf+pointer, at the cost of pool-capacity aliasing.
    /// 0 pool entries = auto-size to (lvp+cvp entries)/4.
    bool sharedValueArray = false;
    std::size_t sharedPoolEntries = 0;

    bool tableFusion = false;
    unsigned fusionClassifyEpochs = 5;  ///< N
    unsigned fusionCycleEpochs = 25;    ///< M (>> N)
    double fusionUseThresholdPerKilo = 20.0;

    /// Epoch length for AM and fusion, in retired instructions. The
    /// paper uses one million; scale it down for short simulations.
    std::uint64_t epochInstrs = 1000000;

    std::uint64_t seed = 0x5eed;

    /** Uniform table sizes at a given total entry budget. */
    static CompositeConfig
    homogeneous(std::size_t total_entries)
    {
        CompositeConfig c;
        c.lvpEntries = total_entries / 4;
        c.sapEntries = total_entries / 4;
        c.cvpEntries = total_entries / 4;
        c.capEntries = total_entries / 4;
        return c;
    }

    /** Everything on: PC-AM + smart training + fusion. */
    static CompositeConfig
    bestOf(std::size_t total_entries)
    {
        CompositeConfig c = homogeneous(total_entries);
        c.am = AmKind::PcAm;
        c.smartTraining = true;
        c.tableFusion = true;
        return c;
    }
};

/** Composite-internal statistics backing Figures 4 and 7. */
struct CompositeStats
{
    std::uint64_t probes = 0;
    std::uint64_t trainEvents = 0;
    std::uint64_t componentsTrained = 0;
    std::uint64_t sapInvalidations = 0;
    std::uint64_t amSquashes = 0;

    /// Retired eligible loads by number of confident components.
    std::array<std::uint64_t, numComponents + 1> confidentHist{};
    /// ... and, when exactly one, which component it was.
    std::array<std::uint64_t, numComponents> soloByComponent{};

    double
    avgTrainedPerLoad() const
    {
        return trainEvents
                   ? double(componentsTrained) / double(trainEvents)
                   : 0.0;
    }
};

class CompositePredictor : public pipe::LoadValuePredictor
{
  public:
    explicit CompositePredictor(const CompositeConfig &cfg);
    ~CompositePredictor() override;

    pipe::Prediction predict(const pipe::LoadProbe &probe) override;
    void train(const pipe::LoadOutcome &outcome) override;
    void abandon(std::uint64_t token) override;
    void notifyBranch(Addr pc, bool taken, Addr target) override;
    void notifyLoad(Addr pc) override;
    void onRetire(std::uint64_t n) override;
    std::uint64_t storageBits() const override;
    const char *name() const override { return "composite"; }
    void dumpStats(std::ostream &os) const override;

    const CompositeStats &compositeStats() const { return cstats; }
    const CompositeConfig &config() const { return cfg; }

    /** Is component @p c configured and currently not a donor? */
    bool componentActive(unsigned c) const;

    /** Number of fusion events performed so far (for tests). */
    unsigned fusionEvents() const { return numFusions; }
    bool currentlyFused() const { return fused; }

    /** Probes not yet resolved by train()/abandon(); 0 when idle. */
    std::size_t pendingSnapshots() const { return snapshots.size(); }
    std::size_t pendingProbes() const override
    {
        return snapshots.size();
    }
    std::size_t pendingProbesPeak() const override
    {
        return peakSnapshots;
    }

    /**
     * Visit every live confidence counter across all configured
     * components as (value, max_level). qa state-bounds checks
     * assert value <= max_level after fuzzed update streams.
     */
    void visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn) const;

  private:
    struct Snapshot
    {
        std::array<ComponentPrediction, numComponents> cp{};
        std::int8_t chosen = -1;
        std::uint8_t numConfident = 0;
        Addr pc = 0;
    };

    void epochTick();
    void performFusion();
    void revertFusion();

    CompositeConfig cfg;
    std::unique_ptr<SharedValueStore> sharedValues;
    std::array<std::unique_ptr<ComponentPredictor>, numComponents>
        comp;
    std::unique_ptr<AccuracyMonitor> am;
    FlatMap<std::uint64_t, Snapshot> snapshots;
    std::size_t peakSnapshots = 0;
    CompositeStats cstats;

    // Fusion machinery (Section V-E).
    std::uint64_t retiredInEpoch = 0;
    unsigned epochInCycle = 0;
    std::array<std::uint64_t, numComponents> usedThisEpoch{};
    std::array<std::uint64_t, numComponents> usedTotal{};
    std::array<unsigned, numComponents> epochsBelowThreshold{};
    bool fused = false;
    unsigned numFusions = 0;
};

/** A single component predictor run standalone (paper Figure 3). */
std::unique_ptr<CompositePredictor>
makeSinglePredictor(pipe::ComponentId id, std::size_t entries,
                    std::uint64_t seed = 0x5eed);

} // namespace vp
} // namespace lvpsim

