/**
 * @file
 * The boundary between the core model and any load value predictor.
 *
 * The pipeline probes the predictor when a load is fetched (paper
 * Figure 1, step 1), notifies it of branches/loads so it can maintain
 * path histories, and trains it in retirement order with the
 * architectural outcome. Tokens tie a probe to its eventual train or
 * abandon (squash) so stateful predictors can keep per-instance
 * snapshots.
 *
 * The interface lives in src/core (the predictor layer that
 * implements it) so that core never needs to reach up into
 * src/pipeline — the module DAG pinned in tools/lint/layering.manifest
 * has pipeline depending on core, not the reverse. The `pipe`
 * namespace is kept: it is the vocabulary the consumer speaks.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>

#include "common/types.hh"

namespace lvpsim
{
namespace pipe
{

/** Identifier for the predictor component behind a prediction. */
enum class ComponentId : std::int8_t
{
    None = -1,
    LVP = 0,
    SAP = 1,
    CVP = 2,
    CAP = 3,
    Other = 4, ///< e.g. EVES sub-predictors
};

constexpr const char *
componentName(ComponentId id)
{
    switch (id) {
      case ComponentId::LVP: return "LVP";
      case ComponentId::SAP: return "SAP";
      case ComponentId::CVP: return "CVP";
      case ComponentId::CAP: return "CAP";
      case ComponentId::Other: return "OTHER";
      default: return "NONE";
    }
}

/** A prediction handed to the pipeline at fetch. */
struct Prediction
{
    enum class Kind : std::uint8_t { None, Value, Address };

    Kind kind = Kind::None;
    Value value = 0;     ///< Kind::Value: the predicted load value
    Addr addr = 0;       ///< Kind::Address: goes to the PAQ
    ComponentId component = ComponentId::None;

    bool isValue() const { return kind == Kind::Value; }
    bool isAddress() const { return kind == Kind::Address; }
    bool valid() const { return kind != Kind::None; }
};

/** What the pipeline knows about a load when probing at fetch. */
struct LoadProbe
{
    Addr pc = 0;
    std::uint64_t token = 0;     ///< unique per dynamic probe
    unsigned inflightSamePc = 0; ///< older in-flight instances of pc
};

/** Architectural outcome delivered at retirement, in program order. */
struct LoadOutcome
{
    Addr pc = 0;
    std::uint64_t token = 0;
    Addr effAddr = 0;
    unsigned size = 0;
    Value value = 0;
    bool predictionUsed = false;    ///< a predicted value reached the VPE
    bool predictionCorrect = false; ///< ... and it was correct
};

class LoadValuePredictor
{
  public:
    virtual ~LoadValuePredictor() = default;

    /** Probe at fetch; return a prediction (or Kind::None). */
    virtual Prediction predict(const LoadProbe &probe) = 0;

    /** Retirement-order training with the architectural outcome. */
    virtual void train(const LoadOutcome &outcome) = 0;

    /** The probe with this token was squashed and will never train. */
    virtual void abandon(std::uint64_t token) { (void)token; }

    /** A (conditional or indirect) branch was fetched. */
    virtual void
    notifyBranch(Addr pc, bool taken, Addr target)
    {
        (void)pc; (void)taken; (void)target;
    }

    /** A load was fetched (after its own predict() call). */
    virtual void notifyLoad(Addr pc) { (void)pc; }

    /** @p n more instructions retired (drives epoch machinery). */
    virtual void onRetire(std::uint64_t n) { (void)n; }

    /**
     * Outstanding probes: tokens seen by predict() but not yet
     * resolved by train()/abandon(). Bounded by the core's in-flight
     * window plus its refetch stash; the core cross-checks that in
     * its full-invariant pass.
     */
    virtual std::size_t pendingProbes() const { return 0; }

    /** Lifetime high-water mark of pendingProbes(). */
    virtual std::size_t pendingProbesPeak() const { return 0; }

    /** Bit-exact storage cost of all prediction state. */
    virtual std::uint64_t storageBits() const = 0;

    virtual const char *name() const = 0;

    /** Human-readable internal statistics. */
    virtual void dumpStats(std::ostream &os) const { (void)os; }
};

/** The no-prediction baseline. */
class NullPredictor : public LoadValuePredictor
{
  public:
    Prediction predict(const LoadProbe &) override { return {}; }
    void train(const LoadOutcome &) override {}
    std::uint64_t storageBits() const override { return 0; }
    const char *name() const override { return "none"; }
};

} // namespace pipe
} // namespace lvpsim

