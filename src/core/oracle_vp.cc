#include "core/oracle_vp.hh"

namespace lvpsim
{
namespace vp
{

OracleVp::OracleVp(const std::vector<trace::MicroOp> &code)
{
    for (const auto &op : code)
        if (op.isPredictableLoad())
            loads.push_back({op.pc, op.memValue});
}

pipe::Prediction
OracleVp::predict(const pipe::LoadProbe &probe)
{
    pipe::Prediction p;
    if (nextLoad >= loads.size() ||
        loads[nextLoad].pc != probe.pc) {
        // The core's probe order diverged from the trace's
        // predictable-load order - a pipeline bug the differential
        // tests assert against via mismatches().
        ++mismatched;
        return p;
    }
    p.kind = pipe::Prediction::Kind::Value;
    p.value = loads[nextLoad].value;
    p.component = pipe::ComponentId::Other;
    ++nextLoad;
    ++served;
    return p;
}

void
OracleVp::train(const pipe::LoadOutcome &outcome)
{
    (void)outcome; // nothing to learn; values come from the trace
}

} // namespace vp
} // namespace lvpsim
