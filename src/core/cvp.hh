/**
 * @file
 * CVP: Context-aware Context Value Predictor (paper Section III-B.2).
 *
 * A VTAGE-like predictor with three tagged tables (no untagged
 * last-value table), each indexed by a hash of the load PC and a
 * geometric sample of the branch path history. Entries are 81 bits
 * (14-bit tag, 64-bit value, 3-bit FPC confidence); the threshold of
 * 4 corresponds to ~16 consecutive observations.
 *
 * Because training happens at retirement with a later history, the
 * fetch-time indices/tags are snapshotted per probe token.
 */

#pragma once

#include <array>

#include "branch/history.hh"
#include "common/bitutils.hh"
#include "common/flat_map.hh"
#include "common/random.hh"
#include "common/tagged_table.hh"
#include "core/component.hh"
#include "core/value_store.hh"
#include "core/vp_params.hh"

namespace lvpsim
{
namespace vp
{

class Cvp : public ComponentPredictor
{
  public:
    static constexpr unsigned numTables = 3;

    /**
     * @param entries total entries across the three tables, split
     * {1/2, 1/4, 1/4} (shortest history gets the largest table, as in
     * VTAGE) and rounded down to powers of two. Folded-history
     * indices only distribute well over power-of-two tables: the
     * fold values of a periodic branch sequence are structurally
     * related, and a modulo by an arbitrary size can alias whole
     * context families onto each other.
     */
    explicit Cvp(std::size_t entries, std::uint64_t seed = 0xc4b,
                 unsigned conf_threshold = cvpConfThreshold,
                 ValueStore *value_store = nullptr)
        : ComponentPredictor(pipe::ComponentId::CVP), rng(seed),
          confThreshold(conf_threshold),
          values(value_store ? value_store : &inlineValues)
    {
        if (entries >= 4) {
            auto pow2floor = [](std::size_t x) {
                return std::size_t(1) << log2i(x);
            };
            const std::size_t sizes[numTables] = {
                pow2floor(entries / 2), pow2floor(entries / 4),
                pow2floor(entries / 4)};
            for (unsigned t = 0; t < numTables; ++t) {
                tables[t].configure(sizes[t], 1);
                // Two history events (bits) are pushed per branch.
                const unsigned bits = 2 * cvpHistLengths[t];
                foldIdx.emplace_back(bits,
                                     std::max(1u, ceilLog2(sizes[t])));
                foldTag1.emplace_back(bits, tagBits);
                foldTag2.emplace_back(bits, tagBits - 1);
            }
            configured = true;
        }
        snapshots.reserve(512); // in-flight window; see composite
    }

    ComponentPrediction
    lookup(const pipe::LoadProbe &p) override
    {
        ComponentPrediction cp;
        if (disabled())
            return cp;
        Snapshot snap;
        for (unsigned t = 0; t < numTables; ++t) {
            snap.idx[t] = index(p.pc, t);
            snap.tag[t] = tag(p.pc, t);
        }
        // Longest history first.
        for (int t = numTables - 1; t >= 0; --t) {
            const auto *way =
                tables[t].lookup(snap.idx[t], snap.tag[t]);
            if (way && way->payload.conf.atLeast(confThreshold)) {
                if (auto v = values->load(way->payload.value)) {
                    cp.confident = true;
                    cp.pred.kind = pipe::Prediction::Kind::Value;
                    cp.pred.value = *v;
                    cp.pred.component = id();
                    break;
                }
            }
        }
        snapshots[p.token] = snap;
        return cp;
    }

    void
    train(const pipe::LoadOutcome &o) override
    {
        auto it = snapshots.find(o.token);
        if (it == snapshots.end())
            return; // probed while disabled (donor)
        const Snapshot snap = it->second;
        snapshots.erase(it);
        if (disabled())
            return;
        // All three tables train like LVP (paper Section III-B.2).
        for (unsigned t = 0; t < numTables; ++t) {
            bool hit = false;
            auto &way =
                tables[t].allocate(snap.idx[t], snap.tag[t], &hit);
            const auto current = values->load(way.payload.value);
            if (hit && current && *current == o.value) {
                way.payload.conf.increment(cvpFpc(), rng);
            } else {
                way.payload.value = values->store(o.value);
                way.payload.conf.reset();
            }
        }
    }

    void abandon(std::uint64_t token) override { snapshots.erase(token); }

    void
    notifyBranch(Addr pc, bool taken, Addr target) override
    {
        (void)target;
        if (!configured)
            return;
        // Raw path register (TAGE's "phist"): folded histories of a
        // periodic branch sequence can collapse to a handful of
        // values, so the index also mixes in unfolded recent path
        // bits, exactly as TAGE does.
        pathHist = (pathHist << 2) | (taken ? 2 : 0) |
                   ((pc >> 2) & 1);
        pushHistoryBit(taken ? 1 : 0);
        pushHistoryBit(unsigned((pc >> 2) & 1));
    }

    void
    donateTable() override
    {
        donor = true;
        for (auto &t : tables)
            t.flushAll();
    }
    void
    receiveWays(unsigned donor_tables) override
    {
        if (configured)
            for (auto &t : tables)
                t.setWays(1 + donor_tables);
    }
    void
    unfuse() override
    {
        if (donor) {
            donor = false;
            for (auto &t : tables)
                t.flushAll();
        } else if (configured) {
            for (auto &t : tables)
                t.setWays(1);
        }
    }
    bool isDonor() const override { return donor; }

    void
    visitConfidences(
        const std::function<void(unsigned, unsigned)> &fn)
        const override
    {
        for (const auto &t : tables)
            t.forEachValid([&](const auto &w) {
                fn(w.payload.conf.value(), cvpFpc().maxLevel());
            });
    }

    std::uint64_t
    storageBits() const override
    {
        return std::uint64_t(numEntries()) * entryBits();
    }
    std::size_t
    numEntries() const override
    {
        if (!configured)
            return 0;
        std::size_t n = 0;
        for (const auto &t : tables)
            n += t.numSets();
        return n;
    }
    unsigned
    entryBits() const override
    {
        return tagBits + cvpConfBits + values->refBits();
    }

  private:
    struct Entry
    {
        ValueStore::Ref value{};
        FpcCounter conf;
    };

    struct Snapshot
    {
        std::array<std::uint64_t, numTables> idx{};
        std::array<std::uint64_t, numTables> tag{};
    };

    bool disabled() const { return donor || !configured; }

    void
    pushHistoryBit(unsigned bit)
    {
        ring.push(bit);
        for (unsigned t = 0; t < numTables; ++t) {
            foldIdx[t].update(ring);
            foldTag1[t].update(ring);
            foldTag2[t].update(ring);
        }
    }

    std::uint64_t
    index(Addr pc, unsigned t) const
    {
        // The folded history and the raw path are both GF(2)-linear
        // functions of the same window bits; on loopy code their XOR
        // can collapse into a small subspace and alias whole context
        // families. A nonlinear finalizer keeps distinct contexts in
        // distinct slots (the inputs are distinct; only the mixing
        // must be non-degenerate).
        const unsigned raw_bits =
            std::min(2 * cvpHistLengths[t], 20u);
        return mix64((pc >> 2) ^
                     (std::uint64_t(foldIdx[t].value()) << 24) ^
                     (pathHist & mask(raw_bits)) ^
                     (std::uint64_t(t) << 56));
    }

    std::uint64_t
    tag(Addr pc, unsigned t) const
    {
        return ((pc >> 2) ^ (pc >> 16) ^ foldTag1[t].value() ^
                (std::uint64_t(foldTag2[t].value()) << 1)) &
               mask(tagBits);
    }

    std::array<TaggedTable<Entry>, numTables> tables;
    std::vector<branch::FoldedHistory> foldIdx;
    std::vector<branch::FoldedHistory> foldTag1;
    std::vector<branch::FoldedHistory> foldTag2;
    branch::HistoryRing ring;
    std::uint64_t pathHist = 0;
    FlatMap<std::uint64_t, Snapshot> snapshots;
    Xoshiro256 rng;
    unsigned confThreshold;
    InlineValueStore inlineValues;
    ValueStore *values;
    bool configured = false;
    bool donor = false;
};

} // namespace vp
} // namespace lvpsim

