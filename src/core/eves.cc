#include "core/eves.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "core/vp_params.hh"

namespace lvpsim
{
namespace vp
{

namespace
{

/** E-Stride confidence: effective 64 consecutive observations. */
const FpcVector &
strideFpc()
{
    static const FpcVector v{1.0, 1.0, 0.5, 0.25, 0.125, 0.0625,
                             0.03125};
    return v;
}

/** E-VTAGE confidence: effective ~16 consecutive observations. */
const FpcVector &
vtageFpc()
{
    static const FpcVector v{1.0, 0.5, 0.25, 0.125};
    return v;
}

constexpr unsigned strideEntryBits = 14 + 64 + 16 + 3; // 97
constexpr unsigned baseEntryBits = 64 + 3;             // 67
constexpr unsigned taggedEntryBits = 14 + 64 + 3 + 1;  // 82

} // anonymous namespace

EvesPredictor::EvesPredictor(const EvesConfig &config)
    : cfg(config), rng(cfg.seed)
{
    strideTable.configure(cfg.strideEntries, 1);
    base.assign(cfg.baseEntries, BaseEntry{});
    tagged.resize(cfg.numTagged);
    histLen.resize(cfg.numTagged);
    const double ratio =
        std::pow(double(cfg.maxHist) / cfg.minHist,
                 1.0 / std::max(1u, cfg.numTagged - 1));
    double len = cfg.minHist;
    for (unsigned t = 0; t < cfg.numTagged; ++t) {
        tagged[t].configure(cfg.taggedEntries, 1);
        histLen[t] = std::max<unsigned>(1, unsigned(len + 0.5));
        if (t > 0 && histLen[t] <= histLen[t - 1])
            histLen[t] = histLen[t - 1] + 1;
        len *= ratio;
        const unsigned bits = 2 * histLen[t];
        foldIdx.emplace_back(
            bits, std::max(1u, ceilLog2(cfg.taggedEntries)));
        foldTag.emplace_back(bits, tagBits);
    }
}

std::uint64_t
EvesPredictor::taggedIndex(Addr pc, unsigned t) const
{
    // Nonlinear mix: see Cvp::index for why a plain XOR of folded
    // values can alias context families on loopy code.
    const unsigned raw_bits = std::min(2 * histLen[t], 20u);
    return mix64((pc >> 2) ^
                 (std::uint64_t(foldIdx[t].value()) << 24) ^
                 (pathHist & mask(raw_bits)) ^
                 (std::uint64_t(t) << 56));
}

std::uint64_t
EvesPredictor::taggedTag(Addr pc, unsigned t) const
{
    return ((pc >> 2) ^ (pc >> 16) ^ foldTag[t].value() ^
            (std::uint64_t(foldTag[t].value()) << 1)) &
           mask(tagBits);
}

pipe::Prediction
EvesPredictor::predict(const pipe::LoadProbe &probe)
{
    pipe::Prediction result;
    result.component = pipe::ComponentId::Other;

    // E-Stride first: it captures sequences VTAGE cannot.
    const auto *sw = strideTable.lookup(
        probe.pc >> 2, ((probe.pc >> 2) ^ (probe.pc >> 16)) &
                           mask(tagBits));
    bool stride_hit = false;
    if (sw && sw->payload.conf.atLeast(cfg.strideConfThreshold)) {
        const std::int64_t steps =
            std::int64_t(probe.inflightSamePc) + 1;
        result.kind = pipe::Prediction::Kind::Value;
        result.value =
            Value(std::int64_t(sw->payload.lastValue) +
                  steps * sw->payload.stride);
        stride_hit = true;
    }

    // E-VTAGE: longest matching tagged table, else the base table.
    Snapshot snap;
    snap.idx.resize(cfg.numTagged);
    snap.tag.resize(cfg.numTagged);
    for (unsigned t = 0; t < cfg.numTagged; ++t) {
        snap.idx[t] = taggedIndex(probe.pc, t);
        snap.tag[t] = taggedTag(probe.pc, t);
    }
    Value vtage_value = 0;
    bool vtage_conf = false;
    for (int t = int(cfg.numTagged) - 1; t >= 0; --t) {
        const auto *way = tagged[t].lookup(snap.idx[t], snap.tag[t]);
        if (way) {
            snap.provider = t;
            vtage_value = way->payload.value;
            vtage_conf =
                way->payload.conf.atLeast(cfg.vtageConfThreshold);
            break;
        }
    }
    if (snap.provider < 0) {
        const BaseEntry &b = base[(probe.pc >> 2) % base.size()];
        vtage_value = b.value;
        vtage_conf = b.conf.atLeast(cfg.vtageConfThreshold);
    }
    snapshots[probe.token] = std::move(snap);

    if (!stride_hit && vtage_conf) {
        result.kind = pipe::Prediction::Kind::Value;
        result.value = vtage_value;
    }
    return result;
}

void
EvesPredictor::train(const pipe::LoadOutcome &o)
{
    // ---- E-Stride update --------------------------------------------
    bool hit = false;
    auto &sw = strideTable.allocate(
        o.pc >> 2, ((o.pc >> 2) ^ (o.pc >> 16)) & mask(tagBits),
        &hit);
    StrideEntry &se = sw.payload;
    if (!hit) {
        se.lastValue = o.value;
        se.stride = 0;
        se.seenOnce = true;
        se.conf.reset();
    } else {
        const std::int64_t delta =
            std::int64_t(o.value) - std::int64_t(se.lastValue);
        if (fitsSigned(delta, 16)) {
            if (se.seenOnce && delta == se.stride) {
                se.conf.increment(strideFpc(), rng);
            } else {
                se.stride = delta;
                se.conf.reset();
            }
        } else {
            se.stride = 0;
            se.conf.reset();
        }
        se.lastValue = o.value;
        se.seenOnce = true;
    }

    // ---- E-VTAGE update ---------------------------------------------
    auto it = snapshots.find(o.token);
    if (it == snapshots.end())
        return;
    const Snapshot snap = std::move(it->second);
    snapshots.erase(it);

    bool provider_correct = false;
    if (snap.provider >= 0) {
        auto *way = tagged[snap.provider].lookup(
            snap.idx[snap.provider], snap.tag[snap.provider]);
        if (way) {
            TaggedEntry &e = way->payload;
            if (e.value == o.value) {
                e.conf.increment(vtageFpc(), rng);
                if (e.conf.atLeast(cfg.vtageConfThreshold))
                    e.useful = 1;
                provider_correct = true;
            } else if (e.conf.value() == 0) {
                e.value = o.value;
                e.useful = 0;
            } else {
                e.conf.reset();
            }
        }
    } else {
        BaseEntry &b = base[(o.pc >> 2) % base.size()];
        if (b.value == o.value) {
            b.conf.increment(vtageFpc(), rng);
            provider_correct = true;
        } else {
            b.value = o.value;
            b.conf.reset();
        }
    }

    // VTAGE-style allocation into one longer table when the provider
    // failed: steal the resident entry only if its useful bit is
    // clear, otherwise decay the useful bit and try the next table.
    if (!provider_correct) {
        const unsigned start = unsigned(snap.provider + 1);
        for (unsigned t = start; t < cfg.numTagged; ++t) {
            auto &way = tagged[t].wayAt(snap.idx[t]);
            if (!way.valid || way.payload.useful == 0) {
                way.valid = true;
                way.tag = snap.tag[t];
                way.payload = TaggedEntry{};
                way.payload.value = o.value;
                break;
            }
            way.payload.useful = 0;
        }
    }
}

void
EvesPredictor::abandon(std::uint64_t token)
{
    snapshots.erase(token);
}

void
EvesPredictor::notifyBranch(Addr pc, bool taken, Addr target)
{
    (void)target;
    pathHist = (pathHist << 2) | (taken ? 2 : 0) | ((pc >> 2) & 1);
    ring.push(taken ? 1 : 0);
    for (unsigned t = 0; t < cfg.numTagged; ++t) {
        foldIdx[t].update(ring);
        foldTag[t].update(ring);
    }
    ring.push(unsigned((pc >> 2) & 1));
    for (unsigned t = 0; t < cfg.numTagged; ++t) {
        foldIdx[t].update(ring);
        foldTag[t].update(ring);
    }
}

std::uint64_t
EvesPredictor::storageBits() const
{
    return std::uint64_t(cfg.strideEntries) * strideEntryBits +
           std::uint64_t(cfg.baseEntries) * baseEntryBits +
           std::uint64_t(cfg.numTagged) * cfg.taggedEntries *
               taggedEntryBits;
}

} // namespace vp
} // namespace lvpsim
