/**
 * @file
 * Value storage strategies for the value predictors (LVP, CVP).
 *
 * The paper notes (end of Section III-B) that total storage "can be
 * considerably reduced by employing optimizations similar to the ones
 * described for the enhanced VTAGE implementation in [4] (e.g.,
 * decoupling the value/address arrays and then sharing them among the
 * predictors)". This header implements that option:
 *
 *  - InlineValueStore: each predictor entry embeds the full 64-bit
 *    value (the paper's baseline layout, 81-bit entries).
 *  - SharedValueStore: entries hold a small pointer into one shared,
 *    deduplicated value pool. Pool slots are recycled clock-style; a
 *    generation tag detects stale pointers (a real design would
 *    either walk back-pointers or simply let validation catch the
 *    stale value - the generation tag models the same outcome).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutils.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace vp
{

class ValueStore
{
  public:
    /** What a predictor entry holds instead of a raw value. */
    struct Ref
    {
        Value inlineValue = 0;  ///< inline strategy only
        std::uint32_t idx = 0;  ///< shared strategy only
        std::uint32_t gen = 0;  ///< shared strategy only
    };

    virtual ~ValueStore() = default;

    /** Persist @p v; returns the reference an entry should keep. */
    virtual Ref store(Value v) = 0;

    /** Read a reference; nullopt if the slot was recycled. */
    virtual std::optional<Value> load(const Ref &r) const = 0;

    /** Bits a predictor entry spends on its value reference. */
    virtual unsigned refBits() const = 0;

    /** Bits of the (shared) backing pool, counted once. */
    virtual std::uint64_t poolBits() const { return 0; }
};

/** The paper's baseline: the 64-bit value lives in the entry. */
class InlineValueStore : public ValueStore
{
  public:
    Ref
    store(Value v) override
    {
        Ref r;
        r.inlineValue = v;
        return r;
    }

    std::optional<Value>
    load(const Ref &r) const override
    {
        return r.inlineValue;
    }

    unsigned refBits() const override { return 64; }
};

/**
 * A shared, deduplicated pool of 64-bit values. Predictor entries
 * store log2(slots) pointer bits; identical values share one slot.
 */
class SharedValueStore : public ValueStore
{
  public:
    explicit SharedValueStore(std::size_t slots = 512)
        : pool(slots)
    {
        lvp_assert(isPowerOf2(slots), "pool slots must be pow2");
        // At most one byValue entry per valid pool slot, so a
        // one-time reserve makes store() allocation-free.
        byValue.reserve(slots);
    }

    Ref
    store(Value v) override
    {
        Ref r;
        auto it = byValue.find(v);
        if (it != byValue.end()) {
            Slot &s = pool[it->second];
            s.referenced = true;
            r.idx = it->second;
            r.gen = s.gen;
            return r;
        }
        // Clock replacement over the pool. Fresh slots start
        // unreferenced: only a re-store (dedup hit) marks a slot hot,
        // so one-shot values are recycled before shared ones.
        const std::uint32_t victim = advanceClock();
        Slot &s = pool[victim];
        if (s.valid)
            byValue.erase(s.value);
        ++s.gen; // stale pointers to this slot die here
        s.value = v;
        s.valid = true;
        s.referenced = false;
        byValue.emplace(v, victim);
        r.idx = victim;
        r.gen = s.gen;
        ++numEvictions;
        return r;
    }

    std::optional<Value>
    load(const Ref &r) const override
    {
        const Slot &s = pool[r.idx];
        if (!s.valid || s.gen != r.gen)
            return std::nullopt;
        return s.value;
    }

    unsigned
    refBits() const override
    {
        // Pointer + a small generation tag (modeling artifact; a
        // real design invalidates via back-pointers instead).
        return log2i(pool.size()) + 2;
    }

    std::uint64_t
    poolBits() const override
    {
        // 64-bit value + valid + referenced bit per slot.
        return std::uint64_t(pool.size()) * (64 + 2);
    }

    std::size_t slots() const { return pool.size(); }
    std::uint64_t evictions() const { return numEvictions; }
    std::size_t liveValues() const { return byValue.size(); }

  private:
    struct Slot
    {
        Value value = 0;
        std::uint32_t gen = 0;
        bool valid = false;
        bool referenced = false;
    };

    std::uint32_t
    advanceClock()
    {
        for (;;) {
            Slot &s = pool[clockHand];
            const std::uint32_t h = clockHand;
            clockHand = (clockHand + 1) % pool.size();
            if (!s.valid)
                return h;
            if (!s.referenced)
                return h;
            s.referenced = false;
        }
    }

    std::vector<Slot> pool;
    FlatMap<Value, std::uint32_t> byValue;
    std::uint32_t clockHand = 0;
    std::uint64_t numEvictions = 0;
};

} // namespace vp
} // namespace lvpsim

