/**
 * @file
 * Accuracy Monitors (paper Section V-B): throttle an entire component
 * predictor when it is mispredicting too much.
 *
 *  - M-AM: per-component misprediction rate over an execution epoch;
 *    a component above 3 MPKP (mispredictions per kilo-predictions)
 *    is silenced for the next epoch. Silenced predictors still train.
 *  - PC-AM: a small direct-mapped, PC-indexed and PC-tagged table of
 *    per-component correct/incorrect counters; a component is silenced
 *    for a PC when its accuracy there drops below 95%. Entries are
 *    allocated when a value-predicted load mispredicts (flushes), and
 *    updated by every value-predicted load with an entry, for all
 *    confident components.
 *  - PcAmInfinite: PC-AM with unbounded entries (limit study).
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitutils.hh"
#include "common/flat_map.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace vp
{

constexpr unsigned numComponents = 4;

/**
 * Per-component correctness of a retired, value-predicted load:
 * -1 = component was not confident, 0 = confident and wrong,
 *  1 = confident and correct.
 */
using ComponentCorrectness = std::array<int, numComponents>;

class AccuracyMonitor
{
  public:
    virtual ~AccuracyMonitor() = default;

    /** Should component @p c's confident prediction for @p pc be
     *  squashed? Checked at prediction (fetch) time. */
    virtual bool silenced(unsigned c, Addr pc) const = 0;

    /** A load with at least one confident component retired. */
    virtual void recordOutcome(Addr pc,
                               const ComponentCorrectness &cc) = 0;

    /** A used prediction was wrong and triggered a flush. */
    virtual void recordFlush(Addr pc) = 0;

    /** @p n more instructions retired (epoch machinery). */
    virtual void onRetire(std::uint64_t n) { (void)n; }

    virtual std::uint64_t storageBits() const = 0;
    virtual const char *name() const = 0;
};

/** M-AM: epoch-based whole-component silencing. */
class MAm : public AccuracyMonitor
{
  public:
    explicit MAm(std::uint64_t epoch_instrs = 1000000,
                 double threshold_mpkp = 3.0)
        : epochInstrs(epoch_instrs), thresholdMpkp(threshold_mpkp)
    {}

    bool
    silenced(unsigned c, Addr) const override
    {
        return silencedFlag[c];
    }

    void
    recordOutcome(Addr, const ComponentCorrectness &cc) override
    {
        for (unsigned c = 0; c < numComponents; ++c) {
            if (cc[c] < 0)
                continue;
            ++preds[c];
            if (cc[c] == 0)
                ++mispreds[c];
        }
    }

    void recordFlush(Addr) override {}

    void
    onRetire(std::uint64_t n) override
    {
        retired += n;
        if (retired < epochInstrs)
            return;
        retired = 0;
        for (unsigned c = 0; c < numComponents; ++c) {
            const double mpkp =
                preds[c] ? 1000.0 * double(mispreds[c]) /
                               double(preds[c])
                         : 0.0;
            silencedFlag[c] = mpkp > thresholdMpkp;
            preds[c] = 0;
            mispreds[c] = 0;
        }
    }

    std::uint64_t
    storageBits() const override
    {
        // Two 32-bit counters per component plus the silence bits.
        return numComponents * (2 * 32 + 1);
    }

    const char *name() const override { return "M-AM"; }

  private:
    std::uint64_t epochInstrs;
    double thresholdMpkp;
    std::uint64_t retired = 0;
    std::array<std::uint64_t, numComponents> preds{};
    std::array<std::uint64_t, numComponents> mispreds{};
    std::array<bool, numComponents> silencedFlag{};
};

/** PC-AM: per-PC, per-component accuracy tracking. */
class PcAm : public AccuracyMonitor
{
  public:
    /** @param entries table entries; 0 = infinite (map-backed). */
    explicit PcAm(std::size_t entries = 64,
                  double accuracy_threshold = 0.95)
        : numEntries(entries), accThreshold(accuracy_threshold)
    {
        if (numEntries)
            table.resize(numEntries);
    }

    bool
    silenced(unsigned c, Addr pc) const override
    {
        const Entry *e = find(pc);
        if (!e)
            return false;
        const unsigned good = e->correct[c];
        const unsigned bad = e->incorrect[c];
        if (good + bad == 0)
            return false;
        return double(good) / double(good + bad) < accThreshold;
    }

    void
    recordOutcome(Addr pc, const ComponentCorrectness &cc) override
    {
        Entry *e = find(pc);
        if (!e)
            return;
        bool overflow = false;
        for (unsigned c = 0; c < numComponents; ++c) {
            if (cc[c] < 0)
                continue;
            std::uint8_t &ctr =
                cc[c] == 1 ? e->correct[c] : e->incorrect[c];
            ++ctr;
            if (ctr & 0x80)
                overflow = true;
        }
        if (overflow) {
            // Halve everything: keeps the correct:incorrect ratio
            // while the counters stay 8 bits wide.
            for (unsigned c = 0; c < numComponents; ++c) {
                e->correct[c] >>= 1;
                e->incorrect[c] >>= 1;
            }
        }
    }

    void
    recordFlush(Addr pc) override
    {
        // Allocate (possibly replacing) on a misprediction flush.
        if (numEntries) {
            Entry &e = table[indexOf(pc)];
            if (!e.valid || e.tag != tagOf(pc)) {
                e = Entry{};
                e.valid = true;
                e.tag = tagOf(pc);
            }
        } else {
            infinite.emplace(pc >> 2);
        }
    }

    std::uint64_t
    storageBits() const override
    {
        // tag(10) + valid(1) + 8 x 8-bit counters per entry.
        const std::uint64_t per_entry = 10 + 1 + 8 * 8;
        return numEntries ? numEntries * per_entry
                          : infinite.size() * per_entry;
    }

    const char *
    name() const override
    {
        return numEntries ? "PC-AM" : "PC-AM-inf";
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::array<std::uint8_t, numComponents> correct{};
        std::array<std::uint8_t, numComponents> incorrect{};
    };

    std::size_t
    indexOf(Addr pc) const
    {
        return ((pc >> 2) ^ (pc >> 8)) % numEntries;
    }

    static std::uint16_t
    tagOf(Addr pc)
    {
        return std::uint16_t(((pc >> 2) ^ (pc >> 12)) & mask(10));
    }

    const Entry *
    find(Addr pc) const
    {
        if (numEntries) {
            const Entry &e = table[indexOf(pc)];
            return (e.valid && e.tag == tagOf(pc)) ? &e : nullptr;
        }
        auto it = infinite.find(pc >> 2);
        return it == infinite.end() ? nullptr : &it->second;
    }

    Entry *
    find(Addr pc)
    {
        return const_cast<Entry *>(
            static_cast<const PcAm *>(this)->find(pc));
    }

    std::size_t numEntries;
    double accThreshold;
    std::vector<Entry> table;
    FlatMap<Addr, Entry> infinite;
};

} // namespace vp
} // namespace lvpsim

