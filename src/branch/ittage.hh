/**
 * @file
 * ITTAGE indirect-target predictor (paper Table III baseline: "32KB
 * ITTAGE"). Same TAGE skeleton, but entries hold a full target and a
 * 2-bit hysteresis counter.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "branch/history.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace branch
{

struct IttageConfig
{
    unsigned numTables = 4;
    unsigned logBase = 9;      ///< direct-mapped base target cache
    unsigned logTagged = 8;
    unsigned tagBits = 11;
    unsigned minHist = 4;
    unsigned maxHist = 64;

    std::uint64_t storageBits() const;
};

class Ittage
{
  public:
    explicit Ittage(const IttageConfig &cfg = IttageConfig{},
                    std::uint64_t seed = 0x177a9e);

    /** Predict the target; returns 0 if no prediction available. */
    Addr predict(Addr pc);

    /** Train with the true target and advance history (trace order). */
    void update(Addr pc, Addr target);

    std::uint64_t lookups() const { return numLookups; }
    std::uint64_t mispredicts() const { return numMispredicts; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr target = 0;
        std::uint8_t conf = 0;   ///< 2-bit
        std::uint8_t useful = 0; ///< 1-bit
    };

    unsigned tableIndex(Addr pc, unsigned t) const;
    std::uint16_t tableTag(Addr pc, unsigned t) const;

    // lvplint: allow(state-snapshot) -- construction-time config, immutable
    IttageConfig cfg;
    std::vector<Addr> base;
    std::vector<std::vector<Entry>> tables;
    // lvplint: allow(state-snapshot) -- derived from cfg, immutable
    std::vector<unsigned> histLen;
    std::vector<FoldedHistory> foldIdx;
    std::vector<FoldedHistory> foldTag;
    HistoryRing ring;
    Xoshiro256 rng;

    int providerTable = -1;
    Addr lastPrediction = 0;
    Addr lastPc = 0;

    std::uint64_t numLookups = 0;
    std::uint64_t numMispredicts = 0;

  public:
    /** Mutable state only; table geometry comes from the config. */
    struct Snapshot
    {
        std::vector<Addr> base;
        std::vector<std::vector<Entry>> tables;
        std::vector<FoldedHistory> foldIdx;
        std::vector<FoldedHistory> foldTag;
        HistoryRing ring;
        Xoshiro256 rng;
        int providerTable = -1;
        Addr lastPrediction = 0;
        Addr lastPc = 0;
        std::uint64_t numLookups = 0;
        std::uint64_t numMispredicts = 0;
    };

    void saveState(Snapshot &s) const;
    void restoreState(const Snapshot &s);
};

} // namespace branch
} // namespace lvpsim

