/**
 * @file
 * Return address stack (paper Table III: 16 entries).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace lvpsim
{
namespace branch
{

class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16)
        : entries(depth, 0), top(0), count(0)
    {}

    void
    push(Addr return_addr)
    {
        top = (top + 1) % entries.size();
        entries[top] = return_addr;
        if (count < entries.size())
            ++count;
    }

    /** Pop a predicted return address; 0 if empty. */
    Addr
    pop()
    {
        if (count == 0)
            return 0;
        const Addr a = entries[top];
        top = (top + entries.size() - 1) % entries.size();
        --count;
        return a;
    }

    std::size_t depth() const { return count; }

    /** The stack is all mutable state; capacity rides in entries. */
    struct Snapshot
    {
        std::vector<Addr> entries;
        std::size_t top = 0;
        std::size_t count = 0;
    };

    void
    saveState(Snapshot &s) const
    {
        s.entries = entries;
        s.top = top;
        s.count = count;
    }

    void
    restoreState(const Snapshot &s)
    {
        entries = s.entries;
        top = s.top;
        count = s.count;
    }

  private:
    std::vector<Addr> entries;
    std::size_t top;
    std::size_t count;
};

} // namespace branch
} // namespace lvpsim

