#include "branch/tage.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace lvpsim
{
namespace branch
{

std::uint64_t
TageConfig::storageBits() const
{
    const std::uint64_t base_bits = (std::uint64_t(1) << logBase) * 2;
    const std::uint64_t entry_bits =
        tagBits + counterBits + usefulBits;
    return base_bits +
           std::uint64_t(numTables) * (std::uint64_t(1) << logTagged) *
               entry_bits;
}

Tage::Tage(const TageConfig &config, std::uint64_t seed)
    : cfg(config), rng(seed)
{
    base.assign(std::size_t(1) << cfg.logBase, 0);
    tables.assign(cfg.numTables, {});
    for (auto &t : tables)
        t.assign(std::size_t(1) << cfg.logTagged, TaggedEntry{});

    // Geometric history lengths between minHist and maxHist.
    histLen.resize(cfg.numTables);
    const double ratio =
        std::pow(double(cfg.maxHist) / cfg.minHist,
                 1.0 / std::max(1u, cfg.numTables - 1));
    double len = cfg.minHist;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        histLen[t] = std::max<unsigned>(1, unsigned(len + 0.5));
        if (t > 0 && histLen[t] <= histLen[t - 1])
            histLen[t] = histLen[t - 1] + 1;
        len *= ratio;
    }

    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldIdx.emplace_back(histLen[t], cfg.logTagged);
        foldTag1.emplace_back(histLen[t], cfg.tagBits);
        foldTag2.emplace_back(histLen[t], cfg.tagBits - 1);
    }
}

unsigned
Tage::tableIndex(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ (pc >> (cfg.logTagged + 2)) ^
                            foldIdx[t].value() ^
                            (pathHist & mask(std::min(16u, histLen[t])));
    return unsigned(h & mask(cfg.logTagged));
}

std::uint16_t
Tage::tableTag(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ foldTag1[t].value() ^
                            (std::uint64_t(foldTag2[t].value()) << 1);
    return std::uint16_t(h & mask(cfg.tagBits));
}

bool
Tage::predict(Addr pc)
{
    ++numLookups;
    lastPc = pc;
    providerTable = -1;
    altTable = -1;

    const bool base_pred =
        base[(pc >> 2) & mask(cfg.logBase)] >= 0;

    for (int t = int(cfg.numTables) - 1; t >= 0; --t) {
        const TaggedEntry &e = tables[t][tableIndex(pc, t)];
        if (e.valid && e.tag == tableTag(pc, t)) {
            if (providerTable < 0) {
                providerTable = t;
                providerPred = e.ctr >= 0;
            } else if (altTable < 0) {
                altTable = t;
                altPred = e.ctr >= 0;
                break;
            }
        }
    }
    if (altTable < 0)
        altPred = base_pred;

    lastPrediction = providerTable >= 0 ? providerPred : base_pred;
    return lastPrediction;
}

void
Tage::pushHistory(Addr pc, bool taken)
{
    ring.push(taken ? 1 : 0);
    pathHist = (pathHist << 1) | ((pc >> 2) & 1);
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldIdx[t].update(ring);
        foldTag1[t].update(ring);
        foldTag2[t].update(ring);
    }
}

void
Tage::updateHistoryOnly(Addr pc, bool taken)
{
    pushHistory(pc, taken);
}

void
Tage::update(Addr pc, bool taken)
{
    lvp_assert(pc == lastPc, "update without matching predict");
    if (lastPrediction != taken)
        ++numMispredicts;

    auto bump = [](std::int8_t &c, bool up, int lo, int hi) {
        if (up && c < hi)
            ++c;
        else if (!up && c > lo)
            --c;
    };

    const int cmax = (1 << (cfg.counterBits - 1)) - 1;
    const int cmin = -(1 << (cfg.counterBits - 1));
    const unsigned umax = (1u << cfg.usefulBits) - 1;

    if (providerTable >= 0) {
        TaggedEntry &e =
            tables[providerTable][tableIndex(pc, providerTable)];
        // Useful counter: provider differed from alt and was right(+)
        // or wrong(-).
        if (providerPred != altPred) {
            if (providerPred == taken) {
                if (e.useful < umax)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        bump(e.ctr, taken, cmin, cmax);
    } else {
        std::int8_t &c = base[(pc >> 2) & mask(cfg.logBase)];
        bump(c, taken, -2, 1); // 2-bit bimodal
    }

    // Allocate a new entry on a misprediction, in a longer table.
    if (lastPrediction != taken &&
        providerTable < int(cfg.numTables) - 1) {
        // Gather longer tables with a free (useful == 0) entry.
        int start = providerTable + 1;
        // Probabilistically skip ahead to spread allocations.
        if (start < int(cfg.numTables) - 1 && rng.bernoulli(0.5))
            start += rng.below(2);
        bool allocated = false;
        for (int t = start; t < int(cfg.numTables); ++t) {
            TaggedEntry &e = tables[t][tableIndex(pc, t)];
            if (!e.valid || e.useful == 0) {
                e.valid = true;
                e.tag = tableTag(pc, t);
                e.ctr = taken ? 0 : -1; // weak
                e.useful = 0;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // Aging: decay useful bits on the failed path.
            for (int t = start; t < int(cfg.numTables); ++t) {
                TaggedEntry &e = tables[t][tableIndex(pc, t)];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    pushHistory(pc, taken);
}

void
Tage::saveState(Snapshot &s) const
{
    s.base = base;
    s.tables = tables;
    s.foldIdx = foldIdx;
    s.foldTag1 = foldTag1;
    s.foldTag2 = foldTag2;
    s.ring = ring;
    s.pathHist = pathHist;
    s.rng = rng;
    s.providerTable = providerTable;
    s.altTable = altTable;
    s.providerPred = providerPred;
    s.altPred = altPred;
    s.lastPrediction = lastPrediction;
    s.lastPc = lastPc;
    s.numLookups = numLookups;
    s.numMispredicts = numMispredicts;
}

void
Tage::restoreState(const Snapshot &s)
{
    base = s.base;
    tables = s.tables;
    foldIdx = s.foldIdx;
    foldTag1 = s.foldTag1;
    foldTag2 = s.foldTag2;
    ring = s.ring;
    pathHist = s.pathHist;
    rng = s.rng;
    providerTable = s.providerTable;
    altTable = s.altTable;
    providerPred = s.providerPred;
    altPred = s.altPred;
    lastPrediction = s.lastPrediction;
    lastPc = s.lastPc;
    numLookups = s.numLookups;
    numMispredicts = s.numMispredicts;
}

} // namespace branch
} // namespace lvpsim
