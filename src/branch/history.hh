/**
 * @file
 * Branch/path history machinery shared by TAGE, ITTAGE and the
 * context-aware value predictors (CVP, CAP).
 *
 * HistoryRing stores the raw outcome/path bits; FoldedHistory keeps an
 * incrementally maintained XOR-fold of the most recent N bits down to a
 * small index/tag width, exactly as in Seznec's TAGE implementations.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace branch
{

/** A ring buffer of single history bits; index 0 is the newest bit. */
class HistoryRing
{
  public:
    explicit HistoryRing(std::size_t capacity = 4096)
        : bits(capacity, 0), head(0)
    {}

    void
    push(unsigned bit)
    {
        head = (head + 1) % bits.size();
        bits[head] = static_cast<std::uint8_t>(bit & 1);
    }

    /** Bit pushed @p distance steps ago (0 = newest). */
    unsigned
    at(std::size_t distance) const
    {
        lvp_assert(distance < bits.size(), "history ring too short");
        return bits[(head + bits.size() - distance) % bits.size()];
    }

    /** Serialization access (pipeline/snapshot_io): raw ring state. */
    const std::vector<std::uint8_t> &rawBits() const { return bits; }
    std::size_t rawHead() const { return head; }

    void
    restoreRaw(std::vector<std::uint8_t> newBits, std::size_t newHead)
    {
        lvp_assert(!newBits.empty() && newHead < newBits.size(),
                   "bad history ring restore");
        bits = std::move(newBits);
        head = newHead;
    }

  private:
    std::vector<std::uint8_t> bits;
    std::size_t head;
};

/**
 * Incrementally maintained fold of the newest origLength history bits
 * into compLength bits. update() must be called exactly once per
 * history push, after the push.
 */
class FoldedHistory
{
  public:
    FoldedHistory(unsigned orig_length, unsigned comp_length)
        : origLength(orig_length), compLength(comp_length),
          outPoint(orig_length % comp_length), comp(0)
    {
        lvp_assert(comp_length >= 1 && comp_length <= 31,
                   "bad fold width %u", comp_length);
    }

    void
    update(const HistoryRing &ring)
    {
        comp = (comp << 1) | ring.at(0);
        comp ^= static_cast<std::uint32_t>(ring.at(origLength))
                << outPoint;
        comp ^= comp >> compLength;
        comp &= (std::uint32_t(1) << compLength) - 1;
    }

    std::uint32_t value() const { return comp; }
    unsigned length() const { return origLength; }

    /** Serialization access (pipeline/snapshot_io): the fold width. */
    unsigned foldedLength() const { return compLength; }

    /** Restore a fold value captured by value(). */
    void
    restoreRaw(std::uint32_t v)
    {
        comp = v & ((std::uint32_t(1) << compLength) - 1);
    }

    void reset() { comp = 0; }

  private:
    unsigned origLength;
    unsigned compLength;
    unsigned outPoint;
    std::uint32_t comp;
};

} // namespace branch
} // namespace lvpsim

