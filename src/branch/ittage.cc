#include "branch/ittage.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace lvpsim
{
namespace branch
{

std::uint64_t
IttageConfig::storageBits() const
{
    const std::uint64_t target_bits = 49;
    const std::uint64_t base_bits =
        (std::uint64_t(1) << logBase) * target_bits;
    const std::uint64_t entry_bits = tagBits + target_bits + 2 + 1;
    return base_bits +
           std::uint64_t(numTables) * (std::uint64_t(1) << logTagged) *
               entry_bits;
}

Ittage::Ittage(const IttageConfig &config, std::uint64_t seed)
    : cfg(config), rng(seed)
{
    base.assign(std::size_t(1) << cfg.logBase, 0);
    tables.assign(cfg.numTables, {});
    for (auto &t : tables)
        t.assign(std::size_t(1) << cfg.logTagged, Entry{});

    histLen.resize(cfg.numTables);
    const double ratio =
        std::pow(double(cfg.maxHist) / cfg.minHist,
                 1.0 / std::max(1u, cfg.numTables - 1));
    double len = cfg.minHist;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        histLen[t] = std::max<unsigned>(1, unsigned(len + 0.5));
        if (t > 0 && histLen[t] <= histLen[t - 1])
            histLen[t] = histLen[t - 1] + 1;
        len *= ratio;
    }
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldIdx.emplace_back(histLen[t], cfg.logTagged);
        foldTag.emplace_back(histLen[t], cfg.tagBits);
    }
}

unsigned
Ittage::tableIndex(Addr pc, unsigned t) const
{
    const std::uint64_t h =
        (pc >> 2) ^ (pc >> (cfg.logTagged + 2)) ^ foldIdx[t].value();
    return unsigned(h & mask(cfg.logTagged));
}

std::uint16_t
Ittage::tableTag(Addr pc, unsigned t) const
{
    const std::uint64_t h =
        (pc >> 2) ^ foldTag[t].value() ^ (foldTag[t].value() << 1);
    return std::uint16_t(h & mask(cfg.tagBits));
}

Addr
Ittage::predict(Addr pc)
{
    ++numLookups;
    lastPc = pc;
    providerTable = -1;
    lastPrediction = base[(pc >> 2) & mask(cfg.logBase)];

    for (int t = int(cfg.numTables) - 1; t >= 0; --t) {
        const Entry &e = tables[t][tableIndex(pc, t)];
        if (e.valid && e.tag == tableTag(pc, t)) {
            providerTable = t;
            if (e.conf >= 1 || lastPrediction == 0)
                lastPrediction = e.target;
            break;
        }
    }
    return lastPrediction;
}

void
Ittage::update(Addr pc, Addr target)
{
    lvp_assert(pc == lastPc, "update without matching predict");
    const bool correct = lastPrediction == target;
    if (!correct)
        ++numMispredicts;

    if (providerTable >= 0) {
        Entry &e = tables[providerTable][tableIndex(pc, providerTable)];
        if (e.target == target) {
            if (e.conf < 3)
                ++e.conf;
            e.useful = correct ? 1 : e.useful;
        } else if (e.conf > 0) {
            --e.conf;
        } else {
            e.target = target;
            e.conf = 0;
        }
    }
    base[(pc >> 2) & mask(cfg.logBase)] = target;

    if (!correct && providerTable < int(cfg.numTables) - 1) {
        for (int t = providerTable + 1; t < int(cfg.numTables); ++t) {
            Entry &e = tables[t][tableIndex(pc, t)];
            if (!e.valid || e.useful == 0) {
                e.valid = true;
                e.tag = tableTag(pc, t);
                e.target = target;
                e.conf = 1;
                e.useful = 0;
                break;
            }
        }
    }

    // Advance history with two hashed target bits so that any pair of
    // distinct targets perturbs the folded histories (raw low target
    // bits are often identical across aligned handlers).
    const std::uint64_t h = mix64(target);
    ring.push(unsigned(h & 1));
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldIdx[t].update(ring);
        foldTag[t].update(ring);
    }
    ring.push(unsigned((h >> 1) & 1));
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        foldIdx[t].update(ring);
        foldTag[t].update(ring);
    }
}

void
Ittage::saveState(Snapshot &s) const
{
    s.base = base;
    s.tables = tables;
    s.foldIdx = foldIdx;
    s.foldTag = foldTag;
    s.ring = ring;
    s.rng = rng;
    s.providerTable = providerTable;
    s.lastPrediction = lastPrediction;
    s.lastPc = lastPc;
    s.numLookups = numLookups;
    s.numMispredicts = numMispredicts;
}

void
Ittage::restoreState(const Snapshot &s)
{
    base = s.base;
    tables = s.tables;
    foldIdx = s.foldIdx;
    foldTag = s.foldTag;
    ring = s.ring;
    rng = s.rng;
    providerTable = s.providerTable;
    lastPrediction = s.lastPrediction;
    lastPc = s.lastPc;
    numLookups = s.numLookups;
    numMispredicts = s.numMispredicts;
}

} // namespace branch
} // namespace lvpsim
