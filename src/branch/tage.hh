/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud), the baseline
 * core's direction predictor (paper Table III: "state-of-art 32KB TAGE").
 *
 * Bimodal base + N partially tagged tables indexed with geometrically
 * increasing history lengths. The simulator drives it trace-style:
 * predict(pc) then update(pc, taken) in fetch order.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "branch/history.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace branch
{

struct TageConfig
{
    unsigned numTables = 6;
    unsigned logBase = 13;       ///< bimodal entries = 2^logBase
    unsigned logTagged = 10;     ///< entries per tagged table
    unsigned tagBits = 12;
    unsigned minHist = 5;
    unsigned maxHist = 130;
    unsigned counterBits = 3;
    unsigned usefulBits = 2;

    /** Total storage in bits. */
    std::uint64_t storageBits() const;
};

class Tage
{
  public:
    explicit Tage(const TageConfig &cfg = TageConfig{},
                  std::uint64_t seed = 0x7a9e);

    /** Predict direction using the current global history. */
    bool predict(Addr pc);

    /**
     * Train with the true outcome and advance the history. Must follow
     * the matching predict() call (trace order).
     */
    void update(Addr pc, bool taken);

    /** Advance history for a branch that was not predicted by TAGE. */
    void updateHistoryOnly(Addr pc, bool taken);

    std::uint64_t lookups() const { return numLookups; }
    std::uint64_t mispredicts() const { return numMispredicts; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;     ///< signed; taken if >= 0
        std::uint8_t useful = 0;
        bool valid = false;
    };

    unsigned tableIndex(Addr pc, unsigned t) const;
    std::uint16_t tableTag(Addr pc, unsigned t) const;
    void pushHistory(Addr pc, bool taken);

    // lvplint: allow(state-snapshot) -- construction-time config, immutable
    TageConfig cfg;
    std::vector<std::int8_t> base; ///< 2-bit bimodal, taken if >= 0
    std::vector<std::vector<TaggedEntry>> tables;
    // lvplint: allow(state-snapshot) -- derived from cfg, immutable
    std::vector<unsigned> histLen;
    std::vector<FoldedHistory> foldIdx;
    std::vector<FoldedHistory> foldTag1;
    std::vector<FoldedHistory> foldTag2;
    HistoryRing ring;
    std::uint64_t pathHist = 0;
    Xoshiro256 rng;

    // Prediction state carried from predict() to update().
    int providerTable = -1;
    int altTable = -1;
    bool providerPred = false;
    bool altPred = false;
    bool lastPrediction = false;
    Addr lastPc = 0;

    std::uint64_t numLookups = 0;
    std::uint64_t numMispredicts = 0;

  public:
    /** Mutable state only; table geometry comes from the config. */
    struct Snapshot
    {
        std::vector<std::int8_t> base;
        std::vector<std::vector<TaggedEntry>> tables;
        std::vector<FoldedHistory> foldIdx;
        std::vector<FoldedHistory> foldTag1;
        std::vector<FoldedHistory> foldTag2;
        HistoryRing ring;
        std::uint64_t pathHist = 0;
        Xoshiro256 rng;
        int providerTable = -1;
        int altTable = -1;
        bool providerPred = false;
        bool altPred = false;
        bool lastPrediction = false;
        Addr lastPc = 0;
        std::uint64_t numLookups = 0;
        std::uint64_t numMispredicts = 0;
    };

    void saveState(Snapshot &s) const;
    void restoreState(const Snapshot &s);
};

} // namespace branch
} // namespace lvpsim

