#include "sim/results_json.hh"

#include <cmath>
#include <fstream>
#include <sstream>

namespace lvpsim
{
namespace sim
{

namespace
{

constexpr std::uint64_t kSchemaVersion = 1;

double
numberOr(const JsonValue *v, double fallback)
{
    return v && v->isNumber() ? v->asDouble() : fallback;
}

/**
 * Derived metrics can be NaN or infinite (empty suite, zero-IPC or
 * zero-instruction row). JSON has no encoding for those, so clamp
 * them to an explicit null; readers fall back via numberOr().
 */
JsonValue
finiteOrNull(double x)
{
    return std::isfinite(x) ? JsonValue(x) : JsonValue();
}

} // anonymous namespace

JsonValue
toJson(const pipe::SimStats &s)
{
    JsonValue o = JsonValue::object();
    pipe::forEachCounter(
        s, [&](std::string_view name, std::uint64_t v) {
            o.set(std::string(name), JsonValue(v));
        });
    // Derived metrics, for human readers and plotting scripts;
    // ignored on re-parse (recomputable from the counters above).
    o.set("ipc", finiteOrNull(s.ipc()));
    o.set("coverage", finiteOrNull(s.coverage()));
    o.set("accuracy", finiteOrNull(s.accuracy()));
    return o;
}

bool
simStatsFromJson(const JsonValue &v, pipe::SimStats &out)
{
    if (!v.isObject())
        return false;
    out = pipe::SimStats{};
    for (const auto &[key, val] : v.members()) {
        if (!val.isNumber())
            continue;
        // Unknown keys (ipc/coverage/accuracy, future additions) are
        // skipped; setCounter handles every raw counter.
        (void)pipe::setCounter(out, key, val.asU64());
    }
    return true;
}

JsonValue
toJson(const WorkloadResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("workload", JsonValue(r.workload));
    o.set("trace_format", JsonValue(r.traceFormat));
    o.set("trace_instructions", JsonValue(r.traceInstructions));
    o.set("storage_bits", JsonValue(r.storageBits));
    o.set("speedup", finiteOrNull(r.speedup()));
    o.set("coverage", finiteOrNull(r.coverage()));
    o.set("accuracy", finiteOrNull(r.accuracy()));
    o.set("base", toJson(r.base));
    o.set("with_vp", toJson(r.withVp));
    o.set("sampled", JsonValue(r.sampled));
    o.set("sample_error", finiteOrNull(r.sampleError));
    o.set("sample_k", JsonValue(r.sampleK));
    o.set("interval_length", JsonValue(r.intervalLength));
    o.set("base_seconds", JsonValue(r.baseSeconds));
    o.set("vp_seconds", JsonValue(r.vpSeconds));
    o.set("checkpoint_seconds", JsonValue(r.checkpointSeconds));
    return o;
}

bool
workloadResultFromJson(const JsonValue &v, WorkloadResult &out)
{
    if (!v.isObject())
        return false;
    out = WorkloadResult{};
    const JsonValue *name = v.find("workload");
    if (!name || !name->isString())
        return false;
    out.workload = name->asString();
    // Pre-TraceSource files lack the trace metadata; keep the struct
    // defaults ("synthetic", 0) for those.
    if (const JsonValue *tf = v.find("trace_format"))
        if (tf->isString())
            out.traceFormat = tf->asString();
    out.traceInstructions = std::uint64_t(
        numberOr(v.find("trace_instructions"), 0.0));
    if (const JsonValue *sb = v.find("storage_bits"))
        out.storageBits = sb->asU64();
    const JsonValue *base = v.find("base");
    const JsonValue *with = v.find("with_vp");
    if (!base || !with || !simStatsFromJson(*base, out.base) ||
        !simStatsFromJson(*with, out.withVp))
        return false;
    // Pre-sampling files lack the sampled block; keep the defaults
    // (full run) for those.
    if (const JsonValue *sm = v.find("sampled"))
        out.sampled = sm->asBool();
    out.sampleError = numberOr(v.find("sample_error"), 0.0);
    out.sampleK =
        std::uint64_t(numberOr(v.find("sample_k"), 0.0));
    out.intervalLength =
        std::uint64_t(numberOr(v.find("interval_length"), 0.0));
    out.baseSeconds = numberOr(v.find("base_seconds"), 0.0);
    out.vpSeconds = numberOr(v.find("vp_seconds"), 0.0);
    out.checkpointSeconds =
        numberOr(v.find("checkpoint_seconds"), 0.0);
    return true;
}

JsonValue
toJson(const SuiteResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("label", JsonValue(r.label));
    o.set("storage_bits", JsonValue(r.storageBits));
    o.set("storage_kb", JsonValue(r.storageKB()));
    o.set("geomean_speedup", finiteOrNull(r.geomeanSpeedup()));
    o.set("mean_coverage", finiteOrNull(r.meanCoverage()));
    o.set("mean_accuracy", finiteOrNull(r.meanAccuracy()));
    JsonValue rows = JsonValue::array();
    for (const auto &row : r.rows)
        rows.push(toJson(row));
    o.set("workloads", std::move(rows));
    o.set("wall_seconds", JsonValue(r.wallSeconds));
    return o;
}

bool
suiteResultFromJson(const JsonValue &v, SuiteResult &out)
{
    if (!v.isObject())
        return false;
    out = SuiteResult{};
    const JsonValue *label = v.find("label");
    if (!label || !label->isString())
        return false;
    out.label = label->asString();
    if (const JsonValue *sb = v.find("storage_bits"))
        out.storageBits = sb->asU64();
    const JsonValue *rows = v.find("workloads");
    if (!rows || !rows->isArray())
        return false;
    for (const auto &rv : rows->items()) {
        WorkloadResult r;
        if (!workloadResultFromJson(rv, r))
            return false;
        out.rows.push_back(std::move(r));
    }
    out.wallSeconds = numberOr(v.find("wall_seconds"), 0.0);
    return true;
}

JsonValue
resultsToJson(const std::vector<SuiteResult> &suites,
              const ReportMeta &meta)
{
    JsonValue o = JsonValue::object();
    o.set("schema_version", JsonValue(kSchemaVersion));
    o.set("tool", JsonValue("lvpsim"));
    JsonValue m = JsonValue::object();
    m.set("jobs", JsonValue(meta.jobs));
    m.set("instructions", JsonValue(meta.maxInstrs));
    m.set("warmup_instructions", JsonValue(meta.warmupInstrs));
    m.set("trace_seed", JsonValue(meta.traceSeed));
    m.set("sample_k", JsonValue(meta.sampleK));
    m.set("interval_length", JsonValue(meta.intervalLen));
    m.set("progress_instructions", JsonValue(meta.progressInstrs));
    m.set("suite", JsonValue(meta.suite));
    m.set("store_hits", JsonValue(meta.storeHits));
    m.set("store_misses", JsonValue(meta.storeMisses));
    m.set("store_seconds", JsonValue(meta.storeSeconds));
    o.set("meta", std::move(m));
    JsonValue arr = JsonValue::array();
    for (const auto &s : suites)
        arr.push(toJson(s));
    o.set("suites", std::move(arr));
    return o;
}

bool
resultsFromJson(const JsonValue &v, std::vector<SuiteResult> &suites,
                ReportMeta *meta)
{
    if (!v.isObject())
        return false;
    const JsonValue *ver = v.find("schema_version");
    if (!ver || !ver->isNumber() || ver->asU64() != kSchemaVersion)
        return false;
    if (meta) {
        *meta = ReportMeta{};
        if (const JsonValue *m = v.find("meta")) {
            meta->jobs =
                std::size_t(numberOr(m->find("jobs"), 1.0));
            meta->maxInstrs =
                std::size_t(numberOr(m->find("instructions"), 0.0));
            meta->warmupInstrs = std::size_t(
                numberOr(m->find("warmup_instructions"), 0.0));
            meta->traceSeed =
                std::uint64_t(numberOr(m->find("trace_seed"), 0.0));
            meta->sampleK =
                std::size_t(numberOr(m->find("sample_k"), 0.0));
            meta->intervalLen = std::size_t(
                numberOr(m->find("interval_length"), 0.0));
            meta->progressInstrs = std::uint64_t(
                numberOr(m->find("progress_instructions"), 0.0));
            if (const JsonValue *s = m->find("suite"))
                if (s->isString())
                    meta->suite = s->asString();
            meta->storeHits =
                std::uint64_t(numberOr(m->find("store_hits"), 0.0));
            meta->storeMisses =
                std::uint64_t(numberOr(m->find("store_misses"), 0.0));
            meta->storeSeconds =
                numberOr(m->find("store_seconds"), 0.0);
        }
    }
    const JsonValue *arr = v.find("suites");
    if (!arr || !arr->isArray())
        return false;
    suites.clear();
    for (const auto &sv : arr->items()) {
        SuiteResult s;
        if (!suiteResultFromJson(sv, s))
            return false;
        suites.push_back(std::move(s));
    }
    return true;
}

bool
writeResultsFile(const std::string &path,
                 const std::vector<SuiteResult> &suites,
                 const ReportMeta &meta, std::string *err)
{
    std::ofstream os(path);
    if (!os) {
        if (err)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    resultsToJson(suites, meta).dump(os, 2);
    os << "\n";
    if (!os) {
        if (err)
            *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

bool
readResultsFile(const std::string &path,
                std::vector<SuiteResult> &suites, ReportMeta *meta,
                std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string perr;
    JsonValue v = parseJson(buf.str(), &perr);
    if (v.isNull() && !perr.empty()) {
        if (err)
            *err = path + ": " + perr;
        return false;
    }
    if (!resultsFromJson(v, suites, meta)) {
        if (err)
            *err = path + ": not a valid lvpsim results document";
        return false;
    }
    return true;
}

} // namespace sim
} // namespace lvpsim
