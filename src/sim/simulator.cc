#include "sim/simulator.hh"

#include "trace/workloads.hh"

namespace lvpsim
{
namespace sim
{

pipe::SimStats
runTrace(const std::vector<trace::MicroOp> &ops,
         pipe::LoadValuePredictor *vp, const RunConfig &rc)
{
    pipe::Core core(rc.core, ops, vp);
    return core.run();
}

TraceCache &
TraceCache::instance()
{
    static TraceCache c;
    return c;
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload, std::size_t max_ops,
                std::uint64_t seed)
{
    const std::string key = workload + "#" +
                            std::to_string(max_ops) + "#" +
                            std::to_string(seed);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto ptr = std::make_shared<const std::vector<trace::MicroOp>>(
        trace::generateWorkload(workload, max_ops, seed));
    cache.emplace(key, ptr);
    return ptr;
}

pipe::SimStats
runWorkload(const std::string &workload, pipe::LoadValuePredictor *vp,
            const RunConfig &rc)
{
    auto ops = TraceCache::instance().get(workload, rc.maxInstrs,
                                          rc.traceSeed);
    return runTrace(*ops, vp, rc);
}

} // namespace sim
} // namespace lvpsim
