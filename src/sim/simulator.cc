#include "sim/simulator.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "sim/sampled.hh"
#include "trace/kernel_spec.hh"
#include "trace/trace_spec.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

// lvplint: allow(determinism) -- feeds only the reporting-only
// SimCheckpoint::buildSeconds field, stripped by determinism diffs
using WallClock = std::chrono::steady_clock;

double
secondsSince(WallClock::time_point t0)
{
    return std::chrono::duration<double>(WallClock::now() - t0)
        .count();
}

// Progress reporting is process-wide opt-in state (CLI --progress):
// reads/writes are relaxed because the value only gates stderr lines,
// never simulation behavior.
std::atomic<std::uint64_t> progressEvery{0};
Mutex progressPrintMx;

} // anonymous namespace

void
setProgressReportEvery(std::uint64_t every)
{
    progressEvery.store(every, std::memory_order_relaxed);
}

std::uint64_t
progressReportEvery()
{
    return progressEvery.load(std::memory_order_relaxed);
}

void
installProgressHook(pipe::Core &core, const std::string &label)
{
    const std::uint64_t every = progressReportEvery();
    if (every == 0)
        return;
    core.setProgressHook(every, [label](std::uint64_t committed) {
        // One line per tick; serialized so --jobs runs don't
        // interleave partial lines. stderr only: --json output (and
        // the determinism diff) never sees these.
        MutexLock lk(progressPrintMx);
        std::fprintf(stderr, "progress: %s %" PRIu64 " instructions\n",
                     label.c_str(), committed);
    });
}

pipe::SimStats
runTrace(const std::vector<trace::MicroOp> &ops,
         pipe::LoadValuePredictor *vp, const RunConfig &rc)
{
    pipe::Core core(rc.core, ops, vp);
    installProgressHook(core, "run");
    if (rc.warmupInstrs)
        core.warmup(rc.warmupInstrs);
    return core.run();
}

std::string
runConfigKey(const RunConfig &rc)
{
    // Every field of RunConfig (and its nested configs) must appear
    // here: the key is what makes "same key => same results" true for
    // CheckpointCache and BaselineCache. Append-only, '.'-separated.
    std::string k;
    k.reserve(256);
    const auto add = [&k](std::uint64_t v) {
        k += std::to_string(v);
        k += '.';
    };
    add(rc.maxInstrs);
    add(rc.warmupInstrs);
    add(rc.traceSeed);
    add(rc.sampleK);
    add(rc.sampleIntervalLen);

    const pipe::CoreConfig &c = rc.core;
    add(c.fetchWidth);
    add(c.issueWidth);
    add(c.lsLanes);
    add(c.retireWidth);
    add(c.robSize);
    add(c.iqSize);
    add(c.ldqSize);
    add(c.stqSize);
    add(c.fetchToExecute);
    add(c.paqSize);
    add(c.intAluLat);
    add(c.intMulLat);
    add(c.intDivLat);
    add(c.fpLat);
    add(c.branchLat);
    add(c.storeLat);
    add(c.stlfLat);

    const auto addCache = [&](const mem::CacheConfig &cc) {
        add(cc.sizeBytes);
        add(cc.assoc);
        add(cc.blockSize);
        add(cc.accessLatency);
    };
    addCache(c.memory.l1i);
    addCache(c.memory.l1d);
    addCache(c.memory.l2);
    addCache(c.memory.l3);
    add(c.memory.memoryLatency);
    add(c.memory.enablePrefetch ? 1 : 0);

    add(c.tage.numTables);
    add(c.tage.logBase);
    add(c.tage.logTagged);
    add(c.tage.tagBits);
    add(c.tage.minHist);
    add(c.tage.maxHist);
    add(c.tage.counterBits);
    add(c.tage.usefulBits);

    add(c.ittage.numTables);
    add(c.ittage.logBase);
    add(c.ittage.logTagged);
    add(c.ittage.tagBits);
    add(c.ittage.minHist);
    add(c.ittage.maxHist);

    add(c.rasDepth);
    add(c.seed);
    return k;
}

TraceCache &
TraceCache::instance()
{
    static TraceCache c;
    return c;
}

std::shared_ptr<TraceCache::Slot>
TraceCache::ensure(const std::string &workload, std::size_t max_ops,
                   std::uint64_t seed)
{
    const std::string key = workload + "#" +
                            std::to_string(max_ops) + "#" +
                            std::to_string(seed);

    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }

    // Exactly one caller generates (or loads); concurrent callers
    // for the same key block here until the trace is ready.
    // call_once publishes slot->trace to every waiter.
    std::call_once(slot->once, [&] {
        const trace::TraceSpec spec = trace::parseTraceSpec(workload);
        if (spec.kind == trace::TraceKind::Synthetic) {
            // Identical to the historical path: generateWorkload
            // output, bit for bit, and an identity that needs no
            // file hashing.
            slot->trace =
                std::make_shared<const std::vector<trace::MicroOp>>(
                    trace::generateWorkload(spec.name, max_ops,
                                            seed));
            // Canonicalized so equivalent kernel-spec spellings
            // share TraceCache / checkpoint-cache entries.
            slot->identity = "synth:" +
                             trace::canonicalSyntheticName(spec.name) +
                             "#" + std::to_string(max_ops) + "#" +
                             std::to_string(seed);
            slot->format = "synthetic";
        } else {
            std::string err;
            auto src =
                trace::openTraceSource(spec, max_ops, seed, &err);
            if (!src) {
                lvp_fatal("cannot open trace '%s': %s",
                          spec.name.c_str(), err.c_str());
            }
            // File traces are truncated to the run's instruction
            // budget; the cap is part of the identity because it
            // changes the delivered stream.
            slot->trace =
                std::make_shared<const std::vector<trace::MicroOp>>(
                    trace::materialize(*src, max_ops));
            slot->identity =
                src->identity() + "#cap" + std::to_string(max_ops);
            slot->format = src->format();
        }
        generated.fetch_add(1, std::memory_order_relaxed);
    });
    return slot;
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload, std::size_t max_ops,
                std::uint64_t seed)
{
    return ensure(workload, max_ops, seed)->trace;
}

TraceCache::Info
TraceCache::info(const std::string &workload, std::size_t max_ops,
                 std::uint64_t seed)
{
    auto slot = ensure(workload, max_ops, seed);
    return Info{slot->trace, slot->identity, slot->format};
}

void
TraceCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
}

CheckpointCache &
CheckpointCache::instance()
{
    static CheckpointCache c;
    return c;
}

std::shared_ptr<CheckpointCache::Slot>
CheckpointCache::ensure(const std::string &key)
{
    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }
    return slot;
}

CheckpointCache::CheckpointPtr
CheckpointCache::get(const std::string &workload, const RunConfig &rc)
{
    lvp_assert(rc.warmupInstrs > 0,
               "CheckpointCache::get with zero warmup");
    // Key on the trace identity, not the raw spec string: for
    // file-backed traces the identity embeds a content hash, so a
    // rewritten file can never alias a stale checkpoint.
    const std::string key =
        runConfigKey(rc) + "#" +
        TraceCache::instance()
            .info(workload, rc.maxInstrs + rc.warmupInstrs,
                  rc.traceSeed)
            .identity;
    auto slot = ensure(key);

    // Exactly one caller simulates the warmup region; concurrent
    // callers for the same key block until the checkpoint is ready.
    std::call_once(slot->once, [&] {
        const auto t0 = WallClock::now();
        auto ops = TraceCache::instance().get(
            workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
        auto ck = std::make_shared<SimCheckpoint>();
        ck->warmupInstrs = rc.warmupInstrs;
        pipe::Core core(rc.core, *ops, nullptr);
        core.warmup(rc.warmupInstrs);
        core.saveState(ck->core);
        ck->buildSeconds = secondsSince(t0);
        slot->ckpt = std::move(ck);
        generated.fetch_add(1, std::memory_order_relaxed);
    });
    return slot->ckpt;
}

std::vector<CheckpointCache::CheckpointPtr>
CheckpointCache::getIntervals(const std::string &workload,
                              const RunConfig &rc,
                              const std::vector<std::uint64_t> &indices)
{
    const std::string prefix =
        runConfigKey(rc) + "#" +
        TraceCache::instance()
            .info(workload, rc.maxInstrs + rc.warmupInstrs,
                  rc.traceSeed)
            .identity;

    std::vector<std::shared_ptr<Slot>> slots;
    slots.reserve(indices.size());
    for (std::uint64_t idx : indices)
        slots.push_back(
            ensure(prefix + "#interval" + std::to_string(idx)));

    // One streaming pass over the trace: the builder core starts from
    // the newest checkpoint at or before the next missing index (any
    // earlier slot in this batch, cached or just built) and
    // fast-forwards only the gap. Per-slot call_once keeps each
    // checkpoint built exactly once process-wide; a concurrent batch
    // can duplicate forward progress, never publish different state.
    TraceCache::TracePtr ops;
    std::unique_ptr<pipe::Core> core;
    std::uint64_t pos = 0;
    CheckpointPtr prev;
    std::uint64_t prevIdx = 0;
    std::vector<CheckpointPtr> out(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::uint64_t idx = indices[i];
        lvp_assert(i == 0 || indices[i - 1] < idx,
                   "interval indices must be ascending and unique");
        std::call_once(slots[i]->once, [&] {
            const auto t0 = WallClock::now();
            if (!ops)
                ops = TraceCache::instance().get(
                    workload, rc.maxInstrs + rc.warmupInstrs,
                    rc.traceSeed);
            if (!core || pos > idx) {
                core = std::make_unique<pipe::Core>(rc.core, *ops,
                                                    nullptr);
                pos = 0;
                installProgressHook(*core, workload + " (warmup)");
            }
            if (prev && prevIdx <= idx && prevIdx > pos) {
                core->restoreState(prev->core);
                pos = prevIdx;
            }
            core->functionalWarmup(idx - pos);
            pos = idx;
            auto ck = std::make_shared<SimCheckpoint>();
            ck->warmupInstrs = idx;
            core->saveState(ck->core);
            ck->buildSeconds = secondsSince(t0);
            slots[i]->ckpt = std::move(ck);
            generated.fetch_add(1, std::memory_order_relaxed);
        });
        out[i] = slots[i]->ckpt;
        prev = out[i];
        prevIdx = idx;
    }
    return out;
}

void
CheckpointCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
}

pipe::SimStats
runWorkload(const std::string &workload, pipe::LoadValuePredictor *vp,
            const RunConfig &rc)
{
    if (rc.sampleK > 0)
        return runSampledWorkload(workload, vp, rc).stats;
    auto ops = TraceCache::instance().get(
        workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
    if (rc.warmupInstrs == 0)
        return runTrace(*ops, vp, rc);
    // Restore the memoized post-warmup state instead of re-simulating
    // the warmup region; bit-identical to the inline path because the
    // warmup region never touches the (freshly constructed) VP.
    auto ckpt = CheckpointCache::instance().get(workload, rc);
    pipe::Core core(rc.core, *ops, vp);
    installProgressHook(core, workload);
    core.restoreState(ckpt->core);
    return core.run();
}

} // namespace sim
} // namespace lvpsim
