#include "sim/simulator.hh"

#include "trace/workloads.hh"

namespace lvpsim
{
namespace sim
{

pipe::SimStats
runTrace(const std::vector<trace::MicroOp> &ops,
         pipe::LoadValuePredictor *vp, const RunConfig &rc)
{
    pipe::Core core(rc.core, ops, vp);
    return core.run();
}

TraceCache &
TraceCache::instance()
{
    static TraceCache c;
    return c;
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload, std::size_t max_ops,
                std::uint64_t seed)
{
    const std::string key = workload + "#" +
                            std::to_string(max_ops) + "#" +
                            std::to_string(seed);

    std::shared_ptr<Slot> slot;
    {
        std::shared_lock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        std::unique_lock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }

    // Exactly one caller generates; concurrent callers for the same
    // key block here until the trace is ready. call_once publishes
    // slot->trace to every waiter.
    std::call_once(slot->once, [&] {
        slot->trace =
            std::make_shared<const std::vector<trace::MicroOp>>(
                trace::generateWorkload(workload, max_ops, seed));
        generated.fetch_add(1, std::memory_order_relaxed);
    });
    return slot->trace;
}

void
TraceCache::clear()
{
    std::unique_lock wr(mapMx);
    cache.clear();
}

pipe::SimStats
runWorkload(const std::string &workload, pipe::LoadValuePredictor *vp,
            const RunConfig &rc)
{
    auto ops = TraceCache::instance().get(workload, rc.maxInstrs,
                                          rc.traceSeed);
    return runTrace(*ops, vp, rc);
}

} // namespace sim
} // namespace lvpsim
