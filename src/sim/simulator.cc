#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "pipeline/snapshot_io.hh"
#include "sim/checkpoint_store.hh"
#include "sim/sampled.hh"
#include "trace/kernel_spec.hh"
#include "trace/trace_spec.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

// lvplint: allow(determinism) -- feeds only the reporting-only
// SimCheckpoint::buildSeconds field, stripped by determinism diffs
using WallClock = std::chrono::steady_clock;

double
secondsSince(WallClock::time_point t0)
{
    return std::chrono::duration<double>(WallClock::now() - t0)
        .count();
}

// Progress reporting is process-wide opt-in state (CLI --progress):
// reads/writes are relaxed because the value only gates stderr lines,
// never simulation behavior.
std::atomic<std::uint64_t> progressEvery{0};
Mutex progressPrintMx;

/** On-disk payload for one SimCheckpoint (CheckpointStore entry). */
void
encodeCheckpoint(BinWriter &w, const SimCheckpoint &ck)
{
    w.u32(pipe::kSnapshotFormatVersion);
    pipe::serializeSnapshot(w, ck.core);
    w.u64(ck.warmupInstrs);
}

bool
decodeCheckpoint(BinReader &r, SimCheckpoint &ck)
{
    if (r.u32() != pipe::kSnapshotFormatVersion)
        return false;
    pipe::deserializeSnapshot(r, ck.core);
    ck.warmupInstrs = r.u64();
    return r.ok() && r.atEnd();
}

std::string
intervalKey(const std::string &prefix, std::uint64_t idx)
{
    return prefix + "#interval" + std::to_string(idx);
}

} // anonymous namespace

void
setProgressReportEvery(std::uint64_t every)
{
    progressEvery.store(every, std::memory_order_relaxed);
}

std::uint64_t
progressReportEvery()
{
    return progressEvery.load(std::memory_order_relaxed);
}

void
installProgressHook(pipe::Core &core, const std::string &label)
{
    const std::uint64_t every = progressReportEvery();
    if (every == 0)
        return;
    core.setProgressHook(every, [label](std::uint64_t committed) {
        // One line per tick; serialized so --jobs runs don't
        // interleave partial lines. stderr only: --json output (and
        // the determinism diff) never sees these.
        MutexLock lk(progressPrintMx);
        std::fprintf(stderr, "progress: %s %" PRIu64 " instructions\n",
                     label.c_str(), committed);
    });
}

pipe::SimStats
runTrace(const std::vector<trace::MicroOp> &ops,
         pipe::LoadValuePredictor *vp, const RunConfig &rc)
{
    pipe::Core core(rc.core, ops, vp);
    installProgressHook(core, "run");
    if (rc.warmupInstrs)
        core.warmup(rc.warmupInstrs);
    return core.run();
}

std::string
runConfigKey(const RunConfig &rc)
{
    // Every field of RunConfig (and its nested configs) must appear
    // here: the key is what makes "same key => same results" true for
    // CheckpointCache and BaselineCache. Append-only, '.'-separated.
    std::string k;
    k.reserve(256);
    const auto add = [&k](std::uint64_t v) {
        k += std::to_string(v);
        k += '.';
    };
    add(rc.maxInstrs);
    add(rc.warmupInstrs);
    add(rc.traceSeed);
    add(rc.sampleK);
    add(rc.sampleIntervalLen);

    const pipe::CoreConfig &c = rc.core;
    add(c.fetchWidth);
    add(c.issueWidth);
    add(c.lsLanes);
    add(c.retireWidth);
    add(c.robSize);
    add(c.iqSize);
    add(c.ldqSize);
    add(c.stqSize);
    add(c.fetchToExecute);
    add(c.paqSize);
    add(c.intAluLat);
    add(c.intMulLat);
    add(c.intDivLat);
    add(c.fpLat);
    add(c.branchLat);
    add(c.storeLat);
    add(c.stlfLat);

    const auto addCache = [&](const mem::CacheConfig &cc) {
        add(cc.sizeBytes);
        add(cc.assoc);
        add(cc.blockSize);
        add(cc.accessLatency);
    };
    addCache(c.memory.l1i);
    addCache(c.memory.l1d);
    addCache(c.memory.l2);
    addCache(c.memory.l3);
    add(c.memory.memoryLatency);
    add(c.memory.enablePrefetch ? 1 : 0);

    add(c.tage.numTables);
    add(c.tage.logBase);
    add(c.tage.logTagged);
    add(c.tage.tagBits);
    add(c.tage.minHist);
    add(c.tage.maxHist);
    add(c.tage.counterBits);
    add(c.tage.usefulBits);

    add(c.ittage.numTables);
    add(c.ittage.logBase);
    add(c.ittage.logTagged);
    add(c.ittage.tagBits);
    add(c.ittage.minHist);
    add(c.ittage.maxHist);

    add(c.rasDepth);
    add(c.seed);
    return k;
}

TraceCache &
TraceCache::instance()
{
    static TraceCache c;
    return c;
}

std::shared_ptr<TraceCache::Slot>
TraceCache::ensure(const std::string &workload, std::size_t max_ops,
                   std::uint64_t seed)
{
    const std::string key = workload + "#" +
                            std::to_string(max_ops) + "#" +
                            std::to_string(seed);

    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }

    // Exactly one caller generates (or loads); concurrent callers
    // for the same key block here until the trace is ready.
    // call_once publishes slot->trace to every waiter.
    std::call_once(slot->once, [&] {
        const trace::TraceSpec spec = trace::parseTraceSpec(workload);
        if (spec.kind == trace::TraceKind::Synthetic) {
            // Identical to the historical path: generateWorkload
            // output, bit for bit, and an identity that needs no
            // file hashing.
            slot->trace =
                std::make_shared<const std::vector<trace::MicroOp>>(
                    trace::generateWorkload(spec.name, max_ops,
                                            seed));
            // Canonicalized so equivalent kernel-spec spellings
            // share TraceCache / checkpoint-cache entries.
            slot->identity = "synth:" +
                             trace::canonicalSyntheticName(spec.name) +
                             "#" + std::to_string(max_ops) + "#" +
                             std::to_string(seed);
            slot->format = "synthetic";
        } else {
            std::string err;
            auto src =
                trace::openTraceSource(spec, max_ops, seed, &err);
            if (!src) {
                lvp_fatal("cannot open trace '%s': %s",
                          spec.name.c_str(), err.c_str());
            }
            // File traces are truncated to the run's instruction
            // budget; the cap is part of the identity because it
            // changes the delivered stream.
            slot->trace =
                std::make_shared<const std::vector<trace::MicroOp>>(
                    trace::materialize(*src, max_ops));
            slot->identity =
                src->identity() + "#cap" + std::to_string(max_ops);
            slot->format = src->format();
        }
        generated.fetch_add(1, std::memory_order_relaxed);
    });
    return slot;
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload, std::size_t max_ops,
                std::uint64_t seed)
{
    return ensure(workload, max_ops, seed)->trace;
}

TraceCache::Info
TraceCache::info(const std::string &workload, std::size_t max_ops,
                 std::uint64_t seed)
{
    auto slot = ensure(workload, max_ops, seed);
    return Info{slot->trace, slot->identity, slot->format};
}

void
TraceCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
}

CheckpointCache &
CheckpointCache::instance()
{
    static CheckpointCache c;
    return c;
}

std::shared_ptr<CheckpointCache::Slot>
CheckpointCache::ensure(const std::string &key)
{
    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }
    return slot;
}

CheckpointCache::CheckpointPtr
CheckpointCache::get(const std::string &workload, const RunConfig &rc)
{
    lvp_assert(rc.warmupInstrs > 0,
               "CheckpointCache::get with zero warmup");
    // Key on the trace identity, not the raw spec string: for
    // file-backed traces the identity embeds a content hash, so a
    // rewritten file can never alias a stale checkpoint.
    const std::string key =
        runConfigKey(rc) + "#" +
        TraceCache::instance()
            .info(workload, rc.maxInstrs + rc.warmupInstrs,
                  rc.traceSeed)
            .identity;
    auto slot = ensure(key);

    // Exactly one caller in this process resolves the key (L1
    // once_flag); with the disk store enabled it first consults L2
    // and only simulates the warmup region on a disk miss, claiming
    // the key so concurrent *processes* also build it at most once.
    std::call_once(slot->once, [&] {
        const auto t0 = WallClock::now();
        auto ck = std::make_shared<SimCheckpoint>();
        ck->warmupInstrs = rc.warmupInstrs;
        const auto buildInline = [&] {
            auto ops = TraceCache::instance().get(
                workload, rc.maxInstrs + rc.warmupInstrs,
                rc.traceSeed);
            pipe::Core core(rc.core, *ops, nullptr);
            core.warmup(rc.warmupInstrs);
            core.saveState(ck->core);
            generated.fetch_add(1, std::memory_order_relaxed);
        };
        auto &store = CheckpointStore::instance();
        if (store.enabled()) {
            store.fetchOrBuild(
                "ckpt:" + key,
                [&](BinReader &r) {
                    return decodeCheckpoint(r, *ck) &&
                           ck->warmupInstrs == rc.warmupInstrs;
                },
                [&](BinWriter &w) {
                    buildInline();
                    encodeCheckpoint(w, *ck);
                });
        } else {
            buildInline();
        }
        ck->buildSeconds = secondsSince(t0);
        slot->ckpt = std::move(ck);
    });
    return slot->ckpt;
}

std::shared_ptr<CheckpointCache::IntervalSlot>
CheckpointCache::ensureInterval(const std::string &key)
{
    {
        ReaderLock rd(mapMx);
        auto it = intervalCache.find(key);
        if (it != intervalCache.end())
            return it->second;
    }
    WriterLock wr(mapMx);
    auto [it, inserted] =
        intervalCache.try_emplace(key, std::make_shared<IntervalSlot>());
    (void)inserted;
    return it->second;
}

std::shared_ptr<CheckpointCache::TraceState>
CheckpointCache::ensureTraceState(const std::string &prefix)
{
    {
        ReaderLock rd(mapMx);
        auto it = traceStates.find(prefix);
        if (it != traceStates.end())
            return it->second;
    }
    WriterLock wr(mapMx);
    auto [it, inserted] =
        traceStates.try_emplace(prefix, std::make_shared<TraceState>());
    (void)inserted;
    return it->second;
}

void
CheckpointCache::publishInterval(TraceState &ts,
                                 const std::string &prefix,
                                 std::uint64_t idx, double buildSeconds)
{
    auto slot = ensureInterval(intervalKey(prefix, idx));
    if (!slot->ready.load(std::memory_order_acquire)) {
        auto ck = std::make_shared<SimCheckpoint>();
        ck->warmupInstrs = idx;
        ts.core->saveState(ck->core);
        ck->buildSeconds = buildSeconds;
        auto &store = CheckpointStore::instance();
        if (store.enabled()) {
            store.publish("ckpt:" + intervalKey(prefix, idx),
                          [&](BinWriter &w) {
                              encodeCheckpoint(w, *ck);
                          });
        }
        slot->ckpt = std::move(ck);
        slot->ready.store(true, std::memory_order_release);
        generated.fetch_add(1, std::memory_order_relaxed);
    }
    MutexLock lk(ts.claimMx);
    ts.claims.erase(idx);
}

void
CheckpointCache::advanceAndPublish(TraceState &ts,
                                   const std::string &prefix,
                                   std::uint64_t target)
{
    // Chunked so claims registered by batches that arrive *while* we
    // stream are still honored at the next chunk boundary instead of
    // forcing that batch to re-traverse the whole gap.
    constexpr std::uint64_t kClaimChunk = 65536;
    auto segStart = WallClock::now();
    if (ts.pos == target) {
        // Already there (index 0 on a fresh core, or a prior batch
        // parked the cursor exactly here): save without stepping.
        publishInterval(ts, prefix, target, secondsSince(segStart));
        return;
    }
    while (ts.pos < target) {
        std::uint64_t stop = target;
        {
            MutexLock lk(ts.claimMx);
            auto it = ts.claims.upper_bound(ts.pos);
            if (it != ts.claims.end() && *it < stop)
                stop = *it;
        }
        const std::uint64_t step =
            std::min(stop - ts.pos, kClaimChunk);
        ts.core->functionalWarmup(step);
        ts.pos += step;
        ffInstrs.fetch_add(step, std::memory_order_relaxed);

        bool save = ts.pos == target;
        if (!save) {
            MutexLock lk(ts.claimMx);
            save = ts.claims.count(ts.pos) > 0;
        }
        if (save) {
            publishInterval(ts, prefix, ts.pos,
                            secondsSince(segStart));
            segStart = WallClock::now();
        }
    }
}

std::vector<CheckpointCache::CheckpointPtr>
CheckpointCache::getIntervals(const std::string &workload,
                              const RunConfig &rc,
                              const std::vector<std::uint64_t> &indices)
{
    const std::string prefix =
        runConfigKey(rc) + "#" +
        TraceCache::instance()
            .info(workload, rc.maxInstrs + rc.warmupInstrs,
                  rc.traceSeed)
            .identity;
    auto state = ensureTraceState(prefix);

    std::vector<std::shared_ptr<IntervalSlot>> slots;
    slots.reserve(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        lvp_assert(i == 0 || indices[i - 1] < indices[i],
                   "interval indices must be ascending and unique");
        slots.push_back(
            ensureInterval(intervalKey(prefix, indices[i])));
    }

    // Claim every missing index *before* any building: whichever
    // batch holds the streaming cursor saves a checkpoint at each
    // claimed index it passes, so overlapping concurrent batches
    // traverse each fast-forward gap once instead of once per batch.
    {
        MutexLock lk(state->claimMx);
        for (std::size_t i = 0; i < indices.size(); ++i) {
            if (!slots[i]->ready.load(std::memory_order_acquire))
                state->claims.insert(indices[i]);
        }
    }

    auto &store = CheckpointStore::instance();
    std::vector<CheckpointPtr> out(indices.size());
    CheckpointPtr prev;
    std::uint64_t prevIdx = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::uint64_t idx = indices[i];
        if (!slots[i]->ready.load(std::memory_order_acquire)) {
            MutexLock lk(state->buildMx);
            if (slots[i]->ready.load(std::memory_order_acquire)) {
                // Another batch built it while we waited for the
                // cursor; the claim (ours or theirs) is satisfied.
                MutexLock clk(state->claimMx);
                state->claims.erase(idx);
            } else {
                if (!state->ops) {
                    state->ops = TraceCache::instance().get(
                        workload, rc.maxInstrs + rc.warmupInstrs,
                        rc.traceSeed);
                }
                // L2 first: an exact-index disk hit both serves this
                // slot and teleports the cursor forward.
                bool fromDisk = false;
                if (store.enabled()) {
                    auto ck = std::make_shared<SimCheckpoint>();
                    const auto t0 = WallClock::now();
                    if (store.tryLoad(
                            "ckpt:" + intervalKey(prefix, idx),
                            [&](BinReader &r) {
                                return decodeCheckpoint(r, *ck) &&
                                       ck->warmupInstrs == idx;
                            })) {
                        ck->buildSeconds = secondsSince(t0);
                        if (!state->core) {
                            state->core = std::make_unique<pipe::Core>(
                                rc.core, *state->ops, nullptr);
                            state->pos = 0;
                            installProgressHook(*state->core,
                                                workload +
                                                    " (warmup)");
                        }
                        if (state->pos <= idx) {
                            state->core->restoreState(ck->core);
                            state->pos = idx;
                        }
                        slots[i]->ckpt = std::move(ck);
                        slots[i]->ready.store(
                            true, std::memory_order_release);
                        MutexLock clk(state->claimMx);
                        state->claims.erase(idx);
                        fromDisk = true;
                    }
                }
                if (!fromDisk) {
                    if (!state->core || state->pos > idx) {
                        state->core = std::make_unique<pipe::Core>(
                            rc.core, *state->ops, nullptr);
                        state->pos = 0;
                        installProgressHook(*state->core,
                                            workload + " (warmup)");
                        if (prev && prevIdx <= idx) {
                            state->core->restoreState(prev->core);
                            state->pos = prevIdx;
                        }
                    }
                    advanceAndPublish(*state, prefix, idx);
                }
            }
        } else {
            // Already ready when we got here: drop any stale claim we
            // registered so the cursor does not stop there for us.
            MutexLock clk(state->claimMx);
            state->claims.erase(idx);
        }
        out[i] = slots[i]->ckpt;
        prev = out[i];
        prevIdx = idx;
    }
    return out;
}

void
CheckpointCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
    intervalCache.clear();
    traceStates.clear();
}

pipe::SimStats
runWorkload(const std::string &workload, pipe::LoadValuePredictor *vp,
            const RunConfig &rc)
{
    if (rc.sampleK > 0)
        return runSampledWorkload(workload, vp, rc).stats;
    auto ops = TraceCache::instance().get(
        workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
    if (rc.warmupInstrs == 0)
        return runTrace(*ops, vp, rc);
    // Restore the memoized post-warmup state instead of re-simulating
    // the warmup region; bit-identical to the inline path because the
    // warmup region never touches the (freshly constructed) VP.
    auto ckpt = CheckpointCache::instance().get(workload, rc);
    pipe::Core core(rc.core, *ops, vp);
    installProgressHook(core, workload);
    core.restoreState(ckpt->core);
    return core.run();
}

} // namespace sim
} // namespace lvpsim
