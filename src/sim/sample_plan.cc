#include "sim/sample_plan.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/random.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

using Sig = trace::IntervalSignature;

/** Squared Euclidean distance between two signature vectors. Values
 *  are <= 1 << 16 per dimension, so each term fits 32 bits and the
 *  80-dimension sum stays far below 2^64. */
std::uint64_t
dist2(const std::array<std::uint32_t, Sig::dims> &a,
      const std::array<std::uint32_t, Sig::dims> &b)
{
    std::uint64_t sum = 0;
    for (std::size_t d = 0; d < Sig::dims; ++d) {
        const std::int64_t diff =
            std::int64_t(a[d]) - std::int64_t(b[d]);
        sum += std::uint64_t(diff * diff);
    }
    return sum;
}

} // anonymous namespace

SamplePlan
buildSamplePlan(const trace::IntervalProfile &profile, std::size_t k,
                std::uint64_t seed)
{
    using Point = std::array<std::uint32_t, Sig::dims>;

    SamplePlan plan;
    plan.intervalLen = profile.intervalLen;
    plan.totalInstructions = profile.totalInstructions;

    const std::size_t n = profile.intervals.size();
    if (n == 0)
        return plan;
    k = std::min(k, n);
    lvp_assert(k > 0, "sample plan needs k > 0");

    Xoshiro256 rng(seed ^ 0x5a6d506c616e2121ull);

    // ---- k-means++ initialization ---------------------------------
    // First centroid: a seeded uniform draw; each further centroid is
    // drawn proportionally to D^2 (distance to the nearest chosen
    // centroid) via an integer prefix-sum inverse draw. When the
    // total D^2 collapses to zero every remaining point duplicates a
    // centroid, so fewer than k clusters suffice.
    std::vector<Point> centroids;
    centroids.reserve(k);
    std::vector<std::uint64_t> best(
        n, std::numeric_limits<std::uint64_t>::max());

    centroids.push_back(profile.intervals[rng.below(n)].v);
    while (centroids.size() < k) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t d =
                dist2(profile.intervals[i].v, centroids.back());
            if (d < best[i])
                best[i] = d;
            total += best[i];
        }
        if (total == 0)
            break;
        std::uint64_t r = rng.below(total);
        std::size_t pick = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            if (r < best[i]) {
                pick = i;
                break;
            }
            r -= best[i];
        }
        centroids.push_back(profile.intervals[pick].v);
    }

    // ---- Lloyd iterations (fixed cap, ties -> lowest index) -------
    constexpr unsigned maxIters = 16;
    std::vector<std::uint32_t> assign(n, 0);
    for (unsigned iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t bestC = 0;
            std::uint64_t bestD =
                std::numeric_limits<std::uint64_t>::max();
            for (std::size_t c = 0; c < centroids.size(); ++c) {
                const std::uint64_t d =
                    dist2(profile.intervals[i].v, centroids[c]);
                if (d < bestD) {
                    bestD = d;
                    bestC = std::uint32_t(c);
                }
            }
            if (assign[i] != bestC) {
                assign[i] = bestC;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Weighted integer centroid update: sums stay within 64 bits
        // (total instructions * fixedOne < 2^48 + 2^16 headroom).
        std::vector<std::array<std::uint64_t, Sig::dims>> sums(
            centroids.size());
        std::vector<std::uint64_t> weights(centroids.size(), 0);
        for (auto &s : sums)
            s.fill(0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t w =
                profile.intervals[i].instructions;
            weights[assign[i]] += w;
            for (std::size_t d = 0; d < Sig::dims; ++d)
                sums[assign[i]][d] +=
                    w * profile.intervals[i].v[d];
        }
        // Drop empty clusters deterministically (compact in order)
        // and renumber the assignments to match.
        std::vector<Point> next;
        std::vector<std::uint32_t> renumber(centroids.size(), 0);
        for (std::size_t c = 0; c < centroids.size(); ++c) {
            if (weights[c] == 0)
                continue;
            renumber[c] = std::uint32_t(next.size());
            Point p;
            for (std::size_t d = 0; d < Sig::dims; ++d)
                p[d] = std::uint32_t(sums[c][d] / weights[c]);
            next.push_back(p);
        }
        for (std::size_t i = 0; i < n; ++i)
            assign[i] = renumber[assign[i]];
        centroids = std::move(next);
    }

    // ---- Strata: spend the whole k-budget -------------------------
    // Signature clustering alone is not enough: behavior drifts over
    // time even when the signature does not (predictors keep
    // training, working sets migrate), and for homogeneous workloads
    // every interval ties so k-means collapses to one cluster whose
    // single representative would then speak for the whole trace —
    // startup transient and all. So when fewer than k clusters
    // survive, the spare measurement slots subdivide clusters by
    // TIME: each cluster's member list (already in interval order)
    // is cut into contiguous strata, one measured representative
    // per stratum, weighted by the stratum's own instructions. Slots
    // go to clusters greedily by instructions-per-slot (d'Hondt
    // rounding; integer cross-multiplication, ties -> lowest
    // cluster), so heavy phases get sampled at more points in time.
    const std::size_t C = centroids.size();
    std::vector<std::vector<std::size_t>> members(C);
    std::vector<std::uint64_t> clusterWeight(C, 0);
    for (std::size_t i = 0; i < n; ++i) {
        members[assign[i]].push_back(i);
        clusterWeight[assign[i]] += profile.intervals[i].instructions;
    }

    std::vector<std::size_t> slots(C, 1);
    std::size_t totalSlots = C;
    while (totalSlots < k) {
        std::size_t pick = C;
        for (std::size_t c = 0; c < C; ++c) {
            if (slots[c] >= members[c].size())
                continue;
            if (pick == C ||
                clusterWeight[c] * slots[pick] >
                    clusterWeight[pick] * slots[c])
                pick = c;
        }
        if (pick == C)
            break; // every cluster already measures all its members
        ++slots[pick];
        ++totalSlots;
    }

    // Within a stratum the representative is the member closest to
    // the cluster centroid; distance ties break toward the middle of
    // the stratum. The tie-break matters precisely in the collapsed
    // case above — the signature records what code runs, not what
    // state it runs against, so among look-alike members the
    // mid-stratum one is the best stand-in for its neighbors.
    struct Stratum
    {
        std::size_t rep = 0;
        std::uint64_t weight = 0;
        std::uint32_t size = 0;
    };
    std::vector<Stratum> strata;
    strata.reserve(totalSlots);
    std::vector<std::uint32_t> stratumOf(n, 0);
    for (std::size_t c = 0; c < C; ++c) {
        const std::size_t s = members[c].size();
        const std::size_t m = slots[c];
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t lo = j * s / m;
            const std::size_t hi = (j + 1) * s / m;
            Stratum st;
            std::uint64_t bestD =
                std::numeric_limits<std::uint64_t>::max();
            std::uint64_t bestBias = 0;
            for (std::size_t p = lo; p < hi; ++p) {
                const std::size_t i = members[c][p];
                stratumOf[i] = std::uint32_t(strata.size());
                st.weight += profile.intervals[i].instructions;
                ++st.size;
                const std::uint64_t d =
                    dist2(profile.intervals[i].v, centroids[c]);
                const std::uint64_t mid = lo + hi - 1;
                const std::uint64_t bias =
                    2 * p > mid ? 2 * p - mid : mid - 2 * p;
                if (d < bestD || (d == bestD && bias < bestBias)) {
                    bestD = d;
                    bestBias = bias;
                    st.rep = i;
                }
            }
            strata.push_back(st);
        }
    }

    // Emit sorted by interval index so the checkpoint builder can
    // stream forward through the trace once.
    std::vector<std::size_t> order(strata.size());
    for (std::size_t p = 0; p < order.size(); ++p)
        order[p] = p;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return strata[a].rep < strata[b].rep;
              });

    std::vector<std::uint32_t> posOf(strata.size(), 0);
    for (std::size_t p = 0; p < order.size(); ++p) {
        const Stratum &st = strata[order[p]];
        posOf[order[p]] = std::uint32_t(p);
        SampleRep rep;
        rep.interval = std::uint32_t(st.rep);
        rep.weightInstructions = st.weight;
        rep.clusterSize = st.size;
        plan.reps.push_back(rep);
    }
    plan.assignment.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        plan.assignment[i] = posOf[stratumOf[i]];
    return plan;
}

} // namespace sim
} // namespace lvpsim
