#include "sim/sampled.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/binio.hh"
#include "common/logging.hh"
#include "core/lvp_interface.hh"
#include "pipeline/snapshot_io.hh"
#include "sim/checkpoint_store.hh"
#include "trace/instruction.hh"
#include "trace/interval_profile.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

/**
 * Fixed modeling floor added to the statistical confidence bound:
 * functional fast-forward trains branch predictors exactly and the
 * value predictor at commit order (below), but warms caches without
 * speculative wrong-path accesses and leaves the memory-dependence
 * predictor cold, so even a zero-variance sample carries a small
 * bias (~3% worst-case on the suite: functional warming has no
 * wrong-path cache pollution). The detailed one-interval warmup
 * before each measurement keeps the residual under this floor
 * (locked by the sampled_vs_full bench gate).
 */
constexpr double kSampleErrorFloor = 0.03;

/**
 * Functional VP-training window before each measurement, in
 * intervals. Value-predictor tables saturate within a few thousand
 * hot-PC hits, so training on the whole fast-forwarded gap buys no
 * accuracy over a bounded suffix — it only erodes the sampling
 * speedup (the training pass costs real table lookups per load).
 * Eight intervals at the default interval length is several times
 * the composite's table capacity in loads.
 */
constexpr std::uint64_t kVpWarmIntervals = 8;

/**
 * Two-sided 95% Student-t quantile by degrees of freedom (clamped
 * into [1, 15]; the normal 1.96 serves beyond that). With a handful
 * of strata the normal quantile understates the uncertainty of the
 * across-representative spread noticeably — at K = 8 the honest
 * factor is 2.365, not 1.96.
 */
double
t95(std::size_t dof)
{
    static constexpr double q[] = {12.71, 4.30, 3.18, 2.78, 2.57,
                                   2.45,  2.36, 2.31, 2.26, 2.23,
                                   2.20,  2.18, 2.16, 2.14, 2.13};
    if (dof < 1)
        dof = 1;
    return dof <= 15 ? q[dof - 1] : 1.96;
}

/**
 * Train the value predictor on the fast-forwarded region
 * [@p from, @p to) of the trace, mirroring the detailed pipeline's
 * commit-order training sequence: notifyBranch for every control op,
 * probe + notifyLoad + immediate train for every predictable load.
 * Without a pipeline no prediction is ever consumed, so outcomes
 * carry predictionUsed = false — the same convention the core uses
 * for its own warmup region. This is what lets a 10K-instruction
 * measurement report the coverage of a predictor with the full
 * training history behind it instead of a freshly-zeroed one.
 */
void
functionalVpTrain(const std::vector<trace::MicroOp> &ops,
                  std::uint64_t from, std::uint64_t to,
                  pipe::LoadValuePredictor &vp, std::uint64_t &token)
{
    std::uint64_t retired = 0;
    for (std::uint64_t i = from; i < to; ++i) {
        const trace::MicroOp &op = ops[i];
        if (op.isBranch()) {
            vp.notifyBranch(op.pc, op.taken, op.target);
        } else if (op.isPredictableLoad()) {
            pipe::LoadProbe probe;
            probe.pc = op.pc;
            probe.token = token++;
            (void)vp.predict(probe);
            vp.notifyLoad(op.pc);
            pipe::LoadOutcome out;
            out.pc = op.pc;
            out.token = probe.token;
            out.effAddr = op.effAddr;
            out.size = op.memSize;
            out.value = op.memValue;
            vp.train(out);
        }
        if (++retired == 1024) {
            vp.onRetire(retired);
            retired = 0;
        }
    }
    if (retired)
        vp.onRetire(retired);
}

void
encodePlan(BinWriter &w, const SamplePlan &plan)
{
    w.u32(pipe::kSnapshotFormatVersion);
    w.u64(plan.intervalLen);
    w.u64(plan.totalInstructions);
    w.u64(plan.reps.size());
    for (const SampleRep &rep : plan.reps) {
        w.u32(rep.interval);
        w.u64(rep.weightInstructions);
        w.u32(rep.clusterSize);
    }
    w.u64(plan.assignment.size());
    for (std::uint32_t a : plan.assignment)
        w.u32(a);
}

bool
decodePlan(BinReader &r, SamplePlan &plan)
{
    if (r.u32() != pipe::kSnapshotFormatVersion)
        return false;
    plan.intervalLen = r.u64();
    plan.totalInstructions = r.u64();
    const std::size_t nReps = r.count(16);
    plan.reps.resize(r.ok() ? nReps : 0);
    for (SampleRep &rep : plan.reps) {
        rep.interval = r.u32();
        rep.weightInstructions = r.u64();
        rep.clusterSize = r.u32();
    }
    const std::size_t nAssign = r.count(4);
    plan.assignment.resize(r.ok() ? nAssign : 0);
    for (std::uint32_t &a : plan.assignment)
        a = r.u32();
    // Structural cross-checks mirror what buildSamplePlan guarantees;
    // a violation means a foreign/corrupt payload, so force a miss.
    if (!r.ok() || !r.atEnd() || plan.intervalLen == 0)
        return false;
    for (std::uint32_t a : plan.assignment)
        if (a >= plan.reps.size())
            return false;
    return true;
}

} // anonymous namespace

PlanCache &
PlanCache::instance()
{
    static PlanCache c;
    return c;
}

PlanCache::PlanPtr
PlanCache::get(const std::string &workload, const RunConfig &rc)
{
    lvp_assert(rc.sampleK > 0, "PlanCache::get with sampleK == 0");
    lvp_assert(rc.sampleIntervalLen > 0,
               "sample interval length must be positive");
    // Key on the trace identity (content hash for file-backed
    // traces) plus everything that shapes the plan.
    const auto info = TraceCache::instance().info(
        workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
    const std::string key =
        info.identity + "#L" + std::to_string(rc.sampleIntervalLen) +
        "#k" + std::to_string(rc.sampleK) + "#s" +
        std::to_string(rc.traceSeed);

    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }

    std::call_once(slot->once, [&] {
        auto plan = std::make_shared<SamplePlan>();
        const auto buildInline = [&] {
            const trace::IntervalProfile profile =
                trace::profileTrace(*info.trace, rc.sampleIntervalLen);
            *plan = buildSamplePlan(profile, rc.sampleK, rc.traceSeed);
            generated.fetch_add(1, std::memory_order_relaxed);
        };
        auto &store = CheckpointStore::instance();
        if (store.enabled()) {
            // L2: profiling + clustering is a full trace pass, so
            // persist the finished plan across processes.
            store.fetchOrBuild(
                "plan:" + key,
                [&](BinReader &r) { return decodePlan(r, *plan); },
                [&](BinWriter &w) {
                    buildInline();
                    encodePlan(w, *plan);
                });
        } else {
            buildInline();
        }
        slot->plan = std::move(plan);
    });
    return slot->plan;
}

void
PlanCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
}

SampledRunResult
runSampledWorkload(const std::string &workload,
                   pipe::LoadValuePredictor *vp, const RunConfig &rc)
{
    lvp_assert(rc.sampleK > 0,
               "runSampledWorkload with sampleK == 0");
    lvp_assert(rc.warmupInstrs == 0,
               "sampled runs replace warmupInstrs with functional "
               "fast-forward; use one or the other");

    auto ops = TraceCache::instance().get(workload, rc.maxInstrs,
                                          rc.traceSeed);
    auto plan = PlanCache::instance().get(workload, rc);

    SampledRunResult out;
    out.intervalLen = plan->intervalLen;
    out.sampleK = plan->reps.size();
    if (plan->reps.empty())
        return out; // empty trace: all-zero stats

    const std::uint64_t L = plan->intervalLen;
    const std::uint64_t N = plan->totalInstructions;

    // Checkpoint per representative: one interval *before* its start
    // (clamped to the trace head) so each measurement is preceded by
    // up to L instructions of detailed, VP-active warmup. Adjacent
    // representatives near the head can share a checkpoint, so the
    // index list is deduplicated before the batch build.
    std::vector<std::uint64_t> ckIdx(plan->reps.size());
    std::vector<std::size_t> ckPos(plan->reps.size());
    std::vector<std::uint64_t> unique;
    for (std::size_t r = 0; r < plan->reps.size(); ++r) {
        const std::uint64_t start = plan->reps[r].interval * L;
        ckIdx[r] = start - std::min(L, start);
        if (unique.empty() || unique.back() != ckIdx[r])
            unique.push_back(ckIdx[r]);
        ckPos[r] = unique.size() - 1;
    }
    const auto ckpts =
        CheckpointCache::instance().getIntervals(workload, rc, unique);
    for (const auto &ck : ckpts)
        out.checkpointSeconds += ck->buildSeconds;

    // ---- Simulate the representatives ----------------------------
    // Fixed iteration order (ascending interval index) so a shared
    // predictor instance sees the same training sequence on every
    // run, regardless of thread count.
    std::vector<std::string> names;
    pipe::forEachCounter(pipe::SimStats{},
                         [&](std::string_view n, std::uint64_t) {
                             names.emplace_back(n);
                         });
    std::vector<double> acc(names.size(), 0.0);
    std::vector<std::uint64_t> peak(names.size(), 0);
    std::vector<double> repIpc, repAcc, repFrac;

    // Functional VP training streams every fast-forwarded load
    // through the predictor so each measurement sees the full
    // training history, not just the detailed warmup interval. The
    // position tracks how far the predictor has seen the trace
    // (functionally or detailed); the token counter lives far above
    // the cores' own so the ranges can never meet.
    std::uint64_t vpPos = 0;
    std::uint64_t vpToken = std::uint64_t(1) << 62;

    for (std::size_t r = 0; r < plan->reps.size(); ++r) {
        const SampleRep &rep = plan->reps[r];
        const std::uint64_t start = rep.interval * L;
        lvp_assert(start < N, "representative beyond trace end");
        const std::uint64_t len = std::min(L, N - start);
        const std::uint64_t warm = start - ckIdx[r];

        if (ckIdx[r] > vpPos) {
            const std::uint64_t window = kVpWarmIntervals * L;
            const std::uint64_t from = std::max(
                vpPos, ckIdx[r] - std::min(window, ckIdx[r]));
            functionalVpTrain(*ops, from, ckIdx[r], *vp, vpToken);
            vpPos = ckIdx[r];
        }

        pipe::Core core(rc.core, *ops, vp);
        core.restoreState(ckpts[ckPos[r]]->core);
        installProgressHook(core, workload);
        if (warm)
            core.run(warm); // detailed VP-active warmup, discarded
        const pipe::SimStats st = core.run(len);
        // Run the window dry so the shared predictor carries no
        // per-token state into the next representative's core.
        core.drain();
        vpPos = std::max(vpPos, ckIdx[r] + warm + st.instructions);

        // Weighted-sum extrapolation: each counter scales by the
        // instructions this representative stands for, divided by
        // the instructions actually measured. `*_peak` counters are
        // gauges, not rates — extrapolate those as the max.
        const double scale =
            st.instructions
                ? double(rep.weightInstructions) /
                      double(st.instructions)
                : 0.0;
        std::size_t d = 0;
        pipe::forEachCounter(
            st, [&](std::string_view, std::uint64_t v) {
                acc[d] += scale * double(v);
                peak[d] = std::max(peak[d], v);
                ++d;
            });

        repIpc.push_back(st.ipc());
        repAcc.push_back(st.accuracy());
        repFrac.push_back(double(rep.weightInstructions) /
                          double(N));
    }

    using std::string_view;
    for (std::size_t d = 0; d < names.size(); ++d) {
        const string_view n = names[d];
        const std::uint64_t v =
            n.size() >= 5 && n.substr(n.size() - 5) == "_peak"
                ? peak[d]
                : std::uint64_t(std::llround(acc[d]));
        pipe::setCounter(out.stats, n, v);
    }

    // ---- Confidence bound ----------------------------------------
    // Weighted across-representative spread with Bessel's correction
    // and the Student-t 95% quantile for K - 1 degrees of freedom:
    // relative on IPC, absolute on accuracy; whichever is larger,
    // plus the modeling floor for functional-warmup bias.
    const std::size_t K = plan->reps.size();
    double muIpc = 0.0, muAcc = 0.0;
    for (std::size_t r = 0; r < K; ++r) {
        muIpc += repFrac[r] * repIpc[r];
        muAcc += repFrac[r] * repAcc[r];
    }
    double varIpc = 0.0, varAcc = 0.0;
    for (std::size_t r = 0; r < K; ++r) {
        varIpc += repFrac[r] * (repIpc[r] - muIpc) *
                  (repIpc[r] - muIpc);
        varAcc += repFrac[r] * (repAcc[r] - muAcc) *
                  (repAcc[r] - muAcc);
    }
    const double scaleCi =
        K > 1 ? t95(K - 1) / std::sqrt(double(K - 1)) : 0.0;
    const double ciIpc =
        muIpc > 0.0 ? scaleCi * std::sqrt(varIpc) / muIpc : 0.0;
    const double ciAcc = scaleCi * std::sqrt(varAcc);
    out.sampleError = std::max(ciIpc, ciAcc) + kSampleErrorFloor;
    return out;
}

} // namespace sim
} // namespace lvpsim
