#include "sim/experiment.hh"

#include "common/mathutils.hh"

namespace lvpsim
{
namespace sim
{

double
SuiteResult::geomeanSpeedup() const
{
    std::vector<double> base_ipc, vp_ipc;
    for (const auto &r : rows) {
        base_ipc.push_back(r.base.ipc());
        vp_ipc.push_back(r.withVp.ipc());
    }
    return geoMean(vp_ipc) / geoMean(base_ipc) - 1.0;
}

double
SuiteResult::meanCoverage() const
{
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.coverage());
    return arithMean(xs);
}

double
SuiteResult::meanAccuracy() const
{
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.accuracy());
    return arithMean(xs);
}

SuiteRunner::SuiteRunner(std::vector<std::string> workload_names,
                         const RunConfig &run_config)
    : workloadNames(std::move(workload_names)), rc(run_config)
{
}

const pipe::SimStats &
SuiteRunner::baseline(const std::string &workload)
{
    auto it = baselines.find(workload);
    if (it == baselines.end()) {
        pipe::NullPredictor none;
        it = baselines
                 .emplace(workload, runWorkload(workload, &none, rc))
                 .first;
    }
    return it->second;
}

SuiteResult
SuiteRunner::run(const std::string &label,
                 const PredictorFactory &make_vp)
{
    SuiteResult out;
    out.label = label;
    for (const auto &w : workloadNames) {
        WorkloadResult r;
        r.workload = w;
        r.base = baseline(w);
        auto vp = make_vp();
        r.withVp = runWorkload(w, vp.get(), rc);
        r.storageBits = vp->storageBits();
        out.storageBits = r.storageBits;
        out.rows.push_back(std::move(r));
    }
    return out;
}

} // namespace sim
} // namespace lvpsim
