#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/mathutils.hh"
#include "sim/parallel_executor.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

// lvplint: allow(determinism) -- feeds only the *_seconds timing
// fields, which check_determinism.sh strips before diffing
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // anonymous namespace

namespace
{

constexpr double nan = std::numeric_limits<double>::quiet_NaN();

} // anonymous namespace

double
SuiteResult::geomeanSpeedup() const
{
    // An empty suite or a degenerate zero-IPC row has no defined
    // geomean. Report NaN (the JSON writer emits null) instead of
    // tripping geoMean's asserts mid-report.
    if (rows.empty())
        return nan;
    std::vector<double> base_ipc, vp_ipc;
    for (const auto &r : rows) {
        if (!(r.base.ipc() > 0.0) || !(r.withVp.ipc() > 0.0))
            return nan;
        base_ipc.push_back(r.base.ipc());
        vp_ipc.push_back(r.withVp.ipc());
    }
    return geoMean(vp_ipc) / geoMean(base_ipc) - 1.0;
}

double
SuiteResult::meanCoverage() const
{
    if (rows.empty())
        return nan;
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.coverage());
    return arithMean(xs);
}

double
SuiteResult::meanAccuracy() const
{
    if (rows.empty())
        return nan;
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.accuracy());
    return arithMean(xs);
}

SuiteRunner::SuiteRunner(std::vector<std::string> workload_names,
                         const RunConfig &run_config,
                         std::size_t jobs)
    : workloadNames(std::move(workload_names)), rc(run_config)
{
    setJobs(jobs);
}

void
SuiteRunner::setJobs(std::size_t n)
{
    jobCount = n ? n : ParallelExecutor::hardwareJobs();
}

const pipe::SimStats &
SuiteRunner::baseline(const std::string &workload)
{
    std::lock_guard lk(*baselineMx);
    auto it = baselines.find(workload);
    if (it == baselines.end()) {
        const auto t0 = Clock::now();
        pipe::NullPredictor none;
        it = baselines
                 .emplace(workload, runWorkload(workload, &none, rc))
                 .first;
        baselineSeconds[workload] = secondsSince(t0);
    }
    return it->second;
}

void
SuiteRunner::ensureBaselines()
{
    std::vector<std::string> missing;
    {
        std::lock_guard lk(*baselineMx);
        for (const auto &w : workloadNames)
            if (!baselines.count(w) &&
                std::find(missing.begin(), missing.end(), w) ==
                    missing.end())
                missing.push_back(w);
    }
    if (missing.empty())
        return;
    if (jobCount <= 1 || missing.size() == 1) {
        for (const auto &w : missing)
            baseline(w);
        return;
    }
    ParallelExecutor pool(std::min(jobCount, missing.size()));
    pool.parallelFor(missing.size(), [&](std::size_t i) {
        // Simulate outside the lock so distinct workloads overlap;
        // the lock only guards the map insert.
        const auto t0 = Clock::now();
        pipe::NullPredictor none;
        auto stats = runWorkload(missing[i], &none, rc);
        const double secs = secondsSince(t0);
        std::lock_guard lk(*baselineMx);
        baselines.emplace(missing[i], stats);
        baselineSeconds[missing[i]] = secs;
    });
}

SuiteResult
SuiteRunner::run(const std::string &label,
                 const PredictorFactory &make_vp)
{
    const auto wall0 = Clock::now();

    SuiteResult out;
    out.label = label;
    out.rows.resize(workloadNames.size());

    ensureBaselines();

    auto runRow = [&](std::size_t i) {
        WorkloadResult &r = out.rows[i];
        r.workload = workloadNames[i];
        r.base = baseline(r.workload);
        {
            std::lock_guard lk(*baselineMx);
            r.baseSeconds = baselineSeconds[r.workload];
        }
        const auto t0 = Clock::now();
        auto vp = make_vp();
        r.withVp = runWorkload(r.workload, vp.get(), rc);
        r.vpSeconds = secondsSince(t0);
        r.storageBits = vp->storageBits();
    };

    if (jobCount <= 1 || workloadNames.size() <= 1) {
        for (std::size_t i = 0; i < workloadNames.size(); ++i)
            runRow(i);
    } else {
        ParallelExecutor pool(
            std::min(jobCount, workloadNames.size()));
        pool.parallelFor(workloadNames.size(), runRow);
    }

    // Suite-level storage mirrors the historical semantics: the last
    // row's predictor (all rows share one configuration).
    if (!out.rows.empty())
        out.storageBits = out.rows.back().storageBits;
    out.wallSeconds = secondsSince(wall0);

    if (observer)
        observer(out);
    return out;
}

} // namespace sim
} // namespace lvpsim
