#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/mathutils.hh"
#include "pipeline/snapshot_io.hh"
#include "sim/checkpoint_store.hh"
#include "sim/parallel_executor.hh"
#include "sim/sampled.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

// lvplint: allow(determinism) -- feeds only the *_seconds timing
// fields, which check_determinism.sh strips before diffing
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // anonymous namespace

namespace
{

constexpr double nan = std::numeric_limits<double>::quiet_NaN();

} // anonymous namespace

double
SuiteResult::geomeanSpeedup() const
{
    // An empty suite or a degenerate zero-IPC row has no defined
    // geomean. Report NaN (the JSON writer emits null) instead of
    // tripping geoMean's asserts mid-report.
    if (rows.empty())
        return nan;
    std::vector<double> base_ipc, vp_ipc;
    for (const auto &r : rows) {
        if (!(r.base.ipc() > 0.0) || !(r.withVp.ipc() > 0.0))
            return nan;
        base_ipc.push_back(r.base.ipc());
        vp_ipc.push_back(r.withVp.ipc());
    }
    return geoMean(vp_ipc) / geoMean(base_ipc) - 1.0;
}

double
SuiteResult::meanCoverage() const
{
    if (rows.empty())
        return nan;
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.coverage());
    return arithMean(xs);
}

double
SuiteResult::meanAccuracy() const
{
    if (rows.empty())
        return nan;
    std::vector<double> xs;
    for (const auto &r : rows)
        xs.push_back(r.accuracy());
    return arithMean(xs);
}

SuiteRunner::SuiteRunner(std::vector<std::string> workload_names,
                         const RunConfig &run_config,
                         std::size_t jobs)
    : workloadNames(std::move(workload_names)), rc(run_config)
{
    setJobs(jobs);
}

void
SuiteRunner::setJobs(std::size_t n)
{
    jobCount = n ? n : ParallelExecutor::hardwareJobs();
}

BaselineCache &
BaselineCache::instance()
{
    static BaselineCache c;
    return c;
}

BaselineCache::EntryPtr
BaselineCache::get(const std::string &workload, const RunConfig &rc)
{
    // Same discipline as CheckpointCache: the trace identity (not
    // the raw spec string) joins the key, so file-backed traces key
    // on content.
    const std::string key =
        runConfigKey(rc) + "#" +
        TraceCache::instance()
            .info(workload, rc.maxInstrs + rc.warmupInstrs,
                  rc.traceSeed)
            .identity;

    std::shared_ptr<Slot> slot;
    {
        ReaderLock rd(mapMx);
        auto it = cache.find(key);
        if (it != cache.end())
            slot = it->second;
    }
    if (!slot) {
        WriterLock wr(mapMx);
        // Re-check: another worker may have inserted meanwhile.
        auto [it, inserted] =
            cache.try_emplace(key, std::make_shared<Slot>());
        slot = it->second;
        (void)inserted;
    }

    // Exactly one caller simulates the baseline; concurrent callers
    // for the same key block here until the entry is ready.
    std::call_once(slot->once, [&] {
        auto e = std::make_shared<Entry>();
        const auto buildInline = [&] {
            // Build the warmup checkpoint first so `seconds` measures
            // only the baseline's measurement region (the build cost
            // is reported separately as checkpointSeconds).
            if (rc.warmupInstrs)
                e->checkpointSeconds =
                    CheckpointCache::instance().get(workload, rc)
                        ->buildSeconds;
            const auto t0 = Clock::now();
            pipe::NullPredictor none;
            e->stats = runWorkload(workload, &none, rc);
            e->seconds = secondsSince(t0);
            generated.fetch_add(1, std::memory_order_relaxed);
        };
        auto &store = CheckpointStore::instance();
        if (store.enabled()) {
            // L2: baseline counters persist across processes. The
            // timing fields ride along so warm runs can still report
            // a meaningful serial-seconds estimate for the build.
            store.fetchOrBuild(
                "base:" + key,
                [&](BinReader &r) {
                    if (r.u32() != pipe::kSnapshotFormatVersion)
                        return false;
                    pipe::deserializeSnapshot(r, e->stats);
                    e->seconds = r.f64();
                    e->checkpointSeconds = r.f64();
                    return r.ok() && r.atEnd();
                },
                [&](BinWriter &w) {
                    buildInline();
                    w.u32(pipe::kSnapshotFormatVersion);
                    pipe::serializeSnapshot(w, e->stats);
                    w.f64(e->seconds);
                    w.f64(e->checkpointSeconds);
                });
        } else {
            buildInline();
        }
        slot->entry = std::move(e);
    });
    return slot->entry;
}

void
BaselineCache::clear()
{
    WriterLock wr(mapMx);
    cache.clear();
}

const pipe::SimStats &
SuiteRunner::baseline(const std::string &workload)
{
    // The cache keeps the entry alive behind a shared_ptr until
    // clear(), so handing out a reference is safe for the lifetime
    // of any realistic run.
    return BaselineCache::instance().get(workload, rc)->stats;
}

void
SuiteRunner::ensureBaselines()
{
    // BaselineCache's per-key once_flag already dedupes concurrent
    // same-key builders, so the fan-out can simply request every
    // workload; hits return immediately.
    if (jobCount <= 1 || workloadNames.size() <= 1) {
        for (const auto &w : workloadNames)
            BaselineCache::instance().get(w, rc);
        return;
    }
    ParallelExecutor pool(std::min(jobCount, workloadNames.size()));
    // Affinity = workload index: cells touching the same trace and
    // checkpoint land on the same worker (warm caches), and stealing
    // keeps the pool busy when workloads are uneven.
    pool.parallelFor(
        workloadNames.size(),
        [&](std::size_t i) {
            BaselineCache::instance().get(workloadNames[i], rc);
        },
        [](std::size_t i) { return i; });
}

SuiteResult
SuiteRunner::run(const std::string &label,
                 const PredictorFactory &make_vp)
{
    const auto wall0 = Clock::now();

    SuiteResult out;
    out.label = label;
    out.rows.resize(workloadNames.size());

    ensureBaselines();

    auto runRow = [&](std::size_t i) {
        WorkloadResult &r = out.rows[i];
        r.workload = workloadNames[i];
        const auto tinfo = TraceCache::instance().info(
            r.workload, rc.maxInstrs + rc.warmupInstrs, rc.traceSeed);
        r.traceFormat = tinfo.format;
        r.traceInstructions = tinfo.trace->size();
        const auto base = BaselineCache::instance().get(r.workload, rc);
        r.base = base->stats;
        r.baseSeconds = base->seconds;
        r.checkpointSeconds = base->checkpointSeconds;
        const auto t0 = Clock::now();
        auto vp = make_vp();
        if (rc.sampleK > 0) {
            // Sampled row: go through the sampled driver directly so
            // the error bound and sampling metadata reach the report
            // (runWorkload() would discard them).
            const auto sr =
                runSampledWorkload(r.workload, vp.get(), rc);
            r.withVp = sr.stats;
            r.sampled = true;
            r.sampleError = sr.sampleError;
            r.sampleK = sr.sampleK;
            r.intervalLength = sr.intervalLen;
            r.checkpointSeconds = sr.checkpointSeconds;
        } else {
            r.withVp = runWorkload(r.workload, vp.get(), rc);
        }
        r.vpSeconds = secondsSince(t0);
        r.storageBits = vp->storageBits();
    };

    if (jobCount <= 1 || workloadNames.size() <= 1) {
        for (std::size_t i = 0; i < workloadNames.size(); ++i)
            runRow(i);
    } else {
        ParallelExecutor pool(
            std::min(jobCount, workloadNames.size()));
        // Same-workload affinity as ensureBaselines(): row i restores
        // workload i's checkpoint, so route it to worker i % jobs.
        pool.parallelFor(workloadNames.size(), runRow,
                         [](std::size_t i) { return i; });
    }

    // Suite-level storage mirrors the historical semantics: the last
    // row's predictor (all rows share one configuration).
    if (!out.rows.empty())
        out.storageBits = out.rows.back().storageBits;
    out.wallSeconds = secondsSince(wall0);

    if (observer)
        observer(out);
    return out;
}

} // namespace sim
} // namespace lvpsim
