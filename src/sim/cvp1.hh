/**
 * @file
 * CVP-1 championship API adapter: the `cvp.h` callback contract over
 * lvpsim predictors.
 *
 * The CVP-1 infrastructure scores predictors through three seq_no'd
 * callbacks — `getPrediction` at fetch, `speculativeUpdate` once the
 * front end knows the instruction (trace-driven, so the prediction
 * outcome is already known), and `updatePredictor` at commit with the
 * architectural value. This header mirrors that contract
 * (`cvp1::Predictor`), provides `PipelineVpAdapter` so any
 * `pipe::LoadValuePredictor` (the composite, EVES, ...) can be driven
 * through it unmodified, ships a small native reference predictor
 * (`TaggedLvpChampion`), and implements the championship-style
 * scoring harness (`runChampionship`) over any MicroOp stream.
 *
 * The namespace is `cvp1` (the championship), not to be confused with
 * `vp`'s CVP component (the paper's Context Value Predictor).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "core/lvp_interface.hh"
#include "trace/cvp_trace.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace cvp1
{

/** Outcome of a prediction, as reported to speculativeUpdate. */
enum class PredictionResult : std::uint8_t
{
    Incorrect = 0, ///< a value was predicted and it was wrong
    Correct = 1,   ///< a value was predicted and it was right
    None = 2,      ///< no prediction was made for this instruction
};

/**
 * The championship predictor contract (mirrors `cvp.h`): three
 * callbacks keyed by a monotonically increasing seq_no, called in
 * fetch order for the first two and commit order for the third.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Fetch-time probe for an eligible load.
     * @param seq_no dynamic instruction sequence number (1-based)
     * @param pc the load's program counter
     * @param[out] predicted_value the predicted 64-bit value
     * @return true to actually predict (false = abstain)
     */
    virtual bool getPrediction(InstSeqNum seq_no, Addr pc,
                               Value &predicted_value) = 0;

    /**
     * Fetch-order notification once the instruction is decoded; in a
     * trace-driven run the prediction outcome is already known.
     *
     * @param seq_no same numbering as getPrediction
     * @param eligible true for predictable loads (getPrediction was
     *        called for this seq_no)
     * @param result how the prediction resolved (None when no
     *        prediction was made)
     * @param pc instruction address
     * @param next_pc address of the next instruction in the stream
     * @param insn CVP-1 instruction class
     * @param src up to three source registers (invalidReg = unused)
     * @param dst destination register (invalidReg = none)
     */
    virtual void speculativeUpdate(InstSeqNum seq_no, bool eligible,
                                   PredictionResult result, Addr pc,
                                   Addr next_pc,
                                   trace::CvpInstClass insn,
                                   const RegId src[3], RegId dst) = 0;

    /**
     * Commit-order training, called for every instruction.
     * @param seq_no same numbering as getPrediction
     * @param actual_addr memory address (0 for non-memory ops)
     * @param actual_value architectural result (loads: the loaded
     *        value; others: 0, untracked by the trace format)
     * @param actual_latency observed load-to-use latency in cycles
     *        (0 = not modeled)
     */
    virtual void updatePredictor(InstSeqNum seq_no, Addr actual_addr,
                                 Value actual_value,
                                 Cycle actual_latency) = 0;

    /** Bit-exact storage cost of all prediction state. */
    virtual std::uint64_t storageBits() const = 0;

    /** Human-readable predictor name. */
    virtual const char *name() const = 0;
};

/**
 * Drive any `pipe::LoadValuePredictor` through the championship API.
 *
 * Mapping: `getPrediction` issues a `predict()` probe (token =
 * seq_no, inflightSamePc maintained from the adapter's outstanding
 * probe list); only `Kind::Value` predictions are expressible through
 * the championship interface — address predictions abstain.
 * `speculativeUpdate` forwards branch/load fetch notifications;
 * `updatePredictor` trains with the architectural outcome and ticks
 * `onRetire`. Probes that can never train (ineligible after all) are
 * abandoned, keeping the wrapped predictor's pending-probe invariant
 * intact.
 */
class PipelineVpAdapter : public Predictor
{
  public:
    /** @param vp the wrapped predictor; not owned, must outlive the
     *         adapter */
    explicit PipelineVpAdapter(pipe::LoadValuePredictor &vp)
        : inner(vp)
    {}

    bool getPrediction(InstSeqNum seq_no, Addr pc,
                       Value &predicted_value) override;
    void speculativeUpdate(InstSeqNum seq_no, bool eligible,
                           PredictionResult result, Addr pc,
                           Addr next_pc, trace::CvpInstClass insn,
                           const RegId src[3], RegId dst) override;
    void updatePredictor(InstSeqNum seq_no, Addr actual_addr,
                         Value actual_value,
                         Cycle actual_latency) override;

    std::uint64_t storageBits() const override
    {
        return inner.storageBits();
    }

    const char *name() const override { return inner.name(); }

  private:
    /** One outstanding getPrediction probe awaiting its commit. */
    struct Pending
    {
        InstSeqNum seq = 0;
        Addr pc = 0;
        bool predicted = false; ///< a Kind::Value prediction was made
        Value value = 0;        ///< ... this one
    };

    Pending *findPending(InstSeqNum seq_no);

    pipe::LoadValuePredictor &inner;
    std::deque<Pending> pending; ///< fetch order; bounded by window
};

/**
 * A small native championship predictor (the "imported reference"
 * role): a tagged last-value table with 3-bit confidence, predicting
 * only at saturation — the classic LVP baseline, implemented directly
 * against the cvp.h-style contract to demonstrate drop-in predictors.
 */
class TaggedLvpChampion : public Predictor
{
  public:
    /** @param log2_entries table size (default 1024 entries) */
    explicit TaggedLvpChampion(unsigned log2_entries = 10);

    bool getPrediction(InstSeqNum seq_no, Addr pc,
                       Value &predicted_value) override;
    void speculativeUpdate(InstSeqNum seq_no, bool eligible,
                           PredictionResult result, Addr pc,
                           Addr next_pc, trace::CvpInstClass insn,
                           const RegId src[3], RegId dst) override;
    void updatePredictor(InstSeqNum seq_no, Addr actual_addr,
                         Value actual_value,
                         Cycle actual_latency) override;

    std::uint64_t storageBits() const override;
    const char *name() const override { return "tagged-lvp"; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::uint8_t conf = 0;
        Value value = 0;
    };

    /** Pc→pc mapping of predictions in flight (seq → pc). */
    struct Inflight
    {
        InstSeqNum seq = 0;
        Addr pc = 0;
        bool eligible = false;
    };

    std::size_t index(Addr pc) const;
    std::uint16_t tag(Addr pc) const;

    std::vector<Entry> table;
    std::deque<Inflight> inflight;
    unsigned logEntries;
};

/** Championship-style scoring counters for one run. */
struct ChampionshipStats
{
    std::uint64_t instructions = 0;  ///< committed instructions
    std::uint64_t eligibleLoads = 0; ///< predictable loads seen
    std::uint64_t predicted = 0;     ///< getPrediction returned true
    std::uint64_t correct = 0;       ///< predicted and value matched
    std::uint64_t incorrect = 0;     ///< predicted and value differed

    /** Fraction of eligible loads that were predicted correctly. */
    double
    coverage() const
    {
        return eligibleLoads
                   ? double(correct) / double(eligibleLoads)
                   : 0.0;
    }

    /** Fraction of issued predictions that were correct. */
    double
    accuracy() const
    {
        return predicted ? double(correct) / double(predicted) : 0.0;
    }
};

/**
 * Drive @p pred over @p ops with the cvp.h callback discipline:
 * fetch-order getPrediction/speculativeUpdate running up to
 * @p window instructions ahead of commit-order updatePredictor
 * (mirroring the championship's in-flight window), seq_no's starting
 * at 1. Eligibility is `MicroOp::isPredictableLoad()`.
 */
ChampionshipStats runChampionship(
    const std::vector<trace::MicroOp> &ops, Predictor &pred,
    std::size_t window = 256);

} // namespace cvp1
} // namespace lvpsim
