/**
 * @file
 * Environment-variable run scaling shared by tests, benches and
 * examples:
 *
 *   LVPSIM_INSTRS=<n>       dynamic instructions per workload
 *   LVPSIM_WARMUP=<n>       warmup instructions before measurement
 *                           (VP disabled; see RunConfig.warmupInstrs)
 *   LVPSIM_SUITE=smoke|full which workload list the benches sweep
 */

#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "trace/workloads.hh"

namespace lvpsim
{
namespace sim
{

inline std::size_t
instrsFromEnv(std::size_t fallback = 400000)
{
    if (const char *s = std::getenv("LVPSIM_INSTRS")) {
        const long long v = std::atoll(s);
        if (v > 0)
            return std::size_t(v);
    }
    return fallback;
}

inline std::size_t
warmupFromEnv(std::size_t fallback = 0)
{
    if (const char *s = std::getenv("LVPSIM_WARMUP")) {
        const long long v = std::atoll(s);
        if (v >= 0)
            return std::size_t(v);
    }
    return fallback;
}

inline std::vector<std::string>
suiteFromEnv()
{
    if (const char *s = std::getenv("LVPSIM_SUITE")) {
        if (std::string(s) == "smoke")
            return trace::smokeWorkloadNames();
    }
    return trace::allWorkloadNames();
}

} // namespace sim
} // namespace lvpsim

