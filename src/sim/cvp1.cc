#include "sim/cvp1.hh"

#include <algorithm>

namespace lvpsim
{
namespace cvp1
{

// --- PipelineVpAdapter ---------------------------------------------

PipelineVpAdapter::Pending *
PipelineVpAdapter::findPending(InstSeqNum seq_no)
{
    for (Pending &p : pending) {
        if (p.seq == seq_no)
            return &p;
    }
    return nullptr;
}

bool
PipelineVpAdapter::getPrediction(InstSeqNum seq_no, Addr pc,
                                 Value &predicted_value)
{
    pipe::LoadProbe probe;
    probe.pc = pc;
    probe.token = seq_no;
    for (const Pending &p : pending)
        probe.inflightSamePc += p.pc == pc ? 1 : 0;

    const pipe::Prediction pred = inner.predict(probe);
    Pending entry;
    entry.seq = seq_no;
    entry.pc = pc;
    // Only value predictions are expressible through the
    // championship API; Kind::Address abstains (the PAQ mechanism
    // has no equivalent in the cvp.h contract).
    entry.predicted = pred.isValue();
    entry.value = pred.value;
    pending.push_back(entry);

    predicted_value = pred.value;
    return pred.isValue();
}

void
PipelineVpAdapter::speculativeUpdate(InstSeqNum seq_no, bool eligible,
                                     PredictionResult result, Addr pc,
                                     Addr next_pc,
                                     trace::CvpInstClass insn,
                                     const RegId src[3], RegId dst)
{
    (void)result;
    (void)src;
    (void)dst;
    switch (insn) {
      case trace::CvpInstClass::CondBranch:
        inner.notifyBranch(pc, next_pc != pc + 4, next_pc);
        break;
      case trace::CvpInstClass::UncondDirect:
      case trace::CvpInstClass::UncondIndirect:
        inner.notifyBranch(pc, true, next_pc);
        break;
      case trace::CvpInstClass::Load:
        inner.notifyLoad(pc);
        break;
      default:
        break;
    }
    if (!eligible) {
        // A probe that turned out ineligible will never commit
        // through updatePredictor's training path: release it now so
        // the wrapped predictor's pending-probe invariant holds.
        if (findPending(seq_no)) {
            inner.abandon(seq_no);
            pending.erase(
                std::remove_if(pending.begin(), pending.end(),
                               [&](const Pending &p) {
                                   return p.seq == seq_no;
                               }),
                pending.end());
        }
    }
}

void
PipelineVpAdapter::updatePredictor(InstSeqNum seq_no,
                                   Addr actual_addr,
                                   Value actual_value,
                                   Cycle actual_latency)
{
    (void)actual_latency;
    if (!pending.empty() && pending.front().seq == seq_no) {
        const Pending p = pending.front();
        pending.pop_front();
        pipe::LoadOutcome out;
        out.pc = p.pc;
        out.token = p.seq;
        out.effAddr = actual_addr;
        // The championship contract carries no access size;
        // predictions are over the full 64-bit value.
        out.size = 8;
        out.value = actual_value;
        out.predictionUsed = p.predicted;
        out.predictionCorrect =
            p.predicted && p.value == actual_value;
        inner.train(out);
    }
    inner.onRetire(1);
}

// --- TaggedLvpChampion ---------------------------------------------

TaggedLvpChampion::TaggedLvpChampion(unsigned log2_entries)
    : table(std::size_t(1) << log2_entries),
      logEntries(log2_entries)
{}

std::size_t
TaggedLvpChampion::index(Addr pc) const
{
    return std::size_t(pc >> 2) & ((std::size_t(1) << logEntries) - 1);
}

std::uint16_t
TaggedLvpChampion::tag(Addr pc) const
{
    const std::uint64_t hi = pc >> (2 + logEntries);
    return std::uint16_t(hi ^ (hi >> 16) ^ (hi >> 32));
}

bool
TaggedLvpChampion::getPrediction(InstSeqNum seq_no, Addr pc,
                                 Value &predicted_value)
{
    (void)seq_no;
    const Entry &e = table[index(pc)];
    if (e.tag != tag(pc) || e.conf < 7)
        return false;
    predicted_value = e.value;
    return true;
}

void
TaggedLvpChampion::speculativeUpdate(InstSeqNum seq_no, bool eligible,
                                     PredictionResult result, Addr pc,
                                     Addr next_pc,
                                     trace::CvpInstClass insn,
                                     const RegId src[3], RegId dst)
{
    (void)result;
    (void)next_pc;
    (void)insn;
    (void)src;
    (void)dst;
    Inflight f;
    f.seq = seq_no;
    f.pc = pc;
    f.eligible = eligible;
    inflight.push_back(f);
}

void
TaggedLvpChampion::updatePredictor(InstSeqNum seq_no,
                                   Addr actual_addr,
                                   Value actual_value,
                                   Cycle actual_latency)
{
    (void)actual_addr;
    (void)actual_latency;
    while (!inflight.empty() && inflight.front().seq < seq_no)
        inflight.pop_front();
    if (inflight.empty() || inflight.front().seq != seq_no)
        return;
    const Inflight f = inflight.front();
    inflight.pop_front();
    if (!f.eligible)
        return;
    Entry &e = table[index(f.pc)];
    if (e.tag != tag(f.pc)) {
        e.tag = tag(f.pc);
        e.conf = 0;
        e.value = actual_value;
        return;
    }
    if (e.value == actual_value) {
        e.conf = std::uint8_t(std::min<unsigned>(e.conf + 1, 7));
    } else {
        e.conf = 0;
        e.value = actual_value;
    }
}

std::uint64_t
TaggedLvpChampion::storageBits() const
{
    // 16-bit tag + 3-bit confidence + 64-bit value per entry.
    return std::uint64_t(table.size()) * (16 + 3 + 64);
}

// --- championship harness ------------------------------------------

ChampionshipStats
runChampionship(const std::vector<trace::MicroOp> &ops,
                Predictor &pred, std::size_t window)
{
    ChampionshipStats s;
    const std::size_t n = ops.size();
    if (window == 0)
        window = 1;

    auto fetch = [&](std::size_t i) {
        const trace::MicroOp &op = ops[i];
        const InstSeqNum seq = InstSeqNum(i) + 1;
        const bool eligible = op.isPredictableLoad();
        bool did = false;
        Value pv = 0;
        if (eligible) {
            s.eligibleLoads++;
            did = pred.getPrediction(seq, op.pc, pv);
        }
        PredictionResult result = PredictionResult::None;
        if (did) {
            s.predicted++;
            if (pv == op.memValue) {
                s.correct++;
                result = PredictionResult::Correct;
            } else {
                s.incorrect++;
                result = PredictionResult::Incorrect;
            }
        }
        // The trace itself defines the fetch stream, so the true
        // next PC is simply the next record's PC.
        const Addr next_pc = i + 1 < n ? ops[i + 1].pc : op.pc + 4;
        pred.speculativeUpdate(seq, eligible, result, op.pc, next_pc,
                               trace::cvpClassOf(op.cls),
                               op.src.data(), op.dst);
    };

    auto commit = [&](std::size_t i) {
        const trace::MicroOp &op = ops[i];
        const InstSeqNum seq = InstSeqNum(i) + 1;
        const Addr addr = trace::isMemRef(op.cls) ? op.effAddr : 0;
        const Value value = op.isLoad() ? op.memValue : 0;
        pred.updatePredictor(seq, addr, value, 0);
        s.instructions++;
    };

    std::size_t f = 0, c = 0;
    while (c < n) {
        while (f < n && f - c < window)
            fetch(f++);
        commit(c++);
    }
    return s;
}

} // namespace cvp1
} // namespace lvpsim
