/**
 * @file
 * Small helpers for printing experiment results as aligned text
 * tables plus machine-readable CSV (every bench emits both).
 */

#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace lvpsim
{
namespace sim
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : cols(std::move(headers))
    {}

    TextTable &
    addRow(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
        return *this;
    }

    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> width(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c)
            width[c] = cols[c].size();
        for (const auto &r : rows)
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c)
                width[c] = std::max(width[c], r[c].size());
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                os << std::left
                   << std::setw(int(width[c]) + 2)
                   << (c < cells.size() ? cells[c] : "");
            }
            os << "\n";
        };
        line(cols);
        std::string rule;
        for (std::size_t c = 0; c < cols.size(); ++c)
            rule += std::string(width[c], '-') + "  ";
        os << rule << "\n";
        for (const auto &r : rows)
            line(r);
    }

    /** CSV block (prefixed lines so it is greppable in bench logs). */
    void
    printCsv(std::ostream &os, const std::string &tag) const
    {
        auto csvline = [&](const std::vector<std::string> &cells) {
            os << "CSV," << tag;
            for (const auto &c : cells)
                os << "," << c;
            os << "\n";
        };
        csvline(cols);
        for (const auto &r : rows)
            csvline(r);
    }

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmtPct(double frac, int prec = 2)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << 100.0 * frac
       << "%";
    return ss.str();
}

inline std::string
fmtF(double v, int prec = 3)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
}

inline std::string
fmtKB(double kb, int prec = 2)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << kb << "KB";
    return ss.str();
}

} // namespace sim
} // namespace lvpsim

