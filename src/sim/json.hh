/**
 * @file
 * Minimal JSON document model: enough to write the structured results
 * file and read it back, with deterministic formatting so two runs of
 * the same experiment produce byte-identical output.
 *
 * Deliberate properties (see docs/results_schema.md):
 *  - object keys keep insertion order (no hashing, no sorting), so
 *    the emitted text is stable across runs and platforms;
 *  - integers are kept exact (uint64), doubles print with
 *    max_digits10 so a round-trip is loss-free;
 *  - the parser is strict recursive descent over the JSON grammar —
 *    no extensions, no comments.
 *
 * This is not a general-purpose JSON library; it exists because the
 * container must build with no third-party deps beyond the toolchain.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lvpsim
{
namespace sim
{

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), boolVal(b) {}
    JsonValue(std::uint64_t v) : kind_(Kind::Int), intVal(v) {}
    JsonValue(double v) : kind_(Kind::Double), dblVal(v) {}
    JsonValue(std::string s)
        : kind_(Kind::String), strVal(std::move(s))
    {}
    JsonValue(const char *s) : kind_(Kind::String), strVal(s) {}

    static JsonValue array() { return ofKind(Kind::Array); }
    static JsonValue object() { return ofKind(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolVal; }
    std::uint64_t asU64() const
    {
        return kind_ == Kind::Int ? intVal : std::uint64_t(dblVal);
    }
    double asDouble() const
    {
        return kind_ == Kind::Double ? dblVal : double(intVal);
    }
    const std::string &asString() const { return strVal; }

    /// Array access.
    const std::vector<JsonValue> &items() const { return arr; }
    JsonValue &push(JsonValue v);

    /// Object access (insertion-ordered).
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj;
    }
    JsonValue &set(std::string key, JsonValue v);
    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(std::string_view key) const;

    /** Serialize. indent < 0 → compact single line. */
    void dump(std::ostream &os, int indent = 2) const;
    std::string dump(int indent = 2) const;

  private:
    static JsonValue
    ofKind(Kind k)
    {
        JsonValue v;
        v.kind_ = k;
        return v;
    }
    void dumpImpl(std::ostream &os, int indent, int depth) const;

    Kind kind_;
    bool boolVal = false;
    std::uint64_t intVal = 0;
    double dblVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/**
 * Parse a complete JSON document. On failure returns Null and, when
 * `err` is non-null, stores a message with the byte offset.
 */
JsonValue parseJson(std::string_view text, std::string *err = nullptr);

} // namespace sim
} // namespace lvpsim

