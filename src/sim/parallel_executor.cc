#include "sim/parallel_executor.hh"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <string>

namespace lvpsim
{
namespace sim
{

ParallelExecutor::ParallelExecutor(std::size_t jobs)
{
    const std::size_t n = std::max<std::size_t>(1, jobs);
    capacity = 2 * n;
    queues.resize(n);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers.emplace_back(
            [this, i](std::stop_token st) { workerLoop(i, st); });
}

ParallelExecutor::~ParallelExecutor()
{
    for (auto &w : workers)
        w.request_stop();
    cvTask.notify_all();
    // jthread joins on destruction; workers drain the queues before
    // honouring the stop request.
}

std::size_t
ParallelExecutor::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

bool
ParallelExecutor::parseJobs(std::string_view text, std::size_t &jobs)
{
    if (text == "auto") {
        jobs = hardwareJobs();
        return true;
    }
    std::size_t n = 0;
    const char *end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, n, 10);
    if (ec != std::errc{} || ptr != end)
        return false;
    jobs = n == 0 ? hardwareJobs() : n;
    return true;
}

void
ParallelExecutor::submit(std::function<void()> task,
                         std::size_t affinity)
{
    UniqueLock lk(mx);
    cvSpace.wait(lk.native(), [this] { return queueHasSpace(); });
    std::size_t home;
    if (affinity == kNoAffinity) {
        home = nextRoundRobin;
        nextRoundRobin = (nextRoundRobin + 1) % queues.size();
    } else {
        home = affinity % queues.size();
    }
    queues[home].push_back(std::move(task));
    ++queuedTotal;
    ++inFlight;
    // Any worker may end up running this task (stealing), so wake
    // them all rather than guessing which one is idle.
    cvTask.notify_all();
}

std::function<void()>
ParallelExecutor::takeTask(std::size_t self)
{
    std::function<void()> task;
    if (!queues[self].empty()) {
        task = std::move(queues[self].front());
        queues[self].pop_front();
    } else {
        // Steal from the *back* of a sibling's deque: its owner pops
        // the front, so contention concentrates on opposite ends and
        // affinity runs stay mostly in submission order at home.
        for (std::size_t k = 1; k < queues.size() && !task; ++k) {
            auto &victim = queues[(self + k) % queues.size()];
            if (!victim.empty()) {
                task = std::move(victim.back());
                victim.pop_back();
            }
        }
    }
    if (task)
        --queuedTotal;
    return task;
}

void
ParallelExecutor::wait()
{
    UniqueLock lk(mx);
    cvIdle.wait(lk.native(), [this] { return allIdle(); });
    if (!firstError)
        return;
    auto e = firstError;
    const std::size_t failures = errorCount;
    firstError = nullptr;
    errorCount = 0;
    lk.unlock();
    if (failures <= 1)
        std::rethrow_exception(e);
    // Only the first exception is kept; don't let the others vanish
    // silently — fold their count into the rethrown message.
    try {
        std::rethrow_exception(e);
    } catch (const std::exception &ex) {
        throw std::runtime_error(
            std::string(ex.what()) + " (+" +
            std::to_string(failures - 1) +
            " more task failure(s) suppressed)");
    }
    // Non-std exceptions propagate unchanged from the rethrow above.
}

void
ParallelExecutor::parallelFor(
    std::size_t n, const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

void
ParallelExecutor::parallelFor(
    std::size_t n, const std::function<void(std::size_t)> &fn,
    const std::function<std::size_t(std::size_t)> &affinityOf)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); }, affinityOf(i));
    wait();
}

void
ParallelExecutor::workerLoop(std::size_t self, std::stop_token st)
{
    for (;;) {
        std::function<void()> task;
        {
            UniqueLock lk(mx);
            cvTask.wait(lk.native(), st,
                        [this] { return queueNonEmpty(); });
            task = takeTask(self);
            if (!task)
                return; // stop requested and queues drained
            cvSpace.notify_one();
        }
        try {
            task();
        } catch (...) {
            MutexLock lk(mx);
            ++errorCount;
            if (!firstError)
                firstError = std::current_exception();
        }
        {
            MutexLock lk(mx);
            if (--inFlight == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace sim
} // namespace lvpsim
