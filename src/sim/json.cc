#include "sim/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lvpsim
{
namespace sim
{

JsonValue &
JsonValue::push(JsonValue v)
{
    arr.push_back(std::move(v));
    return arr.back();
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    for (auto &kv : obj)
        if (kv.first == key) {
            kv.second = std::move(v);
            return kv.second;
        }
    obj.emplace_back(std::move(key), std::move(v));
    return obj.back().second;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

namespace
{

void
dumpString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
dumpDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null"; // JSON has no inf/nan
        return;
    }
    // Shortest exact representation: print with max_digits10, which
    // round-trips, and is deterministic across runs.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    os << buf;
    // Keep a trailing marker so 5 and 5.0 re-parse as Double when
    // written as Double (field-kind stability for round-trips).
    std::string_view sv(buf);
    if (sv.find('.') == sv.npos && sv.find('e') == sv.npos &&
        sv.find("inf") == sv.npos && sv.find("nan") == sv.npos)
        os << ".0";
}

} // anonymous namespace

void
JsonValue::dumpImpl(std::ostream &os, int indent, int depth) const
{
    const std::string pad =
        indent < 0 ? "" : std::string(std::size_t(indent) * (depth + 1), ' ');
    const std::string padEnd =
        indent < 0 ? "" : std::string(std::size_t(indent) * depth, ' ');
    const char *nl = indent < 0 ? "" : "\n";

    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (boolVal ? "true" : "false"); break;
      case Kind::Int: os << intVal; break;
      case Kind::Double: dumpDouble(os, dblVal); break;
      case Kind::String: dumpString(os, strVal); break;
      case Kind::Array:
        if (arr.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < arr.size(); ++i) {
            os << pad;
            arr[i].dumpImpl(os, indent, depth + 1);
            os << (i + 1 < arr.size() ? "," : "") << nl;
        }
        os << padEnd << ']';
        break;
      case Kind::Object:
        if (obj.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < obj.size(); ++i) {
            os << pad;
            dumpString(os, obj[i].first);
            os << (indent < 0 ? ":" : ": ");
            obj[i].second.dumpImpl(os, indent, depth + 1);
            os << (i + 1 < obj.size() ? "," : "") << nl;
        }
        os << padEnd << '}';
        break;
    }
}

void
JsonValue::dump(std::ostream &os, int indent) const
{
    dumpImpl(os, indent, 0);
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream ss;
    dump(ss, indent);
    return ss.str();
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : text(text), err(err)
    {}

    JsonValue
    parse()
    {
        skipWs();
        JsonValue v = parseValue();
        if (failed)
            return JsonValue();
        skipWs();
        if (pos != text.size()) {
            fail("trailing characters after document");
            return JsonValue();
        }
        return v;
    }

    bool ok() const { return !failed; }

  private:
    void
    fail(const std::string &msg)
    {
        if (!failed && err)
            *err = msg + " at byte " + std::to_string(pos);
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) == word) {
            pos += word.size();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        const char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return JsonValue(parseString());
        if (c == 't') {
            if (literal("true"))
                return JsonValue(true);
            fail("bad literal");
            return JsonValue();
        }
        if (c == 'f') {
            if (literal("false"))
                return JsonValue(false);
            fail("bad literal");
            return JsonValue();
        }
        if (c == 'n') {
            if (literal("null"))
                return JsonValue();
            fail("bad literal");
            return JsonValue();
        }
        return parseNumber();
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) {
                fail("bad escape");
                return out;
            }
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("bad \\u escape");
                    return out;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                // Results files only ever contain ASCII; encode the
                // BMP code point as UTF-8 without surrogate handling.
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xC0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3F));
                } else {
                    out += char(0xE0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3F));
                    out += char(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return out;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool isInt = true;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                isInt = false;
                ++pos;
            } else {
                break;
            }
        }
        const std::string_view tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-") {
            fail("expected value");
            return JsonValue();
        }
        if (isInt && tok[0] != '-') {
            std::uint64_t v = 0;
            auto [p, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec == std::errc() && p == tok.data() + tok.size())
                return JsonValue(v);
        }
        double d = 0.0;
        auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || p != tok.data() + tok.size()) {
            fail("bad number");
            return JsonValue();
        }
        return JsonValue(d);
    }

    JsonValue
    parseArray()
    {
        JsonValue out = JsonValue::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        for (;;) {
            skipWs();
            out.push(parseValue());
            if (failed)
                return out;
            skipWs();
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return out;
            }
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue out = JsonValue::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        for (;;) {
            skipWs();
            std::string key = parseString();
            if (failed)
                return out;
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return out;
            }
            skipWs();
            out.set(std::move(key), parseValue());
            if (failed)
                return out;
            skipWs();
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return out;
            }
        }
    }

    std::string_view text;
    std::string *err;
    std::size_t pos = 0;
    bool failed = false;
};

} // anonymous namespace

JsonValue
parseJson(std::string_view text, std::string *err)
{
    Parser p(text, err);
    JsonValue v = p.parse();
    if (!p.ok())
        return JsonValue();
    return v;
}

} // namespace sim
} // namespace lvpsim
