/**
 * @file
 * SimPoint-style sampled simulation driver (docs/sampling.md).
 *
 * runSampledWorkload() profiles the workload trace into fixed-length
 * intervals (trace/interval_profile.hh), clusters them into a
 * SamplePlan (sim/sample_plan.hh), fast-forwards functionally to each
 * representative via CheckpointCache::getIntervals(), simulates only
 * the representatives in detail (with one interval of detailed,
 * VP-active warmup each), and extrapolates every SimStats counter as
 * a weighted sum. The reported sampleError is a per-run confidence
 * bound derived from the across-representative spread of IPC and
 * prediction accuracy.
 */

#pragma once

#include <memory>
#include <string>

#include "common/sync.hh"
#include "sim/sample_plan.hh"
#include "sim/simulator.hh"

namespace lvpsim
{
namespace sim
{

/** Result of one sampled run: extrapolated stats plus error model. */
struct SampledRunResult
{
    /** Counters extrapolated to the full trace (weighted sums;
     *  `*_peak` gauges take the max over representatives). */
    pipe::SimStats stats{};
    /**
     * Confidence bound on the extrapolation: the larger of the
     * relative 95% CI on IPC and the absolute 95% CI on prediction
     * accuracy across representatives, plus a fixed modeling floor
     * for warmup bias. Suite metrics from a sampled run should agree
     * with a full run to within this bound.
     */
    double sampleError = 0.0;
    std::uint64_t sampleK = 0; ///< representatives actually simulated
    std::uint64_t intervalLen = 0;
    /** Build cost of the interval checkpoints this run restored
     *  (wall-clock at original build time, reporting only — a warm
     *  rerun reports the same figure it reused, like the warmup
     *  checkpoint path). */
    double checkpointSeconds = 0.0;
};

/**
 * Process-wide memo of sample plans, keyed by trace identity plus the
 * sampling parameters (interval length, k, seed). Same slot
 * discipline as TraceCache: each distinct key is profiled and
 * clustered exactly once.
 */
class PlanCache
{
  public:
    using PlanPtr = std::shared_ptr<const SamplePlan>;

    /** Profile + cluster (once) or fetch the plan for this key.
     *  Requires rc.sampleK > 0. */
    PlanPtr get(const std::string &workload, const RunConfig &rc)
        EXCLUDES(mapMx);

    /** Number of plans actually built (not cache hits). */
    std::uint64_t generations() const
    {
        return generated.load(std::memory_order_relaxed);
    }

    /** Drop every cached plan (test hook). */
    void clear() EXCLUDES(mapMx);

    /** The process-wide cache used by runSampledWorkload(). */
    static PlanCache &instance();

  private:
    struct Slot
    {
        std::once_flag once;
        PlanPtr plan;
    };

    mutable SharedMutex mapMx;
    // lvplint: allow(determinism) -- keyed lookup cache, never
    // iterated; plans are deterministic given (trace, k, seed)
    std::unordered_map<std::string, std::shared_ptr<Slot>> cache
        GUARDED_BY(mapMx);
    std::atomic<std::uint64_t> generated{0};
};

/**
 * Run @p workload sampled per rc.sampleK / rc.sampleIntervalLen and
 * extrapolate. Requires rc.sampleK > 0 and rc.warmupInstrs == 0
 * (sampling replaces the warmup region with functional
 * fast-forward). Deterministic: the same (workload, rc) produces a
 * bit-identical SampledRunResult on any thread count.
 */
SampledRunResult runSampledWorkload(const std::string &workload,
                                    pipe::LoadValuePredictor *vp,
                                    const RunConfig &rc);

} // namespace sim
} // namespace lvpsim
