#include "sim/checkpoint_store.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/mmap_file.hh"

namespace lvpsim
{
namespace sim
{

namespace
{

// lvplint: allow(determinism) -- feeds only the store_seconds /
// claim-wait bookkeeping, stripped by determinism diffs
using IoClock = std::chrono::steady_clock;

std::uint64_t
microsSince(IoClock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            IoClock::now() - t0)
            .count());
}

bool
disabledSpelling(const std::string &s)
{
    return s == "off" || s == "none" || s == "0";
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || (end != nullptr && *end != '\0'))
        return fallback;
    return static_cast<std::uint64_t>(parsed);
}

/** How long a loser polls for a claimed key before building anyway. */
std::uint64_t
claimTimeoutMs()
{
    return envU64("LVPSIM_STORE_CLAIM_TIMEOUT_MS", 120000);
}

/** Claims older than this are presumed crashed and broken. */
std::uint64_t
claimStaleSec()
{
    return envU64("LVPSIM_STORE_CLAIM_STALE_SEC", 300);
}

constexpr std::uint64_t kPollMs = 20;

std::string
hexKeyHash(const std::string &key)
{
    // Two independent FNV streams give a 128-bit name: with full-key
    // verification in the header a collision is only a forced miss,
    // but 128 bits makes even that implausible.
    const std::uint64_t h1 = fnv1a64(key);
    const std::uint64_t h2 = fnv1a64(key, 0x9e3779b97f4a7c15ull);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return std::string(buf);
}

} // anonymous namespace

CheckpointStore &
CheckpointStore::instance()
{
    static CheckpointStore store;
    static const bool initialized = [] {
        const char *env = std::getenv("LVPSIM_STORE");
        std::string dir = env != nullptr ? env : "";
        if (disabledSpelling(dir))
            dir.clear();
        store.configure(dir, envU64("LVPSIM_STORE_MAX_BYTES", 0));
        return true;
    }();
    (void)initialized;
    return store;
}

std::string
CheckpointStore::resolveDir(const std::string &cliDir)
{
    if (!cliDir.empty())
        return disabledSpelling(cliDir) ? std::string() : cliDir;
    const char *env = std::getenv("LVPSIM_STORE");
    if (env != nullptr && *env != '\0') {
        const std::string d = env;
        return disabledSpelling(d) ? std::string() : d;
    }
    const char *home = std::getenv("HOME");
    if (home == nullptr || *home == '\0')
        return {};
    return std::string(home) + "/.cache/lvpsim";
}

void
CheckpointStore::configure(const std::string &newDir,
                           std::uint64_t newMaxBytes)
{
    std::string usable = newDir;
    if (!usable.empty() && !makeDirs(usable))
        usable.clear();
    MutexLock lk(mx);
    dir = usable;
    maxBytes = newMaxBytes;
}

bool
CheckpointStore::enabled() const
{
    MutexLock lk(mx);
    return !dir.empty();
}

std::string
CheckpointStore::directory() const
{
    MutexLock lk(mx);
    return dir;
}

std::string
CheckpointStore::entryPath(const std::string &key) const
{
    std::string base;
    {
        MutexLock lk(mx);
        if (dir.empty())
            return {};
        base = dir;
    }
    return base + "/" + hexKeyHash(key) + ".lvpc";
}

void
CheckpointStore::resetCounters()
{
    nHits.store(0, std::memory_order_relaxed);
    nMisses.store(0, std::memory_order_relaxed);
    ioMicros.store(0, std::memory_order_relaxed);
}

bool
CheckpointStore::tryLoadAt(const std::string &path,
                           const std::string &key,
                           const std::function<bool(BinReader &)> &decode)
{
    const auto t0 = IoClock::now();
    MappedFile mf = MappedFile::open(path);
    bool ok = false;
    if (mf.valid()) {
        BinReader hdr(mf.data(), mf.size());
        const std::uint32_t magic = hdr.u32();
        const std::uint32_t version = hdr.u32();
        const std::string storedKey = hdr.str();
        const std::uint64_t payloadLen = hdr.u64();
        const std::uint64_t checksum = hdr.u64();
        if (hdr.ok() && magic == kStoreMagic &&
            version == kStoreFormatVersion && storedKey == key &&
            payloadLen == hdr.remaining() &&
            checksum == fnv1a64(mf.data() + hdr.offset(),
                                static_cast<std::size_t>(payloadLen))) {
            BinReader payload(mf.data() + hdr.offset(),
                              static_cast<std::size_t>(payloadLen));
            ok = decode(payload) && payload.ok();
        }
    }
    ioMicros.fetch_add(microsSince(t0), std::memory_order_relaxed);
    if (ok)
        touchFile(path); // LRU recency for --store-max-bytes trimming
    return ok;
}

bool
CheckpointStore::tryLoad(const std::string &key,
                         const std::function<bool(BinReader &)> &decode)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return false;
    const bool ok = tryLoadAt(path, key, decode);
    (ok ? nHits : nMisses).fetch_add(1, std::memory_order_relaxed);
    return ok;
}

void
CheckpointStore::publish(const std::string &key,
                         const std::function<void(BinWriter &)> &encode)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return;

    BinWriter payload;
    encode(payload);

    const auto t0 = IoClock::now();
    BinWriter file;
    file.u32(kStoreMagic);
    file.u32(kStoreFormatVersion);
    file.str(key);
    file.u64(payload.size());
    file.u64(fnv1a64(payload.buffer().data(), payload.size()));
    file.bytes(payload.buffer().data(), payload.size());
    atomicWriteFile(path, file.buffer().data(), file.size());
    ioMicros.fetch_add(microsSince(t0), std::memory_order_relaxed);

    std::string dirNow;
    std::uint64_t budget = 0;
    {
        MutexLock lk(mx);
        dirNow = dir;
        budget = maxBytes;
    }
    if (!dirNow.empty() && budget > 0)
        trim(dirNow, budget);
}

void
CheckpointStore::trim(const std::string &dirNow, std::uint64_t budget)
{
    std::vector<DirEntry> entries;
    std::uint64_t total = 0;
    for (DirEntry &e : listDir(dirNow)) {
        // Only store entries: never touch claim files or foreign data
        // that happens to share the directory.
        if (e.name.size() < 5 ||
            e.name.compare(e.name.size() - 5, 5, ".lvpc") != 0) {
            continue;
        }
        total += e.sizeBytes;
        entries.push_back(std::move(e));
    }
    if (total <= budget)
        return;
    // LRU by mtime: loads touch their entry, so the oldest mtime is
    // the least recently used (or least recently rebuilt) key.
    std::sort(entries.begin(), entries.end(),
              [](const DirEntry &a, const DirEntry &b) {
                  if (a.mtimeSec != b.mtimeSec)
                      return a.mtimeSec < b.mtimeSec;
                  return a.name < b.name;
              });
    for (const DirEntry &e : entries) {
        if (total <= budget)
            break;
        if (removeFile(dirNow + "/" + e.name))
            total -= e.sizeBytes;
    }
}

void
CheckpointStore::fetchOrBuild(
    const std::string &key,
    const std::function<bool(BinReader &)> &decode,
    const std::function<void(BinWriter &)> &build)
{
    const std::string path = entryPath(key);
    if (path.empty()) {
        BinWriter discard;
        build(discard);
        return;
    }

    const std::string claimPath = path + ".building";
    const auto t0 = IoClock::now();
    const std::uint64_t timeoutMs = claimTimeoutMs();

    while (true) {
        if (tryLoadAt(path, key, decode)) {
            nHits.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        ClaimFile claim = ClaimFile::tryAcquire(claimPath);
        if (claim.owned()) {
            // Double-check: the previous owner may have published
            // between our failed load and the claim acquisition.
            if (tryLoadAt(path, key, decode)) {
                nHits.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            break;
        }
        // Somebody else is building this key. A claim whose owner
        // died would wedge every later process, so break it by age;
        // and bound the total wait — building locally after timeout
        // is pure duplicated work, never a correctness hazard (equal
        // keys build byte-identical payloads).
        const std::int64_t mtime = fileMtime(claimPath);
        if (mtime >= 0 &&
            wallClockSeconds() - mtime >
                static_cast<std::int64_t>(claimStaleSec())) {
            removeFile(claimPath);
            continue;
        }
        if (microsSince(t0) / 1000 > timeoutMs)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
    }

    nMisses.fetch_add(1, std::memory_order_relaxed);
    BinWriter payload;
    build(payload);
    publish(key, [&](BinWriter &w) {
        w.bytes(payload.buffer().data(), payload.size());
    });
}

} // namespace sim
} // namespace lvpsim
