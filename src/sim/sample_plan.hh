/**
 * @file
 * SimPoint-style representative-interval selection
 * (docs/sampling.md).
 *
 * buildSamplePlan() clusters the interval signatures produced by
 * trace::IntervalProfiler with a deterministic, seeded k-means
 * (k-means++ initialization, fixed iteration cap), then spends the
 * whole k-budget: when fewer than k clusters survive (homogeneous
 * traces collapse to one), the spare slots subdivide clusters into
 * time-contiguous strata, so behavior the signature cannot see —
 * predictor training curves, startup transients, working-set drift —
 * is still sampled at several points in time. Each stratum
 * contributes one representative interval weighted by the stratum's
 * instruction count. The sampled-run driver (sim/sampled.hh) then
 * simulates only the representatives and extrapolates.
 *
 * Determinism contract: every quantity on the signature and
 * assignment paths — distances, centroids, k-means++ target draws,
 * slot allocation — is integer arithmetic in a fixed iteration
 * order with deterministic tie-breaks, and all randomness flows
 * through the seeded Xoshiro256 from common/random.hh. Two runs
 * with the same (profile, k, seed) produce identical plans on any
 * platform.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/interval_profile.hh"

namespace lvpsim
{
namespace sim
{

/** One representative interval: simulate it, scale by its weight. */
struct SampleRep
{
    std::uint32_t interval = 0; ///< interval index in the profile
    /** Instructions this representative stands for (its stratum's
     *  total, partial tail included). */
    std::uint64_t weightInstructions = 0;
    std::uint32_t clusterSize = 0; ///< intervals in the stratum
};

struct SamplePlan
{
    std::uint64_t intervalLen = 0;
    std::uint64_t totalInstructions = 0;
    /** Representatives, sorted by interval index (ascending). */
    std::vector<SampleRep> reps;
    /** interval index -> position in reps (stratum membership). */
    std::vector<std::uint32_t> assignment;
};

/**
 * Cluster the profile, subdivide clusters into time strata until
 * min(@p k, interval count) measurement slots are in use, and pick
 * weighted representatives. @p seed drives the k-means++ draws.
 */
SamplePlan buildSamplePlan(const trace::IntervalProfile &profile,
                           std::size_t k, std::uint64_t seed);

} // namespace sim
} // namespace lvpsim
