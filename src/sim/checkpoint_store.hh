/**
 * @file
 * Content-addressed, disk-backed L2 behind the in-memory result
 * caches (CheckpointCache / BaselineCache / PlanCache), so warmup
 * and profiling work survives across processes and CI runs
 * (docs/performance.md).
 *
 * Entries are whole files under one directory, named by a hash of
 * their full cache key. Each file carries a self-describing header —
 * magic, format version, the complete key string, payload length and
 * an FNV-1a checksum — and is published with write-to-temp +
 * rename(2), so readers see either nothing or a complete entry.
 * Loads mmap the file and validate the header; any mismatch
 * (truncation, flipped bytes, version bump, key collision) is a
 * *miss*, never an error: the caller rebuilds and republishes.
 *
 * Cross-process build-once uses O_EXCL claim files: the first
 * process to claim a missing key builds it while others poll for the
 * published entry. Claims are advisory — a stale claim (crashed
 * owner) is broken by age, and a claim that cannot be resolved
 * within a timeout degrades to building locally. Because every
 * builder is deterministic per key, duplicate builds publish
 * identical bytes and last-writer-wins rename is harmless.
 *
 * The store is process-wide and disabled by default in library use;
 * the CLI enables it (see resolveDir). All methods are thread-safe.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/binio.hh"
#include "common/sync.hh"

namespace lvpsim
{
namespace sim
{

/** Bumped when the store file header layout changes. */
constexpr std::uint32_t kStoreFormatVersion = 1;

/** "LVPC" little-endian. */
constexpr std::uint32_t kStoreMagic = 0x4350564cu;

class CheckpointStore
{
  public:
    /** The process-wide store all caches share. Starts configured
     *  from the environment (LVPSIM_STORE / LVPSIM_STORE_MAX_BYTES);
     *  unset means disabled. */
    static CheckpointStore &instance();

    /**
     * Resolve the CLI-facing store directory: @p cliDir (--store)
     * wins, then $LVPSIM_STORE, then ~/.cache/lvpsim. "off", "none"
     * and "0" (in either source) mean disabled, returned as "".
     */
    static std::string resolveDir(const std::string &cliDir);

    /**
     * Point the store at @p dir (created on demand; "" disables) with
     * an LRU size budget of @p maxBytes (0 = unlimited). An
     * unusable directory silently disables the store — a read-only
     * HOME must never break simulation.
     */
    void configure(const std::string &dir, std::uint64_t maxBytes)
        EXCLUDES(mx);

    bool enabled() const EXCLUDES(mx);
    std::string directory() const EXCLUDES(mx);

    /**
     * Load the entry for @p key and hand its payload to @p decode.
     * True (and a counted hit) only when the header validates and
     * decode returns true with a clean reader; anything else is a
     * counted miss.
     */
    bool tryLoad(const std::string &key,
                 const std::function<bool(BinReader &)> &decode)
        EXCLUDES(mx);

    /** Serialize via @p encode and publish atomically (best effort:
     *  I/O failure only costs persistence, never correctness). */
    void publish(const std::string &key,
                 const std::function<void(BinWriter &)> &encode)
        EXCLUDES(mx);

    /**
     * The composite used by the slot caches: return a disk hit via
     * @p decode, else run @p build (claiming the key so concurrent
     * processes build it at most once) and publish its encoding.
     * @p build must leave the caller's state fully constructed AND
     * write the matching payload; it runs exactly once per call when
     * needed. When the store is disabled, @p build runs and its
     * output is discarded — callers normally guard with enabled().
     */
    void fetchOrBuild(const std::string &key,
                      const std::function<bool(BinReader &)> &decode,
                      const std::function<void(BinWriter &)> &build)
        EXCLUDES(mx);

    std::uint64_t hits() const
    {
        return nHits.load(std::memory_order_relaxed);
    }

    std::uint64_t misses() const
    {
        return nMisses.load(std::memory_order_relaxed);
    }

    /** Wall-clock seconds spent on store I/O (reads + writes). */
    double seconds() const
    {
        return static_cast<double>(
                   ioMicros.load(std::memory_order_relaxed)) /
               1e6;
    }

    void resetCounters();

    /** Entry file path for @p key under the current directory
     *  ("" when disabled). Exposed for tests and tooling. */
    std::string entryPath(const std::string &key) const EXCLUDES(mx);

  private:
    bool tryLoadAt(const std::string &path, const std::string &key,
                   const std::function<bool(BinReader &)> &decode);
    void trim(const std::string &dirNow, std::uint64_t budget);

    mutable Mutex mx;
    std::string dir GUARDED_BY(mx);
    std::uint64_t maxBytes GUARDED_BY(mx) = 0;

    std::atomic<std::uint64_t> nHits{0};
    std::atomic<std::uint64_t> nMisses{0};
    std::atomic<std::uint64_t> ioMicros{0};
};

} // namespace sim
} // namespace lvpsim
