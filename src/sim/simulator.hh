/**
 * @file
 * Convenience layer that wires workload traces to the core model and
 * caches generated traces (the expensive part) across runs.
 */

#ifndef LVPSIM_SIM_SIMULATOR_HH
#define LVPSIM_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/core.hh"
#include "pipeline/core_config.hh"
#include "pipeline/lvp_interface.hh"
#include "pipeline/sim_stats.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace sim
{

struct RunConfig
{
    std::size_t maxInstrs = 400000;
    std::uint64_t traceSeed = 1;
    pipe::CoreConfig core{};
};

/** Run one already-generated trace through a fresh core. */
pipe::SimStats runTrace(const std::vector<trace::MicroOp> &ops,
                        pipe::LoadValuePredictor *vp,
                        const RunConfig &rc);

/** Generate (or fetch from cache) a workload's trace. */
class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const std::vector<trace::MicroOp>>;

    TracePtr get(const std::string &workload, std::size_t max_ops,
                 std::uint64_t seed);

    /** The process-wide cache used by benches. */
    static TraceCache &instance();

  private:
    std::unordered_map<std::string, TracePtr> cache;
};

/** Generate the workload trace and run it. */
pipe::SimStats runWorkload(const std::string &workload,
                           pipe::LoadValuePredictor *vp,
                           const RunConfig &rc);

} // namespace sim
} // namespace lvpsim

#endif // LVPSIM_SIM_SIMULATOR_HH
