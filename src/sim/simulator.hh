/**
 * @file
 * Convenience layer that wires workload traces to the core model and
 * caches generated traces (the expensive part) across runs.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/core.hh"
#include "pipeline/core_config.hh"
#include "pipeline/lvp_interface.hh"
#include "pipeline/sim_stats.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace sim
{

struct RunConfig
{
    std::size_t maxInstrs = 400000;
    std::uint64_t traceSeed = 1;
    pipe::CoreConfig core{};
};

/** Run one already-generated trace through a fresh core. */
pipe::SimStats runTrace(const std::vector<trace::MicroOp> &ops,
                        pipe::LoadValuePredictor *vp,
                        const RunConfig &rc);

/**
 * Generate (or fetch from cache) a workload's trace.
 *
 * Thread-safe: any number of workers may call get() concurrently,
 * including for the same (workload, max_ops, seed) key. Each distinct
 * key is generated exactly once — the first caller generates under a
 * per-key `std::once_flag` while later callers for the same key block
 * until the trace is ready, and callers for other keys proceed
 * unimpeded (the map itself is only held under a short-lived
 * `std::shared_mutex`).
 */
class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const std::vector<trace::MicroOp>>;

    TracePtr get(const std::string &workload, std::size_t max_ops,
                 std::uint64_t seed);

    /** Number of traces actually generated (not cache hits). */
    std::uint64_t generations() const
    {
        return generated.load(std::memory_order_relaxed);
    }

    /** Drop every cached trace (test hook; not used by benches). */
    void clear();

    /** The process-wide cache used by benches. */
    static TraceCache &instance();

  private:
    struct Slot
    {
        std::once_flag once;
        TracePtr trace;
    };

    mutable std::shared_mutex mapMx;
    // lvplint: allow(determinism) -- keyed lookup cache, never
    // iterated; each trace is produced by a seeded generator
    std::unordered_map<std::string, std::shared_ptr<Slot>> cache;
    std::atomic<std::uint64_t> generated{0};
};

/** Generate the workload trace and run it. */
pipe::SimStats runWorkload(const std::string &workload,
                           pipe::LoadValuePredictor *vp,
                           const RunConfig &rc);

} // namespace sim
} // namespace lvpsim

