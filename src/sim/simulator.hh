/**
 * @file
 * Convenience layer that wires workload traces to the core model and
 * caches generated traces (the expensive part) across runs.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hh"
#include "core/lvp_interface.hh"
#include "pipeline/core.hh"
#include "pipeline/core_config.hh"
#include "pipeline/sim_stats.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace sim
{

struct RunConfig
{
    std::size_t maxInstrs = 400000;
    /**
     * Instructions simulated with value prediction disabled before
     * measurement begins (0 = measure from cold state, exactly the
     * historical behavior). Warmup trains the caches, TLB, branch
     * predictors and memory dependence predictor; the post-warmup
     * machine state is memoized per (workload, config) by
     * CheckpointCache so sweeps pay for it once. The trace used by
     * runWorkload() covers maxInstrs + warmupInstrs instructions.
     */
    std::size_t warmupInstrs = 0;
    std::uint64_t traceSeed = 1;
    /**
     * SimPoint-style sampled simulation (docs/sampling.md): when
     * sampleK > 0, runWorkload() profiles the trace into
     * sampleIntervalLen-instruction intervals, clusters them, and
     * simulates only up to sampleK representative intervals,
     * extrapolating the suite counters as weighted sums. Mutually
     * exclusive with warmupInstrs (sampling fast-forwards
     * functionally to each representative instead).
     */
    std::size_t sampleK = 0;
    std::size_t sampleIntervalLen = 100000;
    pipe::CoreConfig core{};
};

/**
 * Deterministic string key covering every RunConfig field (core,
 * memory, branch-predictor and trace parameters included): two runs
 * share a key iff their simulated results must be identical. Used by
 * CheckpointCache and BaselineCache.
 */
std::string runConfigKey(const RunConfig &rc);

/**
 * Process-wide progress reporting for long runs (CLI --progress).
 * When `every` > 0, cores created by the sim layer emit one stderr
 * line per `every` committed instructions. 0 (the default) disables
 * reporting; nothing about the simulated results changes either way.
 */
void setProgressReportEvery(std::uint64_t every);
std::uint64_t progressReportEvery();

/** Install the global progress reporter on @p core (no-op when the
 *  report interval is 0). `label` names the run in each line. */
void installProgressHook(pipe::Core &core, const std::string &label);

/**
 * Run one already-generated trace through a fresh core. When
 * rc.warmupInstrs > 0 the warmup region is simulated inline (VP
 * disabled, then a pipeline drain) before the measured run — the
 * reference semantics that checkpoint restore must match exactly.
 */
pipe::SimStats runTrace(const std::vector<trace::MicroOp> &ops,
                        pipe::LoadValuePredictor *vp,
                        const RunConfig &rc);

/**
 * Generate or load (and cache) a workload's trace.
 *
 * The workload argument is a trace *spec* (see trace/trace_spec.hh):
 * a bare synthetic kernel name, `lvpt:PATH` for a recorded binary, or
 * `cvp:PATH` for a CVP-1 championship trace. File-backed traces are
 * truncated to max_ops instructions (0 = whole file) and an
 * unreadable file is fatal() — callers wanting a recoverable error
 * should probe with `trace::openTraceSource` first.
 *
 * Thread-safe: any number of workers may call get() concurrently,
 * including for the same (workload, max_ops, seed) key. Each distinct
 * key is generated exactly once — the first caller generates under a
 * per-key `std::once_flag` while later callers for the same key block
 * until the trace is ready, and callers for other keys proceed
 * unimpeded (the map itself is only held under a short-lived
 * `SharedMutex`, see common/sync.hh).
 */
class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const std::vector<trace::MicroOp>>;

    /** A cached trace plus the metadata the sim layer keys on. */
    struct Info
    {
        TracePtr trace;
        /**
         * Trace identity for cache keys (TraceSource::identity plus
         * the truncation budget): equal identity => bit-identical
         * instruction stream. CheckpointCache and BaselineCache fold
         * this into their runConfigKey()-based keys so a rewritten
         * trace file can never alias a stale entry.
         */
        std::string identity;
        std::string format; ///< "synthetic", "lvpt", or "cvp"
    };

    TracePtr get(const std::string &workload, std::size_t max_ops,
                 std::uint64_t seed) EXCLUDES(mapMx);

    /** Like get(), but also returning identity and format. */
    Info info(const std::string &workload, std::size_t max_ops,
              std::uint64_t seed) EXCLUDES(mapMx);

    /** Number of traces actually generated (not cache hits). */
    std::uint64_t generations() const
    {
        return generated.load(std::memory_order_relaxed);
    }

    /** Drop every cached trace (test hook; not used by benches). */
    void clear() EXCLUDES(mapMx);

    /** The process-wide cache used by benches. */
    static TraceCache &instance();

  private:
    struct Slot
    {
        std::once_flag once;
        TracePtr trace;
        std::string identity;
        std::string format;
    };

    std::shared_ptr<Slot> ensure(const std::string &workload,
                                 std::size_t max_ops,
                                 std::uint64_t seed) EXCLUDES(mapMx);

    mutable SharedMutex mapMx;
    // lvplint: allow(determinism) -- keyed lookup cache, never
    // iterated; each trace is produced by a seeded generator
    std::unordered_map<std::string, std::shared_ptr<Slot>> cache
        GUARDED_BY(mapMx);
    std::atomic<std::uint64_t> generated{0};
};

/**
 * Generate the workload trace and run it. With rc.warmupInstrs > 0
 * the run restores the memoized post-warmup checkpoint (building it
 * on first use) instead of re-simulating the warmup region —
 * bit-identical to the inline runTrace() path by construction.
 */
pipe::SimStats runWorkload(const std::string &workload,
                           pipe::LoadValuePredictor *vp,
                           const RunConfig &rc);

/**
 * The post-warmup machine state for one (workload, RunConfig) key,
 * plus how long it took to build (wall-clock, reporting only).
 */
struct SimCheckpoint
{
    pipe::Core::Snapshot core;
    std::uint64_t warmupInstrs = 0;
    double buildSeconds = 0.0;
};

/**
 * Process-wide, thread-safe memo of post-warmup checkpoints, keyed by
 * runConfigKey() + the trace identity (TraceCache::Info::identity, so
 * file-backed traces key on content, not path). Same slot discipline
 * as TraceCache: each
 * distinct key is simulated exactly once under a per-key
 * `std::once_flag`; concurrent callers for the same key block until
 * the checkpoint is ready, other keys proceed unimpeded.
 *
 * This in-memory map is the L1 of a two-level design: when the
 * process-wide CheckpointStore (checkpoint_store.hh) is enabled, a
 * missing key is first looked up on disk and only simulated when the
 * disk misses too, with the freshly built snapshot published for
 * future processes. generations() counts only real simulations, so
 * it distinguishes disk hits from rebuilds in tests.
 */
class CheckpointCache
{
  public:
    using CheckpointPtr = std::shared_ptr<const SimCheckpoint>;

    /** Build (once) or fetch the checkpoint for this key. Requires
     *  rc.warmupInstrs > 0. */
    CheckpointPtr get(const std::string &workload, const RunConfig &rc)
        EXCLUDES(mapMx);

    /**
     * Interval checkpoints for sampled runs: the machine state after
     * functionally fast-forwarding (Core::functionalWarmup) to each
     * instruction index in @p indices, which must be sorted ascending
     * with no duplicates. All batches over one trace share a single
     * streaming builder cursor, and every batch registers its missing
     * indices as *claims* before building: whichever batch is
     * currently streaming saves and publishes a checkpoint at each
     * claimed index it passes, so each fast-forward gap is traversed
     * once process-wide instead of once per concurrent batch. Each
     * slot is memoized under the same runConfigKey() +
     * trace-identity discipline as get(), with the interval index
     * appended, and is served from the disk store when enabled.
     */
    std::vector<CheckpointPtr>
    getIntervals(const std::string &workload, const RunConfig &rc,
                 const std::vector<std::uint64_t> &indices)
        EXCLUDES(mapMx);

    /** Number of checkpoints actually simulated (not cache hits). */
    std::uint64_t generations() const
    {
        return generated.load(std::memory_order_relaxed);
    }

    /** Total instructions functionally fast-forwarded by interval
     *  checkpoint building (regression hook for the claim logic:
     *  overlapping batches must not re-traverse shared gaps). */
    std::uint64_t ffInstructions() const
    {
        return ffInstrs.load(std::memory_order_relaxed);
    }

    /** Drop every cached checkpoint (test hook; not used by benches). */
    void clear() EXCLUDES(mapMx);

    /** The process-wide cache used by runWorkload(). */
    static CheckpointCache &instance();

  private:
    struct Slot
    {
        std::once_flag once;
        CheckpointPtr ckpt;
    };

    /**
     * Interval slots publish through an atomic flag instead of a
     * once_flag because the *builder* of a slot is not necessarily
     * the batch that requested it: `ckpt` is written (under the
     * trace's buildMx) before `ready` is released, and readers load
     * `ready` with acquire before touching `ckpt`.
     */
    struct IntervalSlot
    {
        std::atomic<bool> ready{false};
        CheckpointPtr ckpt;
    };

    /** Shared streaming-builder state for one trace prefix. */
    struct TraceState
    {
        Mutex buildMx; ///< at most one batch streams at a time
        TraceCache::TracePtr ops GUARDED_BY(buildMx);
        std::unique_ptr<pipe::Core> core GUARDED_BY(buildMx);
        std::uint64_t pos GUARDED_BY(buildMx) = 0;

        Mutex claimMx;
        /** Indices some in-flight batch still needs built. */
        std::set<std::uint64_t> claims GUARDED_BY(claimMx);
    };

    std::shared_ptr<Slot> ensure(const std::string &key)
        EXCLUDES(mapMx);
    std::shared_ptr<IntervalSlot>
    ensureInterval(const std::string &key) EXCLUDES(mapMx);
    std::shared_ptr<TraceState>
    ensureTraceState(const std::string &prefix) EXCLUDES(mapMx);

    /** Stream ts.core from ts.pos to @p target, saving + publishing
     *  a checkpoint at every claimed index passed (and at target). */
    void advanceAndPublish(TraceState &ts, const std::string &prefix,
                           std::uint64_t target)
        REQUIRES(ts.buildMx) EXCLUDES(mapMx);

    /** Publish ts.core's state as interval @p idx and drop its claim. */
    void publishInterval(TraceState &ts, const std::string &prefix,
                         std::uint64_t idx, double buildSeconds)
        REQUIRES(ts.buildMx) EXCLUDES(mapMx);

    mutable SharedMutex mapMx;
    // lvplint: allow(determinism) -- keyed lookup caches, never
    // iterated; checkpoints are deterministic simulation state
    std::unordered_map<std::string, std::shared_ptr<Slot>> cache
        GUARDED_BY(mapMx);
    // lvplint: allow(determinism) -- keyed lookup cache, never iterated
    std::unordered_map<std::string, std::shared_ptr<IntervalSlot>>
        intervalCache GUARDED_BY(mapMx);
    // lvplint: allow(determinism) -- keyed lookup cache, never iterated
    std::unordered_map<std::string, std::shared_ptr<TraceState>>
        traceStates GUARDED_BY(mapMx);
    std::atomic<std::uint64_t> generated{0};
    std::atomic<std::uint64_t> ffInstrs{0};
};

} // namespace sim
} // namespace lvpsim

