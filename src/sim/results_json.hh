/**
 * @file
 * Structured results: serialize SuiteResult / WorkloadResult /
 * SimStats to the JSON schema documented in docs/results_schema.md,
 * and parse such files back (round-trip is loss-free for every raw
 * counter; derived metrics are re-computed, never stored as truth).
 *
 * Field order is fixed and numbers are emitted deterministically, so
 * two runs of the same experiment produce byte-identical files except
 * for the timing fields — which is exactly what
 * tools/check_determinism.sh relies on.
 */

#pragma once

#include <string>
#include <vector>

#include "pipeline/sim_stats.hh"
#include "sim/experiment.hh"
#include "sim/json.hh"
#include "sim/simulator.hh"

namespace lvpsim
{
namespace sim
{

/** Run-level metadata recorded at the top of a results file. */
struct ReportMeta
{
    std::size_t jobs = 1;
    std::size_t maxInstrs = 0;
    std::size_t warmupInstrs = 0;
    std::uint64_t traceSeed = 0;
    /// Sampling parameters (docs/sampling.md); 0 = full simulation.
    std::size_t sampleK = 0;
    std::size_t intervalLen = 0;
    /// Progress-report interval (CLI --progress; reporting only,
    /// stripped by tools/check_determinism.sh).
    std::uint64_t progressInstrs = 0;
    std::string suite; ///< e.g. "full", "smoke", or a bench tag
    /// Checkpoint-store traffic for this run (sim/checkpoint_store.hh;
    /// all zero when the store is disabled). Environment-dependent, so
    /// stripped by tools/check_determinism.sh like the timing fields.
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    double storeSeconds = 0.0;
};

JsonValue toJson(const pipe::SimStats &s);
/** Restore raw counters from toJson() output; derived keys (ipc,
 *  coverage, accuracy) are ignored. False on a non-object. */
bool simStatsFromJson(const JsonValue &v, pipe::SimStats &out);

JsonValue toJson(const WorkloadResult &r);
bool workloadResultFromJson(const JsonValue &v, WorkloadResult &out);

JsonValue toJson(const SuiteResult &r);
bool suiteResultFromJson(const JsonValue &v, SuiteResult &out);

/** The complete results document: meta + one entry per suite run. */
JsonValue resultsToJson(const std::vector<SuiteResult> &suites,
                        const ReportMeta &meta);
bool resultsFromJson(const JsonValue &v,
                     std::vector<SuiteResult> &suites,
                     ReportMeta *meta = nullptr);

/** Write the document to `path` (pretty-printed, trailing newline).
 *  False + `err` on I/O failure. */
bool writeResultsFile(const std::string &path,
                      const std::vector<SuiteResult> &suites,
                      const ReportMeta &meta,
                      std::string *err = nullptr);

/** Read and parse a results file. False + `err` on failure. */
bool readResultsFile(const std::string &path,
                     std::vector<SuiteResult> &suites,
                     ReportMeta *meta = nullptr,
                     std::string *err = nullptr);

} // namespace sim
} // namespace lvpsim

