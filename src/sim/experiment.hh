/**
 * @file
 * Suite-level experiment harness: runs a predictor configuration over
 * a list of workloads, caches the no-VP baseline per workload, and
 * aggregates exactly as the paper does (Section II-A): arithmetic
 * average across workloads, geometric mean for IPC.
 */

#ifndef LVPSIM_SIM_EXPERIMENT_HH
#define LVPSIM_SIM_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/lvp_interface.hh"
#include "pipeline/sim_stats.hh"
#include "sim/simulator.hh"

namespace lvpsim
{
namespace sim
{

struct WorkloadResult
{
    std::string workload;
    pipe::SimStats base;
    pipe::SimStats withVp;
    std::uint64_t storageBits = 0;

    double speedup() const { return withVp.ipc() / base.ipc() - 1.0; }
    double coverage() const { return withVp.coverage(); }
    double accuracy() const { return withVp.accuracy(); }
};

struct SuiteResult
{
    std::string label;
    std::vector<WorkloadResult> rows;
    std::uint64_t storageBits = 0;

    double storageKB() const { return double(storageBits) / 8192.0; }

    /** Speedup of geomean IPC over the geomean baseline IPC. */
    double geomeanSpeedup() const;
    /** Arithmetic mean coverage across workloads (paper style). */
    double meanCoverage() const;
    double meanAccuracy() const;
};

/** Factory producing one fresh predictor per workload. */
using PredictorFactory =
    std::function<std::unique_ptr<pipe::LoadValuePredictor>()>;

class SuiteRunner
{
  public:
    SuiteRunner(std::vector<std::string> workload_names,
                const RunConfig &rc);

    /** Run a configuration; baselines are computed once and reused. */
    SuiteResult run(const std::string &label,
                    const PredictorFactory &make_vp);

    const std::vector<std::string> &workloads() const
    {
        return workloadNames;
    }
    const RunConfig &runConfig() const { return rc; }

    /** The cached no-VP baseline for one workload. */
    const pipe::SimStats &baseline(const std::string &workload);

  private:
    std::vector<std::string> workloadNames;
    RunConfig rc;
    std::unordered_map<std::string, pipe::SimStats> baselines;
};

} // namespace sim
} // namespace lvpsim

#endif // LVPSIM_SIM_EXPERIMENT_HH
