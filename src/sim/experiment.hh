/**
 * @file
 * Suite-level experiment harness: runs a predictor configuration over
 * a list of workloads, caches the no-VP baseline per workload, and
 * aggregates exactly as the paper does (Section II-A): arithmetic
 * average across workloads, geometric mean for IPC.
 *
 * Runs can be fanned out over a thread pool (`setJobs`): each
 * (workload, predictor) simulation is independent, so the suite loop
 * is embarrassingly parallel. Results are written into slots indexed
 * by workload position, so row order — and every stat in every row —
 * is bit-identical to a serial run regardless of completion order.
 */

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hh"
#include "core/lvp_interface.hh"
#include "pipeline/sim_stats.hh"
#include "sim/simulator.hh"

namespace lvpsim
{
namespace sim
{

struct WorkloadResult
{
    std::string workload;
    pipe::SimStats base;
    pipe::SimStats withVp;
    std::uint64_t storageBits = 0;

    /// Trace metadata: which TraceSource backend delivered the
    /// instruction stream ("synthetic", "lvpt", or "cvp") and how
    /// many instructions it held (measurement + warmup regions).
    std::string traceFormat = "synthetic";
    std::uint64_t traceInstructions = 0;

    /// Wall-clock timing (seconds). Informational only: excluded
    /// from determinism comparisons (see tools/check_determinism.sh).
    double baseSeconds = 0.0;
    double vpSeconds = 0.0;
    /// One-time cost of building this workload's post-warmup (or,
    /// for sampled rows, interval) checkpoints (0 when neither
    /// warmup nor sampling is active). Informational, like the
    /// fields above.
    double checkpointSeconds = 0.0;

    /// Sampled-run metadata (docs/sampling.md): true when the stats
    /// in this row were extrapolated from sampleK representative
    /// intervals of intervalLength instructions each; sampleError is
    /// that run's confidence bound. Zero / false for full runs.
    bool sampled = false;
    double sampleError = 0.0;
    std::uint64_t sampleK = 0;
    std::uint64_t intervalLength = 0;

    double speedup() const { return withVp.ipc() / base.ipc() - 1.0; }
    double coverage() const { return withVp.coverage(); }
    double accuracy() const { return withVp.accuracy(); }
};

struct SuiteResult
{
    std::string label;
    std::vector<WorkloadResult> rows;
    std::uint64_t storageBits = 0;

    /// Wall-clock of the whole run() call (seconds; informational).
    double wallSeconds = 0.0;

    double storageKB() const { return double(storageBits) / 8192.0; }

    /** Speedup of geomean IPC over the geomean baseline IPC. */
    double geomeanSpeedup() const;
    /** Arithmetic mean coverage across workloads (paper style). */
    double meanCoverage() const;
    double meanAccuracy() const;
};

/** Factory producing one fresh predictor per workload.
 *  Must be callable from worker threads (capture by value). */
using PredictorFactory =
    std::function<std::unique_ptr<pipe::LoadValuePredictor>()>;

/**
 * Process-wide, thread-safe memo of no-VP baseline runs, keyed by
 * runConfigKey() + the trace identity (TraceCache::Info::identity),
 * so a multi-suite binary (e.g. the fig
 * benches) simulates each baseline exactly once no matter how many
 * SuiteRunners it creates. Same slot discipline as TraceCache /
 * CheckpointCache: one builder per key under a `std::once_flag`,
 * concurrent same-key callers block, other keys proceed.
 */
class BaselineCache
{
  public:
    struct Entry
    {
        pipe::SimStats stats;
        /// Wall-clock of the measured baseline run (informational;
        /// excluded from determinism comparisons).
        double seconds = 0.0;
        /// One-time warmup-checkpoint build cost for this key
        /// (0 when warmupInstrs == 0). Informational.
        double checkpointSeconds = 0.0;
    };
    using EntryPtr = std::shared_ptr<const Entry>;

    /** Run (once) or fetch the no-VP baseline for this key. The
     *  returned entry stays valid until clear(). */
    EntryPtr get(const std::string &workload, const RunConfig &rc)
        EXCLUDES(mapMx);

    /** Number of baselines actually simulated (not cache hits). */
    std::uint64_t generations() const
    {
        return generated.load(std::memory_order_relaxed);
    }

    /** Drop every cached baseline (test hook; not used by benches). */
    void clear() EXCLUDES(mapMx);

    /** The process-wide cache used by SuiteRunner. */
    static BaselineCache &instance();

  private:
    struct Slot
    {
        std::once_flag once;
        EntryPtr entry;
    };

    mutable SharedMutex mapMx;
    // lvplint: allow(determinism) -- keyed lookup cache, never
    // iterated; entries are deterministic simulation results
    std::unordered_map<std::string, std::shared_ptr<Slot>> cache
        GUARDED_BY(mapMx);
    std::atomic<std::uint64_t> generated{0};
};

class SuiteRunner
{
  public:
    SuiteRunner(std::vector<std::string> workload_names,
                const RunConfig &rc, std::size_t jobs = 1);

    /**
     * Run a configuration; baselines are computed once and reused.
     * With jobs > 1 the per-workload simulations run on a thread
     * pool; the returned rows are bit-identical to jobs == 1.
     */
    SuiteResult run(const std::string &label,
                    const PredictorFactory &make_vp);

    /** Worker threads for subsequent run() calls (0 = hardware). */
    void setJobs(std::size_t n);
    std::size_t jobs() const { return jobCount; }

    /** Called with every finished SuiteResult (e.g. a JSON sink). */
    void setObserver(std::function<void(const SuiteResult &)> fn)
    {
        observer = std::move(fn);
    }

    const std::vector<std::string> &workloads() const
    {
        return workloadNames;
    }
    const RunConfig &runConfig() const { return rc; }

    /** The memoized no-VP baseline for one workload (computed on
     *  first use, process-wide via BaselineCache). */
    const pipe::SimStats &baseline(const std::string &workload);

  private:
    /** Compute (under the pool when parallel) any missing baselines. */
    void ensureBaselines();

    std::vector<std::string> workloadNames;
    RunConfig rc;
    std::size_t jobCount = 1;
    std::function<void(const SuiteResult &)> observer;
};

} // namespace sim
} // namespace lvpsim

