/**
 * @file
 * Fixed-size thread pool used to fan suite runs out across cores.
 *
 * Tasks land in per-worker deques with optional *submit affinity*:
 * tasks sharing an affinity value are routed to the same worker's
 * deque (so, e.g., suite cells restoring the same warmup checkpoint
 * queue behind each other and hit it warm in that worker's caches),
 * while tasks submitted without affinity round-robin across workers.
 * An idle worker first drains its own deque front-to-back, then
 * *steals* from the back of a sibling's deque — affinity is a
 * placement hint, never a serialization constraint, so a long run of
 * same-affinity tasks cannot idle the rest of the pool. All deques
 * sit under one mutex: simulation tasks are seconds long, so queueing
 * costs are irrelevant; what matters is backpressure (a bounded total
 * keeps the producer from materializing thousands of closures) and
 * clean join-on-destroy.
 *
 * Determinism contract: the executor never reorders *results* —
 * callers index their output slots up front (one slot per task) so
 * the assembled result is independent of completion order and of
 * which worker ran (or stole) each task. See docs/architecture.md
 * §"Simulation harness".
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace lvpsim
{
namespace sim
{

class ParallelExecutor
{
  public:
    /** submit() affinity meaning "no placement preference". */
    static constexpr std::size_t kNoAffinity =
        static_cast<std::size_t>(-1);

    /** Spawn `jobs` workers (clamped to >= 1). */
    explicit ParallelExecutor(std::size_t jobs);

    /** Joins all workers; pending tasks are drained first. */
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    std::size_t jobs() const { return workers.size(); }

    /**
     * Enqueue a task. Tasks with equal `affinity` are routed to the
     * same worker's deque (`affinity % jobs()`); kNoAffinity
     * round-robins. Blocks while the pool is at capacity (2 x jobs
     * tasks queued) — backpressure, not failure. Tasks must not
     * submit to the same executor (no nesting).
     */
    void submit(std::function<void()> task,
                std::size_t affinity = kNoAffinity) EXCLUDES(mx);

    /**
     * Block until every task submitted so far has finished. If any
     * task threw, rethrows the first captured exception; when
     * several tasks failed, the rethrown message is suffixed with
     * how many further failures were suppressed so multi-failure
     * runs are not mistaken for single ones.
     */
    void wait() EXCLUDES(mx);

    /**
     * Run `n` independent tasks `fn(0) .. fn(n-1)` and wait.
     * Convenience over submit()+wait(); result ordering is the
     * caller's: write to slot `i`, never append.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** parallelFor with a placement hint: task `i` is submitted with
     *  affinity `affinityOf(i)` (see submit()). */
    void
    parallelFor(std::size_t n,
                const std::function<void(std::size_t)> &fn,
                const std::function<std::size_t(std::size_t)> &affinityOf);

    /** `--jobs 0` / "auto": one worker per hardware thread. */
    static std::size_t hardwareJobs();

    /**
     * Parse a `--jobs` flag value: a decimal worker count, or
     * "auto"/"0" for hardwareJobs(). Returns false (leaving `jobs`
     * untouched) on anything else, so callers can reject typos
     * instead of silently running on all cores.
     */
    static bool parseJobs(std::string_view text, std::size_t &jobs);

  private:
    void workerLoop(std::size_t self, std::stop_token st)
        EXCLUDES(mx);

    /** Pop own front, else steal a sibling's back ({} when all
     *  deques are empty). */
    std::function<void()> takeTask(std::size_t self) REQUIRES(mx);

    // Condition-variable wait predicates. Each runs with `mx` held —
    // that is the wait() contract — but inside a lambda the analysis
    // cannot see through, hence NO_THREAD_SAFETY_ANALYSIS (see
    // common/thread_annotations.hh).
    bool queueHasSpace() const NO_THREAD_SAFETY_ANALYSIS
    {
        return queuedTotal < capacity;
    }
    bool queueNonEmpty() const NO_THREAD_SAFETY_ANALYSIS
    {
        return queuedTotal > 0;
    }
    bool allIdle() const NO_THREAD_SAFETY_ANALYSIS
    {
        return inFlight == 0;
    }

    Mutex mx;
    std::condition_variable_any cvTask;  ///< some deque not empty
    std::condition_variable cvSpace;     ///< pool not full
    std::condition_variable cvIdle;      ///< all work finished
    /// One deque per worker; workers pop their own front and steal
    /// from siblings' backs.
    std::vector<std::deque<std::function<void()>>> queues
        GUARDED_BY(mx);
    /// Tasks sitting in any deque (not yet executing).
    std::size_t queuedTotal GUARDED_BY(mx) = 0;
    /// Round-robin cursor for kNoAffinity submissions.
    std::size_t nextRoundRobin GUARDED_BY(mx) = 0;
    std::size_t capacity GUARDED_BY(mx) = 0;
    /// Queued + currently executing tasks.
    std::size_t inFlight GUARDED_BY(mx) = 0;
    std::exception_ptr firstError GUARDED_BY(mx);
    /// Tasks failed since the last wait().
    std::size_t errorCount GUARDED_BY(mx) = 0;
    // lvplint: allow(lock-discipline) -- written only in the ctor and
    // joined in the dtor, when no worker thread exists to race with;
    // jobs() reads only the size fixed at construction
    std::vector<std::jthread> workers;
};

} // namespace sim
} // namespace lvpsim
