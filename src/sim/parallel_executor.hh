/**
 * @file
 * Fixed-size thread pool used to fan suite runs out across cores.
 *
 * Deliberately simple — no work stealing, no priorities: a bounded
 * FIFO task queue drained by N `std::jthread` workers. Simulation
 * tasks are seconds long, so queueing costs are irrelevant; what
 * matters is backpressure (the bounded queue keeps the producer from
 * materializing thousands of closures) and clean join-on-destroy.
 *
 * Determinism contract: the executor never reorders *results* —
 * callers index their output slots up front (one slot per task) so
 * the assembled result is independent of completion order. See
 * docs/architecture.md §"Simulation harness".
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace lvpsim
{
namespace sim
{

class ParallelExecutor
{
  public:
    /** Spawn `jobs` workers (clamped to >= 1). */
    explicit ParallelExecutor(std::size_t jobs);

    /** Joins all workers; pending tasks are drained first. */
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    std::size_t jobs() const { return workers.size(); }

    /**
     * Enqueue a task. Blocks while the queue is at capacity
     * (2 x jobs) — backpressure, not failure. Tasks must not
     * submit to the same executor (no nesting).
     */
    void submit(std::function<void()> task) EXCLUDES(mx);

    /**
     * Block until every task submitted so far has finished. If any
     * task threw, rethrows the first captured exception; when
     * several tasks failed, the rethrown message is suffixed with
     * how many further failures were suppressed so multi-failure
     * runs are not mistaken for single ones.
     */
    void wait() EXCLUDES(mx);

    /**
     * Run `n` independent tasks `fn(0) .. fn(n-1)` and wait.
     * Convenience over submit()+wait(); result ordering is the
     * caller's: write to slot `i`, never append.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** `--jobs 0` / "auto": one worker per hardware thread. */
    static std::size_t hardwareJobs();

    /**
     * Parse a `--jobs` flag value: a decimal worker count, or
     * "auto"/"0" for hardwareJobs(). Returns false (leaving `jobs`
     * untouched) on anything else, so callers can reject typos
     * instead of silently running on all cores.
     */
    static bool parseJobs(std::string_view text, std::size_t &jobs);

  private:
    void workerLoop(std::stop_token st) EXCLUDES(mx);

    // Condition-variable wait predicates. Each runs with `mx` held —
    // that is the wait() contract — but inside a lambda the analysis
    // cannot see through, hence NO_THREAD_SAFETY_ANALYSIS (see
    // common/thread_annotations.hh).
    bool queueHasSpace() const NO_THREAD_SAFETY_ANALYSIS
    {
        return queue.size() < capacity;
    }
    bool queueNonEmpty() const NO_THREAD_SAFETY_ANALYSIS
    {
        return !queue.empty();
    }
    bool allIdle() const NO_THREAD_SAFETY_ANALYSIS
    {
        return inFlight == 0;
    }

    Mutex mx;
    std::condition_variable_any cvTask;  ///< queue not empty
    std::condition_variable cvSpace;     ///< queue not full
    std::condition_variable cvIdle;      ///< all work finished
    std::deque<std::function<void()>> queue GUARDED_BY(mx);
    std::size_t capacity GUARDED_BY(mx) = 0;
    /// Queued + currently executing tasks.
    std::size_t inFlight GUARDED_BY(mx) = 0;
    std::exception_ptr firstError GUARDED_BY(mx);
    /// Tasks failed since the last wait().
    std::size_t errorCount GUARDED_BY(mx) = 0;
    // lvplint: allow(lock-discipline) -- written only in the ctor and
    // joined in the dtor, when no worker thread exists to race with;
    // jobs() reads only the size fixed at construction
    std::vector<std::jthread> workers;
};

} // namespace sim
} // namespace lvpsim

