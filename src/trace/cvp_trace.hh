/**
 * @file
 * CVP-1 championship trace format: reader, writer, and the
 * CvpTraceSource backend.
 *
 * The public CVP-1 infrastructure (the load value / value prediction
 * championships) defined a de-facto standard trace format: a flat
 * little-endian record stream, usually gzip-compressed, one record
 * per retired instruction, carrying the PC, an instruction class,
 * memory address/size for loads and stores, branch outcome/target,
 * and the architectural input/output registers with the output
 * values. This file implements that record layout over lvpsim's
 * `MicroOp` representation so championship traces (and any trace
 * converted to the format) can drive the full pipeline, and so our
 * traces can be exported for championship-style predictors.
 *
 * The exact field-by-field on-disk layout is documented in
 * docs/traces.md §"CVP-1 trace format"; `readCvpTrace` and
 * `writeCvpTrace` are inverses over the subset of MicroOp the format
 * can carry (`cvpProjection` defines that subset precisely, and the
 * fuzz suite enforces it).
 *
 * Gzip-compressed files are detected by their 2-byte magic and
 * decompressed transparently when lvpsim is built with zlib
 * (`cvpGzipSupported()`); without zlib they fail with a clean error.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace lvpsim
{
namespace trace
{

/**
 * CVP-1 instruction classes (the championship kit's `InstClass`
 * enum, same numeric values).
 */
enum class CvpInstClass : std::uint8_t
{
    Alu = 0,            ///< simple integer op
    Load = 1,           ///< memory read
    Store = 2,          ///< memory write
    CondBranch = 3,     ///< conditional direct branch
    UncondDirect = 4,   ///< unconditional direct branch / call
    UncondIndirect = 5, ///< indirect branch / return
    Fp = 6,             ///< floating-point op
    SlowAlu = 7,        ///< long-latency integer op (mul/div)
    Undef = 8,          ///< anything else (nop, system, ...)
};

/** Number of valid CvpInstClass values (Undef included). */
constexpr unsigned numCvpInstClasses = 9;

/** CVP-1 register-file split: ids 0-31 integer, 32-63 FP/SIMD
 *  (16-byte values on disk), 64 the condition flags, 65 the zero
 *  register. Only 0-63 map onto lvpsim's architectural registers;
 *  64 and 65 are dropped on import. */
constexpr std::uint8_t cvpFirstSimdReg = 32;
/** First register id past the FP/SIMD bank (see cvpFirstSimdReg). */
constexpr std::uint8_t cvpFlagsReg = 64;
/** The always-zero register id (see cvpFirstSimdReg). */
constexpr std::uint8_t cvpZeroReg = 65;

/**
 * Parse a raw (uncompressed) CVP-1 record stream.
 *
 * @param is the byte stream, positioned at the first record
 * @param[out] ops replaced with the decoded instructions
 * @param[out] error human-readable reason on failure (truncated
 *             record, bad instruction class, implausible register
 *             count)
 * @param max_records stop after this many records (0 = whole stream)
 * @return false on malformed input; @p ops then holds the records
 *         decoded before the error
 */
bool readCvpTrace(std::istream &is, std::vector<MicroOp> &ops,
                  std::string *error = nullptr,
                  std::size_t max_records = 0);

/**
 * Serialize @p ops as a CVP-1 record stream (uncompressed).
 * Lossy exactly as `cvpProjection` describes. False on I/O error.
 */
bool writeCvpTrace(std::ostream &os, const std::vector<MicroOp> &ops);

/**
 * Load a CVP-1 trace file, decompressing transparently when the file
 * starts with the gzip magic (requires zlib; see cvpGzipSupported).
 * @return false with @p error set on open/decode failure
 */
bool loadCvpTraceFile(const std::string &path,
                      std::vector<MicroOp> &ops,
                      std::string *error = nullptr,
                      std::size_t max_records = 0);

/**
 * Write @p ops as a CVP-1 trace file.
 * @param gzip compress with zlib; fails cleanly when lvpsim was
 *        built without it
 */
bool saveCvpTraceFile(const std::string &path,
                      const std::vector<MicroOp> &ops,
                      bool gzip = false,
                      std::string *error = nullptr);

/** True when this build can read/write gzip-compressed traces. */
bool cvpGzipSupported();

/**
 * The CVP-1 class a MicroOp exports as (the writer's mapping):
 * IntAlu/Barrier → Alu, IntMul/IntDiv → SlowAlu, FpAlu → Fp,
 * Branch → CondBranch, Call → UncondDirect, Ret/IndirBr →
 * UncondIndirect, Nop → Undef.
 */
CvpInstClass cvpClassOf(OpClass c);

/**
 * The exact information a CVP-1 round trip preserves: write(op) then
 * read yields cvpProjection(op). The projection
 *  - folds IntDiv into IntMul and Call into Branch, Ret into IndirBr
 *    and Barrier into IntAlu (the format's coarser class set);
 *  - zeroes memValue on non-loads (only load output values are
 *    carried) and clears exclusiveMem (not representable);
 *  - rewrites a not-taken branch's target to the fall-through
 *    `pc + 4` (targets are only stored for taken branches) and
 *    zeroes target on non-control ops;
 *  - zeroes effAddr/memSize on non-memory ops and clamps memSize
 *    into [1, 8].
 */
MicroOp cvpProjection(const MicroOp &op);

/**
 * The CVP-1 file backend: parses the whole file up front (bounded by
 * @p max_records) and replays it as a TraceSource.
 */
class CvpTraceSource : public BufferedTraceSource
{
  public:
    /**
     * Open and fully parse @p path (gzip handled transparently).
     * @return the source, or nullptr with @p error set
     */
    static std::unique_ptr<CvpTraceSource>
    open(const std::string &path, std::string *error = nullptr,
         std::size_t max_records = 0);

    const char *format() const override { return "cvp"; }

    std::string identity() const override;

  private:
    explicit CvpTraceSource(std::string path)
        : BufferedTraceSource(std::move(path))
    {}

    std::uint64_t contentHash = 0;
};

} // namespace trace
} // namespace lvpsim
