#include "trace/cvp_trace.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#ifdef LVPSIM_HAVE_ZLIB
#include <zlib.h>
#endif

namespace lvpsim
{
namespace trace
{

namespace
{

// A record can name at most 3 inputs + 1 output (+ flags) in real
// CVP-1 traces; anything past this bound means we lost framing.
constexpr unsigned maxRegsPerSide = 8;

bool
getBytes(std::istream &is, unsigned char *buf, std::size_t n)
{
    is.read(reinterpret_cast<char *>(buf), std::streamsize(n));
    return is.gcount() == std::streamsize(n);
}

bool
getU8(std::istream &is, std::uint8_t &v)
{
    unsigned char b;
    if (!getBytes(is, &b, 1))
        return false;
    v = b;
    return true;
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    unsigned char b[8];
    if (!getBytes(is, b, 8))
        return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t(b[i]) << (8 * i);
    return true;
}

void
putU8(std::ostream &os, std::uint8_t v)
{
    os.put(char(v));
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    char b[8];
    for (unsigned i = 0; i < 8; ++i)
        b[i] = char((v >> (8 * i)) & 0xff);
    os.write(b, 8);
}

bool
needsTarget(CvpInstClass c, bool taken)
{
    return (c == CvpInstClass::CondBranch && taken) ||
           c == CvpInstClass::UncondDirect ||
           c == CvpInstClass::UncondIndirect;
}

OpClass
importClass(CvpInstClass c, bool taken)
{
    switch (c) {
      case CvpInstClass::Alu: return OpClass::IntAlu;
      case CvpInstClass::Load: return OpClass::Load;
      case CvpInstClass::Store: return OpClass::Store;
      case CvpInstClass::CondBranch: return OpClass::Branch;
      // Direct unconditionals surface as always-taken branches: the
      // format does not distinguish calls, so the RAS-relevant
      // classes cannot be recovered.
      case CvpInstClass::UncondDirect: return OpClass::Branch;
      case CvpInstClass::UncondIndirect: return OpClass::IndirBr;
      case CvpInstClass::Fp: return OpClass::FpAlu;
      case CvpInstClass::SlowAlu: return OpClass::IntMul;
      case CvpInstClass::Undef: return OpClass::Nop;
    }
    (void)taken;
    return OpClass::Nop;
}

std::uint8_t
clampMemSize(std::uint8_t size)
{
    return std::uint8_t(std::min<unsigned>(std::max<unsigned>(size, 1), 8));
}

} // anonymous namespace

CvpInstClass
cvpClassOf(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return CvpInstClass::Alu;
      case OpClass::IntMul: return CvpInstClass::SlowAlu;
      case OpClass::IntDiv: return CvpInstClass::SlowAlu;
      case OpClass::FpAlu: return CvpInstClass::Fp;
      case OpClass::Load: return CvpInstClass::Load;
      case OpClass::Store: return CvpInstClass::Store;
      case OpClass::Branch: return CvpInstClass::CondBranch;
      case OpClass::Call: return CvpInstClass::UncondDirect;
      case OpClass::Ret: return CvpInstClass::UncondIndirect;
      case OpClass::IndirBr: return CvpInstClass::UncondIndirect;
      case OpClass::Barrier: return CvpInstClass::Alu;
      case OpClass::Nop: return CvpInstClass::Undef;
    }
    return CvpInstClass::Undef;
}

bool
readCvpTrace(std::istream &is, std::vector<MicroOp> &ops,
             std::string *error, std::size_t max_records)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    ops.clear();
    while (!max_records || ops.size() < max_records) {
        // A clean end of stream is only legal at a record boundary.
        std::uint64_t pc;
        {
            unsigned char first;
            is.read(reinterpret_cast<char *>(&first), 1);
            if (is.gcount() == 0)
                break; // end of stream
            unsigned char rest[7];
            if (!getBytes(is, rest, 7))
                return fail("truncated record (mid-PC)");
            pc = first;
            for (unsigned i = 0; i < 7; ++i)
                pc |= std::uint64_t(rest[i]) << (8 * (i + 1));
        }
        std::uint8_t clsByte;
        if (!getU8(is, clsByte))
            return fail("truncated record (missing class)");
        if (clsByte >= numCvpInstClasses)
            return fail("corrupt record (bad instruction class)");
        const auto cvpCls = CvpInstClass(clsByte);

        MicroOp op;
        op.pc = pc;

        if (cvpCls == CvpInstClass::Load ||
            cvpCls == CvpInstClass::Store) {
            std::uint64_t ea;
            std::uint8_t size;
            if (!getU64(is, ea) || !getU8(is, size))
                return fail("truncated record (memory fields)");
            op.effAddr = ea;
            op.memSize = clampMemSize(size);
        }

        bool taken = true; // unconditional classes are always taken
        if (cvpCls == CvpInstClass::CondBranch) {
            std::uint8_t t;
            if (!getU8(is, t))
                return fail("truncated record (branch outcome)");
            taken = t != 0;
        }
        if (needsTarget(cvpCls, taken)) {
            std::uint64_t target;
            if (!getU64(is, target))
                return fail("truncated record (branch target)");
            op.target = target;
        } else if (cvpCls == CvpInstClass::CondBranch) {
            // Fall-through; the format assumes 4-byte instructions.
            op.target = pc + 4;
        }

        std::uint8_t nIn;
        if (!getU8(is, nIn))
            return fail("truncated record (input register count)");
        if (nIn > maxRegsPerSide)
            return fail("corrupt record (implausible input register "
                        "count)");
        unsigned srcIdx = 0;
        for (unsigned i = 0; i < nIn; ++i) {
            std::uint8_t reg;
            if (!getU8(is, reg))
                return fail("truncated record (input register)");
            // Flags/zero registers (and any id past our 64-entry
            // file) do not map onto MicroOp sources; extras beyond
            // three are dropped too.
            if (reg < numArchRegs && srcIdx < op.src.size())
                op.src[srcIdx++] = RegId(reg);
        }

        std::uint8_t nOut;
        if (!getU8(is, nOut))
            return fail("truncated record (output register count)");
        if (nOut > maxRegsPerSide)
            return fail("corrupt record (implausible output register "
                        "count)");
        std::uint8_t outRegs[maxRegsPerSide];
        for (unsigned i = 0; i < nOut; ++i) {
            if (!getU8(is, outRegs[i]))
                return fail("truncated record (output register)");
        }
        for (unsigned i = 0; i < nOut; ++i) {
            std::uint64_t lo;
            if (!getU64(is, lo))
                return fail("truncated record (output value)");
            if (outRegs[i] >= cvpFirstSimdReg &&
                outRegs[i] < cvpFlagsReg) {
                std::uint64_t hi;
                if (!getU64(is, hi))
                    return fail("truncated record (SIMD value high "
                                "half)");
            }
            if (op.dst == invalidReg && outRegs[i] < numArchRegs) {
                op.dst = RegId(outRegs[i]);
                if (cvpCls == CvpInstClass::Load)
                    op.memValue = lo;
            }
        }

        op.cls = importClass(cvpCls, taken);
        if (isControl(op.cls))
            op.taken = taken;
        ops.push_back(op);
    }
    return true;
}

bool
writeCvpTrace(std::ostream &os, const std::vector<MicroOp> &ops)
{
    for (const MicroOp &op : ops) {
        const CvpInstClass cls = cvpClassOf(op.cls);
        putU64(os, op.pc);
        putU8(os, std::uint8_t(cls));
        if (cls == CvpInstClass::Load || cls == CvpInstClass::Store) {
            putU64(os, op.effAddr);
            putU8(os, clampMemSize(op.memSize));
        }
        // Our Call/Ret/IndirBr map to unconditional classes, which
        // are taken by definition.
        const bool taken =
            cls == CvpInstClass::CondBranch ? op.taken : true;
        if (cls == CvpInstClass::CondBranch)
            putU8(os, taken ? 1 : 0);
        if (needsTarget(cls, taken))
            putU64(os, op.target);

        std::uint8_t srcs[3];
        std::uint8_t nIn = 0;
        for (RegId s : op.src) {
            if (s != invalidReg)
                srcs[nIn++] = std::uint8_t(s);
        }
        putU8(os, nIn);
        for (unsigned i = 0; i < nIn; ++i)
            putU8(os, srcs[i]);

        if (op.dst != invalidReg) {
            putU8(os, 1);
            putU8(os, std::uint8_t(op.dst));
            putU64(os, op.cls == OpClass::Load ? op.memValue : 0);
            if (op.dst >= cvpFirstSimdReg)
                putU64(os, 0); // high half of the 16-byte SIMD value
        } else {
            putU8(os, 0);
        }
    }
    return bool(os);
}

MicroOp
cvpProjection(const MicroOp &op)
{
    MicroOp p;
    p.pc = op.pc;
    const CvpInstClass cls = cvpClassOf(op.cls);
    const bool taken =
        cls == CvpInstClass::CondBranch ? op.taken : true;
    p.cls = importClass(cls, taken);
    p.dst = op.dst;
    // The format stores input registers as a compact list, so gaps
    // in the src array do not survive a round trip.
    p.src = {invalidReg, invalidReg, invalidReg};
    std::size_t nsrc = 0;
    for (RegId s : op.src) {
        if (s != invalidReg)
            p.src[nsrc++] = s;
    }
    if (cls == CvpInstClass::Load || cls == CvpInstClass::Store) {
        p.effAddr = op.effAddr;
        p.memSize = clampMemSize(op.memSize);
    }
    if (cls == CvpInstClass::Load && op.dst != invalidReg)
        p.memValue = op.memValue;
    if (isControl(p.cls)) {
        p.taken = taken;
        p.target = needsTarget(cls, taken) ? op.target : op.pc + 4;
    }
    return p;
}

bool
cvpGzipSupported()
{
#ifdef LVPSIM_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

namespace
{

#ifdef LVPSIM_HAVE_ZLIB
bool
gunzipFile(const std::string &path, std::string &out,
           std::string *error)
{
    gzFile gz = gzopen(path.c_str(), "rb");
    if (!gz) {
        if (error)
            *error = "cannot open file";
        return false;
    }
    char buf[1 << 16];
    int n;
    while ((n = gzread(gz, buf, sizeof(buf))) > 0)
        out.append(buf, std::size_t(n));
    const bool ok = n == 0;
    if (!ok && error)
        *error = "corrupt gzip stream";
    gzclose(gz);
    return ok;
}
#endif

bool
hasGzipMagic(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    unsigned char m[2];
    is.read(reinterpret_cast<char *>(m), 2);
    return is.gcount() == 2 && m[0] == 0x1f && m[1] == 0x8b;
}

} // anonymous namespace

bool
loadCvpTraceFile(const std::string &path, std::vector<MicroOp> &ops,
                 std::string *error, std::size_t max_records)
{
    if (hasGzipMagic(path)) {
#ifdef LVPSIM_HAVE_ZLIB
        std::string raw;
        if (!gunzipFile(path, raw, error))
            return false;
        std::istringstream is(raw);
        return readCvpTrace(is, ops, error, max_records);
#else
        if (error)
            *error = "gzip-compressed trace, but lvpsim was built "
                     "without zlib";
        return false;
#endif
    }
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open file";
        return false;
    }
    return readCvpTrace(is, ops, error, max_records);
}

bool
saveCvpTraceFile(const std::string &path,
                 const std::vector<MicroOp> &ops, bool gzip,
                 std::string *error)
{
    if (gzip) {
#ifdef LVPSIM_HAVE_ZLIB
        std::ostringstream os;
        if (!writeCvpTrace(os, ops)) {
            if (error)
                *error = "serialization failed";
            return false;
        }
        const std::string raw = os.str();
        gzFile gz = gzopen(path.c_str(), "wb");
        if (!gz) {
            if (error)
                *error = "cannot open file for writing";
            return false;
        }
        bool ok = true;
        if (!raw.empty())
            ok = gzwrite(gz, raw.data(), unsigned(raw.size())) ==
                 int(raw.size());
        ok = gzclose(gz) == Z_OK && ok;
        if (!ok && error)
            *error = "gzip write failed";
        return ok;
#else
        if (error)
            *error = "gzip output requested, but lvpsim was built "
                     "without zlib";
        return false;
#endif
    }
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        if (error)
            *error = "cannot open file for writing";
        return false;
    }
    if (!writeCvpTrace(os, ops)) {
        if (error)
            *error = "write failed";
        return false;
    }
    return true;
}

std::unique_ptr<CvpTraceSource>
CvpTraceSource::open(const std::string &path, std::string *error,
                     std::size_t max_records)
{
    // Cannot use make_unique: the constructor is private.
    std::unique_ptr<CvpTraceSource> src(new CvpTraceSource(path));
    if (!loadCvpTraceFile(path, src->ops, error, max_records))
        return nullptr;
    src->contentHash = hashTrace(src->ops);
    return src;
}

std::string
CvpTraceSource::identity() const
{
    return "cvp:" + name() + "#" +
           std::to_string(instructionCount()) + "#" +
           std::to_string(contentHash);
}

} // namespace trace
} // namespace lvpsim
