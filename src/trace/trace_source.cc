#include "trace/trace_source.hh"

#include <sstream>

#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
    return h;
}

} // anonymous namespace

std::uint64_t
hashTrace(const std::vector<MicroOp> &ops)
{
    // Hash canonical field values, never raw struct bytes: padding
    // would make the hash compiler-dependent.
    std::uint64_t h = fnvMix(fnvOffset, ops.size());
    for (const MicroOp &op : ops) {
        h = fnvMix(h, op.pc);
        h = fnvMix(h, std::uint64_t(op.cls));
        h = fnvMix(h, op.dst);
        for (RegId s : op.src)
            h = fnvMix(h, s);
        h = fnvMix(h, op.effAddr);
        h = fnvMix(h, op.memSize);
        h = fnvMix(h, op.memValue);
        h = fnvMix(h, (op.exclusiveMem ? 2u : 0u) |
                          (op.taken ? 1u : 0u));
        h = fnvMix(h, op.target);
    }
    return h;
}

std::string
debugString(const MicroOp &op)
{
    std::ostringstream os;
    os << std::hex;
    os << "pc=0x" << op.pc;
    os << std::dec << " cls=" << unsigned(op.cls) << " dst=";
    if (op.dst == invalidReg)
        os << "-";
    else
        os << op.dst;
    os << " src=";
    for (std::size_t i = 0; i < op.src.size(); ++i) {
        if (i)
            os << ",";
        if (op.src[i] == invalidReg)
            os << "-";
        else
            os << op.src[i];
    }
    os << " ea=0x" << std::hex << op.effAddr;
    os << std::dec << " sz=" << unsigned(op.memSize);
    os << " val=0x" << std::hex << op.memValue;
    os << std::dec << " excl=" << (op.exclusiveMem ? 1 : 0);
    os << " taken=" << (op.taken ? 1 : 0);
    os << " tgt=0x" << std::hex << op.target;
    return os.str();
}

SyntheticSource::SyntheticSource(const std::string &workload,
                                 std::size_t max_ops,
                                 std::uint64_t trace_seed)
    : BufferedTraceSource(workload), maxOps(max_ops), seed(trace_seed)
{
    ops = generateWorkload(workload, max_ops, trace_seed);
}

std::string
SyntheticSource::identity() const
{
    // (kernel, budget, seed) fully determines the stream; no content
    // hash needed (and none wanted: the cheap identity keeps the
    // sweep caches' key computation trivial).
    return "synth:" + name() + "#" + std::to_string(maxOps) + "#" +
           std::to_string(seed);
}

std::unique_ptr<RecordedSource>
RecordedSource::open(const std::string &path, std::string *error)
{
    // Cannot use make_unique: the constructor is private.
    std::unique_ptr<RecordedSource> src(new RecordedSource(path));
    if (!loadTraceFile(path, src->ops, error))
        return nullptr;
    src->contentHash = hashTrace(src->ops);
    return src;
}

std::string
RecordedSource::identity() const
{
    // The path alone is not an identity (the file can be rewritten);
    // the content hash is.
    return "lvpt:" + name() + "#" +
           std::to_string(instructionCount()) + "#" +
           std::to_string(contentHash);
}

std::vector<MicroOp>
materialize(TraceSource &src, std::size_t max_ops)
{
    std::vector<MicroOp> out;
    if (max_ops)
        out.reserve(std::min(max_ops, src.instructionCount()));
    else
        out.reserve(src.instructionCount());
    MicroOp op;
    while ((!max_ops || out.size() < max_ops) && src.next(op))
        out.push_back(op);
    return out;
}

std::size_t
recordTrace(TraceSource &src, const std::string &path,
            std::size_t max_ops, std::string *error)
{
    const std::vector<MicroOp> ops = materialize(src, max_ops);
    if (!saveTraceFile(path, ops)) {
        if (error)
            *error = "cannot write trace file '" + path + "'";
        return 0;
    }
    return ops.size();
}

} // namespace trace
} // namespace lvpsim
