/**
 * @file
 * Registry of the synthetic workload suite (the paper's benchmark pool
 * stand-in; see DESIGN.md for the kernel-to-benchmark mapping).
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/synth_kernel.hh"

namespace lvpsim
{
namespace trace
{

struct WorkloadInfo
{
    std::string name;
    std::string description;
    std::function<std::unique_ptr<SynthKernel>()> make;
};

class WorkloadRegistry
{
  public:
    /** The process-wide registry, fully populated on first use. */
    static const WorkloadRegistry &instance();

    const std::vector<WorkloadInfo> &all() const { return entries; }

    /** Find by name; fatal() if unknown. */
    const WorkloadInfo &find(const std::string &name) const;
    bool contains(const std::string &name) const;

    /** Registration (used by the kernel translation units). */
    void
    add(std::string name, std::string description,
        std::function<std::unique_ptr<SynthKernel>()> make)
    {
        entries.push_back({std::move(name), std::move(description),
                           std::move(make)});
    }

  private:
    std::vector<WorkloadInfo> entries;
};

/** Every workload name, in registration order. */
std::vector<std::string> allWorkloadNames();

/** A small subset used by fast tests ("smoke" suite). */
std::vector<std::string> smokeWorkloadNames();

/** Generate a workload's trace by name. */
std::vector<MicroOp> generateWorkload(const std::string &name,
                                      std::size_t max_ops,
                                      std::uint64_t seed = 1);

} // namespace trace
} // namespace lvpsim

