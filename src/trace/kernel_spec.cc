/**
 * @file
 * KernelSpec grammar: parse, canonical print, validation.
 *
 * The grammar (docs/kernel_dsl.md):
 *
 *     spec   := phase (';' phase)*
 *     phase  := '[' kv (',' kv)* ']' stream (',' stream)*
 *             | '[' ']' stream (',' stream)*
 *     stream := kind '(' [kv (',' kv)*] ')' ['*' weight]
 *     kind   := 'const' | 'stride' | 'ctx' | 'pick' | 'chase'
 *     kv     := key '=' value
 *
 * Values are decimal or 0x-hex integers, or the keyword enums (mix,
 * fill, order, glue). Whitespace is insignificant. Canonical printing
 * uses a fixed parameter order and elides kind defaults, so
 * parse -> print -> parse is a fixed point and equivalent spellings
 * share one canonical identity.
 */

#include "trace/kernel_spec.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

// The grammar's key vocabulary, kept in sync with the field table in
// docs/kernel_dsl.md by lvplint's config-sync check (both directions:
// every name here must appear in the doc table and vice versa).
const char *const kSpecGrammarFields[] = {
    "iters", "mix", "base",                         // phase keys
    "v", "wset", "step", "esz", "fill", "v0", "dv", // stream keys
    "period", "k", "order", "glue",                 // stream keys
};
const std::size_t kSpecGrammarFieldCount =
    sizeof(kSpecGrammarFields) / sizeof(kSpecGrammarFields[0]);

namespace
{

constexpr Addr autoBase = 0x60000000;
constexpr Addr autoSpacing = 0x04000000; // 64 MiB per phase

std::string
stripSpace(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out += c;
    return out;
}

/** Split on @p sep at zero bracket/paren depth. */
std::vector<std::string>
splitTop(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[' || c == '(')
            ++depth;
        else if (c == ']' || c == ')')
            --depth;
        if (c == sep && depth == 0) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    const bool hex = s.size() > 2 && s[0] == '0' &&
                     (s[1] == 'x' || s[1] == 'X');
    std::size_t i = hex ? 2 : 0;
    if (i >= s.size())
        return false;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = unsigned(c - '0');
        else if (hex && c >= 'a' && c <= 'f')
            digit = unsigned(c - 'a') + 10;
        else if (hex && c >= 'A' && c <= 'F')
            digit = unsigned(c - 'A') + 10;
        else
            return false;
        v = v * (hex ? 16 : 10) + digit;
    }
    *out = v;
    return true;
}

bool
parseI64(const std::string &s, std::int64_t *out)
{
    std::uint64_t mag = 0;
    if (!s.empty() && s[0] == '-') {
        if (!parseU64(s.substr(1), &mag))
            return false;
        *out = -static_cast<std::int64_t>(mag);
        return true;
    }
    if (!parseU64(s, &mag))
        return false;
    *out = static_cast<std::int64_t>(mag);
    return true;
}

std::string
hexStr(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

const char *
kindName(PatternKind k)
{
    switch (k) {
      case PatternKind::Const: return "const";
      case PatternKind::Stride: return "stride";
      case PatternKind::Ctx: return "ctx";
      case PatternKind::Pick: return "pick";
      case PatternKind::Chase: return "chase";
    }
    return "?";
}

const char *
glueName(GlueOp g)
{
    switch (g) {
      case GlueOp::Add: return "add";
      case GlueOp::Xor: return "xor";
      case GlueOp::Fadd: return "fadd";
      case GlueOp::None: return "none";
    }
    return "?";
}

const char *
mixName(MixStrategy m)
{
    switch (m) {
      case MixStrategy::Seq: return "seq";
      case MixStrategy::RoundRobin: return "rr";
      case MixStrategy::Random: return "rand";
    }
    return "?";
}

const char *
fillName(FillKind f)
{
    return f == FillKind::Seq ? "seq" : "rng";
}

const char *
orderName(ChaseOrder o)
{
    return o == ChaseOrder::Zigzag ? "zigzag" : "shuffle";
}

struct ParseFail
{
    std::string msg;
};

[[noreturn]] void
fail(const std::string &where, const std::string &what)
{
    throw ParseFail{where + ": " + what};
}

StreamSpec
parseStream(const std::string &text, const std::string &where)
{
    const std::size_t open = text.find('(');
    if (open == std::string::npos || text.back() == '(')
        fail(where, "expected kind(...) stream syntax in '" + text +
                        "'");
    // Optional '*N' weight suffix after the closing paren.
    const std::size_t close = text.rfind(')');
    if (close == std::string::npos || close < open)
        fail(where, "missing ')' in '" + text + "'");

    const std::string kindStr = text.substr(0, open);
    PatternKind kind;
    if (kindStr == "const")
        kind = PatternKind::Const;
    else if (kindStr == "stride")
        kind = PatternKind::Stride;
    else if (kindStr == "ctx")
        kind = PatternKind::Ctx;
    else if (kindStr == "pick")
        kind = PatternKind::Pick;
    else if (kindStr == "chase")
        kind = PatternKind::Chase;
    else
        fail(where, "unknown stream kind '" + kindStr + "'");

    StreamSpec s = defaultStream(kind);

    const std::string tail = text.substr(close + 1);
    if (!tail.empty()) {
        if (tail[0] != '*')
            fail(where, "junk after ')' in '" + text + "'");
        std::uint64_t w = 0;
        if (!parseU64(tail.substr(1), &w) || w == 0)
            fail(where, "bad weight '" + tail.substr(1) + "'");
        s.weight = static_cast<unsigned>(w);
    }

    const std::string params = text.substr(open + 1, close - open - 1);
    if (params.empty())
        return s;
    for (const std::string &kv : splitTop(params, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fail(where, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        std::uint64_t u = 0;
        if (key == "v") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'v': '" + val + "'");
            s.value = u;
        } else if (key == "wset") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'wset': '" + val + "'");
            s.wset = u;
        } else if (key == "step") {
            std::int64_t i = 0;
            if (!parseI64(val, &i))
                fail(where, "bad value for 'step': '" + val + "'");
            s.step = i;
        } else if (key == "esz") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'esz': '" + val + "'");
            s.esz = static_cast<unsigned>(u);
        } else if (key == "fill") {
            if (val == "seq")
                s.fill = FillKind::Seq;
            else if (val == "rng")
                s.fill = FillKind::Rng;
            else
                fail(where, "bad fill '" + val +
                                "' (want seq or rng)");
        } else if (key == "v0") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'v0': '" + val + "'");
            s.fillBase = u;
        } else if (key == "dv") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'dv': '" + val + "'");
            s.fillStep = u;
        } else if (key == "period") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'period': '" + val + "'");
            s.period = static_cast<unsigned>(u);
        } else if (key == "k") {
            if (!parseU64(val, &u))
                fail(where, "bad value for 'k': '" + val + "'");
            s.entries = static_cast<unsigned>(u);
        } else if (key == "order") {
            if (val == "zigzag")
                s.order = ChaseOrder::Zigzag;
            else if (val == "shuffle")
                s.order = ChaseOrder::Shuffle;
            else
                fail(where, "bad order '" + val +
                                "' (want zigzag or shuffle)");
        } else if (key == "glue") {
            if (val == "add")
                s.glue = GlueOp::Add;
            else if (val == "xor")
                s.glue = GlueOp::Xor;
            else if (val == "fadd")
                s.glue = GlueOp::Fadd;
            else if (val == "none")
                s.glue = GlueOp::None;
            else
                fail(where, "bad glue '" + val +
                                "' (want add, xor, fadd or none)");
        } else {
            fail(where, "unknown stream key '" + key + "'");
        }
    }
    return s;
}

PhaseSpec
parsePhase(const std::string &text, std::size_t idx)
{
    const std::string where = "phase " + std::to_string(idx + 1);
    if (text.empty() || text[0] != '[')
        fail(where, "expected '[' at start of phase");
    const std::size_t close = text.find(']');
    if (close == std::string::npos)
        fail(where, "missing ']'");

    PhaseSpec ph;
    const std::string head = text.substr(1, close - 1);
    if (!head.empty()) {
        for (const std::string &kv : splitTop(head, ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                fail(where, "expected key=value, got '" + kv + "'");
            const std::string key = kv.substr(0, eq);
            const std::string val = kv.substr(eq + 1);
            std::uint64_t u = 0;
            if (key == "iters") {
                if (!parseU64(val, &u))
                    fail(where,
                         "bad value for 'iters': '" + val + "'");
                ph.iters = u;
            } else if (key == "mix") {
                if (val == "seq")
                    ph.mix = MixStrategy::Seq;
                else if (val == "rr")
                    ph.mix = MixStrategy::RoundRobin;
                else if (val == "rand")
                    ph.mix = MixStrategy::Random;
                else
                    fail(where, "bad mix '" + val +
                                    "' (want seq, rr or rand)");
            } else if (key == "base") {
                if (!parseU64(val, &u))
                    fail(where, "bad value for 'base': '" + val + "'");
                ph.base = u;
            } else {
                fail(where, "unknown phase key '" + key + "'");
            }
        }
    }

    const std::string streams = text.substr(close + 1);
    if (streams.empty())
        fail(where, "phase has no streams");
    std::size_t sidx = 0;
    for (const std::string &st : splitTop(streams, ',')) {
        ++sidx;
        ph.streams.push_back(parseStream(
            st, where + " stream " + std::to_string(sidx)));
    }
    return ph;
}

} // anonymous namespace

StreamSpec
defaultStream(PatternKind kind)
{
    StreamSpec s;
    s.kind = kind;
    switch (kind) {
      case PatternKind::Const:
        break;
      case PatternKind::Stride:
        s.wset = 64;
        s.step = 8;
        break;
      case PatternKind::Ctx:
        s.period = 8;
        break;
      case PatternKind::Pick:
        s.entries = 8;
        break;
      case PatternKind::Chase:
        s.wset = 48;
        s.step = 32;
        break;
    }
    return s;
}

KernelSpec
parseKernelSpec(const std::string &text, std::string *error)
{
    KernelSpec spec;
    try {
        const std::string flat = stripSpace(text);
        if (flat.empty())
            throw ParseFail{"empty spec"};
        std::size_t idx = 0;
        for (const std::string &ph : splitTop(flat, ';')) {
            spec.phases.push_back(parsePhase(ph, idx));
            ++idx;
        }
        const std::string why = validateKernelSpec(spec);
        if (!why.empty())
            throw ParseFail{why};
    } catch (const ParseFail &pf) {
        if (error)
            *error = pf.msg;
        return KernelSpec{};
    }
    if (error)
        error->clear();
    return spec;
}

std::string
printKernelSpec(const KernelSpec &spec)
{
    std::ostringstream out;
    bool firstPhase = true;
    for (const PhaseSpec &ph : spec.phases) {
        if (!firstPhase)
            out << ';';
        firstPhase = false;

        out << '[';
        bool firstKv = true;
        auto kv = [&](const std::string &text) {
            if (!firstKv)
                out << ',';
            firstKv = false;
            out << text;
        };
        if (ph.iters != 0)
            kv("iters=" + std::to_string(ph.iters));
        if (ph.mix != MixStrategy::Seq)
            kv(std::string("mix=") + mixName(ph.mix));
        if (ph.base != 0)
            kv("base=" + hexStr(ph.base));
        out << ']';

        bool firstStream = true;
        for (const StreamSpec &s : ph.streams) {
            if (!firstStream)
                out << ',';
            firstStream = false;

            const StreamSpec d = defaultStream(s.kind);
            out << kindName(s.kind) << '(';
            bool firstP = true;
            auto p = [&](const std::string &text) {
                if (!firstP)
                    out << ',';
                firstP = false;
                out << text;
            };
            if (s.kind == PatternKind::Const && s.value != d.value)
                p("v=" + hexStr(s.value));
            if ((s.kind == PatternKind::Stride ||
                 s.kind == PatternKind::Chase) &&
                s.wset != d.wset)
                p("wset=" + std::to_string(s.wset));
            if ((s.kind == PatternKind::Stride ||
                 s.kind == PatternKind::Chase) &&
                s.step != d.step)
                p("step=" + std::to_string(s.step));
            if (s.kind == PatternKind::Ctx && s.period != d.period)
                p("period=" + std::to_string(s.period));
            if (s.kind == PatternKind::Pick && s.entries != d.entries)
                p("k=" + std::to_string(s.entries));
            if (s.esz != d.esz)
                p("esz=" + std::to_string(s.esz));
            if (s.kind != PatternKind::Const &&
                s.kind != PatternKind::Chase) {
                if (s.fill != d.fill)
                    p(std::string("fill=") + fillName(s.fill));
                if (s.fillBase != d.fillBase)
                    p("v0=" + hexStr(s.fillBase));
                if (s.fillStep != d.fillStep)
                    p("dv=" + hexStr(s.fillStep));
            }
            if (s.kind == PatternKind::Chase && s.order != d.order)
                p(std::string("order=") + orderName(s.order));
            if (s.glue != d.glue)
                p(std::string("glue=") + glueName(s.glue));
            out << ')';
            if (s.weight > 1)
                out << '*' << s.weight;
        }
    }
    return out.str();
}

Addr
phaseBaseAddr(const PhaseSpec &phase, std::size_t idx)
{
    if (phase.base != 0)
        return phase.base;
    return autoBase + Addr(idx) * autoSpacing;
}

std::uint64_t
streamFootprint(const StreamSpec &s)
{
    switch (s.kind) {
      case PatternKind::Const:
        return s.esz;
      case PatternKind::Stride:
        return s.wset * std::uint64_t(s.step < 0 ? -s.step : s.step);
      case PatternKind::Ctx:
        return std::uint64_t(s.period) * s.esz;
      case PatternKind::Pick:
        return std::uint64_t(s.entries) * s.esz;
      case PatternKind::Chase:
        return s.wset * std::uint64_t(s.step);
    }
    return 0;
}

std::string
validateKernelSpec(const KernelSpec &spec)
{
    if (spec.phases.empty())
        return "spec has no phases";
    if (spec.phases.size() > 16)
        return "too many phases (max 16)";

    struct Region
    {
        Addr lo, hi;
    };
    std::vector<Region> regions;

    for (std::size_t pi = 0; pi < spec.phases.size(); ++pi) {
        const PhaseSpec &ph = spec.phases[pi];
        const std::string where = "phase " + std::to_string(pi + 1);
        if (ph.iters == 0 && pi + 1 != spec.phases.size())
            return where + " is infinite (iters=0) but not last; "
                           "later phases would be unreachable";
        if (ph.streams.empty())
            return where + " has no streams";
        if (ph.streams.size() > 16)
            return where + " has too many streams (max 16)";

        unsigned pointerStreams = 0;
        std::uint64_t footprint = 0;
        for (std::size_t si = 0; si < ph.streams.size(); ++si) {
            const StreamSpec &s = ph.streams[si];
            const std::string sw =
                where + " stream " + std::to_string(si + 1);
            if (s.weight == 0 || s.weight > 8)
                return sw + ": weight must be in [1, 8]";
            if (s.esz != 4 && s.esz != 8)
                return sw + ": esz must be 4 or 8";
            switch (s.kind) {
              case PatternKind::Const:
                break;
              case PatternKind::Stride:
                ++pointerStreams;
                if (s.wset < 2 || s.wset > (1u << 20))
                    return sw + ": wset must be in [2, 1048576]";
                if (s.step == 0 ||
                    std::uint64_t(s.step < 0 ? -s.step : s.step) <
                        s.esz)
                    return sw + ": step must be nonzero and at "
                                "least esz";
                if (s.step < 0)
                    return sw + ": negative stride strides are not "
                                "supported yet";
                if (ph.iters == 0)
                    return sw + ": stride streams need a finite "
                                "phase (iters > 0)";
                if (ph.iters * s.weight > s.wset)
                    return sw + ": iters*weight exceeds wset (the "
                                "walk would leave the region)";
                if (ph.mix == MixStrategy::Random && s.weight > 1)
                    return sw + ": weight>1 under mix=rand would "
                                "scramble the shared pointer walk "
                                "(per-PC strides become jittered)";
                break;
              case PatternKind::Ctx:
                if (s.period < 2 || s.period > 65536)
                    return sw + ": period must be in [2, 65536]";
                break;
              case PatternKind::Pick:
                if (s.entries < 2 || s.entries > 65536)
                    return sw + ": k must be in [2, 65536]";
                break;
              case PatternKind::Chase:
                ++pointerStreams;
                if (s.weight != 1)
                    return sw + ": chase streams must have "
                                "weight 1";
                if (s.esz != 8)
                    return sw + ": chase loads are 8 bytes";
                if (s.wset < 4 || s.wset > 65536)
                    return sw + ": wset must be in [4, 65536]";
                if (s.step < 24 || s.step > 4096)
                    return sw + ": step (node size) must be in "
                                "[24, 4096]";
                if (ph.iters != 0 && ph.iters % s.wset != 0)
                    return sw + ": iters must be 0 or a multiple "
                                "of wset (aligned laps keep the "
                                "ground truth exact)";
                break;
            }
            if (s.kind != PatternKind::Const &&
                s.kind != PatternKind::Chase) {
                if (s.fill == FillKind::Seq && s.fillStep == 0)
                    return sw + ": dv must be nonzero (distinct "
                                "slot values)";
                if (s.fill == FillKind::Rng && s.esz != 8)
                    return sw + ": fill=rng requires esz=8";
                if (s.esz == 4) {
                    const std::uint64_t slots =
                        s.kind == PatternKind::Stride ? s.wset
                        : s.kind == PatternKind::Ctx
                            ? s.period
                            : s.entries;
                    if (slots > 65536 || s.fillStep > 65535)
                        return sw + ": esz=4 needs <= 65536 slots "
                                    "and dv <= 65535 (distinct "
                                    "32-bit values)";
                }
            }
            footprint += streamFootprint(s);
        }
        if (pointerStreams > 8)
            return where + ": too many pointer streams (max 8)";
        if (footprint > autoSpacing)
            return where + ": total stream footprint exceeds 64 MiB";
        const Addr lo = phaseBaseAddr(ph, pi);
        if (lo < 0x1000000)
            return where + ": base must be at least 0x1000000 "
                           "(clear of the code region)";
        regions.push_back({lo, lo + footprint});
    }

    std::vector<Region> sorted = regions;
    std::sort(sorted.begin(), sorted.end(),
              [](const Region &a, const Region &b) {
                  return a.lo < b.lo;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i)
        if (sorted[i].lo < sorted[i - 1].hi)
            return "phase regions overlap (ground truth needs "
                   "disjoint static memory)";
    return "";
}

bool
looksLikeKernelSpec(const std::string &name)
{
    return name.find('[') != std::string::npos;
}

std::string
canonicalSyntheticName(const std::string &name)
{
    if (WorkloadRegistry::instance().contains(name))
        return name;
    std::string err;
    const KernelSpec spec = parseKernelSpec(name, &err);
    if (!err.empty())
        return name;
    return printKernelSpec(spec);
}

} // namespace trace
} // namespace lvpsim
