/**
 * @file
 * SpecKernel: emits a KernelSpec through the Asm machinery.
 *
 * Emission rules (shared with the ground-truth math in spec_truth.cc
 * and the byte-identity differential tests):
 *
 *  - stream regions pack back-to-back from the phase base, in spec
 *    order, each sized by streamFootprint();
 *  - r2 is the phase accumulator; the first pointer stream (stride /
 *    chase) owns r1, later pointer streams own r8, r9, ...; offset
 *    streams (const / ctx / pick) address off r1 when no pointer
 *    stream exists, else off a dedicated base register r7;
 *  - every phase entry re-emits the prologue immediates (pointer
 *    resets), exactly like the hand-written kernels' body() loops;
 *  - each iteration emits every stream block (weight reps, each a
 *    distinct static site) in the phase's mix order, then one loop
 *    branch targeting the first block's load site, conditioned on
 *    the first pointer register when one exists.
 *
 * Because Asm assigns PCs by site *first-use order* (names never
 * reach the MicroOps), a spec that replays a legacy kernel's call
 * sequence reproduces its trace byte for byte.
 */

#include "trace/kernel_spec.hh"

#include <numeric>

#include "common/logging.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId rAcc = 2;
constexpr RegId rDst = 3;
constexpr RegId rFlag = 4;
constexpr RegId rBase = 7;
constexpr RegId rPtr0 = 1;
constexpr RegId rPtrExtra = 8;

/** Zigzag permutation: 0, P-1, 1, P-2, ... (distinct, stride-free). */
unsigned
zigzag(unsigned i, unsigned period)
{
    return (i % 2 == 0) ? i / 2 : period - 1 - i / 2;
}

bool
isPointerKind(PatternKind k)
{
    return k == PatternKind::Stride || k == PatternKind::Chase;
}

} // anonymous namespace

struct SpecKernel::EmitState
{
    struct Block
    {
        std::size_t stream;
        unsigned rep;
    };

    struct Sites
    {
        std::string ld;   ///< (first) load
        std::string ld2;  ///< chase payload load
        std::string ld3;  ///< chase flag load
        std::string gl;   ///< glue op
        std::string inc;  ///< stride pointer bump
        std::string bf;   ///< chase flag branch
        std::string hot;  ///< chase hot-path nop
        std::string hot2; ///< chase hot-path add
    };

    struct Phase
    {
        Addr base = 0;
        std::vector<Addr> start;     ///< per-stream region start
        std::vector<RegId> ptrReg;   ///< invalidReg for offset streams
        RegId baseReg = invalidReg;  ///< offset streams' address base
        bool extraBaseImm = false;   ///< baseReg needs its own imm
        Addr r1Value = 0;            ///< what the r1 prologue imm loads
        RegId condReg = invalidReg;  ///< loop-branch condition source
        std::vector<Block> seqOrder;
        std::vector<Block> rrOrder;
        std::vector<std::vector<Sites>> sites; ///< [stream][rep]
        std::vector<std::vector<std::uint64_t>> ctxPos;
        std::string immPtr, immAcc, immBase, br;
        std::vector<std::string> immExtra; ///< per-stream extra ptr imm
    };

    std::vector<Phase> phases;
    std::size_t phase = 0;
    std::uint64_t iter = 0;
    bool inPhase = false;
    std::vector<Block> shuffled; ///< scratch for MixStrategy::Random
};

SpecKernel::~SpecKernel() = default;

SpecKernel::SpecKernel(KernelSpec spec_)
    : SynthKernel(printKernelSpec(spec_)), ks(std::move(spec_))
{
    const std::string why = validateKernelSpec(ks);
    if (!why.empty())
        lvp_fatal("invalid kernel spec: %s", why.c_str());
}

void
SpecKernel::init(Asm &a) const
{
    st = std::make_unique<EmitState>();
    st->phases.resize(ks.phases.size());

    for (std::size_t pi = 0; pi < ks.phases.size(); ++pi) {
        const PhaseSpec &ph = ks.phases[pi];
        EmitState::Phase &L = st->phases[pi];
        const std::string pfx = "p" + std::to_string(pi);

        L.base = phaseBaseAddr(ph, pi);
        Addr cursor = L.base;
        RegId nextPtr = rPtr0;
        bool havePointer = false, haveOffset = false;
        L.start.resize(ph.streams.size());
        L.ptrReg.assign(ph.streams.size(), invalidReg);
        L.sites.resize(ph.streams.size());
        L.ctxPos.resize(ph.streams.size());
        L.immExtra.assign(ph.streams.size(), std::string());

        for (std::size_t si = 0; si < ph.streams.size(); ++si) {
            const StreamSpec &s = ph.streams[si];
            L.start[si] = cursor;
            cursor += streamFootprint(s);
            if (isPointerKind(s.kind)) {
                L.ptrReg[si] = nextPtr;
                if (!havePointer) {
                    L.r1Value = L.start[si];
                    L.condReg = rPtr0;
                    nextPtr = rPtrExtra;
                } else {
                    L.immExtra[si] =
                        pfx + "s" + std::to_string(si) + "_ptr";
                    ++nextPtr;
                }
                havePointer = true;
            } else {
                haveOffset = true;
            }

            L.sites[si].resize(s.weight);
            L.ctxPos[si].assign(s.weight, 0);
            for (unsigned r = 0; r < s.weight; ++r) {
                const std::string b = pfx + "s" + std::to_string(si) +
                                      "r" + std::to_string(r);
                EmitState::Sites &n = L.sites[si][r];
                n.ld = b + "_ld";
                n.gl = b + "_gl";
                if (s.kind == PatternKind::Stride)
                    n.inc = b + "_inc";
                if (s.kind == PatternKind::Chase) {
                    n.ld2 = b + "_ldp";
                    n.ld3 = b + "_ldf";
                    n.bf = b + "_bf";
                    n.hot = b + "_hot";
                    n.hot2 = b + "_hot2";
                }
            }
        }

        if (haveOffset)
            L.baseReg = havePointer ? rBase : rPtr0;
        L.extraBaseImm = haveOffset && havePointer;
        if (!havePointer)
            L.r1Value = L.base;

        for (std::size_t si = 0; si < ph.streams.size(); ++si)
            for (unsigned r = 0; r < ph.streams[si].weight; ++r)
                L.seqOrder.push_back({si, r});
        unsigned maxW = 0;
        for (const StreamSpec &s : ph.streams)
            maxW = std::max(maxW, s.weight);
        for (unsigned r = 0; r < maxW; ++r)
            for (std::size_t si = 0; si < ph.streams.size(); ++si)
                if (r < ph.streams[si].weight)
                    L.rrOrder.push_back({si, r});

        L.immPtr = pfx + "_ptr";
        L.immAcc = pfx + "_acc";
        L.immBase = pfx + "_base";
        L.br = pfx + "_br";
    }

    // Fill the data regions (silently, pre-resident data). The rng
    // draw order — fills in phase/stream order, then Fisher-Yates
    // per shuffled chase — is part of the spec's definition and is
    // replicated by computeTruthProfile().
    for (std::size_t pi = 0; pi < ks.phases.size(); ++pi) {
        const PhaseSpec &ph = ks.phases[pi];
        EmitState::Phase &L = st->phases[pi];
        for (std::size_t si = 0; si < ph.streams.size(); ++si) {
            const StreamSpec &s = ph.streams[si];
            const Addr start = L.start[si];
            switch (s.kind) {
              case PatternKind::Const:
                a.mem().write(start, s.value, s.esz);
                break;
              case PatternKind::Stride:
              case PatternKind::Ctx:
              case PatternKind::Pick: {
                const std::uint64_t slots =
                    s.kind == PatternKind::Stride ? s.wset
                    : s.kind == PatternKind::Ctx  ? s.period
                                                  : s.entries;
                const std::uint64_t gap =
                    s.kind == PatternKind::Stride
                        ? std::uint64_t(s.step)
                        : s.esz;
                for (std::uint64_t j = 0; j < slots; ++j) {
                    const Value v = s.fill == FillKind::Seq
                                        ? s.fillBase + j * s.fillStep
                                        : a.rng().next();
                    a.mem().write(start + j * gap, v, s.esz);
                }
                break;
              }
              case PatternKind::Chase: {
                const std::size_t w = s.wset;
                std::vector<std::size_t> order(w);
                std::iota(order.begin(), order.end(), 0);
                if (s.order == ChaseOrder::Shuffle) {
                    for (std::size_t i = w - 1; i > 0; --i)
                        std::swap(order[i],
                                  order[a.rng().below(i + 1)]);
                } else {
                    for (std::size_t i = 0; i < w; ++i)
                        order[i] = zigzag(unsigned(i), unsigned(w));
                }
                for (std::size_t i = 0; i < w; ++i) {
                    const Addr node =
                        start + order[i] * std::uint64_t(s.step);
                    const Addr next =
                        start +
                        order[(i + 1) % w] * std::uint64_t(s.step);
                    a.mem().write(node + 0, next, 8);
                    a.mem().write(node + 8, 0x900d + order[i] * 13,
                                  8);
                    a.mem().write(node + 16,
                                  order[i] % 3 == 0 ? 1 : 0, 8);
                }
                break;
              }
            }
        }
    }
}

void
SpecKernel::emitPrologue(Asm &a, std::size_t phase) const
{
    const EmitState::Phase &L = st->phases[phase];
    a.imm(L.immPtr, rPtr0, L.r1Value);
    a.imm(L.immAcc, rAcc, 0);
    if (L.extraBaseImm)
        a.imm(L.immBase, rBase, L.base);
    for (std::size_t si = 0; si < L.ptrReg.size(); ++si)
        if (!L.immExtra[si].empty())
            a.imm(L.immExtra[si], L.ptrReg[si], L.start[si]);
}

void
SpecKernel::emitBlock(Asm &a, std::size_t phase, std::size_t stream,
                      unsigned rep) const
{
    const PhaseSpec &ph = ks.phases[phase];
    const StreamSpec &s = ph.streams[stream];
    EmitState::Phase &L = st->phases[phase];
    const EmitState::Sites &n = L.sites[stream][rep];

    auto glue = [&](const std::string &site) {
        switch (s.glue) {
          case GlueOp::Add:
            a.add(site, rAcc, rAcc, rDst);
            break;
          case GlueOp::Xor:
            a.xorOp(site, rAcc, rAcc, rDst);
            break;
          case GlueOp::Fadd:
            a.fadd(site, rAcc, rAcc, rDst);
            break;
          case GlueOp::None:
            break;
        }
    };

    switch (s.kind) {
      case PatternKind::Const: {
        const std::int64_t off =
            std::int64_t(L.start[stream] - L.base);
        a.load(n.ld, rDst, L.baseReg, off, s.esz);
        glue(n.gl);
        break;
      }
      case PatternKind::Ctx: {
        std::uint64_t &pos = L.ctxPos[stream][rep];
        const unsigned slot =
            zigzag(unsigned(pos), s.period);
        pos = (pos + 1) % s.period;
        const std::int64_t off =
            std::int64_t(L.start[stream] - L.base) +
            std::int64_t(slot) * s.esz;
        a.load(n.ld, rDst, L.baseReg, off, s.esz);
        glue(n.gl);
        break;
      }
      case PatternKind::Pick: {
        const std::uint64_t slot = a.rng().below(s.entries);
        const std::int64_t off =
            std::int64_t(L.start[stream] - L.base) +
            std::int64_t(slot) * s.esz;
        a.load(n.ld, rDst, L.baseReg, off, s.esz);
        glue(n.gl);
        break;
      }
      case PatternKind::Stride: {
        const RegId ptr = L.ptrReg[stream];
        a.load(n.ld, rDst, ptr, 0, s.esz);
        glue(n.gl);
        a.addi(n.inc, ptr, ptr, s.step);
        break;
      }
      case PatternKind::Chase: {
        const RegId ptr = L.ptrReg[stream];
        a.load(n.ld, ptr, ptr, 0, 8);
        a.load(n.ld2, rDst, ptr, 8, 8);
        const Value flag = a.load(n.ld3, rFlag, ptr, 16, 8);
        glue(n.gl);
        a.branch(n.bf, flag != 0, n.hot, rFlag);
        if (flag != 0) {
            a.nop(n.hot);
            a.addi(n.hot2, rAcc, rAcc, 7);
        }
        break;
      }
    }
}

void
SpecKernel::emitIteration(Asm &a, std::size_t phase) const
{
    const PhaseSpec &ph = ks.phases[phase];
    EmitState::Phase &L = st->phases[phase];

    const std::vector<EmitState::Block> *order = &L.seqOrder;
    if (ph.mix == MixStrategy::RoundRobin) {
        order = &L.rrOrder;
    } else if (ph.mix == MixStrategy::Random) {
        st->shuffled = L.seqOrder;
        for (std::size_t i = st->shuffled.size() - 1; i > 0; --i)
            std::swap(st->shuffled[i],
                      st->shuffled[a.rng().below(i + 1)]);
        order = &st->shuffled;
    }
    for (const EmitState::Block &b : *order)
        emitBlock(a, phase, b.stream, b.rep);

    const bool taken =
        ph.iters == 0 || st->iter + 1 < ph.iters;
    a.branch(L.br, taken, L.sites[0][0].ld, L.condReg);
}

void
SpecKernel::body(Asm &a) const
{
    lvp_assert(st != nullptr, "SpecKernel::body before init");
    while (!a.done()) {
        const PhaseSpec &ph = ks.phases[st->phase];
        if (!st->inPhase) {
            emitPrologue(a, st->phase);
            st->inPhase = true;
            st->iter = 0;
        }
        emitIteration(a, st->phase);
        ++st->iter;
        if (ph.iters != 0 && st->iter >= ph.iters) {
            st->inPhase = false;
            st->phase = (st->phase + 1) % ks.phases.size();
        }
    }
}

} // namespace trace
} // namespace lvpsim
