/**
 * @file
 * Sparse byte-addressable memory for functional kernel execution.
 *
 * Loads in the synthetic traces return genuinely stored values: kernels
 * write through this image and read back from it, so value locality in
 * the traces arises from program behaviour, not from scripted answers.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace trace
{

class MemoryImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr std::size_t pageSize = std::size_t(1) << pageShift;

    /** Read @p size bytes (little endian); untouched bytes read as 0. */
    Value
    read(Addr addr, unsigned size) const
    {
        lvp_assert(size >= 1 && size <= 8, "bad access size %u", size);
        Value v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<Value>(readByte(addr + i)) << (8 * i);
        return v;
    }

    /** Write the low @p size bytes of @p v (little endian). */
    void
    write(Addr addr, Value v, unsigned size)
    {
        lvp_assert(size >= 1 && size <= 8, "bad access size %u", size);
        for (unsigned i = 0; i < size; ++i)
            writeByte(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Zero [addr, addr+len): the memset in the paper's Listing 1. */
    void
    zeroRange(Addr addr, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            writeByte(addr + i, 0);
    }

    std::size_t numPages() const { return pages.size(); }

  private:
    std::uint8_t
    readByte(Addr addr) const
    {
        auto it = pages.find(addr >> pageShift);
        if (it == pages.end())
            return 0;
        return it->second[addr & (pageSize - 1)];
    }

    void
    writeByte(Addr addr, std::uint8_t b)
    {
        auto &page = pages[addr >> pageShift];
        if (!page)
            page = std::make_unique<std::uint8_t[]>(pageSize);
        page[addr & (pageSize - 1)] = b;
    }

    // make_unique<T[]>(n) value-initializes, so fresh pages read as 0.
    // lvplint: allow(determinism) -- page store probed by address,
    // never iterated (FlatMap cannot hold move-only values)
    std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>> pages;
};

} // namespace trace
} // namespace lvpsim

