/**
 * @file
 * Value-locality kernels: dominated by PC-correlated load values
 * (the paper's Pattern-1, LVP territory), plus stride-*value* and
 * call-stack patterns.
 */

#include <memory>

#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
                r8 = 8, r9 = 9;

/**
 * Repeated loads of a small set of constants through distinct static
 * loads (PC-relative constant pools, crafty-like).
 */
class ConstTableKernel : public SynthKernel
{
  public:
    ConstTableKernel() : SynthKernel("const_table") {}

  protected:
    static constexpr Addr base = 0x30000000;

    void
    init(Asm &a) const override
    {
        for (unsigned i = 0; i < 8; ++i)
            a.mem().write(base + i * 8, 0x1000 + i * 0x111, 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("pb", r1, base);
        a.imm("acc", r2, 0);
        while (!a.done()) {
            // Eight distinct static loads, each always returning the
            // same value: textbook Pattern-1.
            a.load("ld_c0", r3, r1, 0, 8);
            a.add("a0", r2, r2, r3);
            a.load("ld_c1", r3, r1, 8, 8);
            a.xorOp("a1", r2, r2, r3);
            a.load("ld_c2", r3, r1, 16, 8);
            a.add("a2", r2, r2, r3);
            a.load("ld_c3", r3, r1, 24, 8);
            a.xorOp("a3", r2, r2, r3);
            a.load("ld_c4", r3, r1, 32, 8);
            a.add("a4", r2, r2, r3);
            a.load("ld_c5", r3, r1, 40, 8);
            a.xorOp("a5", r2, r2, r3);
            a.load("ld_c6", r3, r1, 48, 8);
            a.add("a6", r2, r2, r3);
            a.load("ld_c7", r3, r1, 56, 8);
            a.add("a7", r2, r2, r3);
            a.branch("br", true, "ld_c0");
        }
    }
};

/**
 * Hot loads of rarely-changing globals: Pattern-1 with periodic value
 * changes that force confidence rebuilds.
 */
class GlobalFlagsKernel : public SynthKernel
{
  public:
    GlobalFlagsKernel() : SynthKernel("global_flags") {}

  protected:
    static constexpr Addr base = 0x31000000;

    void
    init(Asm &a) const override
    {
        for (unsigned i = 0; i < 4; ++i)
            a.mem().write(base + i * 8, i + 1, 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("pb", r1, base);
        a.imm("acc", r2, 0);
        std::uint64_t iter = 0;
        while (!a.done()) {
            Value mode = a.load("ld_mode", r3, r1, 0, 8);
            Value limit = a.load("ld_limit", r4, r1, 8, 8);
            Value scale = a.load("ld_scale", r5, r1, 16, 8);
            a.add("acc1", r2, r2, r3);
            a.add("acc2", r2, r2, r4);
            a.add("acc3", r2, r2, r5);
            (void)mode; (void)limit; (void)scale;
            ++iter;
            if (iter % 1500 == 0) {
                // Rare reconfiguration: the globals change value.
                a.imm("newv", r6, a.rng().below(100));
                a.store("st_mode", r6, r1, 0, 8);
                a.addi("newv2", r6, r6, 17);
                a.store("st_limit", r6, r1, 8, 8);
            }
            a.branch("br", true, "ld_mode");
        }
    }
};

/**
 * Ring-buffer producer/consumer: the consumed payloads form a stride-1
 * *value* sequence (which LVP cannot predict but EVES's stride value
 * predictor can), while head/tail index loads are near-constant.
 */
class ProducerConsumerKernel : public SynthKernel
{
  public:
    ProducerConsumerKernel() : SynthKernel("producer_consumer") {}

  protected:
    static constexpr Addr ringBase = 0x32000000;
    static constexpr Addr ctrlBase = 0x32100000; ///< head/tail slots
    static constexpr std::size_t slots = 256;

    void
    body(Asm &a) const override
    {
        a.imm("rb", r1, ringBase);
        a.imm("cb", r2, ctrlBase);
        std::uint64_t seq = 0;
        while (!a.done()) {
            // Producer: 16 sequenced messages.
            for (unsigned i = 0; i < 16; ++i) {
                Value head = a.load("ld_head", r3, r2, 0, 8);
                a.shl("hoff", r4, r3, 3);
                a.andOp("hmask", r4, r4, r4); // keep dependency chain
                a.imm("msg", r5, seq++);
                a.store("st_msg", r5, r1, 0, 8, r4);
                a.addi("hinc", r3, r3, 1);
                if (head + 1 >= slots)
                    a.imm("hwrap", r3, 0);
                a.store("st_head", r3, r2, 0, 8);
                a.branch("brp", i + 1 < 16, "ld_head", r3);
            }
            // Consumer: drain the 16 messages.
            for (unsigned i = 0; i < 16; ++i) {
                Value tail = a.load("ld_tail", r6, r2, 8, 8);
                a.shl("toff", r7, r6, 3);
                a.load("ld_msg", r8, r1, 0, 8, r7);
                a.addi("tinc", r6, r6, 1);
                if (tail + 1 >= slots)
                    a.imm("twrap", r6, 0);
                a.store("st_tail", r6, r2, 8, 8);
                a.branch("brc", i + 1 < 16, "ld_tail", r6);
            }
        }
    }
};

/**
 * Call-heavy code with stack spills/reloads (eon-like): reload values
 * match the spilled ones, predictable per call path.
 */
class StackSpillKernel : public SynthKernel
{
  public:
    StackSpillKernel() : SynthKernel("stack_spill") {}

  protected:
    static constexpr Addr stackBase = 0x7ff00000;

    void
    leaf(Asm &a, unsigned depth) const
    {
        const std::int64_t frame =
            -static_cast<std::int64_t>(depth) * 64;
        // Prologue: spill three registers.
        a.store("sp_a", r2, r1, frame + 0, 8);
        a.store("sp_b", r3, r1, frame + 8, 8);
        a.store("sp_c", r4, r1, frame + 16, 8);
        a.addi("work1", r2, r2, 3);
        a.mul("work2", r3, r3, r2);
        if (depth < 4) {
            a.call("call_dn", "fn_entry");
            leaf(a, depth + 1);
        }
        // Epilogue: reload. Values equal what this path spilled.
        a.load("rl_a", r2, r1, frame + 0, 8);
        a.load("rl_b", r3, r1, frame + 8, 8);
        a.load("rl_c", r4, r1, frame + 16, 8);
        a.ret("ret_up");
    }

    void
    body(Asm &a) const override
    {
        a.imm("sp", r1, stackBase);
        a.imm("va", r2, 0x1111);
        a.imm("vb", r3, 0x2222);
        a.imm("vc", r4, 0x3333);
        while (!a.done()) {
            a.nop("fn_entry");
            a.call("call_top", "fn_entry");
            leaf(a, 1);
            a.addi("bump", r2, r2, 1);
            a.branch("br", true, "call_top");
        }
    }
};

} // anonymous namespace

void
registerValueKernels(WorkloadRegistry &reg)
{
    reg.add("const_table", "eight constant-pool loads per loop (P1)",
            [] { return std::make_unique<ConstTableKernel>(); });
    reg.add("global_flags", "hot globals, rare reconfiguration (P1)",
            [] { return std::make_unique<GlobalFlagsKernel>(); });
    reg.add("producer_consumer",
            "ring buffer with sequenced payloads (P1+stride values)",
            [] { return std::make_unique<ProducerConsumerKernel>(); });
    reg.add("stack_spill", "call-heavy spill/reload (P1/P3, RAS)",
            [] { return std::make_unique<StackSpillKernel>(); });
}

} // namespace trace
} // namespace lvpsim
