/**
 * @file
 * Internal: per-translation-unit kernel registration hooks, called from
 * WorkloadRegistry::instance(). Explicit calls (rather than static
 * initializers) keep registration reliable inside a static library.
 */

#pragma once

namespace lvpsim
{
namespace trace
{

class WorkloadRegistry;

void registerListing1Kernels(WorkloadRegistry &reg);
void registerRegularKernels(WorkloadRegistry &reg);
void registerValueKernels(WorkloadRegistry &reg);
void registerIrregularKernels(WorkloadRegistry &reg);
void registerContextKernels(WorkloadRegistry &reg);
void registerBigCodeKernels(WorkloadRegistry &reg);
void registerStreamKernels(WorkloadRegistry &reg);

} // namespace trace
} // namespace lvpsim

