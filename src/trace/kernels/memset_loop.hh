/**
 * @file
 * The paper's Listing 1 kernel, exported with tunable loop bounds so the
 * Table V experiment can reproduce the worked example exactly:
 *
 *   for (o = 0; o < M; o++) {
 *       memset(A, 0, N * sizeof(*A));
 *       for (i = 0; i < N; i++)
 *           sum += A[i];           // the studied load (site "ld_a")
 *   }
 */

#pragma once

#include <cstddef>

#include "trace/synth_kernel.hh"

namespace lvpsim
{
namespace trace
{

class MemsetLoopKernel : public SynthKernel
{
  public:
    /**
     * @param n inner-loop trip count (paper example: 16)
     * @param m outer-loop trip count per body() pass (0 = until done)
     */
    explicit MemsetLoopKernel(std::size_t n = 64, std::size_t m = 0)
        : SynthKernel("memset_loop"), innerN(n), outerM(m)
    {}

    /** PC of the studied inner-loop load, for per-site analysis. */
    static Addr studiedLoadPc(Asm &a) { return a.pcOf("ld_a"); }

  protected:
    void body(Asm &a) const override;

  private:
    std::size_t innerN;
    std::size_t outerM;
};

} // namespace trace
} // namespace lvpsim

