/**
 * @file
 * Regular / numeric kernels: dominated by strided address patterns
 * (the paper's Pattern-2, SAP territory), with context-correlated
 * accents in short inner loops.
 */

#include <memory>

#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
                r8 = 8, r9 = 9, r10 = 10, r11 = 11;

/** Streaming 8-byte reduction over a 256KB array (libquantum-like). */
class StreamSumKernel : public SynthKernel
{
  public:
    StreamSumKernel() : SynthKernel("stream_sum") {}

  protected:
    static constexpr Addr base = 0x20000000;
    static constexpr std::size_t numElems = 32 * 1024;

    void
    init(Asm &a) const override
    {
        for (std::size_t i = 0; i < numElems; ++i)
            a.mem().write(base + i * 8, a.rng().next(), 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("ptr", r1, base);
        a.imm("sum", r2, 0);
        for (std::size_t i = 0; i < numElems && !a.done(); ++i) {
            a.load("ld", r3, r1, 0, 8);
            a.fadd("acc", r2, r2, r3);
            a.addi("inc", r1, r1, 8);
            a.branch("br", i + 1 < numElems, "ld", r1);
        }
    }
};

/** Struct-field walk with a 64-byte stride (AoS traversal). */
class StrideGatherKernel : public SynthKernel
{
  public:
    StrideGatherKernel() : SynthKernel("stride_gather") {}

  protected:
    static constexpr Addr base = 0x21000000;
    static constexpr std::size_t numRecs = 4096;
    static constexpr unsigned stride = 64;

    void
    init(Asm &a) const override
    {
        for (std::size_t i = 0; i < numRecs; ++i) {
            a.mem().write(base + i * stride + 16,
                          a.rng().below(1000), 4);
            a.mem().write(base + i * stride + 24,
                          a.rng().below(7) == 0 ? 1 : 0, 4);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("ptr", r1, base);
        a.imm("sum", r2, 0);
        for (std::size_t i = 0; i < numRecs && !a.done(); ++i) {
            Value v = a.load("ld_val", r3, r1, 16, 4);
            Value flag = a.load("ld_flag", r4, r1, 24, 4);
            a.add("acc", r2, r2, r3);
            // Data-dependent branch so record identity enters history;
            // taken = skip the bonus add.
            a.branch("br_flag", flag == 0, "inc", r4);
            if (flag != 0)
                a.addi("bonus", r2, r2, static_cast<std::int64_t>(v));
            a.addi("inc", r1, r1, stride);
            a.branch("br", i + 1 < numRecs, "ld_val", r1);
        }
    }
};

/** 32x32 double matrix multiply (linpack-like). */
class MatrixTileKernel : public SynthKernel
{
  public:
    MatrixTileKernel() : SynthKernel("matrix_tile") {}

  protected:
    static constexpr std::size_t n = 32;
    static constexpr Addr aBase = 0x22000000;
    static constexpr Addr bBase = 0x22100000;
    static constexpr Addr cBase = 0x22200000;

    void
    init(Asm &a) const override
    {
        for (std::size_t i = 0; i < n * n; ++i) {
            a.mem().write(aBase + i * 8, a.rng().below(1 << 20), 8);
            a.mem().write(bBase + i * 8, a.rng().below(1 << 20), 8);
        }
    }

    void
    body(Asm &a) const override
    {
        for (std::size_t i = 0; i < n && !a.done(); ++i) {
            for (std::size_t j = 0; j < n && !a.done(); ++j) {
                a.imm("acc0", r5, 0);
                a.imm("pa", r1, aBase + i * n * 8);
                a.imm("pb", r2, bBase + j * 8);
                for (std::size_t k = 0; k < n; ++k) {
                    a.load("ld_a", r3, r1, 0, 8);
                    a.load("ld_b", r4, r2, 0, 8);
                    a.fmul("mul", r6, r3, r4);
                    a.fadd("acc", r5, r5, r6);
                    a.addi("ia", r1, r1, 8);
                    a.addi("ib", r2, r2, 8 * n);
                    a.branch("brk", k + 1 < n, "ld_a", r1);
                }
                a.imm("pc", r7, cBase + (i * n + j) * 8);
                a.store("st_c", r5, r7, 0, 8);
                a.branch("brj", j + 1 < n, "acc0", r7);
            }
            a.branch("bri", i + 1 < n, "acc0");
        }
    }
};

/** 5-point stencil over a 128x128 grid (equake-like). */
class Stencil2dKernel : public SynthKernel
{
  public:
    Stencil2dKernel() : SynthKernel("stencil2d") {}

  protected:
    static constexpr std::size_t dim = 128;
    static constexpr Addr inBase = 0x23000000;
    static constexpr Addr outBase = 0x23400000;

    void
    init(Asm &a) const override
    {
        for (std::size_t i = 0; i < dim * dim; ++i)
            a.mem().write(inBase + i * 4, a.rng().below(1 << 16), 4);
    }

    void
    body(Asm &a) const override
    {
        for (std::size_t y = 1; y + 1 < dim && !a.done(); ++y) {
            a.imm("row", r1, inBase + y * dim * 4 + 4);
            a.imm("orow", r2, outBase + y * dim * 4 + 4);
            for (std::size_t x = 1; x + 1 < dim; ++x) {
                a.load("ld_c", r3, r1, 0, 4);
                a.load("ld_w", r4, r1, -4, 4);
                a.load("ld_e", r5, r1, 4, 4);
                a.load("ld_n", r6, r1,
                       -static_cast<std::int64_t>(dim * 4), 4);
                a.load("ld_s", r7, r1,
                       static_cast<std::int64_t>(dim * 4), 4);
                a.add("s1", r8, r3, r4);
                a.add("s2", r8, r8, r5);
                a.add("s3", r8, r8, r6);
                a.add("s4", r8, r8, r7);
                a.shr("avg", r8, r8, 2);
                a.store("st", r8, r2, 0, 4);
                a.addi("ix", r1, r1, 4);
                a.addi("ox", r2, r2, 4);
                a.branch("brx", x + 2 < dim, "ld_c", r1);
            }
            a.branch("bry", y + 2 < dim, "row");
        }
    }
};

/** CSR sparse matrix-vector multiply. */
class SparseSpmvKernel : public SynthKernel
{
  public:
    SparseSpmvKernel() : SynthKernel("sparse_spmv") {}

  protected:
    static constexpr std::size_t rows = 512;
    static constexpr std::size_t xDim = 2048;
    static constexpr Addr rpBase = 0x24000000;  ///< rowPtr, 4B each
    static constexpr Addr ciBase = 0x24100000;  ///< colIdx, 4B each
    static constexpr Addr vaBase = 0x24200000;  ///< values, 8B each
    static constexpr Addr xBase = 0x24400000;   ///< x vector, 8B each
    static constexpr Addr yBase = 0x24500000;   ///< y vector, 8B each

    void
    init(Asm &a) const override
    {
        std::size_t nnz = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            a.mem().write(rpBase + r * 4, nnz, 4);
            const std::size_t row_nnz = 8 + a.rng().below(17);
            for (std::size_t k = 0; k < row_nnz; ++k) {
                a.mem().write(ciBase + nnz * 4, a.rng().below(xDim), 4);
                a.mem().write(vaBase + nnz * 8,
                              a.rng().below(1 << 20), 8);
                ++nnz;
            }
        }
        a.mem().write(rpBase + rows * 4, nnz, 4);
        for (std::size_t i = 0; i < xDim; ++i)
            a.mem().write(xBase + i * 8, a.rng().below(1 << 20), 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("rp", r1, rpBase);
        for (std::size_t r = 0; r < rows && !a.done(); ++r) {
            Value k0 = a.load("ld_rp0", r2, r1, 0, 4);
            Value k1 = a.load("ld_rp1", r3, r1, 4, 4);
            a.imm("acc0", r4, 0);
            for (Value k = k0; k < k1; ++k) {
                a.imm("pk", r5, ciBase + k * 4);
                Value col = a.load("ld_ci", r6, r5, 0, 4);
                a.imm("pv", r7, vaBase + k * 8);
                a.load("ld_va", r8, r7, 0, 8);
                a.shl("coff", r9, r6, 3);
                a.imm("xb", r10, xBase);
                a.load("ld_x", r11, r10, 0, 8, r9);
                a.fmul("mul", r8, r8, r11);
                a.fadd("acc", r4, r4, r8);
                a.branch("brk", k + 1 < k1, "pk", r5);
                (void)col;
            }
            a.imm("py", r5, yBase + r * 8);
            a.store("st_y", r4, r5, 0, 8);
            a.addi("irp", r1, r1, 4);
            a.branch("brr", r + 1 < rows, "ld_rp0", r1);
        }
    }
};

/**
 * Transposed-form 8-tap FIR (EEMBC-like DSP): the outer loop walks
 * taps, the inner loop streams samples, so every load has long stride
 * runs (SAP territory) and the coefficient load is a loop constant
 * (LVP territory).
 */
class LutDspKernel : public SynthKernel
{
  public:
    LutDspKernel() : SynthKernel("lut_dsp") {}

  protected:
    static constexpr std::size_t taps = 8;
    static constexpr std::size_t samples = 4096;
    static constexpr Addr coefBase = 0x25000000;
    static constexpr Addr sampBase = 0x25001000;
    static constexpr Addr outBase = 0x25100000;

    void
    init(Asm &a) const override
    {
        for (std::size_t k = 0; k < taps; ++k)
            a.mem().write(coefBase + k * 4, 3 + k * 7, 4);
        for (std::size_t i = 0; i < samples; ++i)
            a.mem().write(sampBase + i * 4, a.rng().below(1 << 12), 4);
    }

    void
    body(Asm &a) const override
    {
        for (std::size_t k = 0; k < taps && !a.done(); ++k) {
            a.imm("pc", r1, coefBase + k * 4);
            a.imm("ps", r2, sampBase + (taps - k) * 4);
            a.imm("po", r3, outBase + taps * 4);
            for (std::size_t i = taps; i < samples && !a.done();
                 ++i) {
                a.load("ld_coef", r5, r1, 0, 4);
                a.load("ld_samp", r6, r2, 0, 4);
                a.mul("mac", r7, r5, r6);
                a.load("ld_acc", r8, r3, 0, 4);
                a.add("acc", r8, r8, r7);
                a.store("st_acc", r8, r3, 0, 4);
                a.addi("ips", r2, r2, 4);
                a.addi("ipo", r3, r3, 4);
                a.branch("bri", i + 1 < samples, "ld_coef", r2);
            }
            a.branch("brk", k + 1 < taps, "pc", r1);
        }
    }
};

} // anonymous namespace

void
registerRegularKernels(WorkloadRegistry &reg)
{
    reg.add("stream_sum", "streaming 8B reduction, 256KB array (P2)",
            [] { return std::make_unique<StreamSumKernel>(); });
    reg.add("stride_gather", "64B-stride struct field walk (P2)",
            [] { return std::make_unique<StrideGatherKernel>(); });
    reg.add("matrix_tile", "32x32 double matmul (P2)",
            [] { return std::make_unique<MatrixTileKernel>(); });
    reg.add("stencil2d", "5-point stencil on 128x128 grid (P2)",
            [] { return std::make_unique<Stencil2dKernel>(); });
    reg.add("sparse_spmv", "CSR SpMV with x-vector gather (P2+U)",
            [] { return std::make_unique<SparseSpmvKernel>(); });
    reg.add("lut_dsp", "8-tap FIR with coefficient table (P2+P3)",
            [] { return std::make_unique<LutDspKernel>(); });
}

} // namespace trace
} // namespace lvpsim
