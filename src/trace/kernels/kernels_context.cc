/**
 * @file
 * Context-correlated kernels: loads whose value/address is predictable
 * only when the path history is taken into account (the paper's
 * Pattern-3, CVP/CAP territory), plus the phase-alternating kernel that
 * exercises accuracy monitoring and table fusion.
 */

#include <memory>
#include <string>
#include <vector>

#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
                r8 = 8, r9 = 9;

/**
 * Bytecode interpreter dispatch loop (perl/JS-like). The opcode load
 * strides through a short program that repeats, the dispatch is an
 * indirect branch (ITTAGE), and each handler's operand load is
 * context-predictable: the handler sequence is encoded in the path
 * history.
 */
class InterpDispatchKernel : public SynthKernel
{
  public:
    InterpDispatchKernel() : SynthKernel("interp_dispatch") {}

  protected:
    static constexpr Addr progBase = 0x60000000;
    static constexpr Addr constPool = 0x60010000;
    static constexpr Addr stackBase = 0x60020000;
    static constexpr std::size_t progLen = 96;
    static constexpr unsigned numOps = 8;

    void
    init(Asm &a) const override
    {
        // A fixed random "program" that the interpreter loops over.
        for (std::size_t i = 0; i < progLen; ++i)
            a.mem().write(progBase + i, a.rng().below(numOps), 1);
        for (unsigned i = 0; i < numOps; ++i)
            a.mem().write(constPool + i * 8, 0xc0de + i * 0x101, 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("vpc0", r1, progBase);
        a.imm("sp", r2, stackBase);
        a.imm("acc", r3, 0);
        std::size_t vpc = 0;
        std::uint64_t sp = 0;
        while (!a.done()) {
            // Fetch the opcode (strided byte load, wraps at progLen).
            Value opc = a.load("ld_opc", r4, r1, 0, 1);
            // Dispatch through a jump table (indirect branch).
            const std::string handler = "h" + std::to_string(opc);
            a.indirect("dispatch", a.pcOf(handler), r4);
            a.nop(handler);
            switch (opc & 3) {
              case 0:
                // push constant: constant-pool load (P1 per handler).
                a.imm("cpoff", r5, opc * 8);
                a.imm("cpb", r6, constPool);
                a.load("ld_const", r7, r6, 0, 8, r5);
                a.store("st_push", r7, r2, std::int64_t(sp) * 8, 8);
                sp = (sp + 1) % 16;
                break;
              case 1:
                // binary op: two stack reloads (P3: program position
                // is in the history via the dispatch targets).
                if (sp >= 2) {
                    a.load("ld_s0", r7, r2,
                           std::int64_t(sp - 1) * 8, 8);
                    a.load("ld_s1", r8, r2,
                           std::int64_t(sp - 2) * 8, 8);
                    a.add("vadd", r9, r7, r8);
                    a.store("st_res", r9, r2,
                            std::int64_t(sp - 2) * 8, 8);
                    sp -= 1;
                } else {
                    a.addi("uflow", r3, r3, 1);
                }
                break;
              case 2:
                // accumulate top of stack.
                if (sp >= 1) {
                    a.load("ld_top", r7, r2,
                           std::int64_t(sp - 1) * 8, 8);
                    a.add("acc2", r3, r3, r7);
                } else {
                    a.addi("uflow2", r3, r3, 1);
                }
                break;
              default:
                // bump a counter global.
                a.imm("gp", r5, constPool + 0x800);
                a.load("ld_ctr", r6, r5, 0, 8);
                a.addi("cinc", r6, r6, 1);
                a.store("st_ctr", r6, r5, 0, 8);
                break;
            }
            vpc = (vpc + 1) % progLen;
            if (vpc == 0) {
                a.imm("vwrap", r1, progBase);
                a.branch("br_wrap", true, "ld_opc", r1);
            } else {
                a.addi("vinc", r1, r1, 1);
                a.branch("br_next", true, "ld_opc", r1);
            }
        }
    }
};

/**
 * Polymorphic object property access (JS/V8-like): objects carry a
 * shape pointer; the shape determines a field offset. Object type
 * correlates with the preceding type-check branch, so the offset and
 * field loads are context-predictable.
 */
class ObjectGraphKernel : public SynthKernel
{
  public:
    ObjectGraphKernel() : SynthKernel("object_graph") {}

  protected:
    static constexpr Addr shapeBase = 0x61000000;
    static constexpr Addr objBase = 0x61010000;
    static constexpr std::size_t numShapes = 4;
    static constexpr std::size_t numObjs = 128;
    static constexpr unsigned objSize = 64;

    void
    init(Asm &a) const override
    {
        for (std::size_t s = 0; s < numShapes; ++s) {
            a.mem().write(shapeBase + s * 16, 8 + s * 8, 8); // offset
            a.mem().write(shapeBase + s * 16 + 8, s, 8);     // kind
        }
        for (std::size_t o = 0; o < numObjs; ++o) {
            // Object sequence has structure: shapes repeat in runs.
            const std::size_t s = (o / 16) % numShapes;
            a.mem().write(objBase + o * objSize,
                          shapeBase + s * 16, 8);
            for (unsigned f = 1; f < 6; ++f)
                a.mem().write(objBase + o * objSize + f * 8,
                              0xf1e1d + o * 0x10 + f, 8);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("acc", r5, 0);
        while (!a.done()) {
            // Random object visits (heap objects are not laid out in
            // walk order): the object pointer itself is unpredictable;
            // the shape-dependent loads are the context-predictable
            // part.
            const std::size_t o = a.rng().below(numObjs);
            a.imm("po", r1, objBase + o * objSize);
            Value shape = a.load("ld_shape", r2, r1, 0, 8);
            // Inline-cache style shape checks: a chain of compare
            // branches puts the shape into the path history.
            const std::size_t kind = (shape - shapeBase) / 16;
            a.branch("ic0", kind == 0, "slow0", r2);
            if (kind != 0)
                a.branch("ic1", kind == 1, "slow1", r2);
            if (kind > 1)
                a.branch("ic2", kind == 2, "slow2", r2);
            a.nop(kind == 0 ? "slow0" : kind == 1 ? "slow1" : "slow2");
            // Per-shape descriptor probe from a shape-specific site:
            // puts the shape into the load path history, so CAP can
            // separate the contexts like CVP does.
            const std::string ic_ld = "ic_ld" + std::to_string(kind);
            a.imm("psk", r7, shape);
            a.load(ic_ld, r8, r7, 8, 8);
            // Offset load from the shape (P3), then the field itself.
            a.imm("ps", r3, shape);
            Value off = a.load("ld_off", r4, r3, 0, 8);
            a.load("ld_field", r6, r1, 0, 8, r4);
            a.add("sum", r5, r5, r6);
            (void)off;
            a.branch("br", true, "po", r1);
        }
    }
};

/**
 * A[B[i]] gather where B holds a short repeating index pattern and the
 * B value steers a branch: the A-load address correlates with history.
 */
class IndirectIndexKernel : public SynthKernel
{
  public:
    IndirectIndexKernel() : SynthKernel("indirect_index") {}

  protected:
    static constexpr Addr aBase = 0x62000000;
    static constexpr Addr bBase = 0x62100000;
    static constexpr std::size_t bLen = 8192;
    static constexpr std::size_t aLen = 64;
    static constexpr std::size_t period = 12;

    void
    init(Asm &a) const override
    {
        // B repeats a fixed 12-entry index pattern.
        std::vector<std::uint32_t> pat(period);
        for (auto &p : pat)
            p = a.rng().below(aLen);
        for (std::size_t i = 0; i < bLen; ++i)
            a.mem().write(bBase + i * 4, pat[i % period], 4);
        for (std::size_t i = 0; i < aLen; ++i)
            a.mem().write(aBase + i * 8, 0xa11ce + i * 0x21, 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("pb", r1, bBase);
        a.imm("acc", r2, 0);
        for (std::size_t i = 0; i < bLen && !a.done(); ++i) {
            Value idx = a.load("ld_b", r3, r1, 0, 4);
            // The index value steers a branch, exposing it to history.
            a.branch("br_idx", idx >= aLen / 2, "high", r3);
            a.nop(idx >= aLen / 2 ? "high" : "low");
            a.shl("aoff", r4, r3, 3);
            a.imm("ab", r5, aBase);
            a.load("ld_a", r6, r5, 0, 8, r4);
            a.add("sum", r2, r2, r6);
            a.addi("pbi", r1, r1, 4);
            a.branch("br", i + 1 < bLen, "ld_b", r1);
        }
    }
};

/** Substring scan with an inner pattern-compare loop (perlbmk-like). */
class StringSearchKernel : public SynthKernel
{
  public:
    StringSearchKernel() : SynthKernel("string_search") {}

  protected:
    static constexpr Addr textBase = 0x63000000;
    static constexpr Addr patBase = 0x63100000;
    static constexpr std::size_t textLen = 48 * 1024;
    static constexpr std::size_t patLen = 6;

    void
    init(Asm &a) const override
    {
        static const char pat[] = "needle";
        for (std::size_t i = 0; i < patLen; ++i)
            a.mem().write(patBase + i, std::uint8_t(pat[i]), 1);
        for (std::size_t i = 0; i < textLen; ++i) {
            std::uint8_t b = std::uint8_t(0x61 + a.rng().below(26));
            a.mem().write(textBase + i, b, 1);
        }
        // Plant some needles.
        for (unsigned k = 0; k < 64; ++k) {
            const std::size_t pos = a.rng().below(textLen - patLen);
            for (std::size_t i = 0; i < patLen; ++i)
                a.mem().write(textBase + pos + i,
                              std::uint8_t(pat[i]), 1);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("pt", r1, textBase);
        a.imm("pp", r2, patBase);
        a.imm("hits", r3, 0);
        const Value first = a.mem().read(patBase, 1);
        for (std::size_t i = 0; i + patLen < textLen && !a.done();
             ++i) {
            Value c = a.load("ld_c", r4, r1, 0, 1);
            a.branch("br_c", c == first, "inner", r4);
            if (c == first) {
                a.nop("inner");
                // Compare the remaining pattern bytes: the pattern
                // loads always return the same values (P1/P3).
                bool match = true;
                for (std::size_t k = 1; k < patLen && match; ++k) {
                    Value pv = a.load("ld_p", r5, r2,
                                      std::int64_t(k), 1);
                    Value tv = a.load("ld_t", r6, r1,
                                      std::int64_t(k), 1);
                    match = (pv == tv);
                    a.branch("br_k", match && k + 1 < patLen, "ld_p",
                             r6);
                }
                if (match)
                    a.addi("hit", r3, r3, 1);
            }
            a.addi("pti", r1, r1, 1);
            a.branch("br", true, "ld_c", r1);
        }
    }
};

/**
 * Phase alternator: ~40K instructions of highly LVP-predictable work,
 * then ~40K of hostile work where stale confident entries mispredict.
 * Exercises M-AM/PC-AM silencing and table fusion's epoch adaptation.
 */
class PhaseMixerKernel : public SynthKernel
{
  public:
    PhaseMixerKernel() : SynthKernel("phase_mixer") {}

  protected:
    static constexpr Addr cBase = 0x64000000;
    static constexpr Addr hBase = 0x64100000;
    static constexpr std::size_t hSlots = 1 << 12;

    void
    init(Asm &a) const override
    {
        for (unsigned i = 0; i < 4; ++i)
            a.mem().write(cBase + i * 8, 0x5eed + i, 8);
        for (std::size_t i = 0; i < hSlots; ++i)
            a.mem().write(hBase + i * 8, a.rng().next(), 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("pc1", r1, cBase);
        a.imm("ph", r2, hBase);
        a.imm("acc", r3, 0);
        while (!a.done()) {
            // Predictable phase: constant reloads.
            for (unsigned i = 0; i < 8000 && !a.done(); ++i) {
                a.load("ld_k0", r4, r1, 0, 8);
                a.load("ld_k1", r5, r1, 8, 8);
                a.add("s1", r3, r3, r4);
                a.add("s2", r3, r3, r5);
                a.branch("brp", i + 1 < 8000, "ld_k0", r3);
            }
            // Hostile phase: the same static loads now see random
            // addresses/values (function pointer swap, say).
            for (unsigned i = 0; i < 8000 && !a.done(); ++i) {
                a.imm("roff", r6, a.rng().below(hSlots) * 8);
                a.load("ld_k0", r4, r2, 0, 8, r6);
                a.imm("roff2", r6, a.rng().below(hSlots) * 8);
                a.load("ld_k1", r5, r2, 0, 8, r6);
                a.add("h1", r3, r3, r4);
                a.add("h2", r3, r3, r5);
                a.branch("brh", i + 1 < 8000, "roff", r3);
            }
        }
    }
};

} // anonymous namespace

void
registerContextKernels(WorkloadRegistry &reg)
{
    reg.add("interp_dispatch",
            "bytecode interpreter dispatch (P3, ITTAGE)",
            [] { return std::make_unique<InterpDispatchKernel>(); });
    reg.add("object_graph", "polymorphic property access (P3)",
            [] { return std::make_unique<ObjectGraphKernel>(); });
    reg.add("indirect_index", "A[B[i]] gather, periodic B (P2+P3)",
            [] { return std::make_unique<IndirectIndexKernel>(); });
    reg.add("string_search", "substring scan with compare loop (P1/P2)",
            [] { return std::make_unique<StringSearchKernel>(); });
    reg.add("phase_mixer", "alternating friendly/hostile phases (AM)",
            [] { return std::make_unique<PhaseMixerKernel>(); });
}

} // namespace trace
} // namespace lvpsim
