#include "trace/kernels/memset_loop.hh"

#include <memory>

#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

// Architectural register assignments for this kernel.
constexpr RegId rBase = 1;  ///< &A[0]
constexpr RegId rPtr = 2;   ///< memset cursor
constexpr RegId rZero = 3;  ///< constant 0
constexpr RegId rIdx = 4;   ///< i * sizeof(*A)
constexpr RegId rSum = 5;   ///< running sum
constexpr RegId rVal = 6;   ///< loaded A[i]
constexpr RegId rOut = 7;   ///< outer counter

constexpr Addr arrayBase = 0x10000000;
constexpr unsigned elemSize = 4;

} // anonymous namespace

void
MemsetLoopKernel::body(Asm &a) const
{
    a.imm("init_base", rBase, arrayBase);
    a.imm("init_zero", rZero, 0);
    a.imm("init_sum", rSum, 0);
    a.imm("init_out", rOut, 0);

    for (std::size_t o = 0; (outerM == 0 || o < outerM) && !a.done();
         ++o) {
        // memset(A, 0, N * sizeof(*A)) - a store loop.
        a.imm("ms_ptr", rPtr, arrayBase);
        for (std::size_t i = 0; i < innerN; ++i) {
            a.store("ms_st", rZero, rPtr, 0, elemSize);
            a.addi("ms_inc", rPtr, rPtr, elemSize);
            a.branch("ms_br", i + 1 < innerN, "ms_st", rPtr);
        }
        // for (i = 0; i < N; i++) sum += A[i];
        a.imm("in_idx", rIdx, 0);
        for (std::size_t i = 0; i < innerN; ++i) {
            a.load("ld_a", rVal, rBase, 0, elemSize, rIdx);
            a.add("in_sum", rSum, rSum, rVal);
            a.addi("in_inc", rIdx, rIdx, elemSize);
            a.branch("in_br", i + 1 < innerN, "ld_a", rIdx);
        }
        a.addi("out_inc", rOut, rOut, 1);
        a.branch("out_br", outerM == 0 || o + 1 < outerM, "ms_ptr",
                 rOut);
    }
}

void
registerListing1Kernels(WorkloadRegistry &reg)
{
    reg.add("memset_loop",
            "paper Listing 1: outer memset + inner sum (Table V)",
            [] { return std::make_unique<MemsetLoopKernel>(); });
}

} // namespace trace
} // namespace lvpsim
