/**
 * @file
 * Fresh-data streaming kernels: strided addresses over data that is
 * *new every pass* (network/IO-style). Address predictors (SAP/CAP)
 * can cover these loads; no value predictor can - the sharpest
 * separation between the paper's composite and value-only designs
 * like EVES.
 */

#include <memory>

#include "common/bitutils.hh"
#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7;

/**
 * Packet processing: a producer deposits fresh packets into a ring
 * (simulating a NIC), then a consumer walks each packet's header and
 * payload with fixed offsets. Consumer loads have perfectly strided
 * addresses but never-repeating values.
 */
class PacketProcKernel : public SynthKernel
{
  public:
    PacketProcKernel() : SynthKernel("packet_proc") {}

  protected:
    static constexpr Addr ringBase = 0x90000000;
    static constexpr unsigned pktSize = 128;
    static constexpr unsigned ringPkts = 64;

    void
    body(Asm &a) const override
    {
        a.imm("acc", r5, 0);
        std::uint64_t seq = 1;
        while (!a.done()) {
            // "NIC" fills the ring with fresh packets (silent writes:
            // DMA traffic is not core instructions).
            for (unsigned p = 0; p < ringPkts; ++p) {
                const Addr pkt = ringBase + p * pktSize;
                a.mem().write(pkt + 0, seq, 8);           // seqno
                a.mem().write(pkt + 8, a.rng().next(), 8); // flow id
                a.mem().write(pkt + 16, 64 + a.rng().below(64),
                              4); // length
                for (unsigned w = 0; w < 8; ++w)
                    a.mem().write(pkt + 32 + w * 8,
                                  a.rng().next(), 8);
                ++seq;
            }
            // Consumer: strided walk, fixed header offsets.
            a.imm("pp", r1, ringBase);
            for (unsigned p = 0; p < ringPkts && !a.done(); ++p) {
                a.load("ld_seq", r2, r1, 0, 8);
                a.load("ld_flow", r3, r1, 8, 8);
                a.load("ld_len", r4, r1, 16, 4);
                a.add("a1", r5, r5, r2);
                a.xorOp("a2", r5, r5, r3);
                // Checksum the first two payload words.
                a.load("ld_pay0", r6, r1, 32, 8);
                a.load("ld_pay1", r7, r1, 40, 8);
                a.add("a3", r5, r5, r6);
                a.xorOp("a4", r5, r5, r7);
                a.addi("next", r1, r1, pktSize);
                a.branch("brp", p + 1 < ringPkts, "ld_seq", r1);
            }
        }
    }
};

/**
 * Log scanning (grep/awk-like): a byte-level state machine over text
 * that is regenerated each pass. Byte loads are stride-1 with fresh
 * values; a small keyword table is constant (Pattern-1).
 */
class LogScanKernel : public SynthKernel
{
  public:
    LogScanKernel() : SynthKernel("log_scan") {}

  protected:
    static constexpr Addr bufBase = 0xa0000000;
    static constexpr Addr kwBase = 0xa0100000;
    static constexpr std::size_t bufLen = 16 * 1024;

    void
    init(Asm &a) const override
    {
        static const char kw[] = "ERROR";
        for (unsigned i = 0; i < 5; ++i)
            a.mem().write(kwBase + i, std::uint8_t(kw[i]), 1);
    }

    void
    body(Asm &a) const override
    {
        // Fresh "log text" each pass (silent writes: the producer is
        // another process).
        for (std::size_t i = 0; i < bufLen; ++i) {
            std::uint8_t b;
            const auto roll = a.rng().below(100);
            if (roll < 2)
                b = '\n';
            else if (roll < 12)
                b = ' ';
            else if (roll < 15)
                b = 'E'; // keyword candidates
            else
                b = std::uint8_t('a' + a.rng().below(26));
            a.mem().write(bufBase + i, b, 1);
        }
        // Plant some real keyword hits.
        static const char kw[] = "ERROR";
        for (int hit = 0; hit < 32; ++hit) {
            const std::size_t pos = a.rng().below(bufLen - 6);
            for (unsigned k = 0; k < 5; ++k)
                a.mem().write(bufBase + pos + k,
                              std::uint8_t(kw[k]), 1);
        }
        a.imm("pb", r1, bufBase);
        a.imm("hits", r5, 0);
        for (std::size_t i = 0; i < bufLen && !a.done(); ++i) {
            Value c = a.load("ld_c", r2, r1, 0, 1);
            // Newline handling branch (rare, history-visible).
            a.branch("br_nl", c == '\n', "nl", r2);
            if (c == '\n') {
                a.nop("nl");
                a.addi("line", r5, r5, 1);
            } else if (c == 'E') {
                // Candidate: compare against the keyword table.
                bool match = true;
                for (unsigned k = 1; k < 5 && match; ++k) {
                    // Keyword table read (constant values, P1).
                    a.imm("kwp", r4, kwBase + k);
                    Value kv = a.load("ld_kwt", r3, r4, 0, 1);
                    Value tv = a.load("ld_tx", r6, r1,
                                      std::int64_t(k), 1);
                    match = kv == tv;
                    a.branch("br_k", match && k + 1 < 5, "kwp", r6);
                }
                if (match)
                    a.addi("hit", r5, r5, 1);
            }
            a.addi("pi", r1, r1, 1);
            a.branch("br", true, "ld_c", r1);
        }
    }
};

} // anonymous namespace

void
registerStreamKernels(WorkloadRegistry &reg)
{
    reg.add("packet_proc",
            "ring of fresh packets, header walks (P2, fresh values)",
            [] { return std::make_unique<PacketProcKernel>(); });
    reg.add("log_scan",
            "byte state machine over fresh text (P2 + P1 keyword)",
            [] { return std::make_unique<LogScanKernel>(); });
}

} // namespace trace
} // namespace lvpsim
